//! A minimal, dependency-free stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access; this shim keeps the
//! `par_iter()` call sites compiling by handing back ordinary
//! sequential iterators. Parallel speedup is forfeited, correctness is
//! identical (rayon's semantics guarantee the same results as the
//! sequential execution).

#![warn(missing_docs)]

/// The `rayon::prelude` re-exports.
pub mod prelude {
    /// `par_iter()` over `&self`, sequential fallback.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The item type.
        type Item: 'data;

        /// A "parallel" (here: sequential) iterator over references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `into_par_iter()`, sequential fallback.
    pub trait IntoParallelIterator {
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The item type.
        type Item;

        /// A "parallel" (here: sequential) owning iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}
