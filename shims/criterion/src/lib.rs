//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace's
//! `harness = false` benches link against this subset instead: each
//! `bench_function` runs a short warmup, then times a fixed batch and
//! prints mean wall-clock time per iteration. No statistics, plots, or
//! saved baselines — just enough to keep `cargo bench` meaningful and
//! `cargo build --benches` compiling.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Times closures registered through [`Criterion::bench_function`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / u32::try_from(b.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        println!("{id:<48} {per_iter:>12.2?}/iter ({} iters)", b.iters);
        self
    }
}

/// Passed to benchmark closures; times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup and calibration: aim for ~0.2 s of measurement.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// Registers benchmark group functions (compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
