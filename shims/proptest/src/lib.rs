//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small subset of the proptest API its test
//! suites actually use: [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, integer-range and tuple strategies,
//! [`collection::vec`], [`prop_oneof!`], [`strategy::Just`],
//! [`strategy::any`], and the [`proptest!`] / `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Generation is deterministic: every test function derives its RNG
//! seed from its own name (override with `PROPTEST_SEED`), so failures
//! reproduce without a persistence file. There is no shrinking — a
//! failing case reports the case number, and re-running replays it.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as a `vec` size: an exact length or a range.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.below(self.end.saturating_sub(self.start).max(1) as u64) as usize + self.start
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = self.end().saturating_sub(*self.start()) + 1;
            rng.below(span as u64) as usize + self.start()
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `proptest::collection::vec`: a vector of `size` elements.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `proptest::prelude` re-exports.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests.
///
/// Supports the `proptest!` forms used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies via `pat in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let __ran = (|| -> bool { $body true })();
                    let _ = (__case, __ran);
                }
            }
        )*
    };
}

/// `prop_assume!`: skips the current case when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return false;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return false;
        }
    };
}

/// `prop_assert!`: asserts within a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!`: equality assertion within a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!`: inequality assertion within a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// `prop_oneof!`: picks uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
