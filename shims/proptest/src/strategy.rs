//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values; draws again (bounded) on rejection.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// [`Strategy::prop_filter`] adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Bounded rejection sampling; the last draw wins regardless so
        // generation always terminates (callers' filters are loose).
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        self.inner.generate(rng)
    }
}

/// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given arms; must be non-empty.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = rng.below_wide(span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = rng.below_wide(span);
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next() as $t
            }
        }
    )*};
}

arbitrary_ints!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Canonical strategy of an [`Arbitrary`] type.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any::<T>()`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}
