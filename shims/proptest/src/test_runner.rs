//! Deterministic RNG and run configuration.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A deterministic xorshift64* RNG.
///
/// Seeded from the test's module path and name (or `PROPTEST_SEED`),
/// so runs reproduce exactly across machines with no regression files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from `name`, or from `PROPTEST_SEED` when set.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| {
                // FNV-1a over the test name.
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                h
            });
        TestRng {
            state: seed | 1, // xorshift state must be nonzero
        }
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound` (`bound` ≥ 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// Uniform value in `0..bound` for wide (up to 128-bit) spans.
    pub fn below_wide(&mut self, bound: u128) -> u128 {
        if bound <= 1 {
            return 0;
        }
        let wide = (u128::from(self.next()) << 64) | u128::from(self.next());
        wide % bound
    }
}
