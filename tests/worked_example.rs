//! End-to-end verification of the paper's worked example (§3.1–§3.3).

use ooc_opt::core::{
    max_divergence_from_reference, optimize, optimize_data_only, optimize_loop_only, simulate,
    ExecConfig, OptimizeOptions, TiledProgram, TilingStrategy,
};
use ooc_opt::ir::{ArrayRef, Expr, LoopNest, Program, Statement};
use ooc_opt::linalg::Matrix;
use ooc_opt::runtime::FileLayout;

fn paper_example() -> Program {
    let mut p = Program::new(&["N"]);
    let u = p.declare_array("U", 2, 0);
    let v = p.declare_array("V", 2, 0);
    let w = p.declare_array("W", 2, 0);
    let s1 = Statement::assign(
        ArrayRef::new(u, &[vec![1, 0], vec![0, 1]], vec![0, 0]),
        Expr::Add(
            Box::new(Expr::Ref(ArrayRef::new(
                v,
                &[vec![0, 1], vec![1, 0]],
                vec![0, 0],
            ))),
            Box::new(Expr::Const(1.0)),
        ),
    );
    p.add_nest(LoopNest::rectangular("nest1", 2, 1, 0, vec![s1]));
    let s2 = Statement::assign(
        ArrayRef::new(v, &[vec![1, 0], vec![0, 1]], vec![0, 0]),
        Expr::Add(
            Box::new(Expr::Ref(ArrayRef::new(
                w,
                &[vec![0, 1], vec![1, 0]],
                vec![0, 0],
            ))),
            Box::new(Expr::Const(2.0)),
        ),
    );
    p.add_nest(LoopNest::rectangular("nest2", 2, 1, 0, vec![s2]));
    p
}

/// §3.2.3: U row-major, V column-major, W row-major; nest 2 is
/// interchanged; nest 1 untouched.
#[test]
fn layouts_and_transformations_match_the_paper() {
    let opt = optimize(&paper_example(), &OptimizeOptions::default());
    assert_eq!(opt.layouts[0], FileLayout::row_major(2), "U");
    assert_eq!(opt.layouts[1], FileLayout::col_major(2), "V");
    assert_eq!(opt.layouts[2], FileLayout::row_major(2), "W");
    assert_eq!(opt.transforms[0], Matrix::identity(2), "nest 1 untouched");
    assert_eq!(
        opt.transforms[1],
        Matrix::from_i64(2, 2, &[0, 1, 1, 0]),
        "nest 2 interchanged"
    );
}

/// The transformed program computes exactly what the original does.
#[test]
fn transformed_program_is_equivalent() {
    let prog = paper_example();
    let opt = optimize(&prog, &OptimizeOptions::default());
    for strategy in [
        TilingStrategy::OutOfCore,
        TilingStrategy::Optimized,
        TilingStrategy::Traditional,
    ] {
        let tp = TiledProgram::from_optimized(&opt, strategy);
        let d = max_divergence_from_reference(&tp, &prog, &[13], &|a, idx| {
            (a.0 * 1000) as f64 + (idx[0] * 37 + idx[1]) as f64
        });
        assert_eq!(d, 0.0, "{strategy:?}");
    }
}

/// §3.1's point, measured: only the combined approach optimizes all
/// four references — it beats loops-only and layouts-only.
#[test]
fn combined_beats_both_single_techniques() {
    let prog = paper_example();
    let opts = OptimizeOptions::default();
    let cfg = ExecConfig::new(vec![1024], 16);
    let time = |tp: &TiledProgram| simulate(tp, &cfg).result.total_time;

    let c = time(&TiledProgram::from_optimized(
        &optimize(&prog, &opts),
        TilingStrategy::OutOfCore,
    ));
    let l = time(&TiledProgram::from_optimized(
        &optimize_loop_only(&prog, &opts, None),
        TilingStrategy::Optimized,
    ));
    let d = time(&TiledProgram::from_optimized(
        &optimize_data_only(&prog, &opts),
        TilingStrategy::Optimized,
    ));
    assert!(c < l, "combined {c} vs loops-only {l}");
    assert!(c < d, "combined {c} vs layouts-only {d}");
}
