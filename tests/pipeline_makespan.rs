//! The pipeline's modeled payoff, asserted: for the tiled c-opt
//! version of the paper's kernels, the overlap-aware `pfs-sim`
//! pricing must give a *strictly* lower makespan than the synchronous
//! sum of per-stage I/O and compute — and stay within the classic
//! pipeline bounds.

use ooc_opt::core::{build_workload, ExecConfig};
use ooc_opt::kernels::{compile, kernel_by_name, Version};
use ooc_opt::pfs::{
    overlap_lower_bound, overlap_report, pipelined_makespan, sequential_makespan, stages_from_trace,
};

#[test]
fn pipelined_makespan_strictly_beats_sequential_for_tiled_copt() {
    for name in ["mxm", "trans", "syr2k"] {
        let k = kernel_by_name(name).expect("kernel");
        let cv = compile(&k, Version::COpt);
        let params: Vec<i64> = k.paper_params.iter().map(|&n| (n / 8).max(8)).collect();
        let mut cfg = ExecConfig::new(params, 1);
        cfg.interleave = cv.interleave.clone();
        let (_sim, workload, _report) = build_workload(&cv.tiled, &cfg);
        let trace = &workload.per_proc[0];
        let stages = stages_from_trace(trace, &cfg.machine);
        assert!(stages.len() >= 2, "{name}: trace too short to pipeline");

        let seq = sequential_makespan(&stages);
        let lb = overlap_lower_bound(&stages);
        for depth in [1usize, 2, 4, 8] {
            let pipelined = pipelined_makespan(&stages, depth);
            assert!(
                pipelined < seq,
                "{name} depth {depth}: pipelined {pipelined} >= sequential {seq}"
            );
            assert!(
                pipelined >= lb - 1e-9,
                "{name} depth {depth}: pipelined {pipelined} beats the bound {lb}"
            );
        }
    }
}

#[test]
fn overlap_report_is_consistent_with_the_raw_recurrence() {
    let k = kernel_by_name("mxm").expect("kernel");
    let cv = compile(&k, Version::COpt);
    let params: Vec<i64> = k.paper_params.iter().map(|&n| (n / 8).max(8)).collect();
    let mut cfg = ExecConfig::new(params, 1);
    cfg.interleave = cv.interleave.clone();
    let (_sim, workload, _report) = build_workload(&cv.tiled, &cfg);
    let trace = &workload.per_proc[0];

    let r = overlap_report(trace, &cfg.machine, 4);
    let stages = stages_from_trace(trace, &cfg.machine);
    assert_eq!(r.stages, stages.len());
    assert!((r.sequential_s - sequential_makespan(&stages)).abs() < 1e-9);
    assert!((r.pipelined_s - pipelined_makespan(&stages, 4)).abs() < 1e-9);
    assert!(r.speedup() > 1.0);
    assert!(r.hidden_frac() > 0.0 && r.hidden_frac() <= 1.0);
}
