//! Figure 1: normalization (fusion/distribution/sinking) and the
//! interference graph's connected components, end to end.

use ooc_opt::core::InterferenceGraph;
use ooc_opt::ir::{
    execute_program, normalize, DimSize, LoopNode, Memory, Node, SurfaceExpr, SurfaceProgram,
    SurfaceRef, SurfaceStmt,
};

fn figure1_input() -> SurfaceProgram {
    let mut sp = SurfaceProgram::new(&["N"]);
    let u = sp.declare_array("U", 2, 0);
    let v = sp.declare_array("V", 2, 0);
    let w = sp.declare_array("W", 2, 0);
    let x = sp.declare_array("X", 2, 0);
    let y = sp.declare_array("Y", 2, 0);

    // Imperfect nest 1: fused.
    let s1 = SurfaceStmt {
        lhs: SurfaceRef::vars(u, &["i", "j"]),
        rhs: SurfaceExpr::Ref(SurfaceRef::vars(v, &["j", "i"])),
    };
    let s2 = SurfaceStmt {
        lhs: SurfaceRef::vars(w, &["i", "j"]),
        rhs: SurfaceExpr::Ref(SurfaceRef::vars(v, &["i", "j"])),
    };
    sp.top.push(Node::Loop(LoopNode::new(
        "i",
        DimSize::Param(0),
        vec![
            Node::Loop(LoopNode::new("j", DimSize::Param(0), vec![Node::Stmt(s1)])),
            Node::Loop(LoopNode::new("j", DimSize::Param(0), vec![Node::Stmt(s2)])),
        ],
    )));

    // Imperfect nest 2: distributed (different inner bounds).
    let s3 = SurfaceStmt {
        lhs: SurfaceRef::vars(x, &["i", "j"]),
        rhs: SurfaceExpr::Const(1.0),
    };
    let s4 = SurfaceStmt {
        lhs: SurfaceRef::vars(y, &["i", "k"]),
        rhs: SurfaceExpr::Add(
            Box::new(SurfaceExpr::Ref(SurfaceRef::vars(x, &["i", "k"]))),
            Box::new(SurfaceExpr::Const(2.0)),
        ),
    };
    sp.top.push(Node::Loop(LoopNode::new(
        "i",
        DimSize::Param(0),
        vec![
            Node::Loop(LoopNode::new("j", DimSize::Param(0), vec![Node::Stmt(s3)])),
            Node::Loop(LoopNode::new("k", DimSize::Const(4), vec![Node::Stmt(s4)])),
        ],
    )));
    sp
}

#[test]
fn figure1_pipeline() {
    let prog = normalize(&figure1_input()).expect("normalizes");
    // Fusion keeps nest 1 whole; distribution splits nest 2.
    assert_eq!(prog.nests.len(), 3);
    assert!(prog.nests.iter().all(|n| n.depth == 2));

    let comps = InterferenceGraph::build(&prog).connected_components();
    assert_eq!(comps.len(), 2, "two disjoint array sets");
    let names = |idx: usize| -> Vec<String> {
        comps[idx]
            .arrays
            .iter()
            .map(|a| prog.arrays[a.0].name.clone())
            .collect()
    };
    assert_eq!(names(0), vec!["U", "V", "W"]);
    assert_eq!(names(1), vec!["X", "Y"]);
}

#[test]
fn normalized_program_executes_correctly() {
    let prog = normalize(&figure1_input()).expect("normalizes");
    let mut mem = Memory::for_program(&prog, &[5]);
    mem.seed(ooc_opt::ir::ArrayId(1), |i| i as f64); // V
    execute_program(&prog, &mut mem);
    // U(i,j) = V(j,i); W(i,j) = V(i,j): spot-check the fused semantics.
    let v = |r: i64, c: i64| ((r - 1) * 5 + (c - 1)) as f64;
    let u = mem.array_data(ooc_opt::ir::ArrayId(0));
    let w = mem.array_data(ooc_opt::ir::ArrayId(2));
    let off = |r: i64, c: i64| ((r - 1) * 5 + (c - 1)) as usize;
    assert_eq!(u[off(2, 3)], v(3, 2));
    assert_eq!(w[off(2, 3)], v(2, 3));
    // X filled with 1.0 over 5x5; Y = X + 2 over 5x4.
    let x = mem.array_data(ooc_opt::ir::ArrayId(3));
    assert!(x.iter().all(|&e| e == 1.0));
    let y = mem.array_data(ooc_opt::ir::ArrayId(4));
    assert_eq!(y.iter().filter(|&&e| e == 3.0).count(), 5 * 4);
}
