//! Figure 3: the out-of-core tiling strategy's I/O call counts, at the
//! paper's exact illustration scale and at realistic scale.

use ooc_opt::runtime::{summary_cost, FileLayout, MemoryBudget, Region};

/// The paper's illustration: 8x8 arrays, 32 elements of memory split
/// over two arrays, at most 8 elements per I/O call.
#[test]
fn paper_illustration_numbers() {
    let dims = [8i64, 8];
    let budget = MemoryBudget::new(32);
    assert_eq!(budget.per_array(2), 16);

    // (a) traditional 4x4 tiles: 4 calls per tile from either layout.
    let square = Region::new(vec![1, 1], vec![4, 4]);
    for layout in [FileLayout::row_major(2), FileLayout::col_major(2)] {
        let cost = summary_cost(layout.region_run_summary(&dims, &square), 8);
        assert_eq!(cost.calls, 4, "{layout:?}");
        assert_eq!(cost.elements, 16);
    }

    // (b) out-of-core 2x8 tiles: 2 calls when the slab matches the
    // layout (row-major), 8 when it fights it.
    let slab = Region::new(vec![1, 1], vec![2, 8]);
    let row = summary_cost(FileLayout::row_major(2).region_run_summary(&dims, &slab), 8);
    assert_eq!(row.calls, 2);
    assert_eq!(row.elements, 16);
    let col = summary_cost(FileLayout::col_major(2).region_run_summary(&dims, &slab), 8);
    assert_eq!(col.calls, 8);
}

/// The same effect at scale, end to end through the compiler: on the
/// worked example, out-of-core tiling issues fewer calls than naive
/// square tiling for the same program and layouts.
#[test]
fn ooc_tiling_beats_traditional_end_to_end() {
    use ooc_opt::core::{
        optimize, simulate, ExecConfig, OptimizeOptions, TiledProgram, TilingStrategy,
    };
    use ooc_opt::ir::{ArrayRef, Expr, LoopNest, Program, Statement};

    let mut p = Program::new(&["N"]);
    let u = p.declare_array("U", 2, 0);
    let v = p.declare_array("V", 2, 0);
    let s = Statement::assign(
        ArrayRef::new(u, &[vec![1, 0], vec![0, 1]], vec![0, 0]),
        Expr::Ref(ArrayRef::new(v, &[vec![0, 1], vec![1, 0]], vec![0, 0])),
    );
    p.add_nest(LoopNest::rectangular("n", 2, 1, 0, vec![s]));

    let opt = optimize(&p, &OptimizeOptions::default());
    let cfg = ExecConfig::new(vec![1024], 16);
    let ooc = simulate(
        &TiledProgram::from_optimized(&opt, TilingStrategy::OutOfCore),
        &cfg,
    );
    let trad = simulate(
        &TiledProgram::from_optimized(&opt, TilingStrategy::Traditional),
        &cfg,
    );
    assert!(
        ooc.io_calls < trad.io_calls,
        "out-of-core {} calls vs traditional {}",
        ooc.io_calls,
        trad.io_calls
    );
    // (No wall-clock assertion here: at this reduced N a whole slab
    // fits inside one 64 KB stripe, so the few large out-of-core calls
    // serialize on single I/O nodes — a small-scale artifact. At paper
    // scale the slabs span many stripes and the call saving dominates;
    // the `table2` harness and `tests/table_shapes.rs` cover that.)
}
