//! Differential tests of the measured multi-node parallel executor:
//! every kernel's six versions run through `exec_parallel` at several
//! worker counts, on both store backends, and must
//!
//! 1. compute contents bit-equal to the synchronous executor at every
//!    worker count,
//! 2. keep the analytic run accounting equal to the measured
//!    store-level call count, array for array (all shard workers'
//!    prefetch pools and write-behind threads included),
//! 3. conserve per-array *write* traffic exactly across worker counts
//!    (written regions are shard-disjoint and flushed once), and issue
//!    identical analytic totals on either backend at a fixed worker
//!    count — scheduling is driven by the partitioned walk, never by
//!    thread timing.
//!
//! A second group drives the striped per-node store layer: summed over
//! I/O nodes, measured per-node call/element counts must equal the
//! single-node totals at every node count (stripe boundaries are fixed
//! in the element space; only node assignment varies), two same-seed
//! same-worker-count runs must report identical data, profiles, and
//! per-node counters, and seeded fault injection must replay
//! identically regardless of how worker threads interleave.

use ooc_opt::core::{
    exec_parallel, run_functional_on, FunctionalConfig, ParallelConfig, ParallelRun, PipelineConfig,
};
use ooc_opt::ir::ArrayId;
use ooc_opt::kernels::{all_kernels, compile, kernel_by_name, CompiledVersion, Version};
use ooc_opt::runtime::testing::{Backend, TempDir};
use ooc_opt::runtime::{
    FaultConfig, FaultHandle, FaultStore, IoNodePool, MemStore, NodeStats, StripeConfig,
    StripedStore,
};

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

fn parallel_cfg(shards: usize) -> ParallelConfig {
    ParallelConfig {
        pipeline: PipelineConfig {
            functional: FunctionalConfig::with_fraction(16),
            ..PipelineConfig::default()
        },
        shards,
    }
}

/// Worker counts the differential matrix sweeps.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs a compiled version through the parallel executor over traced
/// stores of the given backend.
fn run_parallel(
    cv: &CompiledVersion,
    params: &[i64],
    shards: usize,
    backend: Backend,
    dir: &TempDir,
) -> ParallelRun {
    exec_parallel(
        &cv.tiled,
        params,
        &seed,
        &parallel_cfg(shards),
        |_, name, len| {
            backend
                .open_traced_send(dir.path(), name, len)
                .map(|(s, _)| s)
        },
    )
    .expect("parallel run")
}

/// Per-array `(write_calls, write_elems)` — the traffic component that
/// is conserved exactly at every worker count.
fn write_totals(run: &ParallelRun) -> Vec<(u64, u64)> {
    run.run
        .profiles
        .iter()
        .map(|p| (p.stats.write_calls, p.stats.write_elems))
        .collect()
}

/// The full matrix: every kernel, every version, 1/2/4/8 workers,
/// both backends, against the synchronous executor's reference.
#[test]
fn parallel_differential_sweep() {
    for k in all_kernels() {
        let params = &k.small_params;
        for v in Version::ALL {
            let cv = compile(&k, v);
            let reference = run_functional_on(
                &cv.tiled,
                params,
                &seed,
                &FunctionalConfig::with_fraction(16),
                |_, _, len| Ok(MemStore::new(len)),
            )
            .expect("sync reference");

            let mut writes: Option<Vec<(u64, u64)>> = None;
            for workers in WORKER_COUNTS {
                let mem_dir = TempDir::new("ooc-par-mem").expect("tmp");
                let mem = run_parallel(&cv, params, workers, Backend::Mem, &mem_dir);
                let file_dir = TempDir::new("ooc-par-file").expect("tmp");
                let file = run_parallel(&cv, params, workers, Backend::File, &file_dir);

                // 1. Bit-equality with the synchronous executor at
                //    every worker count, both backends.
                assert_eq!(
                    mem.run.data,
                    reference.data,
                    "{} {} x{workers}: parallel mem diverged from sync",
                    k.name,
                    v.label()
                );
                assert_eq!(
                    file.run.data,
                    reference.data,
                    "{} {} x{workers}: parallel file diverged from sync",
                    k.name,
                    v.label()
                );

                // 2. Model exactness across shard threads: analytic
                //    accounting equals the traced store-level calls.
                for run in [&mem, &file] {
                    for p in &run.run.profiles {
                        let m = p.measured.as_ref().expect("traced");
                        assert_eq!(
                            p.stats.total_calls(),
                            m.total_calls(),
                            "{} {} x{workers} array {}: analytic vs measured calls",
                            k.name,
                            v.label(),
                            p.name
                        );
                        assert_eq!(
                            p.stats.total_elems(),
                            m.total_elems(),
                            "{} {} x{workers} array {}: analytic vs measured elems",
                            k.name,
                            v.label(),
                            p.name
                        );
                    }
                }

                // 3a. Backend independence at a fixed worker count.
                let (mt, ft) = (mem.run.total_stats(), file.run.total_stats());
                assert_eq!(
                    (mt.read_calls, mt.write_calls, mt.read_elems, mt.write_elems),
                    (ft.read_calls, ft.write_calls, ft.read_elems, ft.write_elems),
                    "{} {} x{workers}: mem vs file analytic I/O totals",
                    k.name,
                    v.label()
                );

                // 3b. Write conservation across worker counts.
                let w = write_totals(&mem);
                if let Some(first) = &writes {
                    assert_eq!(
                        first,
                        &w,
                        "{} {} x{workers}: write traffic moved across worker counts",
                        k.name,
                        v.label()
                    );
                } else {
                    writes = Some(w);
                }
            }
        }
    }
}

/// Sharding must actually engage on the paper kernels — at least one
/// nest partitioned across more than one busy shard — and every
/// partition summary must cover every nest.
#[test]
fn partitions_cover_and_engage() {
    let k = kernel_by_name("mxm").expect("kernel");
    let cv = compile(&k, Version::COpt);
    let dir = TempDir::new("ooc-par-engage").expect("tmp");
    let run = run_parallel(&cv, &k.small_params, 4, Backend::Mem, &dir);
    assert_eq!(run.partitions.len(), cv.tiled.nests.len());
    assert!(
        run.partitions
            .iter()
            .any(|p| !p.serial_fallback && p.active_shards > 1),
        "no nest actually sharded: {:?}",
        run.partitions
    );
    let busy = run
        .shard_stats
        .iter()
        .filter(|s| s.steps_unstalled + s.stalls > 0)
        .count();
    assert!(
        busy > 1,
        "only {busy} shard did work: {:?}",
        run.shard_stats
    );
}

/// Runs one kernel version with 2 workers over stores striped across
/// `nodes` in-memory parts, returning the run and the pool snapshot.
fn run_striped(
    cv: &CompiledVersion,
    params: &[i64],
    nodes: usize,
    shards: usize,
) -> (ParallelRun, Vec<NodeStats>) {
    let pool = IoNodePool::new(StripeConfig {
        stripe_elems: 16,
        ..StripeConfig::with_nodes(nodes)
    });
    let run = exec_parallel(
        &cv.tiled,
        params,
        &seed,
        &parallel_cfg(shards),
        |_, _, len| StripedStore::build(&pool, len, |_, part_len| Ok(MemStore::new(part_len))),
    )
    .expect("striped run");
    (run, pool.snapshot())
}

fn node_totals(stats: &[NodeStats]) -> (u64, u64, u64, u64) {
    stats.iter().fold((0, 0, 0, 0), |acc, n| {
        (
            acc.0 + n.io.read_calls,
            acc.1 + n.io.write_calls,
            acc.2 + n.io.read_elems,
            acc.3 + n.io.write_elems,
        )
    })
}

/// Measured per-node call counts sum to the single-node totals at
/// every node count: striping redistributes traffic, never creates or
/// destroys it (stripe boundaries are fixed; only ownership varies).
#[test]
fn striped_per_node_calls_sum_to_single_node_totals() {
    let mut spread_seen = false;
    for k in all_kernels() {
        for v in [Version::Row, Version::COpt] {
            let cv = compile(&k, v);
            let (_, single) = run_striped(&cv, &k.small_params, 1, 2);
            let reference = node_totals(&single);
            assert!(reference.0 > 0, "{} {}: no traffic", k.name, v.label());
            for nodes in [4usize, 8] {
                let (_, stats) = run_striped(&cv, &k.small_params, nodes, 2);
                assert_eq!(
                    node_totals(&stats),
                    reference,
                    "{} {} over {nodes} nodes: per-node sums diverge from \
                     single-node totals",
                    k.name,
                    v.label()
                );
                if stats.iter().filter(|n| n.io.read_calls > 0).count() > 1 {
                    spread_seen = true;
                }
            }
        }
    }
    assert!(spread_seen, "striping never spread traffic past node 0");
}

/// Two same-seed, same-worker-count runs are indistinguishable:
/// identical contents, identical analytic profiles, and identical
/// per-node counters — including the queue-depth sample counts, which
/// are one-per-operation and therefore deterministic even though the
/// sampled depths themselves depend on timing.
#[test]
fn parallel_runs_are_deterministic() {
    for name in ["mxm", "syr2k"] {
        let k = kernel_by_name(name).expect("kernel");
        let cv = compile(&k, Version::COpt);
        let (r1, s1) = run_striped(&cv, &k.small_params, 4, 3);
        let (r2, s2) = run_striped(&cv, &k.small_params, 4, 3);
        assert_eq!(r1.run.data, r2.run.data, "{name}: contents differ");
        for (p, q) in r1.run.profiles.iter().zip(&r2.run.profiles) {
            assert_eq!(
                (
                    p.stats.read_calls,
                    p.stats.write_calls,
                    p.stats.read_elems,
                    p.stats.write_elems
                ),
                (
                    q.stats.read_calls,
                    q.stats.write_calls,
                    q.stats.read_elems,
                    q.stats.write_elems
                ),
                "{name} array {}: analytic profile differs between runs",
                p.name
            );
        }
        for (kn, (a, b)) in s1.iter().zip(&s2).enumerate() {
            assert_eq!(
                (
                    a.io.read_calls,
                    a.io.write_calls,
                    a.io.read_elems,
                    a.io.write_elems
                ),
                (
                    b.io.read_calls,
                    b.io.write_calls,
                    b.io.read_elems,
                    b.io.write_elems
                ),
                "{name} node {kn}: per-node I/O differs between runs"
            );
            assert_eq!(
                a.timing.depth_hist.count, b.timing.depth_hist.count,
                "{name} node {kn}: queue-depth sample counts differ"
            );
        }
    }
}

/// Seeded fault injection replays identically across thread
/// interleavings: failure decisions key on the per-store call index,
/// so the injected and retried counts — and of course the results —
/// match between two runs even though which *thread* hits each fault
/// is scheduler-dependent.
#[test]
fn parallel_fault_replay_is_interleaving_independent() {
    let k = kernel_by_name("mxm").expect("kernel");
    let cv = compile(&k, Version::COpt);
    let reference = run_functional_on(
        &cv.tiled,
        &k.small_params,
        &seed,
        &FunctionalConfig::with_fraction(16),
        |_, _, len| Ok(MemStore::new(len)),
    )
    .expect("sync reference");

    let run_faulty = || {
        let mut handles: Vec<FaultHandle> = Vec::new();
        let run = exec_parallel(
            &cv.tiled,
            &k.small_params,
            &seed,
            &parallel_cfg(4),
            |a, _, len| {
                let store = FaultStore::new(
                    MemStore::new(len),
                    FaultConfig::transient(0xabad_cafe + a as u64, 150),
                );
                handles.push(store.handle());
                Ok(store)
            },
        )
        .expect("faulty parallel run completes");
        let injected: Vec<u64> = handles.iter().map(FaultHandle::injected).collect();
        (run, injected)
    };

    let (r1, i1) = run_faulty();
    let (r2, i2) = run_faulty();
    assert_eq!(r1.run.data, reference.data, "faults changed results");
    assert_eq!(r2.run.data, reference.data, "faults changed results");
    assert!(i1.iter().sum::<u64>() > 0, "fault layer never fired");
    assert_eq!(i1, i2, "per-array injection counts differ between runs");
    assert_eq!(
        r1.run.total_stats().retries,
        r2.run.total_stats().retries,
        "retry totals differ between runs"
    );
}
