//! Shape assertions for the paper's Tables 2 and 3, at reduced scale:
//! who wins, in what order, and where the per-kernel quirks fall.
//!
//! These run the full stack — the ten kernels, the six versions, the
//! optimizer, the tiler, the PFS simulator — so they use 1/16 of the
//! paper's array extents to stay fast. The bench harnesses (`table2`,
//! `table3`) run the same code at full scale.

use ooc_opt::core::{simulate, ExecConfig};
use ooc_opt::kernels::{all_kernels, compile, kernel_by_name, Version};

fn times(kernel: &str, n_div: i64, procs: usize) -> Vec<f64> {
    let k = kernel_by_name(kernel).expect("kernel");
    let params: Vec<i64> = k.paper_params.iter().map(|&n| (n / n_div).max(8)).collect();
    Version::ALL
        .iter()
        .map(|&v| {
            let cv = compile(&k, v);
            let mut cfg = ExecConfig::new(params.clone(), procs);
            cfg.interleave = cv.interleave.clone();
            simulate(&cv.tiled, &cfg).result.total_time
        })
        .collect()
}

/// Table 2's aggregate story: on average over the ten kernels, the
/// combined version beats the loop-only and data-only versions, which
/// beat the column-major baseline; h-opt is at least as good as c-opt.
#[test]
fn table2_average_ordering() {
    let mut avg = [0.0f64; 6];
    for k in all_kernels() {
        let t = times(k.name, 16, 16);
        for (i, &ti) in t.iter().enumerate() {
            avg[i] += ti / t[0] / 10.0;
        }
    }
    let [_col, _row, l, d, c, h] = avg;
    assert!(c < l, "c-opt avg {c} must beat l-opt avg {l}");
    assert!(c < d, "c-opt avg {c} must beat d-opt avg {d}");
    assert!(l < 1.0, "l-opt avg {l} must beat col");
    assert!(d < 1.0, "d-opt avg {d} must beat col");
    assert!(h <= c * 1.05, "h-opt avg {h} must not lose to c-opt {c}");
}

/// trans: col = row = l-opt; d-opt = c-opt = h-opt, much better.
#[test]
fn trans_quirks() {
    let t = times("trans", 16, 16);
    let (col, row, l, d, c, h) = (t[0], t[1], t[2], t[3], t[4], t[5]);
    // (within 10%: the per-processor partition introduces a slight
    // asymmetry at reduced scale)
    assert!((row / col - 1.0).abs() < 0.10, "row {row} = col {col}");
    assert!((l / col - 1.0).abs() < 0.10, "l-opt {l} = col {col}");
    assert!(d < 0.6 * col, "d-opt {d} halves col {col}");
    assert!((c / d - 1.0).abs() < 0.02, "c-opt {c} = d-opt {d}");
    assert!((h / d - 1.0).abs() < 0.02, "h-opt {h} = d-opt {d}");
}

/// vpenta: dependences freeze the loops (l-opt = col); layouts fix
/// everything (d-opt = c-opt, row also good).
#[test]
fn vpenta_quirks() {
    let t = times("vpenta", 16, 16);
    let (col, row, l, d, c, _h) = (t[0], t[1], t[2], t[3], t[4], t[5]);
    assert!((l / col - 1.0).abs() < 0.02, "l-opt {l} = col {col}");
    assert!(d < 0.5 * col, "d-opt {d} far below col {col}");
    assert!((c / d - 1.0).abs() < 0.1, "c-opt {c} = d-opt {d}");
    assert!(row < 0.5 * col, "row {row} also fixes vpenta");
}

/// emit: nothing to optimize (col = l = d = c); row hurts.
#[test]
fn emit_quirks() {
    let t = times("emit", 4, 16);
    let (col, row, l, d, c, _h) = (t[0], t[1], t[2], t[3], t[4], t[5]);
    for (name, v) in [("l-opt", l), ("d-opt", d), ("c-opt", c)] {
        assert!((v / col - 1.0).abs() < 0.02, "{name} {v} = col {col}");
    }
    assert!(row > 1.5 * col, "row {row} hurts emit (col {col})");
}

/// adi: loop transformations win — a single global layout cannot serve
/// the three sweep directions, per-nest loop transformations can
/// (l ≈ c ≪ col, and far below d-opt).
#[test]
fn adi_quirks() {
    let t = times("adi", 4, 16);
    let (col, _row, l, d, c, _h) = (t[0], t[1], t[2], t[3], t[4], t[5]);
    assert!(l < 0.5 * d, "l-opt {l} far below d-opt {d}");
    assert!(c < 0.5 * d, "c-opt {c} far below d-opt {d}");
    assert!(l < 0.5 * col, "l-opt {l} far below col {col}");
    assert!(c < 0.5 * col, "c-opt {c} far below col {col}");
}

/// gfunp: the full ordering c < d < l < col < row.
#[test]
fn gfunp_quirks() {
    let t = times("gfunp", 16, 16);
    let (col, row, l, d, c, _h) = (t[0], t[1], t[2], t[3], t[4], t[5]);
    assert!(c < d, "c {c} < d {d}");
    assert!(d < l, "d {d} < l {l}");
    assert!(l <= col * 1.01, "l {l} <= col {col}");
    assert!(row > col, "row {row} worst ({col})");
}

/// Table 3's shape: every version speeds up with more processors, and
/// the speedup at 128 is bounded by the I/O subsystem, not linear.
#[test]
fn table3_speedups_bounded_by_io_subsystem() {
    let k = kernel_by_name("trans").expect("kernel");
    let params = vec![1024i64];
    // The optimized version scales monotonically (large sequential
    // calls split cleanly over processors)...
    {
        let cv = compile(&k, Version::COpt);
        let t = |procs: usize| {
            simulate(&cv.tiled, &ExecConfig::new(params.clone(), procs))
                .result
                .total_time
        };
        let (t1, t16, t64) = (t(1), t(16), t(64));
        assert!(t16 < t1, "c-opt: 16 procs faster than 1");
        assert!(
            t64 <= t16 * 1.05,
            "c-opt: 64 ≈ or better than 16 ({t64} vs {t16})"
        );
        let s64 = t1 / t64;
        assert!(
            (3.0..64.0).contains(&s64),
            "c-opt: sublinear scaling ({s64})"
        );
    }
    // ...while the strided col baseline gains less: its per-processor
    // row slices shred the column-major runs as P grows.
    {
        let cv = compile(&k, Version::Col);
        let t = |procs: usize| {
            simulate(&cv.tiled, &ExecConfig::new(params.clone(), procs))
                .result
                .total_time
        };
        let (t1, t16, t64) = (t(1), t(16), t(64));
        assert!(t16 < t1, "col: 16 procs faster than 1");
        assert!(t64 < t1, "col: still faster than 1 node at 64 procs");
        let s16 = t1 / t16;
        let s64 = t1 / t64;
        assert!(s16 < 16.0, "col: sublinear at 16 ({s16})");
        assert!(s64 < s16 * 4.0, "col: scaling flattens ({s16} -> {s64})");
    }
}
