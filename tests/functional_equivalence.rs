//! Cross-crate functional ground truth: every compiled version of
//! every kernel, executed through the out-of-core runtime (real tile
//! staging over in-memory files), must equal the reference interpreter
//! bit for bit.

use ooc_opt::core::{
    max_divergence_from_reference, run_functional, run_functional_on, FunctionalConfig,
};
use ooc_opt::ir::ArrayId;
use ooc_opt::kernels::{all_kernels, compile, Version};
use ooc_opt::runtime::MemStore;

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    // Deterministic, position-sensitive, non-symmetric values so that
    // transposition/layout bugs cannot cancel out.
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

#[test]
fn every_kernel_every_version_is_bit_exact() {
    for k in all_kernels() {
        for v in Version::ALL {
            let cv = compile(&k, v);
            let d = max_divergence_from_reference(&cv.tiled, &k.program, &k.small_params, &seed);
            assert_eq!(d, 0.0, "{} {:?} diverges from the reference", k.name, v);
        }
    }
}

#[test]
fn equivalence_holds_across_memory_budgets() {
    // The memory budget only changes tile shapes, never results: every
    // kernel must compute the same contents under a tight budget
    // (1/8th of the data as memory... inverted: data/8) and a loose
    // one as under the default 1/128 rule. Tighter fractions give
    // *larger* budgets here (budget = data / fraction), so 8 and 512
    // bracket the default from both sides.
    for k in all_kernels() {
        let cv = compile(&k, Version::COpt);
        let reference = run_functional(&cv.tiled, &k.small_params, &seed);
        for fraction in [8u64, 512] {
            let run = run_functional_on(
                &cv.tiled,
                &k.small_params,
                &seed,
                &FunctionalConfig::with_fraction(fraction),
                |_, _, len| Ok(MemStore::new(len)),
            )
            .expect("functional run");
            assert_eq!(
                reference, run.data,
                "{}: results change under memory fraction {}",
                k.name, fraction
            );
        }
    }
}

#[test]
fn equivalence_holds_at_a_second_size() {
    // A different (still small) size catches bounds/halo bugs that a
    // single size can mask.
    for k in all_kernels().into_iter().filter(|k| {
        // 4-D functional runs grow fast; keep this second pass to the
        // cheaper kernels.
        k.program.arrays.iter().all(|a| a.rank() <= 3)
    }) {
        let params: Vec<i64> = k.small_params.iter().map(|&n| n + 3).collect();
        for v in [Version::Col, Version::DOpt, Version::COpt] {
            let cv = compile(&k, v);
            let d = max_divergence_from_reference(&cv.tiled, &k.program, &params, &seed);
            assert_eq!(d, 0.0, "{} {:?} diverges at {params:?}", k.name, v);
        }
    }
}
