//! Differential tests of the asynchronous tile pipeline: every
//! kernel's six versions run through `exec_pipelined` on *both* store
//! backends (in-memory and real files) and must
//!
//! 1. compute contents bit-equal to the synchronous executor,
//! 2. keep the analytic run accounting equal to the measured
//!    store-level call count, array for array (prefetch workers and
//!    the write-behind thread included), and
//! 3. issue identical analytic I/O totals on either backend and on
//!    repeated runs — scheduling is driven by step counts, never by
//!    thread timing.
//!
//! A final test threads fault injection through the shared stores:
//! the pipeline's worker threads must ride out transient store
//! failures through the same retry policy as the main thread.

use ooc_opt::core::{
    exec_pipelined, run_functional_on, FunctionalConfig, PipelineConfig, PipelinedRun,
};
use ooc_opt::ir::ArrayId;
use ooc_opt::kernels::{all_kernels, compile, kernel_by_name, CompiledVersion, Version};
use ooc_opt::runtime::testing::{Backend, TempDir};
use ooc_opt::runtime::{FaultConfig, FaultHandle, FaultStore, IoStats, MemStore};

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        functional: FunctionalConfig::with_fraction(16),
        ..PipelineConfig::default()
    }
}

/// Runs a compiled version through the pipeline over traced stores of
/// the given backend.
fn run_pipelined(
    cv: &CompiledVersion,
    params: &[i64],
    backend: Backend,
    dir: &TempDir,
) -> PipelinedRun {
    exec_pipelined(
        &cv.tiled,
        params,
        &seed,
        &pipeline_config(),
        |_, name, len| {
            backend
                .open_traced_send(dir.path(), name, len)
                .map(|(s, _)| s)
        },
    )
    .expect("pipelined run")
}

fn analytic_totals(run: &PipelinedRun) -> IoStats {
    run.run.total_stats()
}

/// The full sweep: every kernel, every version, both backends, against
/// the synchronous executor's reference contents.
#[test]
fn pipelined_differential_sweep() {
    for k in all_kernels() {
        let params = &k.small_params;
        for v in Version::ALL {
            let cv = compile(&k, v);
            let reference = run_functional_on(
                &cv.tiled,
                params,
                &seed,
                &FunctionalConfig::with_fraction(16),
                |_, _, len| Ok(MemStore::new(len)),
            )
            .expect("sync reference");

            let mem_dir = TempDir::new("ooc-pipe-mem").expect("tmp");
            let mem = run_pipelined(&cv, params, Backend::Mem, &mem_dir);
            let file_dir = TempDir::new("ooc-pipe-file").expect("tmp");
            let file = run_pipelined(&cv, params, Backend::File, &file_dir);

            // 1. Bit-equality with the synchronous executor, both
            //    backends.
            assert_eq!(
                mem.run.data,
                reference.data,
                "{} {}: pipelined mem diverged from sync",
                k.name,
                v.label()
            );
            assert_eq!(
                file.run.data,
                reference.data,
                "{} {}: pipelined file diverged from sync",
                k.name,
                v.label()
            );

            // 2. Model exactness across threads: analytic accounting
            //    (main staging + prefetch deliveries + write-behind)
            //    equals the traced store-level calls, array for array.
            for run in [&mem, &file] {
                for p in &run.run.profiles {
                    let m = p.measured.as_ref().expect("traced");
                    assert_eq!(
                        p.stats.total_calls(),
                        m.total_calls(),
                        "{} {} array {}: analytic vs measured calls",
                        k.name,
                        v.label(),
                        p.name
                    );
                    assert_eq!(
                        p.stats.total_elems(),
                        m.total_elems(),
                        "{} {} array {}: analytic vs measured elems",
                        k.name,
                        v.label(),
                        p.name
                    );
                }
            }

            // 3. Interleaving independence: identical analytic totals
            //    on either backend.
            let (mt, ft) = (analytic_totals(&mem), analytic_totals(&file));
            assert_eq!(
                (mt.read_calls, mt.write_calls, mt.read_elems, mt.write_elems),
                (ft.read_calls, ft.write_calls, ft.read_elems, ft.write_elems),
                "{} {}: mem vs file analytic I/O totals",
                k.name,
                v.label()
            );
        }
    }
}

/// The pipeline's whole point: overlapped staging must actually engage
/// (prefetched reads, write-behind traffic) on a representative
/// kernel, not silently degrade to the synchronous path.
#[test]
fn pipeline_machinery_engages() {
    let k = kernel_by_name("mxm").expect("kernel");
    let cv = compile(&k, Version::COpt);
    let dir = TempDir::new("ooc-pipe-engage").expect("tmp");
    let run = run_pipelined(&cv, &k.small_params, Backend::Mem, &dir);
    let p = &run.pipeline;
    assert!(p.prefetch_issued > 0, "no prefetches issued: {p:?}");
    assert!(p.prefetched_reads > 0, "no reads served async: {p:?}");
    assert!(p.writebehind_tiles > 0, "write-behind never used: {p:?}");
    assert!(
        p.cache.hits + p.cache.misses > 0,
        "cache never consulted: {p:?}"
    );
}

/// Transient store faults under the pipeline: worker threads hit the
/// same injected failures as the main thread would, the per-array
/// retry policy absorbs them, and the results stay bit-equal.
#[test]
fn pipelined_run_survives_transient_faults() {
    let k = kernel_by_name("mxm").expect("kernel");
    let cv = compile(&k, Version::COpt);
    let reference = run_functional_on(
        &cv.tiled,
        &k.small_params,
        &seed,
        &FunctionalConfig::with_fraction(16),
        |_, _, len| Ok(MemStore::new(len)),
    )
    .expect("sync reference");

    let mut handles: Vec<FaultHandle> = Vec::new();
    let run = exec_pipelined(
        &cv.tiled,
        &k.small_params,
        &seed,
        &pipeline_config(),
        |a, _, len| {
            // 15% transient failure rate, bounded bursts: inside the
            // 4-attempt retry budget of the default runtime config.
            let store = FaultStore::new(
                MemStore::new(len),
                FaultConfig::transient(0xfeed_f00d + a as u64, 150),
            );
            handles.push(store.handle());
            Ok(store)
        },
    )
    .expect("pipelined faulty run completes");

    assert_eq!(
        run.run.data, reference.data,
        "faults must never change results"
    );
    let injected: u64 = handles.iter().map(FaultHandle::injected).sum();
    assert!(injected > 0, "the fault layer actually fired");
    assert!(
        run.run.total_stats().retries > 0,
        "recovery went through the retry path"
    );
}
