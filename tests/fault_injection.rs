//! Robustness: functional execution over flaky storage. Every array's
//! store injects seeded transient failures; the runtime's retry policy
//! must absorb all of them and produce results identical to a clean
//! run.

use ooc_opt::core::{run_functional, run_functional_on, FunctionalConfig};
use ooc_opt::ir::ArrayId;
use ooc_opt::kernels::{compile, kernel_by_name, Version};
use ooc_opt::runtime::{FaultConfig, FaultHandle, FaultStore, MemStore, RetryPolicy};

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

#[test]
fn functional_run_survives_transient_faults() {
    let k = kernel_by_name("mxm").expect("kernel");
    let cv = compile(&k, Version::COpt);

    let clean = run_functional(&cv.tiled, &k.small_params, &seed);

    // 20% of store calls fail transiently (at most 2 back to back,
    // comfortably under the 4-attempt retry budget).
    let mut handles: Vec<FaultHandle> = Vec::new();
    let faulty = run_functional_on(
        &cv.tiled,
        &k.small_params,
        &seed,
        &FunctionalConfig::default(),
        |a, _, len| {
            let store = FaultStore::new(
                MemStore::new(len),
                FaultConfig::transient(0xdead_beef + a as u64, 200),
            );
            handles.push(store.handle());
            Ok(store)
        },
    )
    .expect("faulty run completes");

    assert_eq!(
        clean, faulty.data,
        "results must be identical despite injected failures"
    );

    let injected: u64 = handles.iter().map(FaultHandle::injected).sum();
    assert!(injected > 0, "the fault layer actually fired");
    // Compute-phase retries are visible in the analytic stats (seeding
    // retries were reset with the rest of the metrics).
    assert!(
        faulty.total_stats().retries > 0,
        "the runtime recovered via its retry path"
    );
}

#[test]
fn faults_replay_deterministically() {
    let k = kernel_by_name("trans").expect("kernel");
    let cv = compile(&k, Version::COpt);

    let run_with_seed = |fault_seed: u64| {
        let mut handles: Vec<FaultHandle> = Vec::new();
        let run = run_functional_on(
            &cv.tiled,
            &k.small_params,
            &seed,
            &FunctionalConfig::default(),
            |a, _, len| {
                let store = FaultStore::new(
                    MemStore::new(len),
                    FaultConfig::transient(fault_seed ^ a as u64, 150),
                );
                handles.push(store.handle());
                Ok(store)
            },
        )
        .expect("run completes");
        let injected: u64 = handles.iter().map(FaultHandle::injected).sum();
        let retries = run.total_stats().retries;
        (run.data, retries, injected)
    };

    let (d1, r1, i1) = run_with_seed(7);
    let (d2, r2, i2) = run_with_seed(7);
    assert_eq!(d1, d2);
    assert_eq!(r1, r2, "same seed, same retry count");
    assert_eq!(i1, i2, "same seed, same injection count");
    assert!(i1 > 0);
}

#[test]
fn without_retries_faults_are_fatal() {
    // The survival above is the retry policy's doing, not luck: the
    // same fault stream with retries disabled kills the run.
    let k = kernel_by_name("trans").expect("kernel");
    let cv = compile(&k, Version::COpt);

    let cfg = FunctionalConfig {
        runtime: ooc_opt::runtime::RuntimeConfig {
            retry: RetryPolicy::none(),
            ..Default::default()
        },
        ..FunctionalConfig::default()
    };
    let result = std::panic::catch_unwind(|| {
        run_functional_on(&cv.tiled, &k.small_params, &seed, &cfg, |a, _, len| {
            Ok(FaultStore::new(
                MemStore::new(len),
                FaultConfig::transient(0xfeed + a as u64, 200),
            ))
        })
    });
    // Either the seeding phase reports the error or the staging loop
    // panics on it; it must not silently succeed.
    if let Ok(Ok(_)) = result {
        panic!("run without retries survived injected faults");
    }
}
