//! Robustness: functional execution over flaky storage. Every array's
//! store injects seeded transient failures; the runtime's retry policy
//! must absorb all of them and produce results identical to a clean
//! run.

use ooc_opt::core::{
    exec_parallel_durable, max_intents_per_interval, parse_manifest, resume_functional,
    resume_parallel, run_functional, run_functional_durable, run_functional_on, DirMedium,
    DurabilityConfig, DurableMedium, FunctionalConfig, MemMedium, ParallelConfig, PipelineConfig,
};
use ooc_opt::ir::ArrayId;
use ooc_opt::kernels::{all_kernels, compile, kernel_by_name, Version};
use ooc_opt::runtime::testing::TempDir;
use ooc_opt::runtime::{
    is_crashed, parse_journal, FaultConfig, FaultHandle, FaultStore, MemStore, RetryPolicy,
};

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

#[test]
fn functional_run_survives_transient_faults() {
    let k = kernel_by_name("mxm").expect("kernel");
    let cv = compile(&k, Version::COpt);

    let clean = run_functional(&cv.tiled, &k.small_params, &seed);

    // 20% of store calls fail transiently (at most 2 back to back,
    // comfortably under the 4-attempt retry budget).
    let mut handles: Vec<FaultHandle> = Vec::new();
    let faulty = run_functional_on(
        &cv.tiled,
        &k.small_params,
        &seed,
        &FunctionalConfig::default(),
        |a, _, len| {
            let store = FaultStore::new(
                MemStore::new(len),
                FaultConfig::transient(0xdead_beef + a as u64, 200),
            );
            handles.push(store.handle());
            Ok(store)
        },
    )
    .expect("faulty run completes");

    assert_eq!(
        clean, faulty.data,
        "results must be identical despite injected failures"
    );

    let injected: u64 = handles.iter().map(FaultHandle::injected).sum();
    assert!(injected > 0, "the fault layer actually fired");
    // Compute-phase retries are visible in the analytic stats (seeding
    // retries were reset with the rest of the metrics).
    assert!(
        faulty.total_stats().retries > 0,
        "the runtime recovered via its retry path"
    );
}

#[test]
fn faults_replay_deterministically() {
    let k = kernel_by_name("trans").expect("kernel");
    let cv = compile(&k, Version::COpt);

    let run_with_seed = |fault_seed: u64| {
        let mut handles: Vec<FaultHandle> = Vec::new();
        let run = run_functional_on(
            &cv.tiled,
            &k.small_params,
            &seed,
            &FunctionalConfig::default(),
            |a, _, len| {
                let store = FaultStore::new(
                    MemStore::new(len),
                    FaultConfig::transient(fault_seed ^ a as u64, 150),
                );
                handles.push(store.handle());
                Ok(store)
            },
        )
        .expect("run completes");
        let injected: u64 = handles.iter().map(FaultHandle::injected).sum();
        let retries = run.total_stats().retries;
        (run.data, retries, injected)
    };

    let (d1, r1, i1) = run_with_seed(7);
    let (d2, r2, i2) = run_with_seed(7);
    assert_eq!(d1, d2);
    assert_eq!(r1, r2, "same seed, same retry count");
    assert_eq!(i1, i2, "same seed, same injection count");
    assert!(i1 > 0);
}

#[test]
fn without_retries_faults_are_fatal() {
    // The survival above is the retry policy's doing, not luck: the
    // same fault stream with retries disabled kills the run.
    let k = kernel_by_name("trans").expect("kernel");
    let cv = compile(&k, Version::COpt);

    let cfg = FunctionalConfig {
        runtime: ooc_opt::runtime::RuntimeConfig {
            retry: RetryPolicy::none(),
            ..Default::default()
        },
        ..FunctionalConfig::default()
    };
    let result = std::panic::catch_unwind(|| {
        run_functional_on(&cv.tiled, &k.small_params, &seed, &cfg, |a, _, len| {
            Ok(FaultStore::new(
                MemStore::new(len),
                FaultConfig::transient(0xfeed + a as u64, 200),
            ))
        })
    });
    // Either the seeding phase reports the error or the staging loop
    // panics on it; it must not silently succeed.
    if let Ok(Ok(_)) = result {
        panic!("run without retries survived injected faults");
    }
}

/// How many evenly-spaced crash points the matrix drills per kernel.
const CRASH_POINTS: u64 = 3;

/// The crash matrix body for one storage backend: every kernel's
/// c-opt version, killed at `CRASH_POINTS` evenly-spaced store-call
/// indices of its busiest array (alternating clean crashes and torn
/// writes), then recovered — the recovered contents must be bit-equal
/// to an uninterrupted run, and the rollback must stay within one
/// checkpoint interval of journal intents per array.
fn crash_matrix_on(make_medium: &mut dyn FnMut(&str, u64) -> Box<dyn DurableMedium>) {
    let fcfg = FunctionalConfig::with_fraction(16);
    let dur = DurabilityConfig::default();
    for k in all_kernels() {
        let cv = compile(&k, Version::COpt);

        // Uninterrupted baseline on a memory medium: the reference
        // contents, each array's store-call count (the crash-index
        // domain), and the per-interval intent bound — all independent
        // of the backend, since the schedule is fixed at compile time.
        let mut base = MemMedium::new();
        let baseline = run_functional_durable(
            &cv.tiled,
            &k.small_params,
            &seed,
            &fcfg,
            &dur,
            &mut base,
            &|_| Some(FaultConfig::transient(17, 0)),
        )
        .expect("baseline durable run");
        let calls: Vec<u64> = baseline
            .fault_handles
            .iter()
            .map(|h| h.as_ref().expect("wrapped").calls())
            .collect();
        let target = (0..calls.len()).max_by_key(|&a| calls[a]).expect("arrays");
        let bound = max_intents_per_interval(
            &parse_journal(&base.journal_bytes()),
            &parse_manifest(&base.manifest_bytes()).watermarks(),
        );

        for i in 1..=CRASH_POINTS {
            let at = calls[target] * i / (CRASH_POINTS + 1);
            let torn = i % 2 == 0;
            let mut medium = make_medium(k.name, i);
            let err = run_functional_durable(
                &cv.tiled,
                &k.small_params,
                &seed,
                &fcfg,
                &dur,
                medium.as_mut(),
                &|a| {
                    (a == target).then(|| {
                        if torn {
                            FaultConfig::torn_write(at, 500)
                        } else {
                            FaultConfig::crash_at(at)
                        }
                    })
                },
            )
            .expect_err("injected crash must abort the run");
            assert!(is_crashed(&err), "{}: unexpected error: {err}", k.name);

            let out = resume_functional(
                &cv.tiled,
                &k.small_params,
                &seed,
                &fcfg,
                &dur,
                medium.as_mut(),
                &|_| None,
            )
            .unwrap_or_else(|e| panic!("{}: resume after crash at {at}: {e}", k.name));
            assert!(out.report.resumed, "{}: recovery must resume", k.name);
            assert_eq!(
                out.run.data, baseline.run.data,
                "{}: recovered run diverges from the uninterrupted one \
                 (crash at {at}, torn {torn})",
                k.name
            );
            for (a, n) in &out.report.rolled_back_by_array {
                assert!(
                    *n <= bound.get(a).copied().unwrap_or(0),
                    "{}: rolled back {n} tiles of array {a}, over the \
                     one-checkpoint-interval bound {:?}",
                    k.name,
                    bound.get(a)
                );
            }
        }
    }
}

#[test]
fn crash_matrix_recovers_every_kernel_in_memory() {
    crash_matrix_on(&mut |_, _| Box::new(MemMedium::new()));
}

/// The crash matrix for the *parallel* durable executor: every kernel
/// crashed mid-run at several store-call indices (clean and torn) with
/// three shard workers, then resumed — still with three workers. The
/// recovered contents must be bit-equal to an uninterrupted parallel
/// run, and the rollback must stay within the one-checkpoint-interval
/// intent bound derived from the parallel baseline's own journal
/// (multi-shard nests checkpoint at iteration barriers, so their
/// intervals are wider than the serial executor's tile rows).
#[test]
fn parallel_crash_matrix_recovers_every_kernel() {
    let cfg = ParallelConfig {
        pipeline: PipelineConfig {
            functional: FunctionalConfig::with_fraction(16),
            ..PipelineConfig::default()
        },
        shards: 3,
    };
    let dur = DurabilityConfig::default();
    for k in all_kernels() {
        let cv = compile(&k, Version::COpt);

        let mut base = MemMedium::new();
        let baseline = exec_parallel_durable(
            &cv.tiled,
            &k.small_params,
            &seed,
            &cfg,
            &dur,
            &mut base,
            &|_| Some(FaultConfig::transient(17, 0)),
        )
        .expect("baseline parallel durable run");
        let calls: Vec<u64> = baseline
            .fault_handles
            .iter()
            .map(|h| h.as_ref().expect("wrapped").calls())
            .collect();
        let target = (0..calls.len()).max_by_key(|&a| calls[a]).expect("arrays");
        let bound = max_intents_per_interval(
            &parse_journal(&base.journal_bytes()),
            &parse_manifest(&base.manifest_bytes()).watermarks(),
        );

        for i in 1..=CRASH_POINTS {
            let at = calls[target] * i / (CRASH_POINTS + 1);
            let torn = i % 2 == 0;
            let mut medium = MemMedium::new();
            let err = exec_parallel_durable(
                &cv.tiled,
                &k.small_params,
                &seed,
                &cfg,
                &dur,
                &mut medium,
                &|a| {
                    (a == target).then(|| {
                        if torn {
                            FaultConfig::torn_write(at, 500)
                        } else {
                            FaultConfig::crash_at(at)
                        }
                    })
                },
            )
            .expect_err("injected crash must abort the parallel run");
            assert!(is_crashed(&err), "{}: unexpected error: {err}", k.name);

            let out = resume_parallel(
                &cv.tiled,
                &k.small_params,
                &seed,
                &cfg,
                &dur,
                &mut medium,
                &|_| None,
            )
            .unwrap_or_else(|e| panic!("{}: parallel resume after crash at {at}: {e}", k.name));
            assert!(out.report.resumed, "{}: recovery must resume", k.name);
            assert_eq!(
                out.run.run.data, baseline.run.run.data,
                "{}: recovered parallel run diverges from the uninterrupted \
                 one (crash at {at}, torn {torn})",
                k.name
            );
            for (a, n) in &out.report.rolled_back_by_array {
                assert!(
                    *n <= bound.get(a).copied().unwrap_or(0),
                    "{}: rolled back {n} tiles of array {a}, over the \
                     one-checkpoint-interval bound {:?}",
                    k.name,
                    bound.get(a)
                );
            }
        }
    }
}

#[test]
fn crash_matrix_recovers_every_kernel_on_files() {
    let mut dirs: Vec<TempDir> = Vec::new();
    crash_matrix_on(&mut |kernel, i| {
        let dir = TempDir::new(&format!("crash-{kernel}-{i}")).expect("tmp dir");
        let medium = Box::new(DirMedium::new(dir.path()));
        dirs.push(dir); // keep the directory alive for the resume
        medium
    });
}
