//! Cross-cutting invariants of the simulated executor.

use ooc_opt::core::{simulate, ExecConfig};
use ooc_opt::kernels::{all_kernels, compile, kernel_by_name, Version};

/// More in-core memory never increases the I/O call count: bigger
/// tiles mean fewer, larger staging operations.
#[test]
fn more_memory_never_more_calls() {
    for name in ["trans", "mat", "gfunp"] {
        let k = kernel_by_name(name).expect("kernel");
        let params: Vec<i64> = k.paper_params.iter().map(|&n| (n / 16).max(8)).collect();
        let cv = compile(&k, Version::COpt);
        let calls_at = |fraction: u64| {
            let mut cfg = ExecConfig::new(params.clone(), 16);
            cfg.memory_fraction = fraction;
            simulate(&cv.tiled, &cfg).io_calls
        };
        let tight = calls_at(512); // 1/512 of the data in memory
        let paper = calls_at(128); // the paper's 1/128 rule
        let roomy = calls_at(16); // 1/16
        assert!(
            paper <= tight,
            "{name}: 1/128 memory ({paper} calls) vs 1/512 ({tight})"
        );
        assert!(
            roomy <= paper,
            "{name}: 1/16 memory ({roomy} calls) vs 1/128 ({paper})"
        );
    }
}

/// The data volume a version moves is independent of the processor
/// count (partitioning splits work, it must not create work) — up to
/// the per-class staging of boundary tiles.
#[test]
fn volume_stable_across_processors() {
    for k in all_kernels() {
        let params: Vec<i64> = k.paper_params.iter().map(|&n| (n / 16).max(8)).collect();
        let cv = compile(&k, Version::COpt);
        let bytes_at = |procs: usize| {
            let mut cfg = ExecConfig::new(params.clone(), procs);
            cfg.interleave = cv.interleave.clone();
            simulate(&cv.tiled, &cfg).io_bytes
        };
        let b1 = bytes_at(1) as f64;
        let b16 = bytes_at(16) as f64;
        assert!(
            b16 <= b1 * 3.0 && b16 >= b1 / 3.0,
            "{}: volume blew up across processors: 1 proc {b1}, 16 procs {b16}",
            k.name
        );
    }
}

/// Flops are an intrinsic property of the program: identical across
/// versions and processor counts.
#[test]
fn flops_invariant_across_versions_and_procs() {
    let k = kernel_by_name("syr2k").expect("kernel");
    let params = vec![64i64];
    let mut reference = None;
    for v in Version::ALL {
        let cv = compile(&k, v);
        for procs in [1usize, 8] {
            let r = simulate(&cv.tiled, &ExecConfig::new(params.clone(), procs));
            let f = *reference.get_or_insert(r.flops);
            assert_eq!(r.flops, f, "{v:?}@{procs}");
        }
    }
}

/// Doubling the timing-loop iterations doubles calls, bytes, and
/// (approximately) time.
#[test]
fn iterations_scale_linearly() {
    let k = kernel_by_name("trans").expect("kernel");
    let mut double = k.clone();
    for nest in &mut double.program.nests {
        nest.iterations *= 2;
    }
    let cfg = ExecConfig::new(vec![128], 4);
    let base = simulate(&compile(&k, Version::COpt).tiled, &cfg);
    let twice = simulate(&compile(&double, Version::COpt).tiled, &cfg);
    assert_eq!(twice.io_calls, base.io_calls * 2);
    assert_eq!(twice.io_bytes, base.io_bytes * 2);
    assert!(twice.flops == base.flops * 2.0);
    let ratio = twice.result.total_time / base.result.total_time;
    assert!((1.8..=2.2).contains(&ratio), "time ratio {ratio}");
}

/// A simulated report's wall clock is never less than its compute
/// time per processor (compute cannot be hidden — I/O is synchronous).
#[test]
fn wall_clock_bounds() {
    for k in all_kernels() {
        let params: Vec<i64> = k.paper_params.iter().map(|&n| (n / 16).max(8)).collect();
        let cv = compile(&k, Version::Col);
        let procs = 8usize;
        let r = simulate(&cv.tiled, &ExecConfig::new(params, procs));
        assert!(
            r.result.total_time * 1.0001 >= r.result.compute_time / procs as f64,
            "{}: wall {} below compute/proc {}",
            k.name,
            r.result.total_time,
            r.result.compute_time / procs as f64
        );
        assert!(r.result.total_time.is_finite());
    }
}
