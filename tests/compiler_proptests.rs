//! Property-based end-to-end compiler testing: random affine programs
//! are optimized, tiled with every strategy, executed through the
//! out-of-core runtime, and compared bit-for-bit with the reference
//! interpreter.
//!
//! This is the strongest invariant in the repository: *no* combination
//! of layout choice, loop transformation, tiling strategy, staging
//! plan, or hoisting may ever change program semantics.

use ooc_opt::core::{
    max_divergence_from_reference, optimize, optimize_data_only, optimize_loop_only,
    OptimizeOptions, TiledProgram, TilingStrategy,
};
use ooc_opt::ir::{ArrayId, ArrayRef, Expr, LoopNest, Program, Statement};
use proptest::prelude::*;

/// A random 2-D access pattern: identity, transpose, row/column
/// broadcasts, or small-offset neighbours.
fn access2(depth: usize) -> impl Strategy<Value = (Vec<Vec<i64>>, Vec<i64>)> {
    let d = depth;
    prop_oneof![
        // A(i, j): last two loops index the array.
        Just((vec![unit(d, d - 2), unit(d, d - 1)], vec![0, 0])),
        // A(j, i): transposed.
        Just((vec![unit(d, d - 1), unit(d, d - 2)], vec![0, 0])),
        // A(i, i): diagonal walk.
        Just((vec![unit(d, d - 2), unit(d, d - 2)], vec![0, 0])),
        // Neighbour offsets (kept semantically safe by loop margins).
        (-1i64..=1, -1i64..=1)
            .prop_map(move |(oi, oj)| { (vec![unit(d, d - 2), unit(d, d - 1)], vec![oi, oj]) }),
    ]
}

fn unit(depth: usize, at: usize) -> Vec<i64> {
    let mut v = vec![0i64; depth];
    v[at] = 1;
    v
}

/// A random program: 1–3 nests of depth 2–3 over 2–4 shared 2-D
/// arrays, each statement reading one or two arrays (reads may be
/// offset, so flow across iterations and nests is exercised).
fn program_strategy() -> impl Strategy<Value = Program> {
    let nest = (
        2usize..=3,    // depth
        0usize..4,     // lhs array
        0usize..4,     // rhs array 1
        0usize..4,     // rhs array 2
        any::<bool>(), // include second read?
        2usize..=3,    // depth is regenerated per nest
    );
    (proptest::collection::vec(nest, 1..=3), 2usize..=4)
        .prop_flat_map(|(nests, n_arrays)| {
            // Resolve the access patterns per nest with the right depth.
            let accesses: Vec<_> = nests
                .iter()
                .map(|&(depth, ..)| (access2(depth), access2(depth), access2(depth)))
                .collect();
            (Just(nests), Just(n_arrays), accesses)
        })
        .prop_map(|(nests, n_arrays, accesses)| {
            let mut p = Program::new(&["N"]);
            let ids: Vec<ArrayId> = (0..n_arrays)
                .map(|i| p.declare_array(&format!("A{i}"), 2, 0))
                .collect();
            for (ni, (&(depth, lhs, r1, r2, two_reads, _), (la, ra1, ra2))) in
                nests.iter().zip(&accesses).enumerate()
            {
                let pick = |i: usize| ids[i % ids.len()];
                let mk = |(rows, off): &(Vec<Vec<i64>>, Vec<i64>), a: ArrayId| {
                    ArrayRef::new(a, rows, off.clone())
                };
                let mut rhs = Expr::Add(
                    Box::new(Expr::Ref(mk(ra1, pick(r1)))),
                    Box::new(Expr::Const(ni as f64 + 1.0)),
                );
                if two_reads {
                    rhs = Expr::Mul(Box::new(rhs), Box::new(Expr::Ref(mk(ra2, pick(r2)))));
                }
                let stmt = Statement::assign(mk(la, pick(lhs)), rhs);
                // Margins keep ±1 offsets in bounds: loops run 2..=N-1.
                let mut bounds = ooc_opt::linalg::Polyhedron::universe(depth, 1);
                for l in 0..depth {
                    let x = ooc_opt::linalg::Affine::var(depth, 1, l);
                    let two = ooc_opt::linalg::Affine::constant(depth, 1, 2);
                    let mut hi = ooc_opt::linalg::Affine::param(depth, 1, 0);
                    hi.constant = ooc_opt::linalg::Rational::from(-1i64);
                    bounds.add_ge0(x.sub(&two));
                    bounds.add_ge0(hi.sub(&x));
                }
                p.add_nest(LoopNest {
                    name: format!("nest{ni}"),
                    depth,
                    bounds,
                    body: vec![stmt],
                    iterations: 1,
                });
            }
            p
        })
}

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 3) * 1_000_003;
    for &x in idx {
        h = h.wrapping_mul(37).wrapping_add(x * 101);
    }
    ((h % 811) as f64) * 0.5 + 1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The combined optimizer + every tiling strategy preserve
    /// semantics on arbitrary affine programs.
    #[test]
    fn optimize_preserves_semantics(prog in program_strategy()) {
        let opts = OptimizeOptions { cost_params: vec![16], ..Default::default() };
        let opt = optimize(&prog, &opts);
        for strategy in [
            TilingStrategy::OutOfCore,
            TilingStrategy::Optimized,
            TilingStrategy::Slab,
            TilingStrategy::Traditional,
        ] {
            let tp = TiledProgram::from_optimized(&opt, strategy);
            let d = max_divergence_from_reference(&tp, &prog, &[9], &seed);
            prop_assert_eq!(d, 0.0, "{:?} diverged", strategy);
        }
    }

    /// The single-technique passes preserve semantics too.
    #[test]
    fn single_technique_passes_preserve_semantics(prog in program_strategy()) {
        let opts = OptimizeOptions { cost_params: vec![16], ..Default::default() };
        for opt in [
            optimize_loop_only(&prog, &opts, None),
            optimize_data_only(&prog, &opts),
        ] {
            let tp = TiledProgram::from_optimized(&opt, TilingStrategy::Optimized);
            let d = max_divergence_from_reference(&tp, &prog, &[8], &seed);
            prop_assert_eq!(d, 0.0);
        }
    }

    /// Every applied transformation is unimodular and legal against
    /// the nest's dependences.
    #[test]
    fn applied_transformations_are_legal(prog in program_strategy()) {
        let opts = OptimizeOptions { cost_params: vec![16], ..Default::default() };
        let opt = optimize(&prog, &opts);
        for (i, q) in opt.transforms.iter().enumerate() {
            prop_assert!(q.is_unimodular(), "nest {i}: Q not unimodular");
            let t = q.inverse().expect("invertible");
            let deps = ooc_opt::ir::nest_dependences(&prog.nests[i]);
            prop_assert!(
                ooc_opt::ir::transformation_preserves(&t, &deps),
                "nest {i}: illegal transformation applied"
            );
        }
    }
}
