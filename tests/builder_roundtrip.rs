//! The builder DSL, the normalization pipeline, and the compiler
//! agree: a kernel written three ways (builder, surface+normalize,
//! raw matrices) optimizes to the same decisions and semantics.

use ooc_opt::core::{optimize, OptimizeOptions};
use ooc_opt::ir::{
    normalize, ArrayRef, DimSize, Expr, LoopNest, LoopNode, Node, Program, ProgramBuilder,
    Statement, SurfaceExpr, SurfaceProgram, SurfaceRef, SurfaceStmt,
};
use ooc_opt::runtime::FileLayout;

fn via_builder() -> Program {
    let mut b = ProgramBuilder::new(&["N"]);
    let u = b.array("U", 2);
    let v = b.array("V", 2);
    b.nest("nest0", &["i", "j"], |n| {
        n.assign(u, &["i", "j"], n.read(v, &["j", "i"]).plus(1.0));
    });
    b.build()
}

fn via_surface() -> Program {
    let mut sp = SurfaceProgram::new(&["N"]);
    let u = sp.declare_array("U", 2, 0);
    let v = sp.declare_array("V", 2, 0);
    let s = SurfaceStmt {
        lhs: SurfaceRef::vars(u, &["i", "j"]),
        rhs: SurfaceExpr::Add(
            Box::new(SurfaceExpr::Ref(SurfaceRef::vars(v, &["j", "i"]))),
            Box::new(SurfaceExpr::Const(1.0)),
        ),
    };
    sp.top.push(Node::Loop(LoopNode::new(
        "i",
        DimSize::Param(0),
        vec![Node::Loop(LoopNode::new(
            "j",
            DimSize::Param(0),
            vec![Node::Stmt(s)],
        ))],
    )));
    normalize(&sp).expect("normalizes")
}

fn via_matrices() -> Program {
    let mut p = Program::new(&["N"]);
    let u = p.declare_array("U", 2, 0);
    let v = p.declare_array("V", 2, 0);
    let s = Statement::assign(
        ArrayRef::new(u, &[vec![1, 0], vec![0, 1]], vec![0, 0]),
        Expr::Add(
            Box::new(Expr::Ref(ArrayRef::new(
                v,
                &[vec![0, 1], vec![1, 0]],
                vec![0, 0],
            ))),
            Box::new(Expr::Const(1.0)),
        ),
    );
    p.add_nest(LoopNest::rectangular("nest0", 2, 1, 0, vec![s]));
    p
}

#[test]
fn three_constructions_agree() {
    let programs = [via_builder(), via_surface(), via_matrices()];
    // Identical access matrices...
    for p in &programs {
        assert_eq!(p.nests.len(), 1);
        let refs = p.nests[0].body[0].refs();
        assert_eq!(refs[0].access, ooc_opt::linalg::Matrix::identity(2));
        assert_eq!(
            refs[1].access,
            ooc_opt::linalg::Matrix::from_i64(2, 2, &[0, 1, 1, 0])
        );
    }
    // ...identical optimizer decisions...
    for p in &programs {
        let opt = optimize(p, &OptimizeOptions::default());
        assert_eq!(opt.layouts[0], FileLayout::row_major(2));
        assert_eq!(opt.layouts[1], FileLayout::col_major(2));
    }
    // ...identical semantics.
    let reference = {
        let mut mem = ooc_opt::ir::Memory::for_program(&programs[2], &[7]);
        mem.seed(ooc_opt::ir::ArrayId(1), |i| i as f64);
        ooc_opt::ir::execute_program(&programs[2], &mut mem);
        mem.array_data(ooc_opt::ir::ArrayId(0)).to_vec()
    };
    for p in &programs[..2] {
        let mut mem = ooc_opt::ir::Memory::for_program(p, &[7]);
        mem.seed(ooc_opt::ir::ArrayId(1), |i| i as f64);
        ooc_opt::ir::execute_program(p, &mut mem);
        assert_eq!(mem.array_data(ooc_opt::ir::ArrayId(0)), &reference[..]);
    }
}
