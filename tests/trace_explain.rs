//! Golden "explain" test: running the paper's §3.1 worked example with
//! tracing on must produce decision records telling the paper's story —
//! the costliest nest is optimized first with data transformations
//! only, its layouts are *fixed*, and a later nest *propagates* a
//! layout it inherited.

use ooc_opt::core::{optimize, OptimizeOptions};
use ooc_opt::ir::{ArrayRef, Expr, LoopNest, Program, Statement};
use ooc_opt::runtime::FileLayout;
use ooc_opt::trace::chrome::{chrome_trace_json, validate_chrome_trace};
use ooc_opt::trace::Session;

/// §3.1: nest1 `U(i,j) = V(j,i) + 1`, nest2 `V(i,j) = W(j,i) + 2`.
fn paper_example() -> Program {
    let mut p = Program::new(&["N"]);
    let u = p.declare_array("U", 2, 0);
    let v = p.declare_array("V", 2, 0);
    let w = p.declare_array("W", 2, 0);
    let s1 = Statement::assign(
        ArrayRef::new(u, &[vec![1, 0], vec![0, 1]], vec![0, 0]),
        Expr::Add(
            Box::new(Expr::Ref(ArrayRef::new(
                v,
                &[vec![0, 1], vec![1, 0]],
                vec![0, 0],
            ))),
            Box::new(Expr::Const(1.0)),
        ),
    );
    p.add_nest(LoopNest::rectangular("nest1", 2, 1, 0, vec![s1]));
    let s2 = Statement::assign(
        ArrayRef::new(v, &[vec![1, 0], vec![0, 1]], vec![0, 0]),
        Expr::Add(
            Box::new(Expr::Ref(ArrayRef::new(
                w,
                &[vec![0, 1], vec![1, 0]],
                vec![0, 0],
            ))),
            Box::new(Expr::Const(2.0)),
        ),
    );
    p.add_nest(LoopNest::rectangular("nest2", 2, 1, 0, vec![s2]));
    p
}

#[test]
fn explain_records_tell_the_papers_story() {
    let session = Session::start();
    let opt = optimize(&paper_example(), &OptimizeOptions::default());
    let data = session.finish();

    // Sanity: the run itself matched the paper (§3.2.3).
    assert_eq!(opt.layouts[0], FileLayout::row_major(2), "U");
    assert_eq!(opt.layouts[1], FileLayout::col_major(2), "V");
    assert_eq!(opt.layouts[2], FileLayout::row_major(2), "W");

    // The cost ranking names nest1 as the costliest nest (it is
    // optimized first, before nest2).
    let ranks = data.explains_of("cost-rank");
    assert_eq!(ranks.len(), 1, "one component, one ranking");
    assert_eq!(ranks[0].subject, "nest1", "nest1 ranks costliest");
    let order = &ranks[0]
        .details
        .iter()
        .find(|(k, _)| *k == "order")
        .expect("ranking lists the order")
        .1;
    assert!(
        order.find("nest1").unwrap() < order.find("nest2").unwrap(),
        "nest1 before nest2 in {order}"
    );

    // nest1 (rank 0, data transformations only) fixes U row-major and
    // V column-major via relation (1).
    let fixed = data.explains_of("layout-fixed");
    let fixed_of = |name: &str| {
        fixed
            .iter()
            .find(|e| e.subject == name)
            .unwrap_or_else(|| panic!("no layout-fixed record for {name} in {fixed:?}"))
    };
    assert_eq!(
        fixed_of("U").decision,
        format!("{:?}", FileLayout::row_major(2))
    );
    assert_eq!(
        fixed_of("V").decision,
        format!("{:?}", FileLayout::col_major(2))
    );
    for e in &fixed {
        assert!(
            e.details.contains(&("nest", "nest1".to_string())),
            "rank-0 layouts come from nest1: {e:?}"
        );
    }

    // nest2 inherits V's layout and *propagates* one to W (row-major).
    let propagated = data.explains_of("layout-propagated");
    assert!(
        propagated.iter().any(|e| e.subject == "W"
            && e.decision == format!("{:?}", FileLayout::row_major(2))
            && e.details.contains(&("nest", "nest2".to_string()))),
        "W's layout is propagated via nest2: {propagated:?}"
    );

    // nest2 is the (only) transformed nest: interchange chosen by
    // kernel relation (2) + completion.
    let transforms = data.explains_of("transform");
    assert_eq!(transforms.len(), 1);
    assert_eq!(transforms[0].subject, "nest2");
    assert!(!data.explains_of("kernel-relation").is_empty());
    assert!(!data.explains_of("completion").is_empty());

    // The same session exports a structurally valid Chrome trace, and
    // every explain record rides along as an instant event.
    let json = chrome_trace_json(&data.events);
    let summary = validate_chrome_trace(&json).expect("valid Chrome trace");
    assert!(summary.spans > 0, "compiler spans present");
    assert!(
        summary.instants >= data.explains.len(),
        "each explain mirrored as an instant"
    );
}
