//! Differential tests of the instrumented store layer: every kernel's
//! six versions run on *both* store backends (in-memory and real
//! files) through [`TracingStore`] instrumentation. The tests assert
//!
//! 1. functional equivalence — each version computes identical
//!    contents on either backend, and every (baseline, optimized)
//!    version pair agrees element for element;
//! 2. measured improvement — the combined optimizer's store-level I/O
//!    (actual `read_run`/`write_run` calls and seek distance observed
//!    by the tracing layer, not the analytic model) beats the naive
//!    column-major baseline; and
//! 3. model exactness — analytic call accounting equals the measured
//!    call count, store for store.
//!
//! [`TracingStore`]: ooc_opt::runtime::TracingStore

use ooc_opt::core::{run_functional_on, FunctionalConfig, FunctionalRun, IoComparison};
use ooc_opt::ir::ArrayId;
use ooc_opt::kernels::{
    all_kernels, compile, differential_pairs, kernel_by_name, CompiledVersion, Version,
};
use ooc_opt::runtime::testing::{Backend, TempDir};
use ooc_opt::runtime::MeasuredIo;
use std::collections::BTreeMap;

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

/// Runs a compiled version over traced stores of the given backend.
fn run_traced(
    cv: &CompiledVersion,
    params: &[i64],
    backend: Backend,
    dir: &TempDir,
) -> FunctionalRun {
    // A small memory fraction keeps tiles meaningfully smaller than the
    // arrays at test sizes, so versions actually differ in staging.
    run_functional_on(
        &cv.tiled,
        params,
        &seed,
        &FunctionalConfig::with_fraction(16),
        |_, name, len| backend.open_traced(dir.path(), name, len).map(|(s, _)| s),
    )
    .expect("functional run")
}

/// One full sweep: every kernel, every version, both backends. The
/// per-(kernel, version) compile is the expensive step, so the sweep
/// compiles once and checks equivalence, improvement, and model
/// exactness from the same runs.
#[test]
fn differential_sweep() {
    let mut col_total = MeasuredIo::default();
    let mut copt_total = MeasuredIo::default();
    let mut strictly_improved = Vec::new();

    for k in all_kernels() {
        let params = &k.small_params;
        let mut runs: BTreeMap<&'static str, FunctionalRun> = BTreeMap::new();
        for v in Version::ALL {
            let cv = compile(&k, v);

            let mem_dir = TempDir::new("ooc-diff-mem").expect("tmp");
            let mem = run_traced(&cv, params, Backend::Mem, &mem_dir);
            let file_dir = TempDir::new("ooc-diff-file").expect("tmp");
            let file = run_traced(&cv, params, Backend::File, &file_dir);

            // Backend equivalence: identical contents and identical
            // store-level traffic on memory vs real files.
            assert_eq!(
                mem.data,
                file.data,
                "{} {}: mem and file contents differ",
                k.name,
                v.label()
            );
            assert_eq!(
                mem.total_measured(),
                file.total_measured(),
                "{} {}: mem and file I/O traces differ",
                k.name,
                v.label()
            );

            // Model exactness: the analytic run accounting predicts the
            // measured call count, array for array.
            for p in &mem.profiles {
                let m = p.measured.as_ref().expect("traced");
                assert_eq!(
                    p.stats.total_calls(),
                    m.total_calls(),
                    "{} {} array {}: analytic vs measured calls",
                    k.name,
                    v.label(),
                    p.name
                );
                assert_eq!(p.stats.total_elems(), m.total_elems());
            }

            runs.insert(v.label(), mem);
        }

        // Pairwise equivalence: every optimized version against every
        // naive baseline.
        for (baseline, optimized) in differential_pairs() {
            assert_eq!(
                runs[baseline.label()].data,
                runs[optimized.label()].data,
                "{}: {} and {} compute different results",
                k.name,
                baseline.label(),
                optimized.label()
            );
        }

        // Measured improvement: the combined optimizer never issues
        // more store calls than the column-major baseline...
        let col = runs["col"].total_measured().expect("traced");
        let copt = runs["c-opt"].total_measured().expect("traced");
        assert!(
            copt.total_calls() <= col.total_calls(),
            "{}: c-opt measured {} calls vs col {}",
            k.name,
            copt.total_calls(),
            col.total_calls()
        );
        if copt.total_calls() < col.total_calls() {
            strictly_improved.push(k.name);
        }
        col_total.merge(&col);
        copt_total.merge(&copt);
    }

    // ...strictly fewer on nearly every kernel (`emit` is already
    // column-friendly and ties)...
    assert!(
        strictly_improved.len() >= 8,
        "c-opt strictly improved only {strictly_improved:?}"
    );
    // ...and across the whole suite cuts both measured calls and
    // measured seek distance.
    assert!(
        copt_total.total_calls() < col_total.total_calls(),
        "suite calls: c-opt {} vs col {}",
        copt_total.total_calls(),
        col_total.total_calls()
    );
    assert!(
        copt_total.seek_elems < col_total.seek_elems,
        "suite seek distance: c-opt {} vs col {}",
        copt_total.seek_elems,
        col_total.seek_elems
    );
}

/// The acceptance check in isolation: on a *real* file store, the
/// combined optimizer's measured I/O calls and seek distance strictly
/// beat the naive baseline, with identical results.
#[test]
fn optimized_beats_naive_on_real_files() {
    let k = kernel_by_name("trans").expect("kernel");
    let col = compile(&k, Version::Col);
    let copt = compile(&k, Version::COpt);

    let col_dir = TempDir::new("ooc-naive").expect("tmp");
    let col_run = run_traced(&col, &k.small_params, Backend::File, &col_dir);
    let copt_dir = TempDir::new("ooc-opt").expect("tmp");
    let copt_run = run_traced(&copt, &k.small_params, Backend::File, &copt_dir);

    assert_eq!(col_run.data, copt_run.data, "results must agree");

    let col_io = col_run.total_measured().expect("traced");
    let copt_io = copt_run.total_measured().expect("traced");
    assert!(
        copt_io.total_calls() < col_io.total_calls(),
        "measured calls on files: c-opt {} vs col {}",
        copt_io.total_calls(),
        col_io.total_calls()
    );
    assert!(
        copt_io.seeks < col_io.seeks,
        "measured seeks on files: c-opt {} vs col {}",
        copt_io.seeks,
        col_io.seeks
    );
    assert!(
        copt_io.seek_elems < col_io.seek_elems,
        "measured seek distance on files: c-opt {} vs col {}",
        copt_io.seek_elems,
        col_io.seek_elems
    );
    // Fewer calls moving the same data means longer mean runs.
    assert!(copt_io.mean_run_len() > col_io.mean_run_len());

    // The comparison renders for humans.
    let cmp = IoComparison::from_run("c-opt", &copt_run).expect("traced");
    let text = cmp.to_string();
    assert!(text.contains("c-opt"), "{text}");
    assert!(text.contains("measured"), "{text}");
}
