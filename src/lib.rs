//! # ooc-opt
//!
//! A Rust reproduction of Kandemir, Choudhary & Ramanujam,
//! *Compiler Optimizations for I/O-Intensive Computations* (ICPP
//! 1999): a compiler that optimizes out-of-core programs by combining
//! non-singular loop transformations with file-layout (data)
//! transformations and out-of-core tiling, evaluated on a simulated
//! Paragon-class parallel file system.
//!
//! This meta-crate re-exports the workspace members:
//!
//! * [`linalg`] — exact rational/integer linear algebra (kernels,
//!   unimodular completion, Fourier–Motzkin).
//! * [`ir`] — the affine program representation, normalization, and
//!   dependence analysis.
//! * [`core`] — the paper's optimizer, tiling, and plan execution.
//! * [`runtime`] — the PASSION-like out-of-core array runtime.
//! * [`pfs`] — the striped parallel file system simulator.
//! * [`kernels`] — the ten Table 1 benchmarks and six program
//!   versions.
//! * [`sched`] — the asynchronous tile pipeline: schedules with
//!   next-use distances, the Belady-informed tile cache, prefetch
//!   workers, and write-behind.
//! * [`trace`] — structured tracing, decision-explain records, and
//!   Chrome-trace export.
//! * [`metrics`] — the per-run metrics registry, Prometheus/JSON
//!   exposition, and snapshot diffing behind `bench-compare`.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use ooc_core as core;
pub use ooc_ir as ir;
pub use ooc_kernels as kernels;
pub use ooc_linalg as linalg;
pub use ooc_metrics as metrics;
pub use ooc_runtime as runtime;
pub use ooc_sched as sched;
pub use ooc_trace as trace;
pub use pfs_sim as pfs;
