//! The paper's future work, §5: globally optimal file layouts.
//!
//! The greedy algorithm fixes layouts nest by nest in cost order; on
//! codes like `adi` — three sweeps over the same arrays in different
//! directions — an early layout decision can strand a later nest (see
//! the `adi d-opt` row in `EXPERIMENTS.md`). The exact search
//! enumerates joint layout assignments with branch-and-bound, giving
//! each nest its best legal transformation per assignment.
//!
//! ```sh
//! cargo run --release --example global_layouts
//! ```

use ooc_opt::core::{
    modeled_program_cost, optimize, optimize_global, simulate, ExecConfig, GlobalOptions,
    OptimizeOptions, TiledProgram, TilingStrategy,
};
use ooc_opt::kernels::kernel_by_name;

fn main() {
    for name in ["adi", "gfunp", "trans", "mat"] {
        let k = kernel_by_name(name).expect("kernel");
        let opts = OptimizeOptions {
            cost_params: k.paper_params.clone(),
            ..Default::default()
        };
        let gopts = GlobalOptions {
            opts: opts.clone(),
            ..Default::default()
        };

        let greedy = optimize(&k.program, &opts);
        let global = optimize_global(&k.program, &gopts);
        let g_cost = modeled_program_cost(&k.program, &greedy, &opts);

        println!("== {name}");
        println!(
            "   greedy (paper §3) modeled cost: {g_cost:.3};  global search: {:.3} \
             ({} assignments{})",
            global.modeled_cost,
            global.assignments_searched,
            if global.fell_back {
                ", fell back to greedy"
            } else {
                ""
            },
        );

        // Simulate both at a reduced scale on 16 processors.
        let params: Vec<i64> = k.paper_params.iter().map(|&n| (n / 4).max(8)).collect();
        let cfg = ExecConfig::new(params, 16);
        let t_greedy = simulate(
            &TiledProgram::from_optimized(&greedy, TilingStrategy::OutOfCore),
            &cfg,
        )
        .result
        .total_time;
        let t_global = simulate(
            &TiledProgram::from_optimized(&global.optimized, TilingStrategy::OutOfCore),
            &cfg,
        )
        .result
        .total_time;
        println!(
            "   simulated (1/4 scale, 16 procs): greedy {t_greedy:.1} s, global {t_global:.1} s"
        );
        if !global.fell_back {
            for (a, (gl, ol)) in global
                .optimized
                .layouts
                .iter()
                .zip(&greedy.layouts)
                .enumerate()
            {
                if gl != ol {
                    println!(
                        "   layout change: {:6} {ol:?} -> {gl:?}",
                        k.program.arrays[a].name
                    );
                }
            }
        }
        println!();
    }
}
