//! §3.4 of the paper: reducing the extra storage a general (skewing)
//! data transformation costs.
//!
//! A transformed reference `U(a·u + b·v, c·u)` is perfect for locality
//! but forces a rectilinear declaration much larger than the data.
//! The paper post-multiplies by a unimodular data transformation that
//! keeps the locality-critical zero structure while shrinking the
//! bounding box; our implementation searches the elementary row
//! operations greedily.
//!
//! ```sh
//! cargo run --release --example storage_reduction
//! ```

use ooc_opt::core::{bounding_box, reduce_storage};
use ooc_opt::linalg::Matrix;

fn main() {
    // The paper's shape: access matrix [[a, b], [c, 0]] with a, b, c > 0
    // and a >= c; loops u in 1..=N', v in 1..=M'.
    let (a, b, c) = (3i64, 1, 2);
    let (n, m) = (1000i64, 1000);
    let access = Matrix::from_i64(2, 2, &[a, b, c, 0]);
    let ranges = [(1, n), (1, m)];

    println!("=== storage reduction for general data transformations (§3.4) ===\n");
    println!("transformed access matrix (locality-optimal, column-major):");
    println!("{access}");
    let before = bounding_box(&access, &ranges);
    println!(
        "required rectilinear declaration: {} x {} = {:.1} M elements",
        before[0],
        before[1],
        before[0] as f64 * before[1] as f64 / 1e6
    );
    println!(
        "actual data touched:              {} x {} = {:.1} M elements\n",
        n,
        m,
        (n * m) as f64 / 1e6
    );

    let r = reduce_storage(&access, &ranges);
    println!("greedy unimodular reduction found D =");
    println!("{}", r.transform);
    println!("new access matrix D*L =");
    println!("{}", r.new_access);
    println!(
        "new declaration: {} x {} = {:.1} M elements  ({:.1}% of the original box)",
        r.new_extents[0],
        r.new_extents[1],
        r.new_extents[0] as f64 * r.new_extents[1] as f64 / 1e6,
        100.0 * r.shrink_factor()
    );
    assert!(
        r.new_access[(1, 1)].is_zero(),
        "locality-critical zero must survive"
    );
    println!("\nthe (1,1) zero survived: the stride-1 innermost access is untouched.");

    // The a < c direction uses the mirrored transformation.
    let access2 = Matrix::from_i64(2, 2, &[2, 1, 3, 0]);
    let r2 = reduce_storage(&access2, &ranges);
    println!(
        "\nfor a < c (access [[2,1],[3,0]]): shrink to {:.1}% with D =",
        100.0 * r2.shrink_factor()
    );
    println!("{}", r2.transform);
}
