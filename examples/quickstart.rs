//! Quickstart: optimize the paper's §3.1 motivating example.
//!
//! ```text
//! do i / do j:  U(i,j) = V(j,i) + 1.0
//! do i / do j:  V(i,j) = W(j,i) + 2.0
//! ```
//!
//! With column-major files and these loops, half the references are
//! strided. Loop transformations alone or layout transformations alone
//! each leave one reference unoptimized; the combined algorithm fixes
//! all four. Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ooc_opt::core::{
    optimize, simulate, ExecConfig, OptimizeOptions, TiledProgram, TilingStrategy,
};
use ooc_opt::core::{optimize_data_only, optimize_loop_only};
use ooc_opt::ir::{program_to_string, ArrayRef, Expr, LoopNest, Program, Statement};

fn paper_example() -> Program {
    let mut p = Program::new(&["N"]);
    let u = p.declare_array("U", 2, 0);
    let v = p.declare_array("V", 2, 0);
    let w = p.declare_array("W", 2, 0);
    let s1 = Statement::assign(
        ArrayRef::new(u, &[vec![1, 0], vec![0, 1]], vec![0, 0]),
        Expr::Add(
            Box::new(Expr::Ref(ArrayRef::new(
                v,
                &[vec![0, 1], vec![1, 0]],
                vec![0, 0],
            ))),
            Box::new(Expr::Const(1.0)),
        ),
    );
    p.add_nest(LoopNest::rectangular("nest1", 2, 1, 0, vec![s1]));
    let s2 = Statement::assign(
        ArrayRef::new(v, &[vec![1, 0], vec![0, 1]], vec![0, 0]),
        Expr::Add(
            Box::new(Expr::Ref(ArrayRef::new(
                w,
                &[vec![0, 1], vec![1, 0]],
                vec![0, 0],
            ))),
            Box::new(Expr::Const(2.0)),
        ),
    );
    p.add_nest(LoopNest::rectangular("nest2", 2, 1, 0, vec![s2]));
    p
}

fn main() {
    let prog = paper_example();
    println!("=== input program (all arrays column-major on disk) ===\n");
    println!("{}", program_to_string(&prog));

    // The paper's combined loop + file-layout optimization.
    let opts = OptimizeOptions::default();
    let optimized = optimize(&prog, &opts);
    println!("=== after combined optimization (c-opt) ===\n");
    println!("{}", program_to_string(&optimized.program));
    println!("chosen file layouts:");
    for (a, layout) in optimized.layouts.iter().enumerate() {
        println!("  {:4} -> {:?}", optimized.program.arrays[a].name, layout);
    }
    println!("\ndecision log:");
    for line in &optimized.log {
        println!("  {line}");
    }

    // §3.1's reference-count argument, mechanized.
    println!();
    print!("{}", ooc_opt::core::optimization_report(&prog, &optimized));

    // The generated out-of-core code in the paper's §3.3 form.
    let tiled = TiledProgram::from_optimized(&optimized, TilingStrategy::OutOfCore);
    println!("\n=== generated out-of-core code (paper §3.3 form, N = 64) ===\n");
    print!(
        "{}",
        ooc_opt::core::render_tiled_program(&tiled, &ExecConfig::new(vec![64], 1))
    );

    // Compare the simulated out-of-core execution of the variants at
    // N = 2048 on 16 processors of the modeled Paragon.
    println!("\n=== simulated execution, N = 2048, 16 processors ===\n");
    let cfg = ExecConfig::new(vec![2048], 16);
    let report = |name: &str, tp: &TiledProgram| {
        let r = simulate(tp, &cfg);
        println!(
            "  {name:22} {:>10.1} s   {:>9} I/O calls   {:>7.1} MB moved",
            r.result.total_time,
            r.io_calls,
            r.io_bytes as f64 / 1e6
        );
        r.result.total_time
    };
    let col = {
        let mut base = optimize_loop_only(&prog, &opts, None);
        base.program = prog.clone(); // keep the original loops
        for t in &mut base.transforms {
            *t = ooc_opt::linalg::Matrix::identity(t.rows());
        }
        report(
            "col (baseline)",
            &TiledProgram::from_optimized(&base, TilingStrategy::Optimized),
        )
    };
    let l = report(
        "l-opt (loops only)",
        &TiledProgram::from_optimized(
            &optimize_loop_only(&prog, &opts, None),
            TilingStrategy::Optimized,
        ),
    );
    let d = report(
        "d-opt (layouts only)",
        &TiledProgram::from_optimized(&optimize_data_only(&prog, &opts), TilingStrategy::Optimized),
    );
    let c = report(
        "c-opt (combined)",
        &TiledProgram::from_optimized(&optimized, TilingStrategy::OutOfCore),
    );
    println!(
        "\n  combined vs col: {:.1}x; vs loops-only: {:.1}x; vs layouts-only: {:.1}x",
        col / c,
        l / c,
        d / c
    );
}
