//! Out-of-core execution against *real files on disk*.
//!
//! Everything else in this repository uses in-memory stores for speed
//! and determinism; this example demonstrates that the runtime's
//! layouts and tile staging work identically over genuine files: an
//! array is written to disk column-major and row-major, tiles are
//! staged through both, and the I/O-call counts show the layout
//! effect on your actual filesystem.
//!
//! ```sh
//! cargo run --release --example real_files
//! ```

use ooc_opt::runtime::{FileLayout, FileStore, OocArray, Region, RuntimeConfig, ELEM_BYTES};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join(format!("ooc-opt-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    println!("staging files under {}", dir.display());

    let n: i64 = 512;
    let elems = (n * n) as u64;
    let config = RuntimeConfig {
        max_call_elems: 4096,
        ..RuntimeConfig::default()
    };

    let mut arrays = Vec::new();
    for (name, layout) in [
        ("col_major", FileLayout::col_major(2)),
        ("row_major", FileLayout::row_major(2)),
    ] {
        let path = dir.join(format!("{name}.dat"));
        let store = FileStore::create(&path, elems)?;
        let mut arr = OocArray::new(name, &[n, n], layout, store, config);
        arr.initialize(|idx| (idx[0] * 10_000 + idx[1]) as f64)?;
        arr.reset_stats();
        println!(
            "created {:>32} ({} MB)",
            path.display(),
            elems * ELEM_BYTES / (1 << 20)
        );
        arrays.push(arr);
    }

    // Stage a row-slab through both layouts — the §3.3 pattern.
    let slab = Region::new(vec![1, 1], vec![32, n]);
    println!("\nreading a 32x{n} slab (the out-of-core tile shape):");
    for arr in &mut arrays {
        let t0 = std::time::Instant::now();
        let tile = arr.read_tile(&slab)?;
        let dt = t0.elapsed();
        assert_eq!(tile.get(&[7, 123]), 7.0 * 10_000.0 + 123.0);
        println!(
            "  {:10}: {:>6} I/O calls, {:>8} elements, {:>9.3} ms on this machine",
            arr.name(),
            arr.stats().read_calls,
            arr.stats().read_elems,
            dt.as_secs_f64() * 1e3
        );
        arr.reset_stats();
    }

    // Round-trip a modification through the real file.
    println!("\nwrite-back round trip through the column-major file:");
    let region = Region::new(vec![100, 200], vec![110, 260]);
    let mut tile = arrays[0].read_tile(&region)?;
    tile.set(&[105, 230], -1.25);
    arrays[0].write_tile(&tile)?;
    let check = arrays[0].read_element(&[105, 230])?;
    assert_eq!(check, -1.25);
    println!("  wrote and re-read element (105,230) = {check}");

    std::fs::remove_dir_all(&dir)?;
    println!("\ncleaned up {}", dir.display());
    Ok(())
}
