//! Out-of-core matrix multiplication, end to end.
//!
//! Compiles the `mat` kernel (Table 1) into all six program versions,
//! verifies bit-exact functional equivalence against the reference
//! interpreter at a small size, then simulates each version at scale
//! on the modeled Paragon — a single row of the paper's Table 2.
//!
//! ```sh
//! cargo run --release --example out_of_core_matmul
//! ```

use ooc_opt::core::{max_divergence_from_reference, simulate, ExecConfig};
use ooc_opt::ir::ArrayId;
use ooc_opt::kernels::{compile, kernel_by_name, Version};

fn main() {
    let kernel = kernel_by_name("mat").expect("mat kernel");
    println!("kernel: {} ({})", kernel.name, kernel.description);
    println!(
        "paper scale: {:?} (total {:.0} MB out of core)\n",
        kernel.paper_params,
        kernel.paper_bytes() as f64 / 1e6
    );

    // 1. Functional verification: each compiled version must compute
    //    exactly what the untransformed program computes.
    println!("functional check at N = {:?} ...", kernel.small_params);
    let seed = |a: ArrayId, idx: &[i64]| (a.0 as f64 + 1.0) + idx.iter().sum::<i64>() as f64 * 0.5;
    for v in Version::ALL {
        let cv = compile(&kernel, v);
        let div =
            max_divergence_from_reference(&cv.tiled, &kernel.program, &kernel.small_params, &seed);
        println!("  {:6} max |difference| = {div}", v.label());
        assert_eq!(div, 0.0);
    }

    // 2. Simulated execution at a paper-like size on 16 processors.
    let n = 2048;
    println!("\nsimulated execution at N = {n}, 16 processors:");
    println!(
        "  {:6} {:>12} {:>12} {:>12} {:>9}",
        "ver", "time (s)", "I/O calls", "MB moved", "% of col"
    );
    let mut col_time = None;
    for v in Version::ALL {
        let cv = compile(&kernel, v);
        let mut cfg = ExecConfig::new(vec![n], 16);
        cfg.interleave = cv.interleave.clone();
        let r = simulate(&cv.tiled, &cfg);
        let t = r.result.total_time;
        let base = *col_time.get_or_insert(t);
        println!(
            "  {:6} {:>12.1} {:>12} {:>12.1} {:>8.1}%",
            v.label(),
            t,
            r.io_calls,
            r.io_bytes as f64 / 1e6,
            100.0 * t / base
        );
    }
    println!("\nchosen layouts for c-opt:");
    let cv = compile(&kernel, Version::COpt);
    for (a, layout) in cv.tiled.layouts.iter().enumerate() {
        println!("  {:4} -> {:?}", cv.tiled.program.arrays[a].name, layout);
    }
}
