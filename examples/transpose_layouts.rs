//! File layouts in action: the out-of-core transpose.
//!
//! `B(i,j) = A(j,i)` has spatial reuse in orthogonal directions — the
//! classic case where no loop order can win and the file layouts must
//! do the work (the paper's `trans` kernel, Table 2). This example
//! walks the layout algebra explicitly: hyperplane vectors, movement
//! vectors, run counts, and the end-to-end effect.
//!
//! ```sh
//! cargo run --release --example transpose_layouts
//! ```

use ooc_opt::core::{layouts_for_2d, locality_under, movement_i64, simulate, ExecConfig};
use ooc_opt::kernels::{compile, kernel_by_name, Version};
use ooc_opt::linalg::Matrix;
use ooc_opt::runtime::{FileLayout, Region};

fn main() {
    println!("=== the transpose problem ===\n");
    println!("  do i / do j:  B(i,j) = A(j,i)\n");

    // Movement vectors: how one step of the innermost loop (j) moves
    // each reference through its array.
    let l_b = Matrix::from_i64(2, 2, &[1, 0, 0, 1]); // B(i,j)
    let l_a = Matrix::from_i64(2, 2, &[0, 1, 1, 0]); // A(j,i)
    let e_inner = [0i64, 1];
    let u_b = movement_i64(&l_b, &e_inner).expect("integer");
    let u_a = movement_i64(&l_a, &e_inner).expect("integer");
    println!("movement per innermost iteration: B moves {u_b:?}, A moves {u_a:?}");
    println!("  -> B wants its dimension 1 contiguous (row-major)");
    println!("  -> A wants its dimension 0 contiguous (column-major)\n");

    // Relation (1): the layouts in the kernel of L·q.
    let g_b = layouts_for_2d(&l_b, &e_inner).expect("2-D").remove(0);
    let g_a = layouts_for_2d(&l_a, &e_inner).expect("2-D").remove(0);
    println!(
        "relation (1) hyperplanes: B: g = {g_b:?} (row-major), A: g = {g_a:?} (column-major)\n"
    );

    // What each layout costs for a 32x4096 slab of a 4096x4096 array.
    let dims = [4096i64, 4096];
    let slab = Region::new(vec![1, 1], vec![32, 4096]);
    for (name, layout) in [
        ("row-major", FileLayout::from_hyperplane(&[1, 0])),
        ("column-major", FileLayout::from_hyperplane(&[0, 1])),
        ("diagonal (1,-1)", FileLayout::from_hyperplane(&[1, -1])),
    ] {
        let s = layout.region_run_summary(&dims, &slab);
        println!(
            "  a 32x4096 slab under {name:16}: {:>6} contiguous runs",
            s.runs
        );
        let u_ok = locality_under(&layout, &u_b);
        println!("      (B's movement under this layout: {u_ok:?})");
    }

    // End to end: the six versions of the trans kernel.
    let kernel = kernel_by_name("trans").expect("trans kernel");
    println!("\n=== simulated trans kernel, N = 2048, 16 processors ===\n");
    let mut col_time = None;
    for v in Version::ALL {
        let cv = compile(&kernel, v);
        let mut cfg = ExecConfig::new(vec![2048], 16);
        cfg.interleave = cv.interleave.clone();
        let r = simulate(&cv.tiled, &cfg);
        let t = r.result.total_time;
        let base = *col_time.get_or_insert(t);
        println!(
            "  {:6} {:>10.1} s  {:>9} calls   {:>6.1}% of col   layouts: {}",
            v.label(),
            t,
            r.io_calls,
            100.0 * t / base,
            cv.tiled
                .layouts
                .iter()
                .enumerate()
                .map(|(a, l)| format!("{}:{:?}", cv.tiled.program.arrays[a].name, l))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    println!("\nno loop order helps (l-opt = col); opposite per-array layouts do");
    println!("(the paper's Table 2: trans d-opt = c-opt = h-opt = 48.2% of col).");
}
