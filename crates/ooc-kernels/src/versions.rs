//! The six program versions of the paper's evaluation (§4).
//!
//! | version | layouts                | loops        | tiling            |
//! |---------|------------------------|--------------|-------------------|
//! | `col`   | all column-major       | original     | shape-optimized   |
//! | `row`   | all row-major          | original     | shape-optimized   |
//! | `l-opt` | all column-major       | transformed  | shape-optimized   |
//! | `d-opt` | per-array optimized    | original     | shape-optimized   |
//! | `c-opt` | combined (the paper)   | combined     | out-of-core §3.3  |
//! | `h-opt` | c-opt + interleaving   | combined     | out-of-core §3.3  |
//!
//! Every version receives the same competent tile staging (the
//! paper's baselines are themselves outputs of capable compilers and
//! hand tiling with PASSION): tile spans minimize modeled I/O time
//! within the memory budget. What the versions vary is exactly what
//! the paper varies — file layouts and loop order — plus `c-opt`'s
//! §3.3 rule of never tiling the (stride-1) innermost loop, and
//! `h-opt`'s chunking/interleaving.

use crate::kernel::Kernel;
use ooc_core::{
    optimize, optimize_data_only, optimize_loop_only, OptimizeOptions, OptimizedProgram,
    TiledProgram, TilingStrategy,
};
use ooc_ir::{ArrayId, Program};
use ooc_linalg::Matrix;
use ooc_runtime::FileLayout;
use std::collections::BTreeMap;

/// The six versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Fixed column-major layouts, original loops.
    Col,
    /// Fixed row-major layouts, original loops.
    Row,
    /// Loop-optimized (layouts stay column-major).
    LOpt,
    /// Layout-optimized (loops stay put).
    DOpt,
    /// The paper's combined algorithm.
    COpt,
    /// Hand-optimized: c-opt plus chunking/interleaving.
    HOpt,
}

impl Version {
    /// All six, in the paper's table order.
    pub const ALL: [Version; 6] = [
        Version::Col,
        Version::Row,
        Version::LOpt,
        Version::DOpt,
        Version::COpt,
        Version::HOpt,
    ];

    /// The naive fixed-layout baselines.
    pub const BASELINES: [Version; 2] = [Version::Col, Version::Row];

    /// The compiler-optimized versions.
    pub const OPTIMIZED: [Version; 4] =
        [Version::LOpt, Version::DOpt, Version::COpt, Version::HOpt];

    /// Table column label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Version::Col => "col",
            Version::Row => "row",
            Version::LOpt => "l-opt",
            Version::DOpt => "d-opt",
            Version::COpt => "c-opt",
            Version::HOpt => "h-opt",
        }
    }

    /// `true` for the compiler-optimized versions, `false` for the
    /// fixed-layout baselines.
    #[must_use]
    pub fn is_optimized(&self) -> bool {
        Version::OPTIMIZED.contains(self)
    }
}

/// Every (naive baseline, optimized) version pair, for differential
/// testing: each optimized version against each fixed-layout baseline.
#[must_use]
pub fn differential_pairs() -> Vec<(Version, Version)> {
    let mut out = Vec::new();
    for baseline in Version::BASELINES {
        for optimized in Version::OPTIMIZED {
            out.push((baseline, optimized));
        }
    }
    out
}

/// A compiled kernel version ready for execution.
#[derive(Debug, Clone)]
pub struct CompiledVersion {
    /// Which version this is.
    pub version: Version,
    /// The tiled program.
    pub tiled: TiledProgram,
    /// Interleave groups (h-opt only; empty otherwise).
    pub interleave: Vec<Vec<ArrayId>>,
    /// Optimizer decision log.
    pub log: Vec<String>,
}

fn fixed_layout_program(prog: &Program, row_major: bool) -> OptimizedProgram {
    let layouts: Vec<FileLayout> = prog
        .arrays
        .iter()
        .map(|a| {
            if row_major {
                FileLayout::row_major(a.rank())
            } else {
                FileLayout::col_major(a.rank())
            }
        })
        .collect();
    OptimizedProgram {
        program: prog.clone(),
        layouts,
        transforms: prog
            .nests
            .iter()
            .map(|n| Matrix::identity(n.depth))
            .collect(),
        log: Vec::new(),
    }
}

/// Compiles one version of a kernel.
#[must_use]
pub fn compile(kernel: &Kernel, version: Version) -> CompiledVersion {
    let _span = ooc_trace::span_with(
        "compiler",
        &format!("compile:{}", kernel.name),
        vec![("version", format!("{version:?}").into())],
    );
    if ooc_trace::enabled() {
        ooc_trace::explain(
            ooc_trace::Explain::new(
                "compile",
                kernel.name,
                format!("compiling version {version:?}"),
            )
            .detail("paper-params", format!("{:?}", kernel.paper_params)),
        );
    }
    // Model costs at the kernel's paper scale: the compiler's choices
    // (transformations, layout acceptance) target the real deployment.
    let opts = OptimizeOptions {
        cost_params: kernel.paper_params.clone(),
        ..OptimizeOptions::default()
    };
    let prog = &kernel.program;
    let (opt, strategy) = match version {
        Version::Col => (fixed_layout_program(prog, false), TilingStrategy::Optimized),
        Version::Row => (fixed_layout_program(prog, true), TilingStrategy::Optimized),
        Version::LOpt => (
            optimize_loop_only(prog, &opts, None),
            TilingStrategy::Optimized,
        ),
        Version::DOpt => (optimize_data_only(prog, &opts), TilingStrategy::Optimized),
        Version::COpt | Version::HOpt => (optimize(prog, &opts), TilingStrategy::OutOfCore),
    };
    let tiled = TiledProgram::from_optimized(&opt, strategy);
    let interleave = if version == Version::HOpt {
        interleave_groups(&tiled)
    } else {
        Vec::new()
    };
    CompiledVersion {
        version,
        tiled,
        interleave,
        log: opt.log,
    }
}

/// Chunking/interleaving heuristic for `h-opt`: arrays are stored
/// interleaved in one file only when they share their shape, their
/// chosen layout, AND their whole-program access pattern (they appear
/// in exactly the same nests, through the same access matrices) — so
/// every staged group tile is fully used and one batch of calls
/// fetches all members.
#[must_use]
pub fn interleave_groups(tiled: &TiledProgram) -> Vec<Vec<ArrayId>> {
    // Signature: dims + layout + the multiset of (nest, access matrix)
    // pairs the array is touched through.
    let mut by_sig: BTreeMap<String, Vec<ArrayId>> = BTreeMap::new();
    for (a, decl) in tiled.program.arrays.iter().enumerate() {
        let id = ArrayId(a);
        let mut touches: Vec<String> = Vec::new();
        for (ni, tnest) in tiled.nests.iter().enumerate() {
            for r in tnest.nest.all_refs() {
                if r.array == id {
                    // Offsets are part of the signature: members must
                    // stage the *same* region every tile step, or the
                    // grouped fetch hulls (and inflates) their regions.
                    touches.push(format!("{ni}:{:?}:{:?}", r.access, r.offset));
                }
            }
        }
        if touches.is_empty() {
            continue;
        }
        touches.sort();
        let sig = format!("{:?}|{:?}|{touches:?}", decl.dims, tiled.layouts[a]);
        by_sig.entry(sig).or_default().push(id);
    }
    by_sig
        .into_values()
        .filter(|members| members.len() >= 2)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::all_kernels;

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = Version::ALL.iter().map(Version::label).collect();
        assert_eq!(
            labels,
            vec!["col", "row", "l-opt", "d-opt", "c-opt", "h-opt"]
        );
    }

    #[test]
    fn col_and_row_fix_all_layouts() {
        let k = crate::kernels::trans::build();
        let col = compile(&k, Version::Col);
        assert!(col
            .tiled
            .layouts
            .iter()
            .all(|l| *l == FileLayout::col_major(2)));
        let row = compile(&k, Version::Row);
        assert!(row
            .tiled
            .layouts
            .iter()
            .all(|l| *l == FileLayout::row_major(2)));
    }

    #[test]
    fn every_version_of_every_kernel_compiles() {
        for k in all_kernels() {
            for v in Version::ALL {
                let c = compile(&k, v);
                assert_eq!(
                    c.tiled.nests.len(),
                    k.program.nests.len(),
                    "{} {v:?}",
                    k.name
                );
            }
        }
    }

    #[test]
    fn hopt_groups_share_shape_and_layout() {
        for k in all_kernels() {
            let c = compile(&k, Version::HOpt);
            for g in &c.interleave {
                assert!(g.len() >= 2);
                let dims = &c.tiled.program.arrays[g[0].0].dims;
                let layout = &c.tiled.layouts[g[0].0];
                for m in g {
                    assert_eq!(&c.tiled.program.arrays[m.0].dims, dims, "{}", k.name);
                    assert_eq!(&c.tiled.layouts[m.0], layout, "{}", k.name);
                }
            }
            // No array in two groups.
            let mut seen = std::collections::BTreeSet::new();
            for g in &c.interleave {
                for m in g {
                    assert!(seen.insert(*m), "{}: array {m:?} grouped twice", k.name);
                }
            }
        }
    }

    #[test]
    fn only_hopt_interleaves() {
        let k = crate::kernels::mat::build();
        for v in [
            Version::Col,
            Version::Row,
            Version::LOpt,
            Version::DOpt,
            Version::COpt,
        ] {
            assert!(compile(&k, v).interleave.is_empty());
        }
    }

    #[test]
    fn copt_uses_out_of_core_tiling() {
        let k = crate::kernels::mat::build();
        let c = compile(&k, Version::COpt);
        for tn in &c.tiled.nests {
            assert_eq!(tn.strategy, TilingStrategy::OutOfCore);
            assert!(!tn.tiled_levels.contains(&(tn.nest.depth - 1)));
        }
        let d = compile(&k, Version::DOpt);
        for tn in &d.tiled.nests {
            assert_eq!(tn.strategy, TilingStrategy::Optimized);
        }
    }
}
