//! The benchmark kernel registry.
//!
//! The paper evaluates ten codes (Table 1). The original Fortran
//! sources are not redistributable (Spec92, Eispack, Hompack, ...),
//! so each kernel here is a reconstruction in the affine IR that
//! matches Table 1's array inventory (count and dimensionality), the
//! outer timing-loop iteration counts, and — most importantly — the
//! access-pattern structure that drives each code's behaviour across
//! the six program versions in Tables 2 and 3 (which versions can and
//! cannot optimize it, and why). See `DESIGN.md` for the
//! per-kernel rationale.

use ooc_ir::Program;

/// One benchmark kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Short name as in the paper's tables (`mat`, `mxm`, ...).
    pub name: &'static str,
    /// Source suite per Table 1 (`Spec92`, `BLAS`, ...).
    pub source: &'static str,
    /// Outer timing-loop iterations (Table 1 `iter` column).
    pub iterations: u32,
    /// What the kernel computes and why it stresses the optimizer.
    pub description: &'static str,
    /// The normalized affine program (iteration counts already applied
    /// to every nest).
    pub program: Program,
    /// Paper-scale parameter values (array extents).
    pub paper_params: Vec<i64>,
    /// Small parameter values for functional (bit-exact) testing.
    pub small_params: Vec<i64>,
}

impl Kernel {
    /// Total out-of-core data in bytes at paper scale.
    #[must_use]
    pub fn paper_bytes(&self) -> u64 {
        u64::try_from(self.program.total_elements(&self.paper_params)).expect("size") * 8
    }
}

/// All ten kernels, in the paper's Table 1 order.
#[must_use]
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        crate::kernels::mat::build(),
        crate::kernels::mxm::build(),
        crate::kernels::adi::build(),
        crate::kernels::vpenta::build(),
        crate::kernels::btrix::build(),
        crate::kernels::emit::build(),
        crate::kernels::syr2k::build(),
        crate::kernels::htribk::build(),
        crate::kernels::gfunp::build(),
        crate::kernels::trans::build(),
    ]
}

/// Looks a kernel up by name.
#[must_use]
pub fn kernel_by_name(name: &str) -> Option<Kernel> {
    all_kernels().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1() {
        let ks = all_kernels();
        assert_eq!(ks.len(), 10);
        let names: Vec<&str> = ks.iter().map(|k| k.name).collect();
        assert_eq!(
            names,
            vec![
                "mat", "mxm", "adi", "vpenta", "btrix", "emit", "syr2k", "htribk", "gfunp", "trans"
            ]
        );
        // Table 1 iteration counts.
        let iters: Vec<u32> = ks.iter().map(|k| k.iterations).collect();
        assert_eq!(iters, vec![2, 3, 5, 3, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn array_inventories_match_table1() {
        // (name, #1-D, #2-D, #3-D, #4-D) straight from Table 1.
        let expected = [
            ("mat", 0, 3, 0, 0),
            ("mxm", 0, 3, 0, 0),
            ("adi", 3, 0, 3, 0),
            ("vpenta", 0, 7, 2, 0),
            ("btrix", 25, 0, 0, 4),
            ("emit", 10, 0, 3, 0),
            ("syr2k", 0, 3, 0, 0),
            ("htribk", 0, 5, 0, 0),
            ("gfunp", 1, 5, 0, 0),
            ("trans", 0, 2, 0, 0),
        ];
        for (name, d1, d2, d3, d4) in expected {
            let k = kernel_by_name(name).expect("kernel exists");
            let count = |rank: usize| k.program.arrays.iter().filter(|a| a.rank() == rank).count();
            assert_eq!(count(1), d1, "{name}: 1-D arrays");
            assert_eq!(count(2), d2, "{name}: 2-D arrays");
            assert_eq!(count(3), d3, "{name}: 3-D arrays");
            assert_eq!(count(4), d4, "{name}: 4-D arrays");
        }
    }

    #[test]
    fn every_nest_carries_the_timing_iterations() {
        for k in all_kernels() {
            for nest in &k.program.nests {
                assert_eq!(
                    nest.iterations, k.iterations,
                    "{}: nest {} iteration count",
                    k.name, nest.name
                );
            }
        }
    }

    #[test]
    fn small_params_execute_quickly_and_in_bounds() {
        // The reference interpreter bounds-checks every subscript: this
        // catches kernels that index outside their declared arrays.
        for k in all_kernels() {
            let mut mem = ooc_ir::Memory::for_program(&k.program, &k.small_params);
            ooc_ir::execute_program(&k.program, &mut mem);
        }
    }

    #[test]
    fn paper_scale_is_out_of_core() {
        // Every kernel's data must far exceed the 1/128 memory budget.
        for k in all_kernels() {
            assert!(
                k.paper_bytes() > 100 << 20,
                "{}: only {} bytes at paper scale",
                k.name,
                k.paper_bytes()
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(kernel_by_name("mat").is_some());
        assert!(kernel_by_name("nope").is_none());
    }
}
