//! # ooc-kernels
//!
//! The ten benchmark codes of the paper's Table 1, reconstructed in
//! the affine IR, plus the six program versions of the evaluation
//! (`col`, `row`, `l-opt`, `d-opt`, `c-opt`, `h-opt`).
//!
//! Each kernel module documents which Table 2 behaviour its access
//! structure is designed to reproduce and tests it in miniature.

#![warn(missing_docs)]

pub mod kernel;
pub mod kernels;
pub mod versions;

pub use kernel::{all_kernels, kernel_by_name, Kernel};
pub use versions::{compile, differential_pairs, interleave_groups, CompiledVersion, Version};
