//! Shared construction helpers for the kernel definitions.

use ooc_ir::{ArrayId, ArrayRef, Expr, LoopNest, Statement};
use ooc_linalg::{Affine, Polyhedron};

/// Builds a reference from access-matrix rows and offsets.
#[must_use]
pub fn aref(a: ArrayId, rows: &[&[i64]], off: &[i64]) -> ArrayRef {
    let rows: Vec<Vec<i64>> = rows.iter().map(|r| r.to_vec()).collect();
    ArrayRef::new(a, &rows, off.to_vec())
}

/// `Expr::Ref` shorthand.
#[must_use]
pub fn rf(r: ArrayRef) -> Expr {
    Expr::Ref(r)
}

/// `a + b`.
#[must_use]
pub fn add(a: Expr, b: Expr) -> Expr {
    Expr::Add(Box::new(a), Box::new(b))
}

/// `a * b`.
#[must_use]
pub fn mul(a: Expr, b: Expr) -> Expr {
    Expr::Mul(Box::new(a), Box::new(b))
}

/// A float constant.
#[must_use]
pub fn c(v: f64) -> Expr {
    Expr::Const(v)
}

/// A rectangular nest whose level `l` runs `lo[l] ..= N + hi_off[l]`
/// where `N` is parameter `param` — the shape every kernel loop takes
/// (halo offsets shrink the range so subscripts like `j±1` stay in
/// bounds).
#[must_use]
pub fn nest_with_margins(
    name: &str,
    nparams: usize,
    param: usize,
    lo: &[i64],
    hi_off: &[i64],
    body: Vec<Statement>,
) -> LoopNest {
    assert_eq!(lo.len(), hi_off.len());
    let depth = lo.len();
    let mut bounds = Polyhedron::universe(depth, nparams);
    for l in 0..depth {
        let x = Affine::var(depth, nparams, l);
        let lo_c = Affine::constant(depth, nparams, lo[l]);
        let mut hi = Affine::param(depth, nparams, param);
        hi.constant = ooc_linalg::Rational::from(hi_off[l]);
        bounds.add_ge0(x.sub(&lo_c));
        bounds.add_ge0(hi.sub(&x));
    }
    LoopNest {
        name: name.to_string(),
        depth,
        bounds,
        body,
        iterations: 1,
    }
}

/// Sets the outer timing-loop iteration count on every nest.
pub fn set_iterations(prog: &mut ooc_ir::Program, iters: u32) {
    for n in &mut prog.nests {
        n.iterations = iters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_ir::Program;

    #[test]
    fn margins_shrink_ranges() {
        let mut p = Program::new(&["N"]);
        let a = p.declare_array("A", 2, 0);
        let s = Statement::assign(aref(a, &[&[1, 0], &[0, 1]], &[0, 0]), c(0.0));
        let nest = nest_with_margins("n", 1, 0, &[2, 1], &[0, -1], vec![s]);
        let pts = nest.bounds.enumerate(&[5]);
        // i in 2..=5, j in 1..=4.
        assert_eq!(pts.len(), 16);
        assert!(pts.iter().all(|p| p[0] >= 2 && p[1] <= 4));
    }
}
