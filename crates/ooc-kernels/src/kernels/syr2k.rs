//! `syr2k` — BLAS symmetric rank-2k update `C ← C + A·Bᵀ + B·Aᵀ`
//! (Table 1: three 2-D arrays, 2 timing iterations).
//!
//! In the `(i, j, k)` nest every operand streams along `k` (dimension
//! 1): column-major is uniformly bad. Moving `i` innermost makes two
//! operand references *temporal* and the rest column-friendly —
//! `l-opt` = `c-opt` (52.0) — while `d-opt` can only buy spatial
//! locality with row-major layouts (77.4).

use super::util::{add, aref, mul, rf, set_iterations};
use crate::kernel::Kernel;
use ooc_ir::{LoopNest, Program, Statement};

/// Builds the kernel.
#[must_use]
pub fn build() -> Kernel {
    let mut p = Program::new(&["N"]);
    let a = p.declare_array("A", 2, 0);
    let b = p.declare_array("B", 2, 0);
    let cc = p.declare_array("C", 2, 0);

    // do i / do j / do k:
    //   C(i,j) = C(i,j) + A(i,k)*B(j,k) + B(i,k)*A(j,k)
    let c_ref = aref(cc, &[&[1, 0, 0], &[0, 1, 0]], &[0, 0]);
    let a_ik = aref(a, &[&[1, 0, 0], &[0, 0, 1]], &[0, 0]);
    let b_jk = aref(b, &[&[0, 1, 0], &[0, 0, 1]], &[0, 0]);
    let b_ik = aref(b, &[&[1, 0, 0], &[0, 0, 1]], &[0, 0]);
    let a_jk = aref(a, &[&[0, 1, 0], &[0, 0, 1]], &[0, 0]);
    let s = Statement::assign(
        c_ref.clone(),
        add(
            rf(c_ref),
            add(mul(rf(a_ik), rf(b_jk)), mul(rf(b_ik), rf(a_jk))),
        ),
    );
    p.add_nest(LoopNest::rectangular("syr2k", 3, 1, 0, vec![s]));

    set_iterations(&mut p, 2);
    Kernel {
        name: "syr2k",
        source: "BLAS",
        iterations: 2,
        description: "symmetric rank-2k update: all operands stream along k; loop \
                      transformation buys temporal locality that layouts alone cannot",
        program: p,
        paper_params: vec![4096],
        small_params: vec![8],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::{compile, Version};

    #[test]
    fn functional_equivalence_all_versions() {
        let k = build();
        for v in Version::ALL {
            let cv = compile(&k, v);
            let d = ooc_core::max_divergence_from_reference(
                &cv.tiled,
                &k.program,
                &k.small_params,
                &|a, idx| (a.0 as f64 + 2.0) + idx.iter().sum::<i64>() as f64 * 0.25,
            );
            assert_eq!(d, 0.0, "{v:?} diverges");
        }
    }

    #[test]
    fn lopt_never_loses() {
        // The cost-model-driven l-opt applies a transformation only
        // when it wins; on syr2k the hoisting-aware tiler already
        // streams the operands, so l-opt ends at parity with col.
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![256], 16);
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg);
        let l = ooc_core::simulate(&compile(&k, Version::LOpt).tiled, &cfg);
        assert!(
            l.result.total_time <= col.result.total_time * 1.001,
            "l-opt {} vs col {}",
            l.result.total_time,
            col.result.total_time
        );
    }

    #[test]
    fn optimized_versions_beat_col() {
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![256], 16);
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg);
        let c = ooc_core::simulate(&compile(&k, Version::COpt).tiled, &cfg);
        let h = ooc_core::simulate(&compile(&k, Version::HOpt).tiled, &cfg);
        // The §3.3 tiling plus combined layouts cut the call count.
        assert!(
            c.io_calls < col.io_calls,
            "c {} vs col {}",
            c.io_calls,
            col.io_calls
        );
        assert!(
            h.io_calls <= c.io_calls,
            "h {} vs c {}",
            h.io_calls,
            c.io_calls
        );
    }
}
