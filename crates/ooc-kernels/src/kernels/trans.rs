//! `trans` — out-of-core matrix transpose from NWChem (Table 1: two
//! 2-D arrays, 3 timing iterations).
//!
//! The canonical layout-only kernel: `B(i,j) = A(j,i)` has spatial
//! reuse in orthogonal directions, so **no** loop order helps both
//! references (`l-opt` = `col` = `row` = 100), while giving the two
//! arrays opposite layouts fixes both (`d-opt` = `c-opt` = `h-opt` =
//! 48.2).

use super::util::{add, aref, rf, set_iterations};
use crate::kernel::Kernel;
use ooc_ir::{Expr, LoopNest, Program, Statement};

/// Builds the kernel.
#[must_use]
pub fn build() -> Kernel {
    let mut p = Program::new(&["N"]);
    let b = p.declare_array("B", 2, 0);
    let a = p.declare_array("A", 2, 0);

    // do i / do j:  B(i,j) = A(j,i) + 1
    let s = Statement::assign(
        aref(b, &[&[1, 0], &[0, 1]], &[0, 0]),
        add(rf(aref(a, &[&[0, 1], &[1, 0]], &[0, 0])), Expr::Const(1.0)),
    );
    p.add_nest(LoopNest::rectangular("transpose", 2, 1, 0, vec![s]));

    set_iterations(&mut p, 3);
    Kernel {
        name: "trans",
        source: "Nwchem",
        iterations: 3,
        description: "matrix transpose: orthogonal spatial reuse defeats any loop \
                      order; opposite per-array layouts fix both references",
        program: p,
        paper_params: vec![4096],
        small_params: vec![10],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::{compile, Version};
    use ooc_runtime::FileLayout;

    #[test]
    fn functional_equivalence_all_versions() {
        let k = build();
        for v in Version::ALL {
            let cv = compile(&k, v);
            let d = ooc_core::max_divergence_from_reference(
                &cv.tiled,
                &k.program,
                &k.small_params,
                &|a, idx| (a.0 as f64) * 100.0 + (idx[0] * 17 + idx[1]) as f64,
            );
            assert_eq!(d, 0.0, "{v:?} diverges");
        }
    }

    #[test]
    fn dopt_gives_opposite_layouts() {
        let k = build();
        let cv = compile(&k, Version::DOpt);
        assert_eq!(cv.tiled.layouts[0], FileLayout::row_major(2), "B");
        assert_eq!(cv.tiled.layouts[1], FileLayout::col_major(2), "A");
        // c-opt agrees (single-nest component: data transformations only).
        let cc = compile(&k, Version::COpt);
        assert_eq!(cc.tiled.layouts, cv.tiled.layouts);
    }

    #[test]
    fn col_equals_row_and_lopt_is_stuck() {
        // Table 2 trans: col = row = l-opt = 100.
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![256], 1);
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg);
        let row = ooc_core::simulate(&compile(&k, Version::Row).tiled, &cfg);
        let l = ooc_core::simulate(&compile(&k, Version::LOpt).tiled, &cfg);
        assert_eq!(col.io_calls, row.io_calls, "col = row by symmetry");
        assert_eq!(col.io_calls, l.io_calls, "l-opt cannot improve a transpose");
    }

    #[test]
    fn dopt_halves_the_time() {
        // Table 2 trans: d-opt = c-opt = 48.2% of col.
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![512], 1);
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg);
        let d = ooc_core::simulate(&compile(&k, Version::DOpt).tiled, &cfg);
        assert!(
            d.result.total_time < 0.7 * col.result.total_time,
            "d-opt {} vs col {}",
            d.result.total_time,
            col.result.total_time
        );
    }
}
