//! `adi` — alternating-direction implicit integration, Livermore
//! style (Table 1: three 1-D + three 3-D arrays, 5 timing
//! iterations).
//!
//! Three sweeps over the same 3-D grids, each with its recurrence
//! along a different axis and a different source loop order. A single
//! global layout can satisfy only some of the sweeps (`d-opt`
//! partial), while per-nest loop transformations line every sweep up
//! with column-major storage (`l-opt` = `c-opt` = `h-opt`, the
//! paper's 22.8 row).

use super::util::{add, aref, mul, nest_with_margins, rf, set_iterations};
use crate::kernel::Kernel;
use ooc_ir::{Program, Statement};

/// Builds the kernel.
#[must_use]
pub fn build() -> Kernel {
    let mut p = Program::new(&["N"]);
    let u1 = p.declare_array("U1", 3, 0);
    let u2 = p.declare_array("U2", 3, 0);
    let u3 = p.declare_array("U3", 3, 0);
    let du1 = p.declare_array("DU1", 1, 0);
    let du2 = p.declare_array("DU2", 1, 0);
    let du3 = p.declare_array("DU3", 1, 0);

    // x-sweep: do k / do j / do i(2..N):
    //   U2(i,j,k) = U2(i-1,j,k)*DU1(i) + U1(i,j,k)
    // Loop variables are (k, j, i) outermost-first; the recurrence runs
    // along the innermost loop, already column-major friendly.
    let u2_w = aref(u2, &[&[0, 0, 1], &[0, 1, 0], &[1, 0, 0]], &[0, 0, 0]);
    let u2_r = aref(u2, &[&[0, 0, 1], &[0, 1, 0], &[1, 0, 0]], &[-1, 0, 0]);
    let s1 = Statement::assign(
        u2_w,
        add(
            mul(rf(u2_r), rf(aref(du1, &[&[0, 0, 1]], &[0]))),
            rf(aref(u1, &[&[0, 0, 1], &[0, 1, 0], &[1, 0, 0]], &[0, 0, 0])),
        ),
    );
    p.add_nest(nest_with_margins(
        "adi_x",
        1,
        0,
        &[1, 1, 2],
        &[0, 0, 0],
        vec![s1],
    ));

    // y-sweep: do k / do i / do j(2..N):
    //   U3(i,j,k) = U3(i,j-1,k)*DU2(j) + U2(i,j,k)
    // Innermost j sweeps dimension 1: hostile to column-major until the
    // loop transformation moves i inside.
    let u3_w = aref(u3, &[&[0, 1, 0], &[0, 0, 1], &[1, 0, 0]], &[0, 0, 0]);
    let u3_r = aref(u3, &[&[0, 1, 0], &[0, 0, 1], &[1, 0, 0]], &[0, -1, 0]);
    let s2 = Statement::assign(
        u3_w,
        add(
            mul(rf(u3_r), rf(aref(du2, &[&[0, 0, 1]], &[0]))),
            rf(aref(u2, &[&[0, 1, 0], &[0, 0, 1], &[1, 0, 0]], &[0, 0, 0])),
        ),
    );
    p.add_nest(nest_with_margins(
        "adi_y",
        1,
        0,
        &[1, 1, 2],
        &[0, 0, 0],
        vec![s2],
    ));

    // z-sweep: do i / do j / do k(2..N):
    //   U1(i,j,k) = U1(i,j,k-1)*DU3(k) + U3(i,j,k)
    let u1_w = aref(u1, &[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]], &[0, 0, 0]);
    let u1_r = aref(u1, &[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]], &[0, 0, -1]);
    let s3 = Statement::assign(
        u1_w,
        add(
            mul(rf(u1_r), rf(aref(du3, &[&[0, 0, 1]], &[0]))),
            rf(aref(u3, &[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]], &[0, 0, 0])),
        ),
    );
    p.add_nest(nest_with_margins(
        "adi_z",
        1,
        0,
        &[1, 1, 2],
        &[0, 0, 0],
        vec![s3],
    ));

    set_iterations(&mut p, 5);
    Kernel {
        name: "adi",
        source: "Livermore",
        iterations: 5,
        description: "three directional sweeps with per-axis recurrences; loop \
                      transformations align every sweep with storage, a single \
                      layout cannot",
        program: p,
        paper_params: vec![256],
        small_params: vec![6],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::{compile, Version};

    #[test]
    fn functional_equivalence_all_versions() {
        let k = build();
        for v in Version::ALL {
            let cv = compile(&k, v);
            let d = ooc_core::max_divergence_from_reference(
                &cv.tiled,
                &k.program,
                &k.small_params,
                &|a, idx| 0.5 + (a.0 as f64) * 0.125 + idx.iter().sum::<i64>() as f64 * 1e-3,
            );
            assert_eq!(d, 0.0, "{v:?} diverges");
        }
    }

    #[test]
    fn lopt_matches_copt_and_beats_dopt() {
        // The adi row of Table 2: l-opt ≈ c-opt (22.8) < d-opt (46.5)
        // < col (100), on the paper's 16-processor configuration.
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![64], 16);
        let l = ooc_core::simulate(&compile(&k, Version::LOpt).tiled, &cfg)
            .result
            .total_time;
        let d = ooc_core::simulate(&compile(&k, Version::DOpt).tiled, &cfg)
            .result
            .total_time;
        let c = ooc_core::simulate(&compile(&k, Version::COpt).tiled, &cfg)
            .result
            .total_time;
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg)
            .result
            .total_time;
        assert!(l < d, "l {l} vs d {d}");
        assert!(c < d, "c {c} vs d {d}");
        assert!(l < 0.5 * col, "l {l} far below col {col}");
        assert!(c < 0.5 * col, "c {c} far below col {col}");
    }

    #[test]
    fn recurrences_have_expected_distances() {
        let k = build();
        use ooc_ir::{nest_dependences, DepElem};
        // x-sweep: distance 1 at the innermost level (i).
        let deps = nest_dependences(&k.program.nests[0]);
        assert!(deps
            .iter()
            .any(|d| d.vector == vec![DepElem::Exact(0), DepElem::Exact(0), DepElem::Exact(1)]));
    }
}
