//! The ten benchmark kernels of Table 1.

pub mod adi;
pub mod btrix;
pub mod emit;
pub mod gfunp;
pub mod htribk;
pub mod mat;
pub mod mxm;
pub mod syr2k;
pub mod trans;
pub mod util;
pub mod vpenta;
