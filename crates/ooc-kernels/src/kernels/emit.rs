//! `emit` — particle emission / field update, Spec92 style (Table 1:
//! ten 1-D + three 3-D arrays, 2 timing iterations).
//!
//! The interesting row of Table 2: the source is *already* perfectly
//! matched to column-major files (every grid reference streams down
//! the first dimension in the innermost loop), so no optimization has
//! anything to do — `l-opt` = `d-opt` = `c-opt` = `h-opt` = 100 —
//! while the `row` version actively destroys the locality (176.5).

use super::util::{add, aref, mul, nest_with_margins, rf, set_iterations};
use crate::kernel::Kernel;
use ooc_ir::{ArrayId, Program, Statement};

/// Builds the kernel.
#[must_use]
pub fn build() -> Kernel {
    let mut p = Program::new(&["N"]);
    let e1 = p.declare_array("E1", 3, 0);
    let e2 = p.declare_array("E2", 3, 0);
    let e3 = p.declare_array("E3", 3, 0);
    let coef: Vec<ArrayId> = (0..10)
        .map(|i| p.declare_array(&format!("W{i}"), 1, 0))
        .collect();

    // Grid references are transposed relative to the (i, j, k) loops:
    // E(k, j, i) moves down dimension 0 as the innermost k advances —
    // exactly what column-major storage wants.
    let grid = |arr| aref(arr, &[&[0, 0, 1], &[0, 1, 0], &[1, 0, 0]], &[0, 0, 0]);
    let ci = |arr| aref(arr, &[&[1, 0, 0]], &[0]); // W(i): innermost-invariant
    let cj = |arr| aref(arr, &[&[0, 1, 0]], &[0]); // W(j)
    let ck = |arr| aref(arr, &[&[0, 0, 1]], &[0]); // W(k): unit-stride 1-D

    // Nest 1: E1 update with five weights.
    let s1 = Statement::assign(
        grid(e1),
        add(
            mul(rf(grid(e1)), rf(ci(coef[0]))),
            mul(
                rf(grid(e2)),
                mul(
                    rf(cj(coef[1])),
                    mul(rf(ck(coef[2])), mul(rf(ci(coef[3])), rf(cj(coef[4])))),
                ),
            ),
        ),
    );
    p.add_nest(nest_with_margins(
        "emit_field",
        1,
        0,
        &[1, 1, 1],
        &[0, 0, 0],
        vec![s1],
    ));

    // Nest 2: E2/E3 exchange with the other five weights.
    let s2 = Statement::assign(
        grid(e2),
        add(
            mul(rf(grid(e3)), rf(ck(coef[5]))),
            mul(
                rf(grid(e2)),
                mul(
                    rf(ci(coef[6])),
                    mul(rf(cj(coef[7])), mul(rf(ck(coef[8])), rf(ci(coef[9])))),
                ),
            ),
        ),
    );
    p.add_nest(nest_with_margins(
        "emit_exchange",
        1,
        0,
        &[1, 1, 1],
        &[0, 0, 0],
        vec![s2],
    ));

    set_iterations(&mut p, 2);
    Kernel {
        name: "emit",
        source: "Spec92",
        iterations: 2,
        description: "field updates already perfectly column-major: nothing to \
                      optimize, row-major layouts actively hurt",
        program: p,
        paper_params: vec![256],
        small_params: vec![6],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::{compile, Version};

    #[test]
    fn functional_equivalence_all_versions() {
        let k = build();
        for v in Version::ALL {
            let cv = compile(&k, v);
            let d = ooc_core::max_divergence_from_reference(
                &cv.tiled,
                &k.program,
                &k.small_params,
                &|a, idx| 1.0 + (a.0 as f64) * 1e-2 + idx.iter().sum::<i64>() as f64 * 1e-4,
            );
            assert_eq!(d, 0.0, "{v:?} diverges");
        }
    }

    #[test]
    fn nothing_to_optimize() {
        // Table 2 emit: col = l-opt = d-opt = c-opt calls-wise.
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![64], 16);
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg);
        let l = ooc_core::simulate(&compile(&k, Version::LOpt).tiled, &cfg);
        let d = ooc_core::simulate(&compile(&k, Version::DOpt).tiled, &cfg);
        assert_eq!(l.io_calls, col.io_calls, "l-opt = col");
        assert_eq!(d.io_calls, col.io_calls, "d-opt = col");
    }

    #[test]
    fn row_hurts() {
        // On the parallel machine (the rows of dimension 2 are sliced
        // across processors), flipping every layout to row-major
        // shreds the file runs.
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![64], 16);
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg);
        let row = ooc_core::simulate(&compile(&k, Version::Row).tiled, &cfg);
        assert!(
            row.result.total_time > 1.2 * col.result.total_time,
            "row {} vs col {}",
            row.result.total_time,
            col.result.total_time
        );
    }

    #[test]
    fn loops_untouched_everywhere() {
        let k = build();
        for v in [Version::LOpt, Version::COpt] {
            let cv = compile(&k, v);
            for (i, nest) in cv.tiled.nests.iter().enumerate() {
                assert_eq!(
                    nest.nest.body[0].lhs.access, k.program.nests[i].body[0].lhs.access,
                    "{v:?} transformed nest {i} needlessly"
                );
            }
        }
    }
}
