//! `mat` — dense matrix multiplication `C ← C + A·B` (Table 1: three
//! 2-D arrays, 2 timing iterations).
//!
//! Access structure: in the `(i, j, k)` nest with `k` innermost,
//! `C(i,j)` is temporal, `A(i,k)` streams along rows (wants
//! row-major), `B(k,j)` streams along columns (wants column-major).
//! The column-major baseline leaves `A` strided; pure loop
//! transformation can move `i` innermost (all three arrays then agree
//! with column-major); pure data transformation fixes `A` row-major.
//! The combined version picks the layouts and applies out-of-core
//! tiling.

use super::util::{add, aref, c, mul, rf, set_iterations};
use crate::kernel::Kernel;
use ooc_ir::{LoopNest, Program, Statement};

/// Builds the kernel.
#[must_use]
pub fn build() -> Kernel {
    let mut p = Program::new(&["N"]);
    let a = p.declare_array("A", 2, 0);
    let b = p.declare_array("B", 2, 0);
    let cc = p.declare_array("C", 2, 0);

    // do i / do j / do k:  C(i,j) = C(i,j) + A(i,k) * B(k,j)
    let c_ref = aref(cc, &[&[1, 0, 0], &[0, 1, 0]], &[0, 0]);
    let a_ref = aref(a, &[&[1, 0, 0], &[0, 0, 1]], &[0, 0]);
    let b_ref = aref(b, &[&[0, 0, 1], &[0, 1, 0]], &[0, 0]);
    let s = Statement::assign(c_ref.clone(), add(rf(c_ref), mul(rf(a_ref), rf(b_ref))));
    p.add_nest(LoopNest::rectangular("matmul", 3, 1, 0, vec![s]));
    let _ = c(0.0);

    set_iterations(&mut p, 2);
    Kernel {
        name: "mat",
        source: "-",
        iterations: 2,
        description: "dense matrix multiply C += A*B; A wants row-major, B column-major, \
                      C has temporal reuse in the inner loop",
        program: p,
        paper_params: vec![4096],
        small_params: vec![8],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::{compile, Version};
    use ooc_runtime::FileLayout;

    #[test]
    fn copt_layouts() {
        let k = build();
        let cv = compile(&k, Version::COpt);
        // A row-major, B column-major; C (temporal) keeps the default.
        assert_eq!(cv.tiled.layouts[0], FileLayout::row_major(2), "A");
        assert_eq!(cv.tiled.layouts[1], FileLayout::col_major(2), "B");
    }

    #[test]
    fn lopt_beats_col() {
        // Under all-column-major layouts a legal loop transformation
        // (the cost model picks among i/j/k innermost) buys mat a
        // solid improvement — Table 2 l-opt = 65.1.
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![256], 16);
        let l = ooc_core::simulate(&compile(&k, Version::LOpt).tiled, &cfg)
            .result
            .total_time;
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg)
            .result
            .total_time;
        assert!(l < 0.8 * col, "l-opt {l} vs col {col}");
    }

    #[test]
    fn functional_equivalence_all_versions() {
        let k = build();
        for v in Version::ALL {
            let cv = compile(&k, v);
            let d = ooc_core::max_divergence_from_reference(
                &cv.tiled,
                &k.program,
                &k.small_params,
                &|a, idx| (a.0 * 31 + 7) as f64 + idx.iter().sum::<i64>() as f64,
            );
            assert_eq!(d, 0.0, "{v:?} diverges");
        }
    }

    #[test]
    fn copt_beats_col_in_calls() {
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![256], 16);
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg);
        let copt = ooc_core::simulate(&compile(&k, Version::COpt).tiled, &cfg);
        assert!(
            copt.result.total_time < col.result.total_time,
            "c-opt {} vs col {}",
            copt.result.total_time,
            col.result.total_time
        );
    }
}
