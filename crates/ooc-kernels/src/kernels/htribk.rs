//! `htribk` — Eispack back-transformation of a complex Hermitian
//! matrix (Table 1: five 2-D arrays, 3 timing iterations).
//!
//! A dependence-locked accumulation sweep (row-major friendly) next to
//! a transposed copy-out: no loop transformation applies (`l-opt`
//! stays at the baseline), while per-array layouts fix all five
//! arrays (`d-opt` = `c-opt` = 81.1, better than both fixed layouts).

use super::util::{add, aref, mul, nest_with_margins, rf, set_iterations};
use crate::kernel::Kernel;
use ooc_ir::{Program, Statement};

/// Builds the kernel.
#[must_use]
pub fn build() -> Kernel {
    let mut p = Program::new(&["N"]);
    let ar = p.declare_array("AR", 2, 0);
    let ai = p.declare_array("AI", 2, 0);
    let tau = p.declare_array("TAU", 2, 0);
    let zr = p.declare_array("ZR", 2, 0);
    let zi = p.declare_array("ZI", 2, 0);

    let id = |arr, di, dj| aref(arr, &[&[1, 0], &[0, 1]], &[di, dj]);
    let tr = |arr| aref(arr, &[&[0, 1], &[1, 0]], &[0, 0]);

    // Accumulation sweep: do i(2..N) / do j(2..N-1):
    //   AR(i,j) = AR(i-1,j-1)*TAU(i,j) + AR(i-1,j+1)*AI(i,j)
    // (1,±1) distances freeze the loop order; all streams are
    // row-friendly.
    let s1 = Statement::assign(
        id(ar, 0, 0),
        add(
            mul(rf(id(ar, -1, -1)), rf(id(tau, 0, 0))),
            mul(rf(id(ar, -1, 1)), rf(id(ai, 0, 0))),
        ),
    );
    p.add_nest(nest_with_margins(
        "htribk_accum",
        1,
        0,
        &[2, 2],
        &[0, -1],
        vec![s1],
    ));

    // Back-transformation copy-out: do i / do j:  ZR(i,j) = AR(j,i)*2
    // — a transpose: ZR wants row-major, AR column... but AR is locked
    // row-major by the sweep; only the free ZR side is winnable.
    let s2 = Statement::assign(id(zr, 0, 0), mul(rf(tr(ar)), ooc_ir::Expr::Const(2.0)));
    // And the imaginary part the other way round: ZI(j,i) = AI(i,j).
    let s3 = Statement::assign(tr(zi), rf(id(ai, 0, 0)));
    p.add_nest(nest_with_margins(
        "htribk_backt",
        1,
        0,
        &[1, 1],
        &[0, 0],
        vec![s2, s3],
    ));

    set_iterations(&mut p, 3);
    Kernel {
        name: "htribk",
        source: "Eispack",
        iterations: 3,
        description: "dependence-locked accumulation plus transposed copy-out: \
                      per-array layouts win, loop transforms cannot apply",
        program: p,
        paper_params: vec![4096],
        small_params: vec![8],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::{compile, Version};

    #[test]
    fn functional_equivalence_all_versions() {
        let k = build();
        for v in Version::ALL {
            let cv = compile(&k, v);
            let d = ooc_core::max_divergence_from_reference(
                &cv.tiled,
                &k.program,
                &k.small_params,
                &|a, idx| (a.0 as f64) * 0.1 + idx.iter().sum::<i64>() as f64 * 1e-3 + 1.0,
            );
            assert_eq!(d, 0.0, "{v:?} diverges");
        }
    }

    #[test]
    fn dopt_beats_both_fixed_layouts() {
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![256], 1);
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg);
        let row = ooc_core::simulate(&compile(&k, Version::Row).tiled, &cfg);
        let d = ooc_core::simulate(&compile(&k, Version::DOpt).tiled, &cfg);
        assert!(
            d.io_calls < col.io_calls,
            "d {} vs col {}",
            d.io_calls,
            col.io_calls
        );
        assert!(
            d.io_calls < row.io_calls,
            "d {} vs row {}",
            d.io_calls,
            row.io_calls
        );
    }

    #[test]
    fn accumulation_sweep_frozen() {
        let k = build();
        for v in [Version::LOpt, Version::COpt] {
            let cv = compile(&k, v);
            assert_eq!(
                cv.tiled.nests[0].nest.body[0].lhs.access, k.program.nests[0].body[0].lhs.access,
                "{v:?} illegally transformed the sweep"
            );
        }
    }
}
