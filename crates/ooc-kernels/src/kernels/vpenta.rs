//! `vpenta` — pentadiagonal matrix inversion, Spec92/NAS style (Table
//! 1: seven 2-D + two 3-D arrays, 3 timing iterations).
//!
//! Forward-elimination sweeps along the rows with both `(1, 1)` and
//! `(1, -1)` dependence distances: **no** legal loop transformation
//! can change the traversal (`l-opt` = `col`, the paper's 100.0), but
//! simply flipping layouts to row-major makes every stream unit-stride
//! (`row` = `d-opt` = `c-opt` = 47.1; `h-opt` adds interleaving).

use super::util::{add, aref, mul, nest_with_margins, rf, set_iterations};
use crate::kernel::Kernel;
use ooc_ir::{DimSize, Program, Statement};

/// Builds the kernel.
#[must_use]
pub fn build() -> Kernel {
    let mut p = Program::new(&["N"]);
    let x = p.declare_array("X", 2, 0);
    let a = p.declare_array("A", 2, 0);
    let b = p.declare_array("B", 2, 0);
    let cc = p.declare_array("C", 2, 0);
    let d = p.declare_array("D", 2, 0);
    let e = p.declare_array("E", 2, 0);
    let f = p.declare_array("F", 2, 0);
    // Fortran convention for the small plane index: it comes FIRST so
    // the column-major default keeps planes interleaved at stride 3
    // and the large dimensions contiguous.
    let y = p.declare_array_dims(
        "Y",
        vec![DimSize::Const(3), DimSize::Param(0), DimSize::Param(0)],
    );
    let z = p.declare_array_dims(
        "Z",
        vec![DimSize::Const(3), DimSize::Param(0), DimSize::Param(0)],
    );

    let id = |arr, di, dj| aref(arr, &[&[1, 0], &[0, 1]], &[di, dj]);

    // Elimination sweep 1: do i(2..N) / do j(2..N-1):
    //   X(i,j) = X(i-1,j-1)*A(i,j) + X(i-1,j+1)*B(i,j) + C(i,j)
    // The (1,1) and (1,-1) distances forbid interchange and reversal.
    let s1 = Statement::assign(
        id(x, 0, 0),
        add(
            add(
                mul(rf(id(x, -1, -1)), rf(id(a, 0, 0))),
                mul(rf(id(x, -1, 1)), rf(id(b, 0, 0))),
            ),
            rf(id(cc, 0, 0)),
        ),
    );
    p.add_nest(nest_with_margins(
        "vpenta_fwd1",
        1,
        0,
        &[2, 2],
        &[0, -1],
        vec![s1],
    ));

    // Elimination sweep 2 over the factor arrays:
    //   D(i,j) = D(i-1,j-1)*E(i,j) + D(i-1,j+1)*F(i,j) + X(i,j)
    let s2 = Statement::assign(
        id(d, 0, 0),
        add(
            add(
                mul(rf(id(d, -1, -1)), rf(id(e, 0, 0))),
                mul(rf(id(d, -1, 1)), rf(id(f, 0, 0))),
            ),
            rf(id(x, 0, 0)),
        ),
    );
    p.add_nest(nest_with_margins(
        "vpenta_fwd2",
        1,
        0,
        &[2, 2],
        &[0, -1],
        vec![s2],
    ));

    // Pack the smoothed solution planes into the 3-D workspaces — the
    // smoothing recurrences carry the same (1,±1) distances as the
    // elimination, keeping the whole kernel loop-frozen:
    //   Y(1,i,j) = X(i,j)*A(i,j) + Y(1,i-1,j+1)*0.5
    //   Z(2,i,j) = D(i,j)*E(i,j) + Z(2,i-1,j-1)*0.5
    let y3 = |di: i64, dj: i64| aref(y, &[&[0, 0], &[1, 0], &[0, 1]], &[1, di, dj]);
    let z3 = |di: i64, dj: i64| aref(z, &[&[0, 0], &[1, 0], &[0, 1]], &[2, di, dj]);
    let s3 = Statement::assign(
        y3(0, 0),
        add(
            mul(rf(id(x, 0, 0)), rf(id(a, 0, 0))),
            mul(rf(y3(-1, 1)), ooc_ir::Expr::Const(0.5)),
        ),
    );
    let s4 = Statement::assign(
        z3(0, 0),
        add(
            mul(rf(id(d, 0, 0)), rf(id(e, 0, 0))),
            mul(rf(z3(-1, -1)), ooc_ir::Expr::Const(0.5)),
        ),
    );
    p.add_nest(nest_with_margins(
        "vpenta_pack",
        1,
        0,
        &[2, 2],
        &[0, -1],
        vec![s3, s4],
    ));

    set_iterations(&mut p, 3);
    Kernel {
        name: "vpenta",
        source: "Spec92",
        iterations: 3,
        description: "pentadiagonal elimination with (1,±1) dependences: loop \
                      transformations are illegal, layout flips fix everything",
        program: p,
        paper_params: vec![4096],
        small_params: vec![8],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::{compile, Version};
    use ooc_linalg::Matrix;

    #[test]
    fn functional_equivalence_all_versions() {
        let k = build();
        for v in Version::ALL {
            let cv = compile(&k, v);
            let d = ooc_core::max_divergence_from_reference(
                &cv.tiled,
                &k.program,
                &k.small_params,
                &|a, idx| 1.0 + (a.0 as f64) * 0.01 + idx.iter().sum::<i64>() as f64 * 1e-4,
            );
            assert_eq!(d, 0.0, "{v:?} diverges");
        }
    }

    #[test]
    fn lopt_cannot_transform_the_sweeps() {
        // The (1,1)/(1,-1) dependence pair blocks every completion our
        // generator can produce: l-opt must keep the original order.
        let k = build();
        let cv = compile(&k, Version::LOpt);
        for (i, nest) in cv.tiled.nests.iter().take(2).enumerate() {
            assert_eq!(
                nest.nest.body[0].lhs.access, k.program.nests[i].body[0].lhs.access,
                "sweep {i} was transformed"
            );
        }
    }

    #[test]
    fn lopt_equals_col_dopt_much_better() {
        // Table 2 vpenta: l-opt = col (100), d-opt = c-opt = row (47.1).
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![256], 1);
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg);
        let l = ooc_core::simulate(&compile(&k, Version::LOpt).tiled, &cfg);
        let d = ooc_core::simulate(&compile(&k, Version::DOpt).tiled, &cfg);
        assert_eq!(l.io_calls, col.io_calls, "l-opt must equal col");
        assert!(
            d.io_calls * 2 < col.io_calls,
            "d-opt {} vs col {}",
            d.io_calls,
            col.io_calls
        );
    }

    #[test]
    fn interchange_is_illegal_here() {
        let k = build();
        let deps = ooc_ir::nest_dependences(&k.program.nests[0]);
        let interchange = Matrix::from_i64(2, 2, &[0, 1, 1, 0]);
        assert!(!ooc_ir::transformation_preserves(&interchange, &deps));
        // Reversal of the inner loop combined with interchange is blocked
        // by the second distance.
        let rev = Matrix::from_i64(2, 2, &[0, -1, 1, 0]);
        assert!(!ooc_ir::transformation_preserves(&rev, &deps));
    }
}
