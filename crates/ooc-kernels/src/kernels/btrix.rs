//! `btrix` — block tridiagonal solver along one dimension, Spec92/NAS
//! style (Table 1: twenty-five 1-D + four 4-D arrays, 2 timing
//! iterations).
//!
//! Like `vpenta` scaled up a rank: the elimination carries `(1,0,0,1)`
//! and `(1,0,0,-1)` distances that block the loop transformations,
//! while the storage order decides everything (Table 2: `l-opt` =
//! `col` = 100, `d-opt` = `c-opt` = 61.3, `h-opt` 42.3). The 25 small
//! coefficient vectors ride along in the statements.

use super::util::{add, aref, mul, nest_with_margins, rf, set_iterations};
use crate::kernel::Kernel;
use ooc_ir::{ArrayId, Expr, Program, Statement};

/// Builds the kernel.
#[must_use]
pub fn build() -> Kernel {
    let mut p = Program::new(&["N"]);
    let q1 = p.declare_array("Q1", 4, 0);
    let q2 = p.declare_array("Q2", 4, 0);
    let q3 = p.declare_array("Q3", 4, 0);
    let q4 = p.declare_array("Q4", 4, 0);
    let coef: Vec<ArrayId> = (0..25)
        .map(|i| p.declare_array(&format!("S{i}"), 1, 0))
        .collect();

    // Identity 4-D reference with offsets.
    let id4 = |arr, o: [i64; 4]| {
        aref(
            arr,
            &[&[1, 0, 0, 0], &[0, 1, 0, 0], &[0, 0, 1, 0], &[0, 0, 0, 1]],
            &o,
        )
    };
    // 1-D coefficient indexed by the innermost loop l.
    let c1 = |arr| aref(arr, &[&[0, 0, 0, 1]], &[0]);

    // Forward elimination: do i(2..N) / do j / do k / do l(2..N-1):
    //   Q1(i,j,k,l) = Q1(i-1,j,k,l-1)*S0(l) + Q1(i-1,j,k,l+1)*S1(l)
    //               + Q2(i,j,k,l)*S2(l) + ... coefficient chain ...
    let mut rhs = add(
        mul(rf(id4(q1, [-1, 0, 0, -1])), rf(c1(coef[0]))),
        mul(rf(id4(q1, [-1, 0, 0, 1])), rf(c1(coef[1]))),
    );
    rhs = add(rhs, mul(rf(id4(q2, [0, 0, 0, 0])), rf(c1(coef[2]))));
    for &cid in &coef[3..13] {
        rhs = mul(rhs, rf(c1(cid)));
    }
    let s1 = Statement::assign(id4(q1, [0, 0, 0, 0]), rhs);
    p.add_nest(nest_with_margins(
        "btrix_fwd",
        1,
        0,
        &[2, 1, 1, 2],
        &[0, 0, 0, -1],
        vec![s1],
    ));

    // Back substitution over the remaining planes:
    //   Q3(i,j,k,l) = Q3(i-1,j,k,l-1)*S13(l) + Q3(i-1,j,k,l+1)*S14(l)
    //               + Q4(i,j,k,l)*S15..S24 chain
    let mut rhs2 = add(
        mul(rf(id4(q3, [-1, 0, 0, -1])), rf(c1(coef[13]))),
        mul(rf(id4(q3, [-1, 0, 0, 1])), rf(c1(coef[14]))),
    );
    rhs2 = add(rhs2, mul(rf(id4(q4, [0, 0, 0, 0])), rf(c1(coef[15]))));
    for &cid in &coef[16..25] {
        rhs2 = mul(rhs2, rf(c1(cid)));
    }
    let s2 = Statement::assign(id4(q3, [0, 0, 0, 0]), rhs2);
    p.add_nest(nest_with_margins(
        "btrix_back",
        1,
        0,
        &[2, 1, 1, 2],
        &[0, 0, 0, -1],
        vec![s2],
    ));
    let _unused: Option<Expr> = None;

    set_iterations(&mut p, 2);
    Kernel {
        name: "btrix",
        source: "Spec92",
        iterations: 2,
        description: "block-tridiagonal elimination over 4-D state with (1,0,0,±1) \
                      dependences: layouts decide, loops are frozen",
        program: p,
        paper_params: vec![48],
        small_params: vec![6],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::{compile, Version};

    #[test]
    fn functional_equivalence_key_versions() {
        // 4-D functional runs are the slowest; exercise the distinct
        // code paths (baseline, data-opt, combined with OOC tiling).
        let k = build();
        for v in [Version::Col, Version::DOpt, Version::COpt] {
            let cv = compile(&k, v);
            let d = ooc_core::max_divergence_from_reference(
                &cv.tiled,
                &k.program,
                &k.small_params,
                &|a, idx| 1.0 + (a.0 % 7) as f64 * 0.01 + idx.iter().sum::<i64>() as f64 * 1e-4,
            );
            assert_eq!(d, 0.0, "{v:?} diverges");
        }
    }

    #[test]
    fn lopt_cannot_fix_the_state_arrays() {
        // The (1,0,0,±1) pair rules out every completion that would make
        // the 4-D accesses stream down dimension 0 (the column-major
        // direction). Whatever legal permutation l-opt picks (it may
        // shuffle loops to make the small coefficient vectors temporal),
        // the big arrays stay strided.
        let k = build();
        let cv = compile(&k, Version::LOpt);
        for nest in &cv.tiled.nests {
            let lhs = &nest.nest.body[0].lhs;
            let mut ek = vec![0i64; nest.nest.depth];
            *ek.last_mut().expect("nonempty") = 1;
            let u = ooc_core::movement_i64(&lhs.access, &ek).expect("integer");
            assert!(
                !(u[0] != 0 && u[1..].iter().all(|&x| x == 0)),
                "{}: l-opt made the 4-D state stream down dim 0 —                  that should be blocked by the dependences",
                nest.nest.name
            );
        }
    }

    #[test]
    fn dopt_beats_col() {
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![24], 1);
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg);
        let d = ooc_core::simulate(&compile(&k, Version::DOpt).tiled, &cfg);
        let l = ooc_core::simulate(&compile(&k, Version::LOpt).tiled, &cfg);
        // l-opt may shave the small coefficient traffic but cannot touch
        // the dominant 4-D streams: within 5% of col.
        let ratio = l.io_calls as f64 / col.io_calls as f64;
        assert!((0.95..=1.05).contains(&ratio), "l/col ratio {ratio}");
        assert!(d.io_calls < col.io_calls);
    }

    #[test]
    fn hopt_groups_the_state_arrays() {
        let k = build();
        let cv = compile(&k, Version::HOpt);
        // Q1/Q2 (and Q3/Q4) share shape and layout within their nests.
        assert!(
            !cv.interleave.is_empty(),
            "expected 4-D state arrays to interleave"
        );
    }
}
