//! `mxm` — Spec92-style matrix multiply with pre/post passes (Table
//! 1: three 2-D arrays, 3 timing iterations).
//!
//! The matmul proper (`C += Aᵀ-style accesses`) is already
//! column-major friendly, so neither `row` nor pure loop optimization
//! helps; the surrounding scaling passes access `A` and `C` with
//! conflicting orientations that only the combined approach untangles
//! (Table 2: `l-opt` ≈ `col`, `d-opt` ≈ `col`, `c-opt` wins, `row`
//! much worse because it breaks the dominant matmul).

use super::util::{add, aref, mul, rf, set_iterations};
use crate::kernel::Kernel;
use ooc_ir::{Expr, LoopNest, Program, Statement};

/// Builds the kernel.
#[must_use]
pub fn build() -> Kernel {
    let mut p = Program::new(&["N"]);
    let a = p.declare_array("A", 2, 0);
    let b = p.declare_array("B", 2, 0);
    let cc = p.declare_array("C", 2, 0);

    // Nest 1 (dominant): do i / do j / do k:
    //   C(i,j) = C(i,j) + A(k,i) * B(k,j)     -- column streams: col-friendly
    let c_ref = aref(cc, &[&[1, 0, 0], &[0, 1, 0]], &[0, 0]);
    let s1 = Statement::assign(
        c_ref.clone(),
        add(
            rf(c_ref),
            mul(
                rf(aref(a, &[&[0, 0, 1], &[1, 0, 0]], &[0, 0])),
                rf(aref(b, &[&[0, 0, 1], &[0, 1, 0]], &[0, 0])),
            ),
        ),
    );
    p.add_nest(LoopNest::rectangular("mxm_core", 3, 1, 0, vec![s1]));

    // Nest 2: do i / do j:  A(i,j) = C(j,i) * 0.5   -- A wants row-major
    // here, clashing with the matmul's column-major use of A.
    let s2 = Statement::assign(
        aref(a, &[&[1, 0], &[0, 1]], &[0, 0]),
        mul(rf(aref(cc, &[&[0, 1], &[1, 0]], &[0, 0])), Expr::Const(0.5)),
    );
    p.add_nest(LoopNest::rectangular("mxm_scale_a", 2, 1, 0, vec![s2]));

    // Nest 3: do i / do j:  B(j,i) = B(j,i)*2 + C(i,j)
    let b_ref = aref(b, &[&[0, 1], &[1, 0]], &[0, 0]);
    let s3 = Statement::assign(
        b_ref.clone(),
        add(
            mul(rf(b_ref), Expr::Const(2.0)),
            rf(aref(cc, &[&[1, 0], &[0, 1]], &[0, 0])),
        ),
    );
    p.add_nest(LoopNest::rectangular("mxm_update_b", 2, 1, 0, vec![s3]));

    set_iterations(&mut p, 3);
    Kernel {
        name: "mxm",
        source: "Spec92",
        iterations: 3,
        description: "matrix multiply with transposed operand streams plus scaling \
                      passes whose layout demands conflict across nests",
        program: p,
        paper_params: vec![4096],
        small_params: vec![8],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::{compile, Version};

    #[test]
    fn functional_equivalence_all_versions() {
        let k = build();
        for v in Version::ALL {
            let cv = compile(&k, v);
            let d = ooc_core::max_divergence_from_reference(
                &cv.tiled,
                &k.program,
                &k.small_params,
                &|a, idx| (a.0 as f64 + 1.5) * idx.iter().sum::<i64>() as f64,
            );
            assert_eq!(d, 0.0, "{v:?} diverges");
        }
    }

    #[test]
    fn matmul_core_untouched_by_copt() {
        // The dominant nest is already optimal with the data-only pass it
        // receives; no loop transform should be applied to it.
        let k = build();
        let cv = compile(&k, Version::COpt);
        let orig = &k.program.nests[0].body[0];
        let new = &cv.tiled.nests[0].nest.body[0];
        assert_eq!(orig.lhs.access, new.lhs.access);
    }

    #[test]
    fn copt_wins_big() {
        // Table 2 mxm: only the combined version helps substantially
        // (c-opt 79.8 in the paper; our shaped-tile model rewards it
        // even more).
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![256], 16);
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg)
            .result
            .total_time;
        let c = ooc_core::simulate(&compile(&k, Version::COpt).tiled, &cfg)
            .result
            .total_time;
        let d = ooc_core::simulate(&compile(&k, Version::DOpt).tiled, &cfg)
            .result
            .total_time;
        assert!(c < 0.5 * col, "c-opt {c} vs col {col}");
        // d-opt cannot untangle the cross-nest conflicts: within 2x of col.
        assert!(d < 2.0 * col && d > 0.5 * col, "d-opt {d} vs col {col}");
    }
}
