//! `gfunp` — Hompack homotopy function evaluation (Table 1: one 1-D +
//! five 2-D arrays, 3 timing iterations).
//!
//! A chain of nests in which the same arrays are read transposed and
//! written straight — the multi-nest generalization of the paper's
//! §3.1 motivating example. Only the combined algorithm propagates
//! layouts through the chain and fixes *every* reference; `l-opt` and
//! `d-opt` each leave part of the chain strided (Table 2: c-opt 46.9
//! < d-opt 68.0 < l-opt 73.3 < col; row 128.4 is worst).

use super::util::{add, aref, mul, nest_with_margins, rf, set_iterations};
use crate::kernel::Kernel;
use ooc_ir::{Expr, Program, Statement};

/// Builds the kernel.
#[must_use]
pub fn build() -> Kernel {
    let mut p = Program::new(&["N"]);
    let g1 = p.declare_array("G1", 2, 0);
    let g2 = p.declare_array("G2", 2, 0);
    let g3 = p.declare_array("G3", 2, 0);
    let g4 = p.declare_array("G4", 2, 0);
    let g5 = p.declare_array("G5", 2, 0);
    let pv = p.declare_array("P", 1, 0);

    let id = |arr| aref(arr, &[&[1, 0], &[0, 1]], &[0, 0]);
    let tr = |arr| aref(arr, &[&[0, 1], &[1, 0]], &[0, 0]);

    // Nest 1: G1(i,j) = G2(j,i) + P(i)   (P is innermost-invariant)
    let s1 = Statement::assign(id(g1), add(rf(tr(g2)), rf(aref(pv, &[&[1, 0]], &[0]))));
    p.add_nest(nest_with_margins(
        "gfunp_eval",
        1,
        0,
        &[1, 1],
        &[0, 0],
        vec![s1],
    ));

    // Nest 2: G2(i,j) = G3(j,i) * 2
    let s2 = Statement::assign(id(g2), mul(rf(tr(g3)), Expr::Const(2.0)));
    p.add_nest(nest_with_margins(
        "gfunp_jac",
        1,
        0,
        &[1, 1],
        &[0, 0],
        vec![s2],
    ));

    // Nest 3 (costliest: three streaming references):
    //   G4(i,j) = G4(i,j)*0.5 + G5(j,i)
    let s3 = Statement::assign(id(g4), add(mul(rf(id(g4)), Expr::Const(0.5)), rf(tr(g5))));
    p.add_nest(nest_with_margins(
        "gfunp_homotopy",
        1,
        0,
        &[1, 1],
        &[0, 0],
        vec![s3],
    ));

    // Nest 4: G3(j,i) = G3(j,i) + 3  — reinforces G3's transposed use.
    let s4 = Statement::assign(tr(g3), add(rf(tr(g3)), Expr::Const(3.0)));
    p.add_nest(nest_with_margins(
        "gfunp_norm",
        1,
        0,
        &[1, 1],
        &[0, 0],
        vec![s4],
    ));

    set_iterations(&mut p, 3);
    Kernel {
        name: "gfunp",
        source: "Hompack",
        iterations: 3,
        description: "chained transposed reads across four nests: only combined \
                      loop+layout propagation optimizes every reference",
        program: p,
        paper_params: vec![4096],
        small_params: vec![8],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::{compile, Version};

    #[test]
    fn functional_equivalence_all_versions() {
        let k = build();
        for v in Version::ALL {
            let cv = compile(&k, v);
            let d = ooc_core::max_divergence_from_reference(
                &cv.tiled,
                &k.program,
                &k.small_params,
                &|a, idx| (a.0 as f64) + idx.iter().sum::<i64>() as f64 * 0.5,
            );
            assert_eq!(d, 0.0, "{v:?} diverges");
        }
    }

    #[test]
    fn copt_strictly_best() {
        // The kernel's raison d'être — the paper's ordering:
        // c-opt (46.9) < d-opt (68.0) < l-opt (73.3) < col (100).
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![256], 16);
        let c = ooc_core::simulate(&compile(&k, Version::COpt).tiled, &cfg)
            .result
            .total_time;
        let d = ooc_core::simulate(&compile(&k, Version::DOpt).tiled, &cfg)
            .result
            .total_time;
        let l = ooc_core::simulate(&compile(&k, Version::LOpt).tiled, &cfg)
            .result
            .total_time;
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg)
            .result
            .total_time;
        assert!(c < d, "c {c} vs d {d}");
        assert!(d < l, "d {d} vs l {l}");
        // l-opt helps at most scales; at worst it ties the baseline.
        assert!(l <= col * 1.01, "l {l} vs col {col}");
    }

    #[test]
    fn row_is_worst() {
        let k = build();
        let cfg = ooc_core::ExecConfig::new(vec![256], 16);
        let col = ooc_core::simulate(&compile(&k, Version::Col).tiled, &cfg);
        let row = ooc_core::simulate(&compile(&k, Version::Row).tiled, &cfg);
        assert!(
            row.result.total_time > col.result.total_time,
            "row {} vs col {}",
            row.result.total_time,
            col.result.total_time
        );
    }
}
