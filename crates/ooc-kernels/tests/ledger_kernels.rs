//! Differential provenance-ledger conservation across the full
//! benchmark suite: for every kernel × version × executor (sync,
//! pipelined, parallel, durable, durable-resume), the cause buckets
//! sum **exactly** to the analytic I/O totals — per array, calls and
//! elements alike.

use ooc_core::exec::FunctionalRun;
use ooc_core::recovery::{resume_functional, run_functional_durable, DurabilityConfig, MemMedium};
use ooc_core::{
    exec_parallel, exec_pipelined, run_functional_on, FunctionalConfig, ParallelConfig,
    PipelineConfig,
};
use ooc_ir::ArrayId;
use ooc_kernels::{all_kernels, compile, Kernel, Version};
use ooc_runtime::{is_crashed, FaultConfig, IoCause, LedgerRecorder, MemStore, ProvenanceLedger};

const FRACTION: u64 = 16;

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

fn check(who: &str, ledger: &ProvenanceLedger, run: &FunctionalRun) {
    let stats: Vec<_> = run.profiles.iter().map(|p| p.stats).collect();
    if let Err(e) = ledger.check_conservation(&stats) {
        panic!("{who} [{}]: conservation violated: {e}", ledger.executor);
    }
}

fn fcfg(rec: &LedgerRecorder) -> FunctionalConfig {
    FunctionalConfig::with_fraction(FRACTION).with_ledger(rec.clone())
}

fn for_each_cell(mut f: impl FnMut(&Kernel, Version)) {
    for k in all_kernels() {
        for &v in Version::ALL.iter() {
            f(&k, v);
        }
    }
}

#[test]
fn sync_conserves_for_every_kernel_version() {
    for_each_cell(|k, v| {
        let cv = compile(k, v);
        let rec = LedgerRecorder::new();
        rec.set_run(k.name, v.label());
        let run = run_functional_on(
            &cv.tiled,
            &k.small_params,
            &seed,
            &fcfg(&rec),
            |_, _, len| Ok(MemStore::new(len)),
        )
        .expect("sync run");
        let ledger = rec.take();
        assert_eq!(ledger.executor, "sync");
        check(&format!("{} {}", k.name, v.label()), &ledger, &run);
    });
}

#[test]
fn pipelined_conserves_for_every_kernel_version() {
    for_each_cell(|k, v| {
        let cv = compile(k, v);
        let rec = LedgerRecorder::new();
        let cfg = PipelineConfig {
            functional: fcfg(&rec),
            workers: 2,
            prefetch_depth: 2,
            cache_capacity: Some(128),
            write_behind: true,
        };
        let run = exec_pipelined(&cv.tiled, &k.small_params, &seed, &cfg, |_, _, len| {
            Ok(MemStore::new(len))
        })
        .expect("pipelined run");
        check(&format!("{} {}", k.name, v.label()), &rec.take(), &run.run);
    });
}

#[test]
fn parallel_conserves_for_every_kernel_version() {
    for_each_cell(|k, v| {
        let cv = compile(k, v);
        let rec = LedgerRecorder::new();
        let cfg = ParallelConfig {
            pipeline: PipelineConfig {
                functional: fcfg(&rec),
                workers: 2,
                prefetch_depth: 2,
                cache_capacity: Some(128),
                write_behind: true,
            },
            shards: 2,
        };
        let run = exec_parallel(&cv.tiled, &k.small_params, &seed, &cfg, |_, _, len| {
            Ok(MemStore::new(len))
        })
        .expect("parallel run");
        check(&format!("{} {}", k.name, v.label()), &rec.take(), &run.run);
    });
}

#[test]
fn durable_conserves_for_every_kernel_version() {
    for_each_cell(|k, v| {
        let cv = compile(k, v);
        let rec = LedgerRecorder::new();
        let mut medium = MemMedium::new();
        let out = run_functional_durable(
            &cv.tiled,
            &k.small_params,
            &seed,
            &fcfg(&rec),
            &DurabilityConfig::default(),
            &mut medium,
            &|_| None,
        )
        .expect("durable run");
        let ledger = rec.take();
        assert_eq!(ledger.executor, "durable");
        check(&format!("{} {}", k.name, v.label()), &ledger, &out.run);
        assert!(
            ledger.journal_bytes > 0,
            "{} {}: journal traffic accounted",
            k.name,
            v.label()
        );
    });
}

/// Crash every kernel's col and c-opt versions mid-run, resume, and
/// check the resumed ledger conserves with one replay-write event per
/// rolled-back tile.
#[test]
fn crash_resume_conserves_for_every_kernel() {
    for k in all_kernels() {
        for v in [Version::Col, Version::COpt] {
            let cv = compile(&k, v);
            let dur = DurabilityConfig::default();

            // Learn per-array call counts so the crash lands mid-run.
            let mut base = MemMedium::new();
            let baseline = run_functional_durable(
                &cv.tiled,
                &k.small_params,
                &seed,
                &FunctionalConfig::with_fraction(FRACTION),
                &dur,
                &mut base,
                &|_| Some(FaultConfig::transient(7, 0)),
            )
            .expect("baseline");
            let calls: Vec<u64> = baseline
                .fault_handles
                .iter()
                .map(|h| h.as_ref().expect("wrapped").calls())
                .collect();
            let (target, &tcalls) = calls
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .expect("arrays");
            assert!(tcalls > 1, "{}: no store traffic to crash", k.name);

            let mut medium = MemMedium::new();
            let err = run_functional_durable(
                &cv.tiled,
                &k.small_params,
                &seed,
                &FunctionalConfig::with_fraction(FRACTION),
                &dur,
                &mut medium,
                &|a| (a == target).then(|| FaultConfig::crash_at(tcalls / 2)),
            )
            .expect_err("crash injected");
            assert!(is_crashed(&err), "{}: unexpected error: {err}", k.name);

            let rec = LedgerRecorder::new();
            rec.set_run(k.name, v.label());
            let out = resume_functional(
                &cv.tiled,
                &k.small_params,
                &seed,
                &fcfg(&rec),
                &dur,
                &mut medium,
                &|_| None,
            )
            .expect("resume");
            let ledger = rec.take();
            assert_eq!(ledger.executor, "durable-resume");
            check(
                &format!("{} {} resume", k.name, v.label()),
                &ledger,
                &out.run,
            );
            let replays = ledger
                .events
                .iter()
                .filter(|e| e.cause == IoCause::ReplayWrite)
                .count() as u64;
            assert_eq!(
                replays,
                out.report.rolled_back_tiles,
                "{} {}: one replay-write event per rolled-back tile",
                k.name,
                v.label()
            );
        }
    }
}
