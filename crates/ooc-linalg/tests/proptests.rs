//! Property-based tests for the exact linear algebra kernel.

use ooc_linalg::{
    column_hnf, complete_last_column, extended_gcd, gcd, gcd_slice, lex_positive_i64, primitive,
    Affine, Matrix, Polyhedron, Rational,
};
use proptest::prelude::*;

fn small_int() -> impl Strategy<Value = i64> {
    -20i64..=20
}

fn rational() -> impl Strategy<Value = Rational> {
    (small_int(), 1i64..=12).prop_map(|(n, d)| Rational::new(i128::from(n), i128::from(d)))
}

fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(small_int(), n * n).prop_map(move |v| Matrix::from_i64(n, n, &v))
}

proptest! {
    #[test]
    fn rational_field_axioms(a in rational(), b in rational(), c in rational()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + Rational::ZERO, a);
        prop_assert_eq!(a * Rational::ONE, a);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !a.is_zero() {
            prop_assert_eq!(a * a.recip(), Rational::ONE);
        }
    }

    #[test]
    fn rational_ordering_consistent(a in rational(), b in rational()) {
        // Exactly one of <, ==, > holds, and it matches subtraction sign.
        let diff = a - b;
        prop_assert_eq!(a > b, diff.signum() > 0);
        prop_assert_eq!(a == b, diff.is_zero());
    }

    #[test]
    fn floor_ceil_bracket(a in rational()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Rational::from_int(f) <= a);
        prop_assert!(a <= Rational::from_int(c));
        prop_assert!(c - f <= 1);
        prop_assert_eq!(c == f, a.is_integer());
    }

    #[test]
    fn extended_gcd_bezout(a in -1000i64..=1000, b in -1000i64..=1000) {
        let (g, x, y) = extended_gcd(a, b);
        prop_assert_eq!(g, gcd(a, b));
        prop_assert_eq!(a * x + b * y, g);
        prop_assert!(g >= 0);
    }

    #[test]
    fn primitive_has_unit_gcd(v in proptest::collection::vec(small_int(), 1..6)) {
        let p = primitive(&v);
        if v.iter().any(|&x| x != 0) {
            prop_assert_eq!(gcd_slice(&p), 1);
            prop_assert!(lex_positive_i64(&p));
            // Same direction: cross-multiplied entries agree.
            let g = gcd_slice(&v);
            for (orig, prim) in v.iter().zip(&p) {
                prop_assert_eq!((orig / g).abs(), prim.abs());
            }
        } else {
            prop_assert_eq!(p, v);
        }
    }

    #[test]
    fn inverse_roundtrip(m in square_matrix(3)) {
        if let Some(inv) = m.inverse() {
            prop_assert_eq!(&(&m * &inv), &Matrix::identity(3));
            prop_assert_eq!(&(&inv * &m), &Matrix::identity(3));
            prop_assert!(!m.determinant().is_zero());
        } else {
            prop_assert!(m.determinant().is_zero());
        }
    }

    #[test]
    fn determinant_multiplicative(a in square_matrix(3), b in square_matrix(3)) {
        prop_assert_eq!((&a * &b).determinant(), a.determinant() * b.determinant());
    }

    #[test]
    fn nullspace_annihilates(
        rows in 1usize..4,
        cols in 1usize..5,
        seed in proptest::collection::vec(small_int(), 16),
    ) {
        let entries: Vec<i64> = seed.iter().cycle().take(rows * cols).copied().collect();
        let m = Matrix::from_i64(rows, cols, &entries);
        let ns = m.nullspace();
        prop_assert_eq!(ns.len(), cols - m.rank());
        for v in &ns {
            for x in m.mul_vec(v) {
                prop_assert!(x.is_zero());
            }
        }
        for v in m.integer_nullspace() {
            prop_assert_eq!(gcd_slice(&v), 1);
            let rv: Vec<Rational> = v.iter().map(|&x| Rational::from(x)).collect();
            for x in m.mul_vec(&rv) {
                prop_assert!(x.is_zero());
            }
        }
    }

    #[test]
    fn hnf_factorization(m in square_matrix(3)) {
        let r = column_hnf(&m);
        prop_assert!(r.u.is_unimodular());
        prop_assert_eq!(&(&m * &r.u), &r.h);
    }

    #[test]
    fn completion_last_column(v in proptest::collection::vec(small_int(), 1..5)) {
        prop_assume!(v.iter().any(|&x| x != 0));
        let q = complete_last_column(&v);
        prop_assert!(q.is_unimodular());
        let p = primitive(&v);
        let last = q.col(q.cols() - 1);
        for (i, &x) in p.iter().enumerate() {
            prop_assert_eq!(last[i], Rational::from(x));
        }
    }

    #[test]
    fn fm_projection_sound(
        lo0 in -5i64..5, hi0 in -5i64..5,
        lo1 in -5i64..5, hi1 in -5i64..5,
        a in -3i64..=3, b in -3i64..=3, c in -8i64..=8,
    ) {
        // Region: box plus one extra halfspace a*x0 + b*x1 + c >= 0.
        let mut p = Polyhedron::universe(2, 0);
        p.add_var_range(0, lo0, hi0);
        p.add_var_range(1, lo1, hi1);
        let mut extra = Affine::zero(2, 0);
        extra.var_coeffs[0] = Rational::from(a);
        extra.var_coeffs[1] = Rational::from(b);
        extra.constant = Rational::from(c);
        p.add_ge0(extra);

        // FM-eliminating x1 must keep exactly the x0 values for which some
        // x1 exists (projection is exact for rationals; for the integer
        // check we verify soundness: enumerated points satisfy membership).
        let proj = p.eliminate(1);
        for x0 in lo0..=hi0 {
            let feasible = (lo1..=hi1).any(|x1| p.contains(&[x0, x1], &[]));
            if feasible {
                prop_assert!(proj.contains(&[x0, 0], &[]), "projection lost x0={x0}");
            }
        }
    }

    #[test]
    fn loop_bounds_enumerate_box(n0 in 1i64..6, n1 in 1i64..6) {
        let mut p = Polyhedron::universe(2, 0);
        p.add_var_range(0, 1, n0);
        p.add_var_range(1, 1, n1);
        let pts = p.enumerate(&[]);
        prop_assert_eq!(pts.len() as i64, n0 * n1);
        // Lexicographic order.
        for w in pts.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn unimodular_transform_preserves_point_count(
        n in 1i64..6,
        kind in 0usize..4,
    ) {
        let mut p = Polyhedron::universe(2, 0);
        p.add_var_range(0, 1, n);
        p.add_var_range(1, 1, n);
        let q = match kind {
            0 => Matrix::from_i64(2, 2, &[0, 1, 1, 0]),   // interchange
            1 => Matrix::from_i64(2, 2, &[1, 0, 1, 1]),   // skew
            2 => Matrix::from_i64(2, 2, &[1, 0, -1, 1]),  // reverse skew
            _ => Matrix::from_i64(2, 2, &[1, 1, 0, 1]),   // outer skew
        };
        let p2 = p.transform(&q);
        // Unimodular transforms are bijections on integer points.
        prop_assert_eq!(p2.enumerate(&[]).len() as i64, n * n);
    }
}
