//! Column-style Hermite normal form for integer matrices.
//!
//! Used to validate and construct unimodular completions: for an
//! integer matrix `A` we compute `H = A · U` with `U` unimodular and
//! `H` lower-triangular with non-negative entries below-left of
//! positive pivots. The unimodular factor `U` is exactly the kind of
//! basis change the completion method of Bik & Wijshoff builds on.

use crate::matrix::Matrix;
use crate::rational::Rational;

/// Result of a column Hermite normal form computation: `h = a * u`
/// with `u` unimodular.
#[derive(Debug, Clone)]
pub struct HnfResult {
    /// The Hermite normal form (lower triangular, pivots positive).
    pub h: Matrix,
    /// The accumulated unimodular column-operation matrix.
    pub u: Matrix,
}

/// Computes the column-style Hermite normal form of an integer matrix.
///
/// # Panics
/// Panics if `a` has non-integer entries.
#[must_use]
pub fn column_hnf(a: &Matrix) -> HnfResult {
    assert!(a.is_integer(), "HNF requires an integer matrix");
    let rows = a.rows();
    let cols = a.cols();
    let mut h = a.clone();
    let mut u = Matrix::identity(cols);

    let mut pivot_col = 0;
    for r in 0..rows {
        if pivot_col >= cols {
            break;
        }
        // Zero out entries to the right of the pivot column in row r by
        // pairwise gcd column combinations.
        while let Some(j) = (pivot_col + 1..cols).find(|&j| !h[(r, j)].is_zero()) {
            let p = h[(r, pivot_col)].as_integer().expect("integer entry");
            let q = h[(r, j)].as_integer().expect("integer entry");
            let (g, x, y) = crate::gcd::extended_gcd(
                i64::try_from(p).expect("entry overflow"),
                i64::try_from(q).expect("entry overflow"),
            );
            let g = i128::from(g);
            let (x, y) = (i128::from(x), i128::from(y));
            // New pivot column = x*colp + y*colj; new colj = -(q/g)*colp + (p/g)*colj.
            // The 2x2 block [[x, -(q/g)], [y, p/g]] has determinant
            // x*(p/g) + y*(q/g) = (x*p + y*q)/g = 1, so it is unimodular.
            let (mp, mj) = (-(q / g), p / g);
            combine_cols(&mut h, pivot_col, j, x, y, mp, mj);
            combine_cols(&mut u, pivot_col, j, x, y, mp, mj);
        }
        if h[(r, pivot_col)].is_zero() {
            // No pivot available in this row; move to the next row with
            // the same pivot column.
            continue;
        }
        // Make the pivot positive.
        if h[(r, pivot_col)].signum() < 0 {
            negate_col(&mut h, pivot_col);
            negate_col(&mut u, pivot_col);
        }
        // Reduce the columns left of the pivot modulo the pivot.
        let pivot = h[(r, pivot_col)].as_integer().expect("integer entry");
        for j in 0..pivot_col {
            let e = h[(r, j)].as_integer().expect("integer entry");
            let q = e.div_euclid(pivot);
            if q != 0 {
                sub_col_multiple(&mut h, j, pivot_col, q);
                sub_col_multiple(&mut u, j, pivot_col, q);
            }
        }
        pivot_col += 1;
    }

    HnfResult { h, u }
}

/// `colA, colB <- x*colA + y*colB, mp*colA + mj*colB` applied column-wise.
fn combine_cols(m: &mut Matrix, a: usize, b: usize, x: i128, y: i128, mp: i128, mj: i128) {
    let (x, y) = (Rational::from_int(x), Rational::from_int(y));
    let (mp, mj) = (Rational::from_int(mp), Rational::from_int(mj));
    for r in 0..m.rows() {
        let va = m[(r, a)];
        let vb = m[(r, b)];
        m[(r, a)] = x * va + y * vb;
        m[(r, b)] = mp * va + mj * vb;
    }
}

fn negate_col(m: &mut Matrix, c: usize) {
    for r in 0..m.rows() {
        let v = m[(r, c)];
        m[(r, c)] = -v;
    }
}

/// `colJ <- colJ - q * colP`.
fn sub_col_multiple(m: &mut Matrix, j: usize, p: usize, q: i128) {
    let q = Rational::from_int(q);
    for r in 0..m.rows() {
        let sub = q * m[(r, p)];
        m[(r, j)] -= sub;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, e: &[i64]) -> Matrix {
        Matrix::from_i64(rows, cols, e)
    }

    fn check(a: &Matrix) {
        let HnfResult { h, u } = column_hnf(a);
        assert!(u.is_unimodular(), "U not unimodular:\n{u}");
        assert_eq!(&(a * &u), &h, "A*U != H");
        // Lower triangular: entries right of the staircase are zero.
        let mut max_pivot_col: isize = -1;
        for r in 0..h.rows() {
            let nonzero: Vec<usize> = (0..h.cols()).filter(|&c| !h[(r, c)].is_zero()).collect();
            if let Some(&last) = nonzero.last() {
                assert!(
                    last as isize <= max_pivot_col + 1,
                    "row {r} extends right of the staircase:\n{h}"
                );
                if last as isize == max_pivot_col + 1 {
                    max_pivot_col = last as isize;
                }
            }
        }
    }

    #[test]
    fn hnf_simple() {
        check(&m(2, 2, &[2, 4, 6, 8]));
        check(&m(2, 2, &[0, 1, 1, 0]));
        check(&m(2, 2, &[1, 0, 0, 1]));
    }

    #[test]
    fn hnf_rectangular() {
        check(&m(2, 3, &[1, 2, 3, 4, 5, 6]));
        check(&m(3, 2, &[3, 1, 4, 1, 5, 9]));
    }

    #[test]
    fn hnf_rank_deficient() {
        check(&m(2, 2, &[2, 4, 1, 2]));
        check(&m(3, 3, &[1, 2, 3, 2, 4, 6, 3, 6, 9]));
    }

    #[test]
    fn hnf_with_negatives() {
        check(&m(2, 2, &[-3, 7, 5, -2]));
        check(&m(3, 3, &[0, -1, 2, 4, 0, -6, 1, 1, 1]));
    }

    #[test]
    fn hnf_of_row_vector() {
        let a = m(1, 3, &[6, 10, 15]);
        let HnfResult { h, u } = column_hnf(&a);
        assert!(u.is_unimodular());
        // gcd(6,10,15) = 1 lands in the pivot; rest of the row is zero.
        assert_eq!(h[(0, 0)].as_integer(), Some(1));
        assert!(h[(0, 1)].is_zero() && h[(0, 2)].is_zero());
    }
}
