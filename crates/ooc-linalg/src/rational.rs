//! Exact rational arithmetic.
//!
//! The compiler algorithms in this workspace (kernel computation,
//! matrix inversion, Fourier–Motzkin elimination) must be *exact*:
//! a hyperplane vector of `(1, -1)` and one of `(0.9999, -1.0001)`
//! describe completely different file layouts. All linear algebra is
//! therefore carried out over `Rational`, a normalized fraction of
//! `i128` components.
//!
//! `i128` gives enormous headroom: the matrices manipulated here are
//! small (loop depths ≤ 8, array ranks ≤ 4) with entries that start as
//! small integers, so intermediate growth during Gaussian elimination
//! or Fourier–Motzkin stays far below the overflow threshold. All
//! arithmetic nonetheless uses checked operations and panics loudly on
//! overflow rather than wrapping silently.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Greatest common divisor of two `i128`s (always non-negative).
#[must_use]
pub fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1` (zero is represented as `0/1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational from a numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd_i128(num, den);
        if g == 0 {
            return Self::ZERO;
        }
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates a rational from an integer.
    #[must_use]
    pub const fn from_int(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }

    /// The numerator of the normalized fraction (sign-carrying).
    #[must_use]
    pub const fn num(&self) -> i128 {
        self.num
    }

    /// The denominator of the normalized fraction (always positive).
    #[must_use]
    pub const fn den(&self) -> i128 {
        self.den
    }

    /// Returns `true` if this value is zero.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if this value is a (possibly negative) integer.
    #[must_use]
    pub const fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns the integer value if this rational is an integer.
    #[must_use]
    pub const fn as_integer(&self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Sign of the value: -1, 0, or 1.
    #[must_use]
    pub const fn signum(&self) -> i128 {
        self.num.signum()
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    #[must_use]
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Floor: the greatest integer `<= self`.
    #[must_use]
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling: the least integer `>= self`.
    #[must_use]
    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Approximate value as `f64` (for display / heuristics only).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn checked_add(self, rhs: Self) -> Option<Self> {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d).
        let g = gcd_i128(self.den, rhs.den);
        let l = (self.den / g).checked_mul(rhs.den)?;
        let left = self.num.checked_mul(l / self.den)?;
        let right = rhs.num.checked_mul(l / rhs.den)?;
        Some(Rational::new(left.checked_add(right)?, l))
    }

    fn checked_mul_impl(self, rhs: Self) -> Option<Self> {
        // Cross-reduce before multiplying to delay overflow.
        let g1 = gcd_i128(self.num, rhs.den);
        let g2 = gcd_i128(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rational::new(num, den))
    }
}

impl Default for Rational {
    fn default() -> Self {
        Self::ZERO
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(i128::from(v))
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_int(i128::from(v))
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Self) -> Self {
        self.checked_add(rhs).expect("rational addition overflow")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Self) -> Self {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Self) -> Self {
        self.checked_mul_impl(rhs)
            .expect("rational multiplication overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b == a * (1/b) exactly
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Self {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        let left = self
            .num
            .checked_mul(other.den)
            .expect("rational comparison overflow");
        let right = other
            .num
            .checked_mul(self.den)
            .expect("rational comparison overflow");
        left.cmp(&right)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
        assert_eq!(Rational::new(0, -5).den(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half + third, Rational::new(5, 6));
        assert_eq!(half - third, Rational::new(1, 6));
        assert_eq!(half * third, Rational::new(1, 6));
        assert_eq!(half / third, Rational::new(3, 2));
        assert_eq!(-half, Rational::new(-1, 2));
    }

    #[test]
    fn comparison() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert!(Rational::new(7, 4) > Rational::ONE);
        assert_eq!(
            Rational::new(3, 6).cmp(&Rational::new(1, 2)),
            Ordering::Equal
        );
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
        assert_eq!(Rational::new(-6, 3).floor(), -2);
        assert_eq!(Rational::new(-6, 3).ceil(), -2);
    }

    #[test]
    fn recip() {
        assert_eq!(Rational::new(3, 4).recip(), Rational::new(4, 3));
        assert_eq!(Rational::new(-3, 4).recip(), Rational::new(-4, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn integer_queries() {
        assert!(Rational::from_int(-9).is_integer());
        assert_eq!(Rational::from_int(-9).as_integer(), Some(-9));
        assert!(!Rational::new(1, 2).is_integer());
        assert_eq!(Rational::new(1, 2).as_integer(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(-10, 4).to_string(), "-5/2");
        assert_eq!(Rational::from_int(3).to_string(), "3");
    }
}
