//! Lexicographic order utilities for dependence legality.
//!
//! A loop transformation `T` is legal iff for every dependence
//! distance vector `d` of the nest, `T·d` remains lexicographically
//! positive — the transformed source iteration still executes before
//! the transformed sink iteration.

use crate::matrix::Matrix;
use crate::rational::Rational;

/// `true` iff `v` is lexicographically positive (first nonzero entry
/// is positive). The zero vector is *not* positive.
#[must_use]
pub fn lex_positive(v: &[Rational]) -> bool {
    for x in v {
        match x.signum() {
            0 => continue,
            s => return s > 0,
        }
    }
    false
}

/// `true` iff `v` is lexicographically non-negative (zero vector
/// included).
#[must_use]
pub fn lex_nonnegative(v: &[Rational]) -> bool {
    for x in v {
        match x.signum() {
            0 => continue,
            s => return s > 0,
        }
    }
    true
}

/// Integer-slice variants.
#[must_use]
pub fn lex_positive_i64(v: &[i64]) -> bool {
    v.iter().find(|&&x| x != 0).is_some_and(|&x| x > 0)
}

/// `true` iff the integer vector is lexicographically non-negative.
#[must_use]
pub fn lex_nonnegative_i64(v: &[i64]) -> bool {
    v.iter().find(|&&x| x != 0).is_none_or(|&x| x > 0)
}

/// Checks that the loop transformation `t` preserves every dependence
/// distance vector in `distances`: each `t·d` must stay
/// lexicographically positive. An empty set of dependences is always
/// legal.
#[must_use]
pub fn transformation_legal(t: &Matrix, distances: &[Vec<i64>]) -> bool {
    distances.iter().all(|d| {
        assert_eq!(d.len(), t.cols(), "distance vector dimension mismatch");
        lex_positive(&t.mul_vec_i64(d))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: &[i64]) -> Vec<Rational> {
        v.iter().map(|&x| Rational::from(x)).collect()
    }

    #[test]
    fn lex_positive_cases() {
        assert!(lex_positive(&r(&[1, -5])));
        assert!(lex_positive(&r(&[0, 1])));
        assert!(!lex_positive(&r(&[0, 0])));
        assert!(!lex_positive(&r(&[-1, 100])));
        assert!(!lex_positive(&r(&[0, -1])));
    }

    #[test]
    fn lex_nonnegative_cases() {
        assert!(lex_nonnegative(&r(&[0, 0])));
        assert!(lex_nonnegative(&r(&[0, 2])));
        assert!(!lex_nonnegative(&r(&[0, -2])));
    }

    #[test]
    fn i64_variants_agree() {
        for v in [
            vec![1, -5],
            vec![0, 0],
            vec![-1, 3],
            vec![0, 2],
            vec![0, -2],
        ] {
            assert_eq!(lex_positive_i64(&v), lex_positive(&r(&v)));
            assert_eq!(lex_nonnegative_i64(&v), lex_nonnegative(&r(&v)));
        }
    }

    #[test]
    fn interchange_legality() {
        let interchange = Matrix::from_i64(2, 2, &[0, 1, 1, 0]);
        // Distance (1, 0): interchange maps it to (0, 1) — still legal.
        assert!(transformation_legal(&interchange, &[vec![1, 0]]));
        // Distance (1, -1): interchange maps it to (-1, 1) — illegal.
        assert!(!transformation_legal(&interchange, &[vec![1, -1]]));
        // No dependences: always legal.
        assert!(transformation_legal(&interchange, &[]));
    }

    #[test]
    fn skew_makes_interchange_legal() {
        // Classic: skewing T = [[1,0],[1,1]] maps (1,-1) to (1,0).
        let skew = Matrix::from_i64(2, 2, &[1, 0, 1, 1]);
        assert!(transformation_legal(&skew, &[vec![1, -1]]));
    }
}
