//! Dense matrices over [`Rational`] with the exact operations the
//! transformation framework needs: products, inverses, determinants,
//! rank, and (integer) nullspace bases.
//!
//! Matrices here are tiny — loop-transformation matrices are `k × k`
//! for loop depth `k ≤ 8`, access matrices are `m × k` for array rank
//! `m ≤ 4` — so a simple row-major `Vec<Rational>` with textbook
//! Gauss–Jordan elimination is both the clearest and, at this size,
//! the fastest reasonable representation.

use crate::gcd::{lcm, primitive};
use crate::rational::Rational;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense `rows × cols` matrix of exact rationals.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl Matrix {
    /// Creates a zero matrix.
    #[must_use]
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Rational::ONE;
        }
        m
    }

    /// Creates a matrix from row-major integer entries.
    ///
    /// # Panics
    /// Panics if `entries.len() != rows * cols`.
    #[must_use]
    pub fn from_i64(rows: usize, cols: usize, entries: &[i64]) -> Self {
        assert_eq!(
            entries.len(),
            rows * cols,
            "entry count {} does not match {rows}x{cols}",
            entries.len()
        );
        Matrix {
            rows,
            cols,
            data: entries.iter().map(|&e| Rational::from(e)).collect(),
        }
    }

    /// Creates a matrix from row-major rational entries.
    ///
    /// # Panics
    /// Panics if `entries.len() != rows * cols`.
    #[must_use]
    pub fn from_rationals(rows: usize, cols: usize, entries: Vec<Rational>) -> Self {
        assert_eq!(entries.len(), rows * cols);
        Matrix {
            rows,
            cols,
            data: entries,
        }
    }

    /// Creates a matrix from rows of integers.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    #[must_use]
    pub fn from_rows(rows: &[Vec<i64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row.iter().map(|&e| Rational::from(e)));
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` for a square matrix.
    #[must_use]
    pub const fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Extracts row `i` as a vector.
    #[must_use]
    pub fn row(&self, i: usize) -> Vec<Rational> {
        assert!(i < self.rows);
        self.data[i * self.cols..(i + 1) * self.cols].to_vec()
    }

    /// Extracts column `j` as a vector.
    #[must_use]
    pub fn col(&self, j: usize) -> Vec<Rational> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Replaces column `j` with `v`.
    ///
    /// # Panics
    /// Panics if `v.len() != rows`.
    pub fn set_col(&mut self, j: usize, v: &[Rational]) {
        assert_eq!(v.len(), self.rows);
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zero(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != cols`.
    #[must_use]
    pub fn mul_vec(&self, v: &[Rational]) -> Vec<Rational> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|i| (0..self.cols).fold(Rational::ZERO, |acc, j| acc + self[(i, j)] * v[j]))
            .collect()
    }

    /// Matrix–integer-vector product as exact rationals.
    #[must_use]
    pub fn mul_vec_i64(&self, v: &[i64]) -> Vec<Rational> {
        let rv: Vec<Rational> = v.iter().map(|&x| Rational::from(x)).collect();
        self.mul_vec(&rv)
    }

    /// Row-vector–matrix product `v^T * self`.
    ///
    /// # Panics
    /// Panics if `v.len() != rows`.
    #[must_use]
    pub fn vec_mul(&self, v: &[Rational]) -> Vec<Rational> {
        assert_eq!(v.len(), self.rows, "dimension mismatch in vec_mul");
        (0..self.cols)
            .map(|j| (0..self.rows).fold(Rational::ZERO, |acc, i| acc + v[i] * self[(i, j)]))
            .collect()
    }

    /// Determinant via fraction-free-ish Gaussian elimination.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn determinant(&self) -> Rational {
        assert!(self.is_square(), "determinant of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut det = Rational::ONE;
        for col in 0..n {
            // Partial pivot: any nonzero entry works for exact arithmetic.
            let Some(pivot_row) = (col..n).find(|&r| !a[(r, col)].is_zero()) else {
                return Rational::ZERO;
            };
            if pivot_row != col {
                a.swap_rows(pivot_row, col);
                det = -det;
            }
            let pivot = a[(col, col)];
            det *= pivot;
            for r in col + 1..n {
                let factor = a[(r, col)] / pivot;
                if factor.is_zero() {
                    continue;
                }
                for c in col..n {
                    let sub = factor * a[(col, c)];
                    a[(r, c)] -= sub;
                }
            }
        }
        det
    }

    /// The inverse, or `None` if singular.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn inverse(&self) -> Option<Matrix> {
        assert!(self.is_square(), "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            let pivot_row = (col..n).find(|&r| !a[(r, col)].is_zero())?;
            if pivot_row != col {
                a.swap_rows(pivot_row, col);
                inv.swap_rows(pivot_row, col);
            }
            let pivot = a[(col, col)];
            for c in 0..n {
                a[(col, c)] /= pivot;
                inv[(col, c)] /= pivot;
            }
            for r in 0..n {
                if r == col || a[(r, col)].is_zero() {
                    continue;
                }
                let factor = a[(r, col)];
                for c in 0..n {
                    let s1 = factor * a[(col, c)];
                    a[(r, c)] -= s1;
                    let s2 = factor * inv[(col, c)];
                    inv[(r, c)] -= s2;
                }
            }
        }
        Some(inv)
    }

    /// Rank via Gaussian elimination.
    #[must_use]
    pub fn rank(&self) -> usize {
        let (reduced, pivots) = self.rref();
        let _ = reduced;
        pivots.len()
    }

    /// Reduced row-echelon form; returns `(rref, pivot_columns)`.
    #[must_use]
    pub fn rref(&self) -> (Matrix, Vec<usize>) {
        let mut a = self.clone();
        let mut pivots = Vec::new();
        let mut row = 0;
        for col in 0..a.cols {
            if row >= a.rows {
                break;
            }
            let Some(pivot_row) = (row..a.rows).find(|&r| !a[(r, col)].is_zero()) else {
                continue;
            };
            a.swap_rows(pivot_row, row);
            let pivot = a[(row, col)];
            for c in 0..a.cols {
                a[(row, c)] /= pivot;
            }
            for r in 0..a.rows {
                if r == row || a[(r, col)].is_zero() {
                    continue;
                }
                let factor = a[(r, col)];
                for c in 0..a.cols {
                    let s = factor * a[(row, c)];
                    a[(r, c)] -= s;
                }
            }
            pivots.push(col);
            row += 1;
        }
        (a, pivots)
    }

    /// A rational basis of the (right) nullspace `{ x : self * x = 0 }`.
    #[must_use]
    pub fn nullspace(&self) -> Vec<Vec<Rational>> {
        let (rref, pivots) = self.rref();
        let free: Vec<usize> = (0..self.cols).filter(|c| !pivots.contains(c)).collect();
        let mut basis = Vec::with_capacity(free.len());
        for &fc in &free {
            let mut v = vec![Rational::ZERO; self.cols];
            v[fc] = Rational::ONE;
            for (r, &pc) in pivots.iter().enumerate() {
                v[pc] = -rref[(r, fc)];
            }
            basis.push(v);
        }
        basis
    }

    /// A basis of the nullspace scaled to primitive integer vectors
    /// (each vector's entries have gcd 1, first nonzero entry positive).
    ///
    /// This is the `Ker{...}` operation of the paper's relations (1)
    /// and (2): the candidates from which layouts and loop-transform
    /// columns are chosen.
    #[must_use]
    pub fn integer_nullspace(&self) -> Vec<Vec<i64>> {
        self.nullspace()
            .into_iter()
            .map(|v| {
                let scale = v.iter().fold(1i64, |acc, r| {
                    lcm(acc, i64::try_from(r.den()).expect("den overflow"))
                });
                let ints: Vec<i64> = v
                    .iter()
                    .map(|r| {
                        i64::try_from(r.num() * i128::from(scale) / r.den())
                            .expect("nullspace entry overflow")
                    })
                    .collect();
                primitive(&ints)
            })
            .collect()
    }

    /// Returns entries as `i64` if *every* entry is an integer in range.
    #[must_use]
    pub fn to_i64(&self) -> Option<Vec<i64>> {
        self.data
            .iter()
            .map(|r| r.as_integer().and_then(|v| i64::try_from(v).ok()))
            .collect()
    }

    /// Returns `true` if all entries are integers.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        self.data.iter().all(Rational::is_integer)
    }

    /// Returns `true` if the matrix is square, integer, and has
    /// determinant ±1 (i.e. is unimodular).
    #[must_use]
    pub fn is_unimodular(&self) -> bool {
        self.is_square() && self.is_integer() && self.determinant().abs() == Rational::ONE
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// Swaps two columns in place.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for r in 0..self.rows {
            self.data.swap(r * self.cols + a, r * self.cols + b);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Rational;
    fn index(&self, (r, c): (usize, usize)) -> &Rational {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Rational {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Matrix {
    fn fmt_rows(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_rows(f)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_rows(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, e: &[i64]) -> Matrix {
        Matrix::from_i64(rows, cols, e)
    }

    #[test]
    fn identity_and_product() {
        let a = m(2, 2, &[1, 2, 3, 4]);
        let i = Matrix::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
        let b = m(2, 2, &[0, 1, 1, 0]);
        assert_eq!(&a * &b, m(2, 2, &[2, 1, 4, 3]));
    }

    #[test]
    fn rectangular_product() {
        let a = m(2, 3, &[1, 0, 2, 0, 1, 1]);
        let b = m(3, 2, &[1, 1, 2, 0, 0, 3]);
        assert_eq!(&a * &b, m(2, 2, &[1, 7, 2, 3]));
    }

    #[test]
    fn determinant_cases() {
        assert_eq!(m(2, 2, &[1, 2, 3, 4]).determinant(), Rational::from(-2i64));
        assert_eq!(m(2, 2, &[0, 1, 1, 0]).determinant(), Rational::from(-1i64));
        assert_eq!(m(2, 2, &[1, 2, 2, 4]).determinant(), Rational::ZERO);
        assert_eq!(
            m(3, 3, &[2, 0, 0, 0, 3, 0, 0, 0, 4]).determinant(),
            Rational::from(24i64)
        );
        assert_eq!(Matrix::identity(5).determinant(), Rational::ONE);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = m(3, 3, &[1, 2, 0, 0, 1, 0, 2, 0, 1]);
        let inv = a.inverse().expect("invertible");
        assert_eq!(&a * &inv, Matrix::identity(3));
        assert_eq!(&inv * &a, Matrix::identity(3));
    }

    #[test]
    fn singular_has_no_inverse() {
        assert!(m(2, 2, &[1, 2, 2, 4]).inverse().is_none());
        assert!(m(2, 2, &[0, 0, 0, 0]).inverse().is_none());
    }

    #[test]
    fn rank_cases() {
        assert_eq!(m(2, 2, &[1, 2, 2, 4]).rank(), 1);
        assert_eq!(Matrix::identity(4).rank(), 4);
        assert_eq!(Matrix::zero(3, 3).rank(), 0);
        assert_eq!(m(2, 3, &[1, 0, 2, 0, 1, 1]).rank(), 2);
    }

    #[test]
    fn nullspace_annihilates() {
        let a = m(2, 3, &[1, 2, 3, 2, 4, 6]);
        let ns = a.nullspace();
        assert_eq!(ns.len(), 2); // rank 1, 3 cols
        for v in &ns {
            for x in a.mul_vec(v) {
                assert!(x.is_zero());
            }
        }
    }

    #[test]
    fn integer_nullspace_is_primitive() {
        // Ker of the row vector (2, 4): spanned by (2, -1) after scaling.
        let a = m(1, 2, &[2, 4]);
        let ns = a.integer_nullspace();
        assert_eq!(ns, vec![vec![2, -1]]);
    }

    #[test]
    fn integer_nullspace_column_major_example() {
        // Paper §3.2.3: Ker{(0, 1)^T as 2x1}: column vector (0,1) viewed as
        // the 2x1 matrix times scalar => kernel of (0,1)·x over row vectors.
        // (g1,g2) in Ker{ [0;1] } means (g1,g2) with g1*0 + g2*1 = 0 as a
        // row-vector condition => represent as matrix with that column as a
        // row: [0 1] x = 0 => x = (1, 0): the row-major layout.
        let a = m(1, 2, &[0, 1]);
        assert_eq!(a.integer_nullspace(), vec![vec![1, 0]]);
        let b = m(1, 2, &[1, 0]);
        assert_eq!(b.integer_nullspace(), vec![vec![0, 1]]);
    }

    #[test]
    fn unimodular_checks() {
        assert!(m(2, 2, &[0, 1, 1, 0]).is_unimodular());
        assert!(m(2, 2, &[1, 1, 0, 1]).is_unimodular());
        assert!(!m(2, 2, &[2, 0, 0, 1]).is_unimodular());
        assert!(!m(2, 2, &[1, 2, 2, 4]).is_unimodular());
    }

    #[test]
    fn vec_products() {
        let a = m(2, 2, &[0, 1, 1, 0]);
        let v = [Rational::from(3i64), Rational::from(7i64)];
        assert_eq!(
            a.mul_vec(&v),
            vec![Rational::from(7i64), Rational::from(3i64)]
        );
        assert_eq!(
            a.vec_mul(&v),
            vec![Rational::from(7i64), Rational::from(3i64)]
        );
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn row_col_access() {
        let a = m(2, 3, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(a.row(1), vec![4i64.into(), 5i64.into(), 6i64.into()]);
        assert_eq!(a.col(2), vec![3i64.into(), 6i64.into()]);
    }
}
