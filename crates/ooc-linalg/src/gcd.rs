//! Integer gcd utilities used throughout the transformation framework.
//!
//! The paper's kernel-selection rule ("choose the kernel vector whose
//! elements have minimum gcd") and the Bik–Wijshoff completion both
//! reduce to extended-gcd computations on small integer vectors.

/// Greatest common divisor (always non-negative; `gcd(0, 0) == 0`).
#[must_use]
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    i64::try_from(a).expect("gcd overflow (|i64::MIN| input pair)")
}

/// Least common multiple (non-negative; `lcm(x, 0) == 0`).
#[must_use]
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).checked_mul(b).expect("lcm overflow").abs()
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y == g == gcd(a, b)`
/// and `g >= 0`.
#[must_use]
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        return if a < 0 { (-a, -1, 0) } else { (a, 1, 0) };
    }
    let (g, x1, y1) = extended_gcd(b, a % b);
    (g, y1, x1 - (a / b) * y1)
}

/// Gcd of a slice (0 for an empty or all-zero slice).
#[must_use]
pub fn gcd_slice(v: &[i64]) -> i64 {
    v.iter().fold(0, |acc, &x| gcd(acc, x))
}

/// Divides a vector by the gcd of its entries, producing a *primitive*
/// vector (entries with gcd 1). The zero vector is returned unchanged.
/// The sign convention makes the first nonzero entry positive, so that
/// e.g. `(0, -2)` and `(0, 4)` both normalize to `(0, 1)` — the same
/// hyperplane family.
#[must_use]
pub fn primitive(v: &[i64]) -> Vec<i64> {
    let g = gcd_slice(v);
    if g == 0 {
        return v.to_vec();
    }
    let mut out: Vec<i64> = v.iter().map(|&x| x / g).collect();
    if let Some(&first) = out.iter().find(|&&x| x != 0) {
        if first < 0 {
            for x in &mut out {
                *x = -*x;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(1, 1), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    fn extended_gcd_identity() {
        for (a, b) in [(240, 46), (-240, 46), (240, -46), (0, 5), (5, 0), (7, 7)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(g, gcd(a, b), "gcd mismatch for ({a},{b})");
            assert_eq!(a * x + b * y, g, "Bezout identity fails for ({a},{b})");
        }
    }

    #[test]
    fn slice_gcd() {
        assert_eq!(gcd_slice(&[4, 6, 8]), 2);
        assert_eq!(gcd_slice(&[]), 0);
        assert_eq!(gcd_slice(&[0, 0]), 0);
        assert_eq!(gcd_slice(&[-3, 9, 12]), 3);
    }

    #[test]
    fn primitive_vectors() {
        assert_eq!(primitive(&[4, 6]), vec![2, 3]);
        assert_eq!(primitive(&[0, -2]), vec![0, 1]);
        assert_eq!(primitive(&[-2, 4]), vec![1, -2]);
        assert_eq!(primitive(&[0, 0]), vec![0, 0]);
        assert_eq!(primitive(&[7]), vec![1]);
    }
}
