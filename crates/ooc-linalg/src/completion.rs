//! Completion of partial loop-transformation matrices.
//!
//! The paper determines only the *last column* of the inverse loop
//! transformation matrix `Q` (the column that decides which direction
//! the innermost loop sweeps through the data). The rest of `Q` is
//! "completed" into a full non-singular matrix using the method of Bik
//! and Wijshoff: extend the given column to a unimodular basis via
//! extended-gcd column operations.
//!
//! [`complete_last_column`] returns the canonical completion;
//! [`completion_candidates`] enumerates a family of alternative legal
//! completions (permutations/negations of the free columns) from which
//! the optimizer can pick one that also satisfies data-dependence
//! legality (checked by the caller against `T = Q⁻¹`).

use crate::gcd::{gcd_slice, primitive};
use crate::matrix::Matrix;
use crate::rational::Rational;

/// Extends a primitive integer vector `v` (gcd of entries = 1) to a
/// unimodular matrix whose **first column** is `v`.
///
/// Construction: find unimodular `U` with `U v = e₁` by chaining 2×2
/// extended-gcd row rotations; then `U⁻¹` is unimodular with first
/// column `U⁻¹ e₁ = v`.
///
/// # Panics
/// Panics if `v` is zero or not primitive.
#[must_use]
pub fn extend_to_unimodular_first_col(v: &[i64]) -> Matrix {
    let k = v.len();
    assert!(k > 0, "empty vector");
    assert_eq!(gcd_slice(v).abs(), 1, "vector {v:?} is not primitive");
    let mut work: Vec<i64> = v.to_vec();
    let mut u = Matrix::identity(k);
    for i in 1..k {
        if work[i] == 0 {
            continue;
        }
        let (g, x, y) = crate::gcd::extended_gcd(work[0], work[i]);
        // Row op on rows 0 and i:
        //   row0 <- x*row0 + y*rowi
        //   rowi <- -(work[i]/g)*row0_old + (work[0]/g)*rowi_old
        // Block determinant = (x*work[0] + y*work[i]) / g = 1.
        let (a, b) = (work[0] / g, work[i] / g);
        for c in 0..k {
            let r0 = u[(0, c)];
            let ri = u[(i, c)];
            u[(0, c)] = Rational::from(x) * r0 + Rational::from(y) * ri;
            u[(i, c)] = Rational::from(-b) * r0 + Rational::from(a) * ri;
        }
        work[0] = g;
        work[i] = 0;
    }
    debug_assert_eq!(work[0].abs(), 1);
    if work[0] == -1 {
        // Flip row 0 so U v = +e1 exactly.
        for c in 0..k {
            let r0 = u[(0, c)];
            u[(0, c)] = -r0;
        }
    }
    let m = u.inverse().expect("U is unimodular, hence invertible");
    debug_assert!(m.is_unimodular());
    debug_assert_eq!(
        m.col(0),
        v.iter().map(|&x| Rational::from(x)).collect::<Vec<_>>()
    );
    m
}

/// Completes a desired **last column** `q_k` into a full unimodular
/// matrix `Q` (the paper's inverse loop-transformation matrix).
///
/// The input need not be primitive; it is first reduced by the gcd of
/// its entries (scaling the innermost traversal direction does not
/// change which hyperplane it sweeps).
///
/// # Panics
/// Panics if `v` is the zero vector.
#[must_use]
pub fn complete_last_column(v: &[i64]) -> Matrix {
    let p = primitive(v);
    assert!(p.iter().any(|&x| x != 0), "cannot complete the zero vector");
    let k = p.len();
    let first = extend_to_unimodular_first_col(&p);
    // Rotate columns so the given vector lands in the last position:
    // columns (v, b2, ..., bk) -> (b2, ..., bk, v).
    let mut q = Matrix::zero(k, k);
    for j in 1..k {
        q.set_col(j - 1, &first.col(j));
    }
    q.set_col(k - 1, &first.col(0));
    debug_assert!(q.is_unimodular());
    q
}

/// Enumerates a family of unimodular completions whose last column is
/// (a scalar reduction of) `v`.
///
/// The family consists of the canonical completion with its free
/// columns permuted and negated; this gives the dependence-legality
/// search in the optimizer multiple orderings of the outer loops to
/// try. At most `limit` candidates are returned.
#[must_use]
pub fn completion_candidates(v: &[i64], limit: usize) -> Vec<Matrix> {
    let _span = ooc_trace::enabled().then(|| ooc_trace::span("compiler", "bik-wijshoff"));
    let base = complete_last_column(v);
    let k = base.rows();
    let free = k - 1;
    let mut out = Vec::new();
    // All permutations of the free columns (k <= 8 in practice, and the
    // caller's limit keeps this bounded).
    let mut perm: Vec<usize> = (0..free).collect();
    permute_all(&mut perm, 0, &mut |p| {
        if out.len() >= limit {
            return;
        }
        // For each permutation, also try sign-flipping each single column
        // plus the all-positive variant.
        for flip_mask in 0..(1usize << free.min(4)) {
            if out.len() >= limit {
                return;
            }
            let mut m = Matrix::zero(k, k);
            for (dst, &src) in p.iter().enumerate() {
                let mut col = base.col(src);
                if flip_mask & (1 << dst.min(63)) != 0 {
                    for x in &mut col {
                        *x = -*x;
                    }
                }
                m.set_col(dst, &col);
            }
            m.set_col(k - 1, &base.col(k - 1));
            debug_assert!(m.is_unimodular());
            out.push(m);
        }
    });
    if ooc_trace::enabled() {
        ooc_trace::counter("completion-candidates", out.len() as f64);
    }
    out
}

fn permute_all(perm: &mut Vec<usize>, i: usize, f: &mut impl FnMut(&[usize])) {
    if i == perm.len() {
        f(perm);
        return;
    }
    for j in i..perm.len() {
        perm.swap(i, j);
        permute_all(perm, i + 1, f);
        perm.swap(i, j);
    }
    if perm.is_empty() {
        f(perm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_col_extension() {
        for v in [
            vec![1, 0],
            vec![0, 1],
            vec![1, 1],
            vec![2, 3],
            vec![3, -2],
            vec![1, 0, 0],
            vec![0, 0, 1],
            vec![2, 3, 5],
            vec![6, 10, 15],
            vec![-1, 1],
        ] {
            let m = extend_to_unimodular_first_col(&v);
            assert!(m.is_unimodular(), "not unimodular for {v:?}:\n{m}");
            for (i, &x) in v.iter().enumerate() {
                assert_eq!(
                    m[(i, 0)],
                    Rational::from(x),
                    "first column mismatch for {v:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not primitive")]
    fn non_primitive_rejected() {
        let _ = extend_to_unimodular_first_col(&[2, 4]);
    }

    #[test]
    fn last_col_completion() {
        for v in [
            vec![0, 1],
            vec![1, 0],
            vec![1, 1],
            vec![4, 6], // non-primitive: reduced to (2, 3)
            vec![0, 0, 1],
            vec![1, 2, 3],
            vec![0, 1, 0, 0],
        ] {
            let q = complete_last_column(&v);
            assert!(q.is_unimodular(), "not unimodular for {v:?}");
            let p = primitive(&v);
            let last = q.col(q.cols() - 1);
            for (i, &x) in p.iter().enumerate() {
                assert_eq!(last[i], Rational::from(x), "last column mismatch for {v:?}");
            }
        }
    }

    #[test]
    fn paper_interchange_completion() {
        // Paper §3.2.3: q_last = (1, 0)^T must complete to a matrix
        // corresponding to loop interchange, i.e. some unimodular Q with
        // last column (1, 0).
        let q = complete_last_column(&[1, 0]);
        assert!(q.is_unimodular());
        assert_eq!(q[(0, 1)], Rational::ONE);
        assert_eq!(q[(1, 1)], Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn zero_vector_rejected() {
        let _ = complete_last_column(&[0, 0]);
    }

    #[test]
    fn candidates_are_unimodular_and_share_last_col() {
        let cands = completion_candidates(&[1, 2, 3], 16);
        assert!(!cands.is_empty());
        assert!(cands.len() <= 16);
        for c in &cands {
            assert!(c.is_unimodular());
            assert_eq!(c.col(2), complete_last_column(&[1, 2, 3]).col(2));
        }
    }

    #[test]
    fn candidates_depth_one() {
        // Depth-1 nest: only the trivial completion exists.
        let cands = completion_candidates(&[1], 8);
        assert!(!cands.is_empty());
        for c in &cands {
            assert_eq!(c.rows(), 1);
            assert!(c.is_unimodular());
        }
    }

    #[test]
    fn candidates_distinct() {
        let cands = completion_candidates(&[0, 0, 1], 64);
        let mut seen = std::collections::HashSet::new();
        for c in &cands {
            seen.insert(format!("{c}"));
        }
        assert!(seen.len() > 1, "expected multiple distinct candidates");
    }
}
