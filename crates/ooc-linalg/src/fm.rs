//! Affine constraint systems and Fourier–Motzkin elimination.
//!
//! After a loop nest is transformed with `I = Q·I'`, the new loop
//! bounds are no longer the original rectangular bounds: they are the
//! projection of the transformed iteration polyhedron. This module
//! implements the standard code-generation scheme — express the
//! original bounds as affine inequalities over the *new* iterators,
//! then Fourier–Motzkin-eliminate from the innermost loop outwards so
//! that each loop's bounds mention only outer iterators and symbolic
//! parameters.

use crate::matrix::Matrix;
use crate::rational::Rational;
use std::fmt;

/// An affine form `constant + Σ var_coeffs[i]·xᵢ + Σ param_coeffs[j]·pⱼ`
/// over `nvars` iteration variables and `nparams` symbolic parameters
/// (loop-invariant sizes such as `N`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Affine {
    /// Coefficients of the iteration variables.
    pub var_coeffs: Vec<Rational>,
    /// Coefficients of the symbolic parameters.
    pub param_coeffs: Vec<Rational>,
    /// Constant term.
    pub constant: Rational,
}

impl Affine {
    /// The zero form over the given space.
    #[must_use]
    pub fn zero(nvars: usize, nparams: usize) -> Self {
        Affine {
            var_coeffs: vec![Rational::ZERO; nvars],
            param_coeffs: vec![Rational::ZERO; nparams],
            constant: Rational::ZERO,
        }
    }

    /// A constant form.
    #[must_use]
    pub fn constant(nvars: usize, nparams: usize, c: i64) -> Self {
        let mut a = Self::zero(nvars, nparams);
        a.constant = Rational::from(c);
        a
    }

    /// The form `xᵢ`.
    #[must_use]
    pub fn var(nvars: usize, nparams: usize, i: usize) -> Self {
        let mut a = Self::zero(nvars, nparams);
        a.var_coeffs[i] = Rational::ONE;
        a
    }

    /// The form `pⱼ`.
    #[must_use]
    pub fn param(nvars: usize, nparams: usize, j: usize) -> Self {
        let mut a = Self::zero(nvars, nparams);
        a.param_coeffs[j] = Rational::ONE;
        a
    }

    /// Number of iteration variables in this form's space.
    #[must_use]
    pub fn nvars(&self) -> usize {
        self.var_coeffs.len()
    }

    /// Number of parameters in this form's space.
    #[must_use]
    pub fn nparams(&self) -> usize {
        self.param_coeffs.len()
    }

    /// Evaluates the form at an integer point.
    #[must_use]
    pub fn eval(&self, vars: &[i64], params: &[i64]) -> Rational {
        assert_eq!(vars.len(), self.nvars());
        assert_eq!(params.len(), self.nparams());
        let mut acc = self.constant;
        for (c, &v) in self.var_coeffs.iter().zip(vars) {
            acc += *c * Rational::from(v);
        }
        for (c, &p) in self.param_coeffs.iter().zip(params) {
            acc += *c * Rational::from(p);
        }
        acc
    }

    /// `self + rhs`.
    #[must_use]
    pub fn add(&self, rhs: &Affine) -> Affine {
        self.combine(rhs, Rational::ONE)
    }

    /// `self - rhs`.
    #[must_use]
    pub fn sub(&self, rhs: &Affine) -> Affine {
        self.combine(rhs, -Rational::ONE)
    }

    /// `self + s·rhs`.
    #[must_use]
    pub fn combine(&self, rhs: &Affine, s: Rational) -> Affine {
        assert_eq!(self.nvars(), rhs.nvars());
        assert_eq!(self.nparams(), rhs.nparams());
        Affine {
            var_coeffs: self
                .var_coeffs
                .iter()
                .zip(&rhs.var_coeffs)
                .map(|(&a, &b)| a + s * b)
                .collect(),
            param_coeffs: self
                .param_coeffs
                .iter()
                .zip(&rhs.param_coeffs)
                .map(|(&a, &b)| a + s * b)
                .collect(),
            constant: self.constant + s * rhs.constant,
        }
    }

    /// `s·self`.
    #[must_use]
    pub fn scale(&self, s: Rational) -> Affine {
        Affine {
            var_coeffs: self.var_coeffs.iter().map(|&a| a * s).collect(),
            param_coeffs: self.param_coeffs.iter().map(|&a| a * s).collect(),
            constant: self.constant * s,
        }
    }

    /// Substitutes each variable with an affine form over a *new*
    /// variable space: `xᵢ = subst[i]`. Parameters pass through.
    ///
    /// # Panics
    /// Panics if `subst.len() != nvars` or the substitution forms
    /// disagree about spaces.
    #[must_use]
    pub fn substitute_vars(&self, subst: &[Affine]) -> Affine {
        assert_eq!(subst.len(), self.nvars());
        let new_nvars = subst.first().map_or(0, Affine::nvars);
        let mut out = Affine::zero(new_nvars, self.nparams());
        out.constant = self.constant;
        out.param_coeffs.clone_from(&self.param_coeffs);
        for (c, s) in self.var_coeffs.iter().zip(subst) {
            assert_eq!(s.nparams(), self.nparams());
            out = out.combine(s, *c);
        }
        out
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut term = |f: &mut fmt::Formatter<'_>, c: Rational, name: String| -> fmt::Result {
            if c.is_zero() {
                return Ok(());
            }
            if first {
                first = false;
                if c == Rational::ONE {
                    write!(f, "{name}")?;
                } else if c == -Rational::ONE {
                    write!(f, "-{name}")?;
                } else {
                    write!(f, "{c}*{name}")?;
                }
            } else if c == Rational::ONE {
                write!(f, " + {name}")?;
            } else if c == -Rational::ONE {
                write!(f, " - {name}")?;
            } else if c.signum() < 0 {
                write!(f, " - {}*{name}", c.abs())?;
            } else {
                write!(f, " + {c}*{name}")?;
            }
            Ok(())
        };
        for (i, &c) in self.var_coeffs.iter().enumerate() {
            term(f, c, format!("x{i}"))?;
        }
        for (j, &c) in self.param_coeffs.iter().enumerate() {
            term(f, c, format!("p{j}"))?;
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if !self.constant.is_zero() {
            if self.constant.signum() < 0 {
                write!(f, " - {}", self.constant.abs())?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

/// A constraint `expr >= 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// The affine form constrained to be non-negative.
    pub expr: Affine,
}

/// A conjunction of affine constraints over `nvars` variables and
/// `nparams` parameters — an iteration-space polyhedron.
#[derive(Debug, Clone)]
pub struct Polyhedron {
    nvars: usize,
    nparams: usize,
    constraints: Vec<Constraint>,
}

/// The bounds of one loop level produced by [`Polyhedron::loop_bounds`]:
/// the loop runs `max(ceil(lowers)) ..= min(floor(uppers))`, where each
/// bound is affine in the *outer* loop variables and the parameters.
#[derive(Debug, Clone)]
pub struct LoopBounds {
    /// Lower-bound forms (take the max of their ceilings).
    pub lowers: Vec<Affine>,
    /// Upper-bound forms (take the min of their floors).
    pub uppers: Vec<Affine>,
}

impl LoopBounds {
    /// Evaluates the concrete integer bounds at given outer-iterator and
    /// parameter values. Returns `None` when the loop is empty there.
    #[must_use]
    pub fn eval(&self, outer: &[i64], params: &[i64]) -> Option<(i64, i64)> {
        // Bounds forms live in the full variable space; pad with zeros for
        // inner variables (their coefficients are zero by construction).
        let nv = self.lowers.first().or(self.uppers.first())?.nvars();
        let mut point = outer.to_vec();
        point.resize(nv, 0);
        let lo = self
            .lowers
            .iter()
            .map(|a| i64::try_from(a.eval(&point, params).ceil()).expect("bound overflow"))
            .max()?;
        let hi = self
            .uppers
            .iter()
            .map(|a| i64::try_from(a.eval(&point, params).floor()).expect("bound overflow"))
            .min()?;
        if lo <= hi {
            Some((lo, hi))
        } else {
            None
        }
    }
}

impl Polyhedron {
    /// An unconstrained polyhedron.
    #[must_use]
    pub fn universe(nvars: usize, nparams: usize) -> Self {
        Polyhedron {
            nvars,
            nparams,
            constraints: Vec::new(),
        }
    }

    /// Number of iteration variables.
    #[must_use]
    pub const fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of symbolic parameters.
    #[must_use]
    pub const fn nparams(&self) -> usize {
        self.nparams
    }

    /// The constraints (each `expr >= 0`).
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds `expr >= 0`.
    pub fn add_ge0(&mut self, expr: Affine) {
        assert_eq!(expr.nvars(), self.nvars);
        assert_eq!(expr.nparams(), self.nparams);
        self.constraints.push(Constraint { expr });
    }

    /// Adds `lo <= xᵢ <= hi` for constant bounds.
    pub fn add_var_range(&mut self, i: usize, lo: i64, hi: i64) {
        let x = Affine::var(self.nvars, self.nparams, i);
        let lo_c = Affine::constant(self.nvars, self.nparams, lo);
        let hi_c = Affine::constant(self.nvars, self.nparams, hi);
        self.add_ge0(x.sub(&lo_c));
        self.add_ge0(hi_c.sub(&x));
    }

    /// Adds `1 <= xᵢ <= pⱼ` — the standard Fortran-style loop range with
    /// a symbolic trip count.
    pub fn add_var_range_param(&mut self, i: usize, j: usize) {
        let x = Affine::var(self.nvars, self.nparams, i);
        let one = Affine::constant(self.nvars, self.nparams, 1);
        let p = Affine::param(self.nvars, self.nparams, j);
        self.add_ge0(x.sub(&one));
        self.add_ge0(p.sub(&x));
    }

    /// Membership test for an integer point.
    #[must_use]
    pub fn contains(&self, vars: &[i64], params: &[i64]) -> bool {
        self.constraints
            .iter()
            .all(|c| c.expr.eval(vars, params).signum() >= 0)
    }

    /// Applies the change of variables `x = m · x'` (same parameter
    /// space), producing the polyhedron over `x'`. `m` must be square
    /// `nvars × nvars`.
    #[must_use]
    pub fn transform(&self, m: &Matrix) -> Polyhedron {
        assert_eq!(m.rows(), self.nvars);
        assert_eq!(m.cols(), self.nvars);
        // x_i = Σ_j m[i][j] x'_j
        let subst: Vec<Affine> = (0..self.nvars)
            .map(|i| {
                let mut a = Affine::zero(self.nvars, self.nparams);
                for j in 0..self.nvars {
                    a.var_coeffs[j] = m[(i, j)];
                }
                a
            })
            .collect();
        let mut out = Polyhedron::universe(self.nvars, self.nparams);
        for c in &self.constraints {
            out.add_ge0(c.expr.substitute_vars(&subst));
        }
        out
    }

    /// Fourier–Motzkin elimination of variable `v`: the projection of
    /// the polyhedron onto the remaining variables (still indexed in the
    /// same space; the eliminated variable's coefficient is zero in the
    /// result).
    #[must_use]
    pub fn eliminate(&self, v: usize) -> Polyhedron {
        let mut lowers = Vec::new(); // a·x_v >= rest  (a > 0)
        let mut uppers = Vec::new(); // a·x_v <= rest  (a < 0 in expr)
        let mut rest = Vec::new();
        for c in &self.constraints {
            let a = c.expr.var_coeffs[v];
            match a.signum() {
                0 => rest.push(c.clone()),
                s if s > 0 => lowers.push(c.clone()),
                _ => uppers.push(c.clone()),
            }
        }
        let mut out = Polyhedron {
            nvars: self.nvars,
            nparams: self.nparams,
            constraints: rest,
        };
        for lo in &lowers {
            for hi in &uppers {
                // lo: a·x + L >= 0 (a>0)  =>  x >= -L/a
                // hi: b·x + U >= 0 (b<0)  =>  x <= -U/b = U/(-b)
                // Combine: a>0, b<0: (-b)·L + a·U >= 0… derive by scaling:
                //   multiply lo by (-b) and hi by a, add: the x terms cancel.
                let a = lo.expr.var_coeffs[v];
                let b = hi.expr.var_coeffs[v];
                let combined = lo.expr.scale(-b).add(&hi.expr.scale(a));
                debug_assert!(combined.var_coeffs[v].is_zero());
                out.add_ge0(combined);
            }
        }
        out.dedup();
        out
    }

    /// Removes syntactically duplicate and trivially-true constant
    /// constraints.
    fn dedup(&mut self) {
        self.constraints.retain(|c| {
            let trivial = c.expr.var_coeffs.iter().all(Rational::is_zero)
                && c.expr.param_coeffs.iter().all(Rational::is_zero)
                && c.expr.constant.signum() >= 0;
            !trivial
        });
        let mut seen = Vec::new();
        self.constraints.retain(|c| {
            if seen.contains(&c.expr) {
                false
            } else {
                seen.push(c.expr.clone());
                true
            }
        });
    }

    /// Produces per-level loop bounds for the variable order
    /// `x₀ (outermost) … x_{nvars-1} (innermost)` by eliminating from the
    /// innermost variable outwards.
    ///
    /// `result[i]` bounds `xᵢ` using only `x₀..xᵢ₋₁` and parameters.
    #[must_use]
    pub fn loop_bounds(&self) -> Vec<LoopBounds> {
        let mut out = vec![
            LoopBounds {
                lowers: Vec::new(),
                uppers: Vec::new(),
            };
            self.nvars
        ];
        let mut current = self.clone();
        for level in (0..self.nvars).rev() {
            let mut lowers = Vec::new();
            let mut uppers = Vec::new();
            for c in &current.constraints {
                let a = c.expr.var_coeffs[level];
                if a.is_zero() {
                    continue;
                }
                // a·x_level + rest >= 0
                //   a > 0: x_level >= -rest/a  (lower bound)
                //   a < 0: x_level <= rest/(-a) (upper bound)
                let mut rest = c.expr.clone();
                rest.var_coeffs[level] = Rational::ZERO;
                if a.signum() > 0 {
                    lowers.push(rest.scale(-a.recip()));
                } else {
                    uppers.push(rest.scale(-a.recip()));
                }
            }
            out[level] = LoopBounds { lowers, uppers };
            current = current.eliminate(level);
        }
        out
    }

    /// Enumerates every integer point of a (bounded) polyhedron in
    /// lexicographic order of `x₀…x_{k-1}`. Intended for tests and
    /// small functional executions.
    ///
    /// # Panics
    /// Panics if some level is unbounded at the given parameters.
    #[must_use]
    pub fn enumerate(&self, params: &[i64]) -> Vec<Vec<i64>> {
        let bounds = self.loop_bounds();
        let mut out = Vec::new();
        let mut point = Vec::with_capacity(self.nvars);
        self.enum_rec(&bounds, params, &mut point, &mut out);
        out
    }

    fn enum_rec(
        &self,
        bounds: &[LoopBounds],
        params: &[i64],
        point: &mut Vec<i64>,
        out: &mut Vec<Vec<i64>>,
    ) {
        let level = point.len();
        if level == self.nvars {
            out.push(point.clone());
            return;
        }
        let lb = &bounds[level];
        assert!(
            !lb.lowers.is_empty() && !lb.uppers.is_empty(),
            "level {level} unbounded"
        );
        let Some((lo, hi)) = lb.eval(point, params) else {
            return;
        };
        for v in lo..=hi {
            point.push(v);
            self.enum_rec(bounds, params, point, out);
            point.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_eval_and_ops() {
        // 2 + 3*x0 - x1 + 4*p0
        let mut a = Affine::zero(2, 1);
        a.constant = Rational::from(2i64);
        a.var_coeffs[0] = Rational::from(3i64);
        a.var_coeffs[1] = Rational::from(-1i64);
        a.param_coeffs[0] = Rational::from(4i64);
        assert_eq!(a.eval(&[1, 2], &[10]), Rational::from(43i64));
        let b = a.add(&a);
        assert_eq!(b.eval(&[1, 2], &[10]), Rational::from(86i64));
        assert_eq!(a.sub(&a).eval(&[5, 5], &[5]), Rational::ZERO);
    }

    #[test]
    fn substitution_interchange() {
        // x0 + 2*x1 with x0 = y1, x1 = y0 (interchange).
        let mut a = Affine::zero(2, 0);
        a.var_coeffs[0] = Rational::ONE;
        a.var_coeffs[1] = Rational::from(2i64);
        let subst = vec![Affine::var(2, 0, 1), Affine::var(2, 0, 0)];
        let b = a.substitute_vars(&subst);
        assert_eq!(b.eval(&[3, 4], &[]), Rational::from(10i64)); // 4 + 2*3
    }

    #[test]
    fn rectangle_bounds_roundtrip() {
        // 1 <= x0 <= 4, 1 <= x1 <= 3.
        let mut p = Polyhedron::universe(2, 0);
        p.add_var_range(0, 1, 4);
        p.add_var_range(1, 1, 3);
        let pts = p.enumerate(&[]);
        assert_eq!(pts.len(), 12);
        assert_eq!(pts[0], vec![1, 1]);
        assert_eq!(pts[11], vec![4, 3]);
    }

    #[test]
    fn symbolic_bounds() {
        let mut p = Polyhedron::universe(2, 1);
        p.add_var_range_param(0, 0);
        p.add_var_range_param(1, 0);
        assert_eq!(p.enumerate(&[3]).len(), 9);
        assert_eq!(p.enumerate(&[1]).len(), 1);
        assert_eq!(p.enumerate(&[0]).len(), 0);
    }

    #[test]
    fn triangular_region() {
        // 1 <= x0 <= 4, x0 <= x1 <= 4: upper triangle.
        let mut p = Polyhedron::universe(2, 0);
        p.add_var_range(0, 1, 4);
        let x0 = Affine::var(2, 0, 0);
        let x1 = Affine::var(2, 0, 1);
        let four = Affine::constant(2, 0, 4);
        p.add_ge0(x1.sub(&x0));
        p.add_ge0(four.sub(&x1));
        let pts = p.enumerate(&[]);
        assert_eq!(pts.len(), 4 + 3 + 2 + 1);
        assert!(pts.iter().all(|pt| pt[1] >= pt[0]));
    }

    #[test]
    fn transform_preserves_point_count() {
        // Interchange the rectangle: same number of integer points.
        let mut p = Polyhedron::universe(2, 0);
        p.add_var_range(0, 1, 5);
        p.add_var_range(1, 1, 2);
        let interchange = Matrix::from_i64(2, 2, &[0, 1, 1, 0]);
        let q = p.transform(&interchange);
        assert_eq!(q.enumerate(&[]).len(), 10);
        // And the transformed box has bounds swapped: x0 in 1..=2.
        let pts = q.enumerate(&[]);
        assert!(pts.iter().all(|pt| (1..=2).contains(&pt[0])));
        assert!(pts.iter().all(|pt| (1..=5).contains(&pt[1])));
    }

    #[test]
    fn skew_transform_membership_matches() {
        // x = Q x' with Q = [[1,0],[1,1]] (skew). Every x' point must map
        // into the original region.
        let mut p = Polyhedron::universe(2, 0);
        p.add_var_range(0, 1, 6);
        p.add_var_range(1, 1, 6);
        let q_mat = Matrix::from_i64(2, 2, &[1, 0, 1, 1]);
        let p2 = p.transform(&q_mat);
        for pt in p2.enumerate(&[]) {
            let orig: Vec<i64> = q_mat
                .mul_vec_i64(&pt)
                .iter()
                .map(|r| i64::try_from(r.as_integer().unwrap()).unwrap())
                .collect();
            assert!(p.contains(&orig, &[]), "{pt:?} -> {orig:?} outside");
        }
        assert_eq!(p2.enumerate(&[]).len(), 36);
    }

    #[test]
    fn eliminate_projects() {
        // Rectangle; eliminating x1 leaves bounds on x0 only.
        let mut p = Polyhedron::universe(2, 0);
        p.add_var_range(0, 2, 7);
        p.add_var_range(1, 1, 3);
        let q = p.eliminate(1);
        for c in q.constraints() {
            assert!(c.expr.var_coeffs[1].is_zero());
        }
        assert!(q.contains(&[2, 0], &[]));
        assert!(q.contains(&[7, 0], &[]));
        assert!(!q.contains(&[8, 0], &[]));
        assert!(!q.contains(&[1, 0], &[]));
    }

    #[test]
    fn loop_bounds_inner_depends_on_outer() {
        // Triangle x1 <= x0: inner bound mentions x0.
        let mut p = Polyhedron::universe(2, 0);
        p.add_var_range(0, 1, 4);
        let x0 = Affine::var(2, 0, 0);
        let x1 = Affine::var(2, 0, 1);
        let one = Affine::constant(2, 0, 1);
        p.add_ge0(x1.sub(&one));
        p.add_ge0(x0.sub(&x1));
        let b = p.loop_bounds();
        assert_eq!(b[1].eval(&[3], &[]), Some((1, 3)));
        assert_eq!(b[0].eval(&[], &[]), Some((1, 4)));
    }

    #[test]
    fn empty_region() {
        let mut p = Polyhedron::universe(1, 0);
        p.add_var_range(0, 5, 2);
        assert!(p.enumerate(&[]).is_empty());
    }

    #[test]
    fn display_affine() {
        let mut a = Affine::zero(2, 1);
        a.var_coeffs[0] = Rational::from(1i64);
        a.var_coeffs[1] = Rational::from(-2i64);
        a.param_coeffs[0] = Rational::ONE;
        a.constant = Rational::from(-1i64);
        assert_eq!(a.to_string(), "x0 - 2*x1 + p0 - 1");
    }
}
