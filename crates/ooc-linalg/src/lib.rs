//! # ooc-linalg
//!
//! Exact linear algebra for the out-of-core locality-optimization
//! compiler (a reproduction of Kandemir, Choudhary & Ramanujam,
//! *Compiler Optimizations for I/O-Intensive Computations*, ICPP
//! 1999).
//!
//! Everything the paper's framework manipulates is small and exact:
//!
//! * [`Rational`] — exact fractions, the scalar field.
//! * [`Matrix`] — access matrices `L`, loop transformations `T`,
//!   their inverses `Q`, with determinants, inverses, ranks, and
//!   (integer) nullspaces — the `Ker{…}` of the paper's relations (1)
//!   and (2).
//! * [`hnf`] / [`completion`] — Hermite normal form and the
//!   Bik–Wijshoff-style completion that turns a desired last column of
//!   `Q` into a full unimodular matrix.
//! * [`fm`] — affine constraint systems and Fourier–Motzkin
//!   elimination, used to regenerate loop bounds after a
//!   transformation.
//! * [`lex`] — lexicographic legality of transformed dependence
//!   distance vectors.
//!
//! # Example: the paper's relation (1)
//!
//! The file layout giving `V(j, i)` spatial locality in an innermost
//! `j` loop is the kernel of `L·q_k`:
//!
//! ```
//! use ooc_linalg::Matrix;
//!
//! // V(j, i): access matrix [[0, 1], [1, 0]]; identity loop order,
//! // innermost column q_k = (0, 1).
//! let l = Matrix::from_i64(2, 2, &[0, 1, 1, 0]);
//! let u = l.mul_vec_i64(&[0, 1]); // movement of one innermost step
//! let m = Matrix::from_rationals(2, 1, u);
//! let g = m.transpose().integer_nullspace();
//! assert_eq!(g, vec![vec![0, 1]]); // column-major, as in the paper
//! ```

#![warn(missing_docs)]

pub mod completion;
pub mod fm;
pub mod gcd;
pub mod hnf;
pub mod lex;
pub mod matrix;
pub mod rational;

pub use completion::{complete_last_column, completion_candidates, extend_to_unimodular_first_col};
pub use fm::{Affine, Constraint, LoopBounds, Polyhedron};
pub use gcd::{extended_gcd, gcd, gcd_slice, lcm, primitive};
pub use hnf::{column_hnf, HnfResult};
pub use lex::{
    lex_nonnegative, lex_nonnegative_i64, lex_positive, lex_positive_i64, transformation_legal,
};
pub use matrix::Matrix;
pub use rational::Rational;
