//! The degraded differential sweep: kernels × versions ×
//! kill-each-node. Every parallel run over the 4-node parity-striped
//! medium must survive the permanent loss of any single I/O node —
//! dead from its first arrival or killed mid-run — and land
//! **bit-equal** to the fault-free run of the same kernel version,
//! with data-plane ledger conservation intact and journal replay
//! bounded by one checkpoint interval.
//!
//! `run_degraded_demo` (the `table3 --kill-node` harness) pins the
//! same contract for c-opt with exact-gated counters; this sweep
//! widens it across versions with differently-shaped I/O (col's
//! column walk misses where c-opt's tiled walk hits), where loss
//! discovery lands at different points of the schedule.

use ooc_bench::measured::measured_seed;
use ooc_bench::{DEGRADED_KERNELS, DEGRADED_NODES, DEGRADED_STRIPE_ELEMS};
use ooc_core::{
    max_intents_per_interval, parse_manifest, run_parallel_surviving_node_loss, DurabilityConfig,
    FunctionalConfig, NodeLossOutcome, ParallelConfig, PipelineConfig, StripedMedium,
};
use ooc_kernels::{compile, kernel_by_name, Kernel, Version};
use ooc_runtime::{
    parse_journal, IoCause, LedgerRecorder, NodeFaultConfig, NodeHealth, ProvenanceLedger,
    StripeConfig,
};

const VERSIONS: [Version; 2] = [Version::COpt, Version::Col];

fn stripes() -> StripeConfig {
    StripeConfig {
        stripe_elems: DEGRADED_STRIPE_ELEMS,
        ..StripeConfig::with_nodes(DEGRADED_NODES)
    }
}

fn pcfg(ledger: LedgerRecorder) -> ParallelConfig {
    ParallelConfig {
        pipeline: PipelineConfig {
            functional: FunctionalConfig::with_fraction(16).with_ledger(ledger),
            ..PipelineConfig::default()
        },
        shards: 2,
    }
}

fn survive(
    k: &Kernel,
    tiled: &ooc_core::TiledProgram,
    faults: NodeFaultConfig,
    stamp: &str,
) -> (NodeLossOutcome, StripedMedium, ProvenanceLedger) {
    let rec = LedgerRecorder::new();
    rec.set_run(k.name, stamp);
    let mut medium = StripedMedium::with_faults(stripes(), faults).with_ledger(rec.clone());
    let out = run_parallel_surviving_node_loss(
        tiled,
        &k.small_params,
        &measured_seed,
        &pcfg(rec.clone()),
        &DurabilityConfig::default(),
        &mut medium,
    )
    .unwrap_or_else(|e| panic!("{} {stamp}: survival run failed: {e}", k.name));
    (out, medium, rec.take())
}

/// Data-plane conservation: exact only for c-opt, whose tiled walk
/// partitions cleanly across shards. col's column walk makes both
/// shards re-read overlapping input runs, so its recorded traffic
/// legitimately exceeds the serial analytic totals the checker uses.
fn assert_conserves(
    k: &Kernel,
    version: Version,
    stamp: &str,
    ledger: &ProvenanceLedger,
    out: &NodeLossOutcome,
) {
    if version != Version::COpt {
        return;
    }
    let stats: Vec<_> = out
        .outcome
        .run
        .run
        .profiles
        .iter()
        .map(|p| p.stats)
        .collect();
    if let Err(e) = ledger.check_conservation(&stats) {
        panic!("{} {stamp}: ledger conservation violated: {e}", k.name);
    }
}

/// The sweep itself. One test (not one per cell) so the fault-free
/// twin of each (kernel, version) is computed once and shared.
#[test]
fn every_version_survives_any_single_node_loss_bit_equal() {
    for kernel in DEGRADED_KERNELS {
        let k = kernel_by_name(kernel).expect("sweep kernel");
        for version in VERSIONS {
            let cv = compile(&k, version);
            let stamp = format!("{version:?}");

            // Fault-free twin: expected bits, arrival counts for the
            // mid-run kill, and the journal that bounds replay.
            let (healthy, medium, ledger) = survive(&k, &cv.tiled, NodeFaultConfig::new(), &stamp);
            assert!(healthy.loss.nodes_lost.is_empty(), "{kernel} {stamp}");
            assert_eq!(healthy.loss.resumes, 0, "{kernel} {stamp}");
            assert_conserves(&k, version, &stamp, &ledger, &healthy);
            let expected = healthy.outcome.run.run.data;
            let bound = max_intents_per_interval(
                &parse_journal(&medium.journal_bytes()),
                &parse_manifest(&medium.manifest_bytes()).watermarks(),
            );
            let arrivals: Vec<u64> = healthy
                .loss
                .node_stats
                .iter()
                .map(|n| n.io.total_calls() + n.repair.total_calls())
                .collect();

            // Kill-each-node at its first arrival, plus one mid-run
            // kill on the busiest node.
            let busiest = (0..DEGRADED_NODES)
                .max_by_key(|&n| arrivals[n])
                .expect("nodes");
            let mut kills: Vec<(usize, u64)> = (0..DEGRADED_NODES).map(|n| (n, 0)).collect();
            if arrivals[busiest] > 1 {
                kills.push((busiest, arrivals[busiest] / 2));
            }
            for (node, at) in kills {
                let faults = NodeFaultConfig::new().permanent_fail_at(node, at);
                let (out, medium, ledger) = survive(&k, &cv.tiled, faults, &stamp);
                assert_eq!(
                    out.outcome.run.run.data, expected,
                    "{kernel} {stamp}: node {node} killed at call {at}: diverged"
                );
                if out.loss.nodes_lost.is_empty() {
                    // Parity-plane-first kill: the single-fault model
                    // absorbs the loss in place, no resume needed —
                    // but the node must be marked dead.
                    assert_eq!(
                        medium.pool().health(node),
                        NodeHealth::Down,
                        "{kernel} {stamp}: node {node} neither discovered nor dead"
                    );
                } else {
                    assert_eq!(out.loss.nodes_lost, vec![node], "{kernel} {stamp}");
                    assert!(
                        out.loss.repair.get(IoCause::DegradedReconstruct).read_calls > 0,
                        "{kernel} {stamp}: node {node} lost but nothing reconstructed"
                    );
                }
                // Replay stays within one checkpoint interval.
                for (a, n) in &out.outcome.report.rolled_back_by_array {
                    let max = bound.get(a).copied().unwrap_or(0);
                    assert!(
                        *n <= max,
                        "{kernel} {stamp} kill node {node}@{at}: array {a} rolled back {n} > bound {max}"
                    );
                }
                // Conservation only applies to first-arrival kills:
                // a mid-run loss aborts a partially-executed schedule
                // whose data-plane traffic stays in the ledger (the
                // provenance record keeps everything that actually
                // moved), while the analytic totals describe only the
                // final completed schedule.
                if at == 0 {
                    assert_conserves(&k, version, &stamp, &ledger, &out);
                }
                // The finished (still-degraded) medium scrubs without
                // unrecoverable groups: single-fault redundancy held.
                let scrub = medium.scrub(false).expect("verify-only scrub");
                assert_eq!(scrub.unrecoverable, 0, "{kernel} {stamp} node {node}");
                assert_eq!(
                    scrub.clean + scrub.skipped + scrub.parity_mismatch,
                    scrub.groups,
                    "{kernel} {stamp} node {node}: scrub accounting"
                );
            }
        }
    }
}
