//! The perf-regression gate, tested against the committed baseline.
//!
//! `BENCH_seed.json` at the repo root is what `table2 32 4 --metrics`
//! wrote at the baseline commit. These tests re-run the same
//! experiment in-process through the same registration helper and
//! assert the diff gate's contract both ways: a faithful re-run is
//! clean, and a deliberately perturbed deterministic counter hard-
//! fails.

use ooc_bench::{recovery_register, run_recovery_demo, run_table2, table2_register};
use ooc_metrics::{diff_snapshots, validate_snapshot_json, DiffPolicy, Registry, Snapshot, Value};

fn committed_baseline() -> Snapshot {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_seed.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_seed.json");
    Snapshot::parse(&text).expect("baseline parses against the schema")
}

fn committed_recovery_baseline() -> Snapshot {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_recovery_seed.json"
    );
    let text = std::fs::read_to_string(path).expect("committed BENCH_recovery_seed.json");
    Snapshot::parse(&text).expect("recovery baseline parses against the schema")
}

fn fresh_recovery_snapshot() -> Snapshot {
    let registry = Registry::new();
    recovery_register(&registry, &run_recovery_demo("mxm", 3));
    Snapshot::capture("figure5", &registry)
}

fn fresh_table2_snapshot() -> Snapshot {
    let registry = Registry::new();
    table2_register(&registry, &run_table2(4, 32));
    Snapshot::capture("table2", &registry)
}

#[test]
fn committed_baseline_is_schema_valid() {
    let snap = committed_baseline();
    validate_snapshot_json(&snap.to_json()).expect("schema-valid");
    assert_eq!(snap.producer, "table2");
    assert!(
        snap.samples.len() > 100,
        "10 kernels x 6 versions x 3 series expected, got {}",
        snap.samples.len()
    );
}

#[test]
fn fresh_run_matches_committed_baseline() {
    // The actual regression gate, in-process: a fresh run of the same
    // experiment must produce exactly the committed deterministic
    // counters. If this fails, either a real regression slipped in or
    // an improvement landed without refreshing BENCH_seed.json — both
    // are states the gate exists to block.
    let report = diff_snapshots(
        &committed_baseline(),
        &fresh_table2_snapshot(),
        &DiffPolicy::default(),
    );
    assert!(
        report.is_clean(),
        "fresh table2 run diverges from BENCH_seed.json \
         (regenerate with `table2 32 4 --metrics BENCH_seed.json` if intended):\n{report}"
    );
}

#[test]
fn self_diff_is_fully_unchanged() {
    let snap = fresh_table2_snapshot();
    let report = diff_snapshots(&snap, &snap.clone(), &DiffPolicy::default());
    assert!(report.is_clean());
    assert_eq!(report.warnings(), 0);
    assert_eq!(report.improvements(), 0);
}

#[test]
fn perturbed_counter_hard_fails_the_gate() {
    // Deliberately bump one analytic I/O-call counter: the gate must
    // report a hard failure (this is what drives bench-compare's
    // nonzero exit).
    let baseline = committed_baseline();
    let mut perturbed = baseline.clone();
    let tampered = perturbed
        .samples
        .iter_mut()
        .find(|(k, v)| k.name == "io_calls" && matches!(v, Value::Counter(_)))
        .expect("baseline has io_calls counters");
    match &mut tampered.1 {
        Value::Counter(n) => *n += 1,
        other => panic!("expected counter, got {other:?}"),
    }
    let report = diff_snapshots(&baseline, &perturbed, &DiffPolicy::default());
    assert!(!report.is_clean(), "perturbation must hard-fail");
    assert_eq!(report.hard_fails(), 1);
    assert!(report.to_string().contains("counter regressed"));
}

#[test]
fn committed_recovery_baseline_is_schema_valid() {
    let snap = committed_recovery_baseline();
    validate_snapshot_json(&snap.to_json()).expect("schema-valid");
    assert_eq!(snap.producer, "figure5");
    assert!(
        snap.samples.len() >= 90,
        "3 intervals x 3 crash points x 10 series expected, got {}",
        snap.samples.len()
    );
}

#[test]
fn fresh_recovery_run_matches_committed_baseline() {
    // The crash-recovery gate: the figure5 sweep (crash, torn write,
    // checksum scan, rollback, resume) must replay byte-identically —
    // journal intents, checkpoints, rolled-back tiles and all. A drift
    // here means recovery behavior changed without refreshing
    // BENCH_recovery_seed.json.
    let report = diff_snapshots(
        &committed_recovery_baseline(),
        &fresh_recovery_snapshot(),
        &DiffPolicy::default(),
    );
    assert!(
        report.is_clean(),
        "fresh recovery sweep diverges from BENCH_recovery_seed.json \
         (regenerate with `figure5 mxm 3 --metrics BENCH_recovery_seed.json` if intended):\n{report}"
    );
}

#[test]
fn perturbed_recovery_counter_hard_fails_the_gate() {
    let baseline = committed_recovery_baseline();
    let mut perturbed = baseline.clone();
    let tampered = perturbed
        .samples
        .iter_mut()
        .find(|(k, v)| k.name == "journal_intents_total" && matches!(v, Value::Counter(_)))
        .expect("recovery baseline has journal_intents_total counters");
    match &mut tampered.1 {
        Value::Counter(n) => *n += 1,
        other => panic!("expected counter, got {other:?}"),
    }
    let report = diff_snapshots(&baseline, &perturbed, &DiffPolicy::default());
    assert!(!report.is_clean(), "perturbation must hard-fail");
    assert_eq!(report.hard_fails(), 1);
}

#[test]
fn baseline_roundtrips_through_json() {
    let snap = committed_baseline();
    let reparsed = Snapshot::parse(&snap.to_json_string()).expect("roundtrip");
    assert_eq!(snap.samples, reparsed.samples);
}
