//! Golden tests of the provenance-ledger version diff on worked
//! examples: the col → c-opt comparison must *explain* the reduction,
//! quantitatively, for the paper's flagship kernels. The sync
//! executor's cause classification is fully deterministic, so the
//! asserted numbers are exact — a change here means the optimizer,
//! the scheduler, or the ledger classification itself changed.

use ooc_bench::{run_degraded_ledger_diff, run_ledger_cell, run_ledger_diff, LEDGER_DIFF_PAIR};
use ooc_kernels::kernel_by_name;
use ooc_runtime::IoCause;
use pfs_sim::DiskParams;

#[test]
fn trans_diff_explains_call_batching() {
    let k = kernel_by_name("trans").expect("kernel");
    let (from, to) = LEDGER_DIFF_PAIR;
    let diff = run_ledger_diff(&k, from, to, &DiskParams::default());
    // trans moves the same bytes in three times fewer calls: the
    // explanation must name the capacity-miss call batching.
    assert!(
        diff.b_seconds < diff.a_seconds,
        "c-opt must price cheaper: {} vs {}",
        diff.b_seconds,
        diff.a_seconds
    );
    let text = diff.render();
    assert!(
        diff.explanations.iter().any(|e| e.contains("capacity_miss")
            && e.contains("eliminates")
            && e.contains("array")),
        "no capacity-miss explanation:\n{text}"
    );
    assert!(
        diff.explanations
            .iter()
            .any(|e| e.contains("elems per call")),
        "call-batching story missing:\n{text}"
    );
    // The worked example, exactly: 80 capacity-miss calls disappear
    // on array B as runs lengthen from 2 to 10 elements per call.
    assert!(
        diff.explanations.iter().any(|e| e.contains(
            "c-opt eliminates 80 capacity_miss I/O calls on array B with bytes unchanged"
        )),
        "quantitative trans explanation drifted:\n{text}"
    );
}

#[test]
fn mxm_diff_explains_capacity_miss_bytes() {
    let k = kernel_by_name("mxm").expect("kernel");
    let (from, to) = LEDGER_DIFF_PAIR;
    let diff = run_ledger_diff(&k, from, to, &DiskParams::default());
    assert!(
        diff.b_seconds < diff.a_seconds,
        "c-opt must price cheaper: {} vs {}",
        diff.b_seconds,
        diff.a_seconds
    );
    let text = diff.render();
    // The worked example, exactly: c-opt's loop order keeps array A's
    // reuse inside the cache, eliminating 4,096 re-read bytes that
    // col paid as capacity misses.
    assert!(
        diff.explanations.iter().any(|e| e
            .contains("c-opt eliminates 4,096 capacity_miss bytes on array A")
            && e.contains("the reuse distance now fits the cache")),
        "quantitative mxm explanation drifted:\n{text}"
    );
    assert!(
        diff.explanations
            .iter()
            .any(|e| e.contains("re-read") && e.contains("evicted regions")),
        "eviction forensics missing:\n{text}"
    );
}

#[test]
fn trans_degraded_diff_explains_the_repair_traffic() {
    // Healthy vs node-0-dead-from-first-arrival on trans c-opt: the
    // degraded run's extra bytes must be attributed to the repair
    // causes, quantitatively. First-arrival kills discover, quarantine
    // and resume on a serial schedule, so the repair-side numbers are
    // exact (the same ones gated against BENCH_degraded_seed.json).
    let diff = run_degraded_ledger_diff("trans", 0, &DiskParams::default());
    assert!(
        diff.b_seconds > diff.a_seconds,
        "losing a node must price dearer: {} vs {}",
        diff.b_seconds,
        diff.a_seconds
    );
    let text = diff.render();
    // The worked example, exactly: reads that would have hit the dead
    // node rebuild by XOR from the three survivors, dominated by the
    // input array B.
    assert!(
        diff.explanations.iter().any(|e| e
            .contains("adds 55,936 degraded_reconstruct bytes on array B")
            && e.contains("rebuilt by XOR from surviving peers")),
        "quantitative reconstruction explanation drifted:\n{text}"
    );
    assert!(
        diff.explanations
            .iter()
            .any(|e| e.contains("degraded_reconstruct bytes on array A")),
        "array A reconstruction missing:\n{text}"
    );
    // Parity upkeep *shrinks* degraded: writes that would land on the
    // dead node skip their RMW (the group's parity is the write).
    assert!(
        diff.explanations
            .iter()
            .any(|e| e.contains("parity_write") && e.contains("redundancy upkeep")),
        "parity-upkeep explanation missing:\n{text}"
    );
}

#[test]
fn diff_pair_ledgers_carry_belady_foresight() {
    // The eviction detail that powers the explanations must be
    // populated: capacity misses on the col side record the evicting
    // step, and at least some evictions knew their next use.
    let k = kernel_by_name("mxm").expect("kernel");
    let (ledger, _) = run_ledger_cell(&k, LEDGER_DIFF_PAIR.0);
    let with_detail = ledger
        .events
        .iter()
        .filter(|e| e.cause == IoCause::CapacityMiss && e.evict.is_some())
        .count();
    assert!(
        with_detail > 0,
        "capacity misses must carry eviction forensics"
    );
}
