//! The crash-recovery experiment behind `figure5` and
//! `inspect --recovery`, shared with the perf-regression gate so a
//! fresh in-process run registers byte-identically to the committed
//! `BENCH_recovery_seed.json` baseline.
//!
//! One cell = one (checkpoint interval × crash point) combination on a
//! kernel's c-opt version: run the *durable* synchronous executor
//! until an injected crash (clean `CrashAt` or torn `TornWrite`),
//! verify torn data is detected by the checksum layer, resume, assert
//! the recovered contents are bit-equal to an uninterrupted run, and
//! price recovery as the resumed run's element traffic over a full
//! rerun's. Every counter is deterministic — the durable functional
//! executor is single-threaded and fault replay is seeded.

use ooc_core::{
    max_intents_per_interval, parse_manifest, resume_functional, run_functional_durable,
    DurabilityConfig, DurableMedium, DurableOutcome, DurableStore, FunctionalConfig, MemMedium,
    RecoveryReport,
};
use ooc_ir::ArrayId;
use ooc_kernels::{compile, kernel_by_name, Kernel, Version};
use ooc_metrics::Registry;
use ooc_runtime::{is_crashed, parse_journal, ChecksummedStore, CrashedError, FaultConfig};
use std::collections::BTreeMap;

/// Checkpoint intervals (tile rows per checkpoint) the sweep covers.
pub const INTERVALS: [u64; 3] = [1, 2, 4];

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

fn fcfg() -> FunctionalConfig {
    FunctionalConfig::with_fraction(16)
}

fn total_elems(out: &DurableOutcome) -> u64 {
    out.run
        .profiles
        .iter()
        .map(|p| p.stats.read_elems + p.stats.write_elems)
        .sum()
}

/// One crash-and-recover measurement.
#[derive(Debug, Clone)]
pub struct RecoveryCell {
    /// Tile rows per checkpoint.
    pub interval: u64,
    /// Store-call index the fault fired at.
    pub crash_at: u64,
    /// `true` = torn-write mode was injected, `false` = clean crash.
    pub torn: bool,
    /// Whether a torn prefix actually landed in the store — only
    /// possible when the dying call was a write (the fault layer
    /// reports this in the crash error's payload).
    pub torn_landed: bool,
    /// Whether the checksum layer flagged the crashed store before
    /// rollback. Always `true` when a torn prefix landed; may also be
    /// `true` for a clean crash that died between a data write and its
    /// sidecar update — the checksum layer orders data before CRC so
    /// every interrupted write is *detectable*, never silently trusted.
    pub detected_corrupt: bool,
    /// The resumed run's recovery counters.
    pub report: RecoveryReport,
    /// Elements moved by the resumed run (rollback + restart).
    pub resume_elems: u64,
    /// Elements a full uninterrupted rerun moves.
    pub full_elems: u64,
    /// Whether the recovered rollback stayed within the per-array
    /// one-checkpoint-interval intent bound.
    pub replay_bounded: bool,
}

impl RecoveryCell {
    /// Recovered-vs-rerun I/O cost (1.0 = as expensive as starting
    /// over).
    #[must_use]
    pub fn replay_ratio(&self) -> f64 {
        if self.full_elems == 0 {
            0.0
        } else {
            self.resume_elems as f64 / self.full_elems as f64
        }
    }
}

/// The full sweep on one kernel.
#[derive(Debug, Clone)]
pub struct RecoveryDemo {
    /// Kernel name.
    pub kernel: String,
    /// One cell per (interval × crash point).
    pub cells: Vec<RecoveryCell>,
}

fn run_one_interval(
    k: &Kernel,
    tiled: &ooc_core::TiledProgram,
    interval: u64,
    crashes: usize,
    cells: &mut Vec<RecoveryCell>,
) {
    let dur = DurabilityConfig {
        checkpoint_rows: interval,
        ..DurabilityConfig::default()
    };
    // Uninterrupted baseline with a rate-0 fault wrap: counts each
    // array's store calls (the crash-index domain) without injecting.
    let mut base = MemMedium::new();
    let baseline = run_functional_durable(
        tiled,
        &k.small_params,
        &seed,
        &fcfg(),
        &dur,
        &mut base,
        &|_| Some(FaultConfig::transient(11, 0)),
    )
    .expect("baseline durable run");
    let calls: Vec<u64> = baseline
        .fault_handles
        .iter()
        .map(|h| h.as_ref().expect("wrapped").calls())
        .collect();
    let target = (0..calls.len()).max_by_key(|&a| calls[a]).unwrap_or(0);
    let bound = max_intents_per_interval(
        &parse_journal(&base.journal_bytes()),
        &parse_manifest(&base.manifest_bytes()).watermarks(),
    );
    let full_elems = total_elems(&baseline);

    for i in 1..=crashes {
        let at = calls[target] * i as u64 / (crashes as u64 + 1);
        let torn = i % 2 == 0;
        let mut medium = MemMedium::new();
        let err = run_functional_durable(
            tiled,
            &k.small_params,
            &seed,
            &fcfg(),
            &dur,
            &mut medium,
            &|a| {
                (a == target).then(|| {
                    if torn {
                        FaultConfig::torn_write(at, 500)
                    } else {
                        FaultConfig::crash_at(at)
                    }
                })
            },
        )
        .expect_err("injected crash must abort the run");
        assert!(is_crashed(&err), "unexpected error: {err}");
        let torn_landed = err
            .get_ref()
            .and_then(|inner| inner.downcast_ref::<CrashedError>())
            .is_some_and(|c| c.torn);

        // Integrity probe before rollback: reattach the checksum layer
        // over the crashed medium and scan. A landed torn prefix must
        // fail verification (its sidecar CRC is stale).
        let detected_corrupt = {
            let decl = &tiled.program.arrays[target];
            let dims: Vec<i64> = decl
                .dims
                .iter()
                .map(|d| d.resolve(&k.small_params))
                .collect();
            let len = u64::try_from(dims.iter().product::<i64>()).expect("positive size");
            let data = medium
                .data(target, &decl.name, len)
                .expect("medium data handle");
            let side = medium
                .sidecar(
                    target,
                    &decl.name,
                    DurableStore::sidecar_len(len, dur.chunk_elems),
                )
                .expect("medium sidecar handle");
            let cs = ChecksummedStore::attach(data, side, dur.chunk_elems)
                .expect("attach checksum probe");
            cs.verify().is_err()
        };
        assert!(
            detected_corrupt || !torn_landed,
            "{}: a landed torn prefix escaped checksum detection \
             (interval {interval}, crash at {at})",
            k.name
        );

        let out = resume_functional(
            tiled,
            &k.small_params,
            &seed,
            &fcfg(),
            &dur,
            &mut medium,
            &|_| None,
        )
        .expect("resume after crash");
        assert_eq!(
            out.run.data, baseline.run.data,
            "{}: recovered run diverges (interval {interval}, crash at {at}, torn {torn})",
            k.name
        );
        let replay_bounded = out
            .report
            .rolled_back_by_array
            .iter()
            .all(|(a, n)| *n <= bound.get(a).copied().unwrap_or(0));
        cells.push(RecoveryCell {
            interval,
            crash_at: at,
            torn,
            torn_landed,
            detected_corrupt,
            resume_elems: total_elems(&out),
            full_elems,
            replay_bounded,
            report: out.report,
        });
    }
}

/// Runs the sweep: for every checkpoint interval, `crashes` evenly
/// spaced crash points on the busiest array, alternating clean and
/// torn crashes. Panics if any recovery is not bit-equal to the
/// uninterrupted run — that is the experiment's contract.
///
/// # Panics
/// Panics on an unknown kernel or any recovery-invariant violation.
#[must_use]
pub fn run_recovery_demo(kernel: &str, crashes: usize) -> RecoveryDemo {
    let k = kernel_by_name(kernel).unwrap_or_else(|| panic!("unknown kernel `{kernel}`"));
    let cv = compile(&k, Version::COpt);
    let mut cells = Vec::new();
    for &interval in &INTERVALS {
        run_one_interval(&k, &cv.tiled, interval, crashes, &mut cells);
    }
    RecoveryDemo {
        kernel: k.name.to_string(),
        cells,
    }
}

/// Registers the sweep's deterministic counters per
/// `{kernel, version, interval, crash}` — what the perf-regression
/// gate diffs against `BENCH_recovery_seed.json`.
pub fn recovery_register(registry: &Registry, demo: &RecoveryDemo) {
    for cell in &demo.cells {
        let interval = cell.interval.to_string();
        let crash = cell.crash_at.to_string();
        let labels = [
            ("kernel", demo.kernel.as_str()),
            ("version", "c-opt"),
            ("interval", interval.as_str()),
            ("crash", crash.as_str()),
        ];
        let c = |name: &str, v: u64| registry.counter_add(name, &labels, v);
        c("journal_intents_total", cell.report.journal_intents);
        c("journal_commits_total", cell.report.journal_commits);
        c("checkpoints_total", cell.report.checkpoints);
        c(
            "recovery_replayed_tiles_total",
            cell.report.rolled_back_tiles,
        );
        c("recovery_skipped_steps_total", cell.report.skipped_steps);
        c("recovery_executed_steps_total", cell.report.executed_steps);
        c("torn_detected_total", u64::from(cell.detected_corrupt));
        c("resume_io_elems_total", cell.resume_elems);
        c("full_io_elems_total", cell.full_elems);
        registry.gauge_set("replay_ratio", &labels, cell.replay_ratio());
    }
}

/// Summarises per-interval replay cost: `(interval, mean replay
/// ratio, all cells bounded)`.
#[must_use]
pub fn interval_summary(demo: &RecoveryDemo) -> Vec<(u64, f64, bool)> {
    let mut by: BTreeMap<u64, (f64, u64, bool)> = BTreeMap::new();
    for c in &demo.cells {
        let e = by.entry(c.interval).or_insert((0.0, 0, true));
        e.0 += c.replay_ratio();
        e.1 += 1;
        e.2 &= c.replay_bounded;
    }
    by.into_iter()
        .map(|(i, (sum, n, ok))| (i, sum / n.max(1) as f64, ok))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_cells_recover_and_register_deterministically() {
        let demo = run_recovery_demo("trans", 2);
        assert_eq!(demo.cells.len(), INTERVALS.len() * 2);
        assert!(demo.cells.iter().all(|c| c.report.resumed));
        assert!(demo.cells.iter().all(|c| c.replay_bounded));
        // Torn-mode cells exist, and every landed torn prefix must be
        // caught by the checksum layer.
        assert!(demo.cells.iter().filter(|c| c.torn).count() > 0);
        assert!(demo
            .cells
            .iter()
            .all(|c| c.detected_corrupt || !c.torn_landed));
        // Registration is deterministic across fresh runs.
        let again = run_recovery_demo("trans", 2);
        let (a, b) = (Registry::new(), Registry::new());
        recovery_register(&a, &demo);
        recovery_register(&b, &again);
        assert_eq!(
            ooc_metrics::Snapshot::capture("x", &a).samples,
            ooc_metrics::Snapshot::capture("x", &b).samples
        );
    }

    #[test]
    fn tighter_intervals_replay_less() {
        let demo = run_recovery_demo("trans", 3);
        let summary = interval_summary(&demo);
        assert_eq!(summary.len(), INTERVALS.len());
        for (_, ratio, bounded) in &summary {
            assert!(*ratio > 0.0);
            assert!(bounded);
        }
    }
}
