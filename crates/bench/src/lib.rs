//! # ooc-bench
//!
//! Experiment harnesses regenerating every table and figure of the
//! paper's evaluation (§4), plus the Criterion micro-benchmarks.
//!
//! | paper artifact | binary | what it prints |
//! |---|---|---|
//! | Table 1 | `table1` | kernel inventory (source, iter, arrays) |
//! | Table 2 | `table2` | per-version times on 16 nodes, % of `col` |
//! | Table 3 | `table3` | speedups for 16/32/64/128 processors |
//! | Table 3 (measured) | `table3 --workers N` | measured parallel speedups over striped I/O nodes |
//! | Figure 1 | `figure1` | normalization + connected components |
//! | Figure 2 | `figure2` | file layouts and hyperplane vectors |
//! | Figure 3 | `figure3` | tile access patterns and I/O call counts |
//! | Figure 4 (ext.) | `figure4` | async tile pipeline vs synchronous |
//! | Figure 5 (ext.) | `figure5` | crash points × checkpoint intervals: recovery cost |
//! | Forensics (ext.) | `analyze` | blame waterfalls, critical paths, contention gap |
//! | Provenance (ext.) | `table2 --ledger`, `inspect --ledger` | cause-classified I/O attribution, version diffs |
//! | Degraded mode (ext.) | `table3 --kill-node`, `inspect --scrub` | node-loss survival, repair traffic, parity scrub |

#![warn(missing_docs)]

pub mod analyze;
pub mod degraded;
pub mod experiments;
pub mod json;
pub mod ledger;
pub mod measured;
pub mod metrics;
pub mod recovery;
pub mod reference;
pub mod trace;

pub use analyze::{
    analyze_json, analyze_register, efficiency_summary, gap_report, run_analyze_cell,
    run_analyze_sweep, AnalyzeCell, ANALYZE_WORKER_COUNTS,
};
pub use degraded::{
    degraded_register, run_degraded_demo, run_degraded_ledger_diff, DegradedCell, DegradedDemo,
    DEGRADED_KERNELS, DEGRADED_NODES, DEGRADED_STRIPE_ELEMS,
};
pub use experiments::{run_table2, run_table3, table2_row, Table2Cell, Table2Row, Table3Entry};
pub use ledger::{
    ledger_register, run_ledger_cell, run_ledger_diff, LEDGER_DIFF_PAIR, LEDGER_FRACTION,
};
pub use measured::{
    measured_params, measured_table3_register, run_measured_table3, MeasuredEntry,
    MEASURED_NODE_COUNTS, MEASURED_STRIPE_ELEMS,
};
pub use metrics::{table2_register, table3_register, MetricsScope};
pub use recovery::{
    interval_summary, recovery_register, run_recovery_demo, RecoveryCell, RecoveryDemo,
};
pub use reference::{paper_table2, paper_table3_entry, PAPER_TABLE3_KERNELS};
