//! Figure 5 (this repo's extension): what crash consistency costs and
//! what recovery saves.
//!
//! Sweeps checkpoint intervals × crash points on one kernel's c-opt
//! version through the durable executor: each cell kills the run at an
//! injected store-call fault (alternating clean crashes and torn
//! writes), verifies the checksum layer flags torn data, resumes from
//! the last checkpoint, asserts the recovered result is **bit-equal**
//! to an uninterrupted run, and reports the recovered-vs-rerun I/O
//! cost. A final section demonstrates the pipelined durable executor
//! crash-recovering with write-behind journaling.
//!
//! Usage: `figure5 [kernel] [crashes] [--metrics out.json] [--trace out.json]`
use ooc_bench::trace::TraceScope;
use ooc_bench::{interval_summary, recovery_register, run_recovery_demo, MetricsScope};
use ooc_core::{
    exec_pipelined_durable, resume_pipelined, DurabilityConfig, FunctionalConfig, MemMedium,
    PipelineConfig,
};
use ooc_ir::ArrayId;
use ooc_kernels::{compile, kernel_by_name, Version};
use ooc_runtime::{is_crashed, FaultConfig};

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = TraceScope::from_args(&mut args);
    let metrics = MetricsScope::from_args(&mut args, "figure5");
    let name = args.first().cloned().unwrap_or_else(|| "mxm".into());
    let crashes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let k = kernel_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown kernel `{name}`");
        std::process::exit(2);
    });
    println!(
        "Figure 5: crash-consistent out-of-core execution — kernel {}\n",
        k.name
    );

    // (a) The interval × crash-point sweep on the durable synchronous
    // executor (every cell asserts bit-equal recovery internally).
    println!(
        "(a) durable c-opt at {:?}, {} crash points per interval \
         (odd = clean crash, even = torn write):",
        k.small_params, crashes
    );
    println!("    interval | crash@ | mode  | crc flagged | rolled back | skipped | executed | replay cost");
    let demo = run_recovery_demo(k.name, crashes);
    for cell in &demo.cells {
        println!(
            "    {:>8} | {:>6} | {:5} | {:>11} | {:>11} | {:>7} | {:>8} | {:>10.1}%",
            cell.interval,
            cell.crash_at,
            if cell.torn { "torn" } else { "crash" },
            if cell.detected_corrupt { "yes" } else { "-" },
            cell.report.rolled_back_tiles,
            cell.report.skipped_steps,
            cell.report.executed_steps,
            cell.replay_ratio() * 100.0,
        );
        assert!(
            cell.replay_bounded,
            "rollback exceeded the one-checkpoint-interval bound"
        );
    }
    println!("\n    per interval (tile rows per checkpoint):");
    for (interval, ratio, bounded) in interval_summary(&demo) {
        println!(
            "    every {interval} row(s): mean replay cost {:>5.1}% of a full rerun, \
             replay bound {}",
            ratio * 100.0,
            if bounded { "held" } else { "VIOLATED" }
        );
    }
    recovery_register(metrics.registry(), &demo);

    // (b) The pipelined durable executor: journaled write-behind with a
    // durability fence, crashed and recovered.
    println!("\n(b) pipelined durable executor (write-behind journaling + fence):");
    let cv = compile(&k, Version::COpt);
    let dur = DurabilityConfig::default();
    let pcfg = PipelineConfig {
        functional: FunctionalConfig::with_fraction(16),
        ..PipelineConfig::default()
    };
    let mut clean = MemMedium::new();
    let fresh = exec_pipelined_durable(
        &cv.tiled,
        &k.small_params,
        &seed,
        &pcfg,
        &dur,
        &mut clean,
        &|_| None,
    )
    .expect("fresh pipelined durable run");
    let mut medium = MemMedium::new();
    // Probe run with a rate-0 wrap to size the crash index.
    let probe = exec_pipelined_durable(
        &cv.tiled,
        &k.small_params,
        &seed,
        &pcfg,
        &dur,
        &mut MemMedium::new(),
        &|a| (a == 0).then(|| FaultConfig::transient(13, 0)),
    )
    .expect("probe run");
    let calls = probe.fault_handles[0].as_ref().map_or(0, |h| h.calls());
    let crash_at = (calls / 2).max(1);
    let err = exec_pipelined_durable(
        &cv.tiled,
        &k.small_params,
        &seed,
        &pcfg,
        &dur,
        &mut medium,
        &|a| (a == 0).then(|| FaultConfig::crash_at(crash_at)),
    )
    .expect_err("injected crash must abort the pipelined run");
    assert!(is_crashed(&err), "unexpected error: {err}");
    let out = resume_pipelined(
        &cv.tiled,
        &k.small_params,
        &seed,
        &pcfg,
        &dur,
        &mut medium,
        &|_| None,
    )
    .expect("pipelined resume");
    assert_eq!(
        out.run.run.data, fresh.run.run.data,
        "pipelined recovery diverged from the uninterrupted run"
    );
    println!(
        "    crashed at store call {crash_at} of ~{calls}; recovery rolled back {} tiles,\n\
         \x20   skipped {} steps, executed {} — bit-equal to the uninterrupted run",
        out.report.rolled_back_tiles, out.report.skipped_steps, out.report.executed_steps
    );
    print!("{}", out.run.pipeline.render());
    // Deliberately not registered: the pipelined crash point lands
    // mid-flight in worker threads, so its recovery counters are not
    // deterministic — only the sweep above feeds the metrics gate.

    println!(
        "\nCheckpoints bound recovery to one interval of re-executed tiles; the\n\
         journal's pre-images make rollback idempotent and heal torn writes the\n\
         checksum sidecar detects. Durability costs journal traffic roughly\n\
         proportional to checkpoint frequency — interval 1 pays the most I/O\n\
         for the cheapest recovery, interval 4 the reverse."
    );
    let _ = metrics.finish();
    let _ = trace.finish();
}
