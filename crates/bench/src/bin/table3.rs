//! Regenerates Table 3 of the paper: speedups of every version of
//! every kernel on 16/32/64/128 processors, relative to the same
//! version on a single node.
//!
//! Usage: `table3 [scale] [--workers N] [--kill-node N|all] [--trace out.json]`
//!
//! With `--workers N` the binary switches to the **measured** mode:
//! every kernel version actually executes through the parallel
//! executor with N worker shards over stores striped across 4/8/16
//! simulated I/O nodes, against a single-shard baseline. Per-node
//! traffic registers as deterministic counters, timings as warn-only
//! gauges (gate with `bench-compare` vs `BENCH_table3_seed.json`).
//!
//! With `--kill-node N` (or `all`) it runs the **degraded-mode**
//! experiment instead: parallel runs over 4 parity-striped I/O nodes
//! with node N dead from its first arrival, plus sampled mid-run and
//! drain-phase kills — every run must land bit-equal to the fault-free
//! twin. Repair/scrub counters are deterministic (gate vs
//! `BENCH_degraded_seed.json`); priced slowdowns are warn-only gauges.
use ooc_bench::trace::TraceScope;
use ooc_bench::{
    degraded_register, measured_table3_register, paper_table3_entry, run_degraded_demo,
    run_measured_table3, run_table3, table3_register, MetricsScope, DEGRADED_KERNELS,
    DEGRADED_NODES, MEASURED_NODE_COUNTS, PAPER_TABLE3_KERNELS,
};
use ooc_runtime::IoCause;

fn measured_main(scale: i64, workers: usize, metrics: MetricsScope) {
    eprintln!(
        "running measured Table 3 with {workers} workers over {MEASURED_NODE_COUNTS:?} I/O nodes..."
    );
    let entries = run_measured_table3(scale, workers);
    println!("Table 3 (measured): {workers}-worker speedup over 1 worker, same striped stores.");
    println!("{:-<76}", "");
    println!(
        "{:10} {:7} {:>12} {:>12} {:>12} {:>18}",
        "program", "version", "4 nodes", "8 nodes", "16 nodes", "calls (16 nodes)"
    );
    println!("{:-<76}", "");
    for (kernel, _) in PAPER_TABLE3_KERNELS {
        for version in ["col", "row", "l-opt", "d-opt", "c-opt", "h-opt"] {
            let cell = |nodes: usize| {
                entries
                    .iter()
                    .find(|e| e.kernel == kernel && e.version == version && e.nodes == nodes)
            };
            print!("{kernel:10} {version:7}");
            for nodes in MEASURED_NODE_COUNTS {
                print!(" {:>11.2}x", cell(nodes).map_or(f64::NAN, |e| e.speedup));
            }
            println!(" {:>18}", cell(16).map_or(0, |e| e.total_calls()));
        }
        println!("{:-<76}", "");
    }
    println!("(per-node traffic is deterministic and exact-gated; timings are warn-only)");
    measured_table3_register(metrics.registry(), &entries);
    let _ = metrics.finish();
}

fn degraded_main(kill: &str, metrics: MetricsScope) {
    let kill_node = kill.parse::<usize>().ok();
    match kill_node {
        Some(n) => {
            eprintln!("running degraded-mode sweep: I/O node {n} dead from first arrival...")
        }
        None => eprintln!(
            "running degraded-mode sweep: each of {DEGRADED_NODES} I/O nodes killed in turn..."
        ),
    }
    println!("Degraded mode: 4-node parity-striped parallel runs surviving single-node loss.");
    println!("{:-<88}", "");
    println!(
        "{:8} {:>6} {:>8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "program",
        "killed",
        "resumes",
        "reconstruct",
        "parity wr",
        "scrub skip",
        "slowdown",
        "retained"
    );
    println!("{:-<88}", "");
    for kernel in DEGRADED_KERNELS {
        let demo = run_degraded_demo(kernel, kill_node);
        for cell in &demo.cells {
            println!(
                "{:8} {:>6} {:>8} {:>12} {:>12} {:>12} {:>9.2}x {:>9.1}%",
                demo.kernel,
                cell.killed,
                cell.resumes,
                cell.repair.get(IoCause::DegradedReconstruct).total_calls(),
                cell.repair.get(IoCause::ParityWrite).total_calls(),
                cell.scrub.skipped,
                cell.priced.slowdown(),
                cell.priced.bandwidth_retention() * 100.0,
            );
        }
        println!(
            "{:8} sampled kills verified bit-equal: {:?}",
            demo.kernel, demo.sampled_kills
        );
        println!("{:-<88}", "");
        degraded_register(metrics.registry(), &demo);
    }
    println!("(every degraded run is bit-equal to its fault-free twin; repair counters are");
    println!(" deterministic and exact-gated, priced slowdowns are warn-only gauges)");
    let _ = metrics.finish();
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = TraceScope::from_args(&mut args);
    let metrics = MetricsScope::from_args(&mut args, "table3");
    let workers = ooc_bench::trace::take_value_flag(&mut args, "--workers")
        .and_then(|w| w.parse::<usize>().ok());
    let kill = ooc_bench::trace::take_value_flag(&mut args, "--kill-node");
    let scale: i64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    if let Some(kill) = kill {
        degraded_main(&kill, metrics);
        let _ = trace.finish();
        return;
    }
    if let Some(workers) = workers {
        measured_main(scale, workers.max(1), metrics);
        let _ = trace.finish();
        return;
    }
    let procs = [16usize, 32, 64, 128];
    eprintln!("running Table 3 at 1/{scale} scale (this sweeps 10 kernels x 6 versions x 5 processor counts)...");
    let entries = run_table3(scale, &procs);

    println!("Table 3: Results on scalability of different versions (measured | paper).");
    println!("{:-<100}", "");
    println!(
        "{:10} {:7} {:>20} {:>20} {:>20} {:>20}",
        "program", "version", "16", "32", "64", "128"
    );
    println!("{:-<100}", "");
    for (kernel, label) in PAPER_TABLE3_KERNELS {
        for version in ["col", "row", "l-opt", "d-opt", "c-opt", "h-opt"] {
            let speedups: Vec<f64> = procs
                .iter()
                .map(|&p| {
                    entries
                        .iter()
                        .find(|e| e.kernel == kernel && e.version == version && e.procs == p)
                        .map_or(f64::NAN, |e| e.speedup)
                })
                .collect();
            let paper = paper_table3_entry(kernel, version);
            print!("{:10} {:7}", label, version);
            for (i, s) in speedups.iter().enumerate() {
                let ppr = paper.map_or(f64::NAN, |p| p[i]);
                print!(" {:>9.1}|{:<9.1}", s, ppr);
            }
            println!();
        }
        println!("{:-<100}", "");
    }
    println!("(cells show measured speedup | paper speedup vs the same version on 1 node)");

    if let Ok(path) = std::env::var("TABLE3_JSON") {
        let json = ooc_bench::json::table3_json(&entries);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
    table3_register(metrics.registry(), &entries);
    let _ = metrics.finish();
    let _ = trace.finish();
}
