//! Regenerates Table 3 of the paper: speedups of every version of
//! every kernel on 16/32/64/128 processors, relative to the same
//! version on a single node.
//!
//! Usage: `table3 [scale] [--trace out.json]`
use ooc_bench::trace::TraceScope;
use ooc_bench::{
    paper_table3_entry, run_table3, table3_register, MetricsScope, PAPER_TABLE3_KERNELS,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = TraceScope::from_args(&mut args);
    let metrics = MetricsScope::from_args(&mut args, "table3");
    let scale: i64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let procs = [16usize, 32, 64, 128];
    eprintln!("running Table 3 at 1/{scale} scale (this sweeps 10 kernels x 6 versions x 5 processor counts)...");
    let entries = run_table3(scale, &procs);

    println!("Table 3: Results on scalability of different versions (measured | paper).");
    println!("{:-<100}", "");
    println!(
        "{:10} {:7} {:>20} {:>20} {:>20} {:>20}",
        "program", "version", "16", "32", "64", "128"
    );
    println!("{:-<100}", "");
    for (kernel, label) in PAPER_TABLE3_KERNELS {
        for version in ["col", "row", "l-opt", "d-opt", "c-opt", "h-opt"] {
            let speedups: Vec<f64> = procs
                .iter()
                .map(|&p| {
                    entries
                        .iter()
                        .find(|e| e.kernel == kernel && e.version == version && e.procs == p)
                        .map_or(f64::NAN, |e| e.speedup)
                })
                .collect();
            let paper = paper_table3_entry(kernel, version);
            print!("{:10} {:7}", label, version);
            for (i, s) in speedups.iter().enumerate() {
                let ppr = paper.map_or(f64::NAN, |p| p[i]);
                print!(" {:>9.1}|{:<9.1}", s, ppr);
            }
            println!();
        }
        println!("{:-<100}", "");
    }
    println!("(cells show measured speedup | paper speedup vs the same version on 1 node)");

    if let Ok(path) = std::env::var("TABLE3_JSON") {
        let json = ooc_bench::json::table3_json(&entries);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
    table3_register(metrics.registry(), &entries);
    let _ = metrics.finish();
    let _ = trace.finish();
}
