//! Developer tool: per-version diagnostics for one kernel.
//!
//! For every version this prints the *analytic* simulation at the
//! scaled paper size and the *measured* store traffic of a real
//! functional run at the kernel's functional-test size (through
//! `TracingStore` instrumentation) — putting the model and the
//! observation side by side, with per-array breakdowns (run-length
//! histograms, seek distance).
//!
//! Usage: `inspect <kernel> [procs] [scale-divisor] [--trace out.json]
//!         [--explain] [--profile] [--pipeline] [--shards N]
//!         [--analyze] [--recovery] [--ledger] [--scrub]
//!         [--metrics out.json]`
//!
//! `--trace out.json` records every compiler decision and runtime tile
//! access into a Chrome-trace file (open in <https://ui.perfetto.dev>);
//! `--explain` prints the optimizer's decision records and the span
//! tree to stdout; `--profile` renders each array's access pattern
//! (seek CDF, sequential bursts, file heatmap) and a disk timeline
//! priced by the `pfs-sim` cost model; `--pipeline` additionally runs
//! each version through the asynchronous tile pipeline
//! (`exec_pipelined`), asserts bit-equality with the synchronous run,
//! and prints the cache/prefetch/stall counters (with `--shards N`,
//! N > 1, it runs the *parallel* executor instead and prints each
//! shard's counters plus the merged view); `--analyze` runs each
//! version through a traced parallel execution and prints the
//! scaling-forensics report (blame waterfall, Gantt, critical path —
//! mutually exclusive with `--trace`/`--explain`, which own the
//! process's trace session); `--recovery` runs the
//! kernel's c-opt version through the crash-consistent durable
//! executor (crash, torn write, checksum scan, resume) and prints the
//! recovery counters; `--ledger` runs each version on the synchronous
//! executor with the I/O provenance ledger attached, prints the
//! cause-classified byte attribution (compulsory vs capacity-miss vs
//! write traffic, priced by the disk model), and closes with the
//! col → c-opt diff explaining which causes the optimizations
//! eliminated; `--scrub` runs the kernel's c-opt version through the
//! degraded-mode survival sweep (each of 4 parity-striped I/O nodes
//! killed in turn), prints the repair traffic and the online
//! scrubber's verdict on the surviving stripes, and closes with the
//! healthy → degraded provenance diff; `--metrics out.json` writes a
//! metrics snapshot for `bench-compare`.
use ooc_bench::trace::{render_explain, TraceScope};
use ooc_bench::{interval_summary, recovery_register, run_recovery_demo, MetricsScope};
use ooc_core::{
    exec_parallel, exec_pipelined, profile_functional, simulate, ExecConfig, FunctionalConfig,
    IoComparison, ParallelConfig, PipelineConfig,
};
use ooc_ir::ArrayId;
use ooc_kernels::{compile, kernel_by_name, Version};
use ooc_runtime::{heatmap, sequential_stats, AccessRecord, SeekCdf, ELEM_BYTES};
use pfs_sim::{price_sequence, render_timeline, DiskParams};

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

/// Renders one array's access-pattern profile (the `--profile` view).
fn print_profile(name: &str, accesses: &[AccessRecord], file_elems: u64, disk: &DiskParams) {
    let seq = sequential_stats(accesses);
    let cdf = SeekCdf::from_records(accesses);
    println!(
        "         {name}: {} calls in {} bursts (seq {:.0}%, longest {} elems)",
        seq.calls,
        seq.bursts,
        seq.seq_frac * 100.0,
        seq.longest_burst_elems
    );
    if cdf.seeks() > 0 {
        println!(
            "         {name}: seek p50={} p90={} max={} elems ({} seeks)",
            cdf.quantile(0.5),
            cdf.quantile(0.9),
            cdf.max(),
            cdf.seeks()
        );
    }
    println!(
        "         {name}: heat |{}|",
        heatmap(accesses, file_elems, 48)
    );
    let priced = price_sequence(
        accesses
            .iter()
            .map(|r| (r.offset, r.len * ELEM_BYTES, r.write)),
        disk,
    );
    println!(
        "         {name}: disk |{}| {:.1} ms simulated, {:.0}% call overhead",
        render_timeline(&priced, 48),
        priced.total_s * 1e3,
        priced.overhead_frac() * 100.0
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = TraceScope::from_args(&mut args);
    let metrics = MetricsScope::from_args(&mut args, "inspect");
    let profile = args.iter().any(|a| a == "--profile");
    args.retain(|a| a != "--profile");
    let pipeline = args.iter().any(|a| a == "--pipeline");
    args.retain(|a| a != "--pipeline");
    let analyze = args.iter().any(|a| a == "--analyze");
    args.retain(|a| a != "--analyze");
    let shards: usize = ooc_bench::trace::take_value_flag(&mut args, "--shards")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    let recovery = args.iter().any(|a| a == "--recovery");
    args.retain(|a| a != "--recovery");
    let ledger = args.iter().any(|a| a == "--ledger");
    args.retain(|a| a != "--ledger");
    let scrub = args.iter().any(|a| a == "--scrub");
    args.retain(|a| a != "--scrub");
    let name = args.first().cloned().unwrap_or_else(|| "trans".into());
    let procs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let scale: i64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let k = kernel_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown kernel `{name}`");
        std::process::exit(2);
    });
    let params: Vec<i64> = k.paper_params.iter().map(|&n| (n / scale).max(8)).collect();
    println!("kernel {} params={:?} procs={}", k.name, params, procs);
    let disk = DiskParams::default();
    for v in Version::ALL {
        let cv = compile(&k, v);
        let mut cfg = ExecConfig::new(params.clone(), procs);
        cfg.interleave = cv.interleave.clone();

        // Measured: run the program for real at the functional-test
        // size over profiled+traced in-memory stores, and attach the
        // observation to the simulation report.
        let run = profile_functional(
            &cv.tiled,
            &k.small_params,
            &seed,
            &FunctionalConfig::with_fraction(16),
        );
        let mut r = simulate(&cv.tiled, &cfg);
        if let Some(m) = run.total_measured() {
            r = r.with_measured(m);
        }

        println!(
            "{:6} calls={:>10} MB={:>10.1} tiles={:>8} time={:>10.2}  layouts={}",
            v.label(),
            r.io_calls,
            r.io_bytes as f64 / 1e6,
            r.tile_steps,
            r.result.total_time,
            cv.tiled
                .layouts
                .iter()
                .enumerate()
                .map(|(a, l)| format!("{}:{:?}", cv.tiled.program.arrays[a].name, l))
                .collect::<Vec<_>>()
                .join(" ")
        );
        if let Some(cmp) = IoComparison::from_run(v.label(), &run) {
            println!("       measured at {:?}: {cmp}", k.small_params);
        }

        let reg = metrics.registry();
        let labels = [("kernel", k.name), ("version", v.label())];
        reg.counter_add("io_calls", &labels, r.io_calls);
        reg.counter_add("io_bytes", &labels, r.io_bytes);
        reg.counter_add("tile_steps", &labels, r.tile_steps);

        // Per-array breakdown, sorted by array name so the output (and
        // any diff of it) is stable regardless of declaration order.
        let mut profiles: Vec<_> = run.profiles.iter().collect();
        profiles.sort_by(|a, b| a.name.cmp(&b.name));
        for p in &profiles {
            let Some(m) = &p.measured else { continue };
            if m.total_calls() == 0 && m.failed_calls == 0 {
                continue;
            }
            println!(
                "         {}: {} calls / {} elems, {} seeks ({} elems apart), runs {}",
                p.name,
                m.total_calls(),
                m.total_elems(),
                m.seeks,
                m.seek_elems,
                m.run_hist_compact()
            );
            let array_labels = [
                ("kernel", k.name),
                ("version", v.label()),
                ("array", p.name.as_str()),
            ];
            reg.counter_add("measured_calls", &array_labels, m.total_calls());
            reg.counter_add("measured_seeks", &array_labels, m.seeks);
            reg.counter_add("seek_elems", &array_labels, m.seek_elems);
            reg.record_hist("run_len", &array_labels, &m.run_histogram());
            if profile {
                if let Some(accesses) = &p.accesses {
                    // Heatmap over the array's actual file extent at
                    // the measured (small) size.
                    let file_elems = cv
                        .tiled
                        .program
                        .arrays
                        .iter()
                        .find(|d| d.name == p.name)
                        .map_or(0, |d| d.len(&k.small_params).unsigned_abs());
                    print_profile(&p.name, accesses, file_elems, &disk);
                }
            }
        }
        if pipeline {
            let pcfg = PipelineConfig {
                functional: FunctionalConfig::with_fraction(16),
                ..PipelineConfig::default()
            };
            if shards > 1 {
                let pcfg = ParallelConfig {
                    pipeline: pcfg,
                    shards,
                };
                let prun = exec_parallel(&cv.tiled, &k.small_params, &seed, &pcfg, |_, _, len| {
                    Ok(ooc_runtime::MemStore::new(len))
                })
                .expect("parallel run");
                assert_eq!(
                    prun.run.data,
                    run.data,
                    "{} {}: parallel executor diverged from the synchronous one",
                    k.name,
                    v.label()
                );
                println!(
                    "       parallel pipeline at {:?} ({shards} shards) — bit-equal to sync:",
                    k.small_params
                );
                for (si, stats) in prun.shard_stats.iter().enumerate() {
                    println!("       shard {si}:");
                    print!("{}", stats.render());
                }
                println!("       merged across {shards} shards:");
                print!("{}", prun.pipeline.render());
                prun.pipeline
                    .register_into(metrics.registry(), k.name, v.label());
            } else {
                let prun = exec_pipelined(&cv.tiled, &k.small_params, &seed, &pcfg, |_, _, len| {
                    Ok(ooc_runtime::MemStore::new(len))
                })
                .expect("pipelined run");
                assert_eq!(
                    prun.run.data,
                    run.data,
                    "{} {}: pipeline diverged from the synchronous executor",
                    k.name,
                    v.label()
                );
                println!(
                    "       pipeline at {:?} (workers={} depth={}) — bit-equal to sync:",
                    k.small_params, pcfg.workers, pcfg.prefetch_depth
                );
                print!("{}", prun.pipeline.render());
                prun.pipeline
                    .register_into(metrics.registry(), k.name, v.label());
            }
        }
        if analyze {
            if trace.active() {
                eprintln!(
                    "--analyze skipped for {}: --trace/--explain owns the process trace session",
                    v.label()
                );
            } else {
                let cell = ooc_bench::run_analyze_cell(&k, v, scale, shards.max(2), 8);
                println!(
                    "       forensics (workers={}, nodes={}, {:.1} ms measured, \
                     {} events dropped by flight recorder):",
                    cell.workers,
                    cell.nodes,
                    cell.seconds * 1e3,
                    cell.report.timeline.dropped
                );
                print!("{}", cell.report.render(72));
                ooc_bench::analyze_register(metrics.registry(), std::slice::from_ref(&cell));
            }
        }
        if ledger {
            let (led, _) = ooc_bench::run_ledger_cell(&k, v);
            println!(
                "       provenance ledger (sync executor at {:?}):",
                k.small_params
            );
            print!("{}", ooc_analyze::render_ledger(&led, &disk));
            ooc_bench::ledger_register(metrics.registry(), &led, &disk);
        }
    }
    if ledger {
        // Close with the version comparison: which causes did the
        // combined optimizations eliminate, and why?
        let (from, to) = ooc_bench::LEDGER_DIFF_PAIR;
        let diff = ooc_bench::run_ledger_diff(&k, from, to, &disk);
        println!(
            "ledger diff ({} \u{2192} {} at {:?}):",
            from.label(),
            to.label(),
            k.small_params
        );
        print!("{}", diff.render());
    }
    if recovery {
        // The durable executor only runs the optimized version — the
        // sweep's contract (bit-equal recovery, bounded replay) is
        // asserted inside run_recovery_demo.
        println!(
            "recovery (c-opt at {:?}, durable executor):",
            k.small_params
        );
        let demo = run_recovery_demo(k.name, 2);
        for cell in &demo.cells {
            println!(
                "       interval {} crash@{} ({}{}): rolled back {} tiles, \
                 skipped {}, executed {}, replay {:.1}%",
                cell.interval,
                cell.crash_at,
                if cell.torn { "torn" } else { "clean" },
                if cell.detected_corrupt {
                    ", crc flagged"
                } else {
                    ""
                },
                cell.report.rolled_back_tiles,
                cell.report.skipped_steps,
                cell.report.executed_steps,
                cell.replay_ratio() * 100.0
            );
        }
        for (interval, ratio, bounded) in interval_summary(&demo) {
            println!(
                "       every {interval} row(s): mean replay {:.1}% of a rerun, bound {}",
                ratio * 100.0,
                if bounded { "held" } else { "VIOLATED" }
            );
        }
        if let Some(cell) = demo.cells.first() {
            print!("{}", cell.report.render());
        }
        recovery_register(metrics.registry(), &demo);
    }
    if scrub {
        // Bit-equality, conservation, and the replay bound are
        // asserted inside run_degraded_demo; this section reports what
        // surviving each loss cost.
        println!(
            "degraded mode (c-opt at {:?}, {} parity-striped I/O nodes):",
            k.small_params,
            ooc_bench::DEGRADED_NODES
        );
        let demo = ooc_bench::run_degraded_demo(k.name, None);
        for cell in &demo.cells {
            let rec = cell.repair.get(ooc_runtime::IoCause::DegradedReconstruct);
            let par = cell.repair.get(ooc_runtime::IoCause::ParityWrite);
            println!(
                "       kill node {} @ first arrival: {} resume(s), \
                 reconstructed {} elems in {} calls, parity RMW {} elems",
                cell.killed,
                cell.resumes,
                rec.total_elems(),
                rec.total_calls(),
                par.total_elems(),
            );
            println!(
                "       scrub: {} groups — {} clean, {} chunks skipped \
                 (node {} down), {} unrecoverable",
                cell.scrub.groups,
                cell.scrub.clean,
                cell.scrub.skipped,
                cell.killed,
                cell.scrub.unrecoverable
            );
        }
        println!(
            "       sampled mid-run/drain kills verified bit-equal: {:?}",
            demo.sampled_kills
        );
        if let Some(cell) = demo.cells.first() {
            println!(
                "degraded ledger diff (healthy \u{2192} node {} dead at {:?}):",
                cell.killed, k.small_params
            );
            let diff = ooc_analyze::diff_ledgers(&demo.healthy_ledger, &cell.ledger, &disk);
            print!("{}", diff.render());
        }
        ooc_bench::degraded_register(metrics.registry(), &demo);
    }
    let _ = metrics.finish();
    let explain = trace.explain;
    if let Some(data) = trace.finish() {
        if explain {
            print!("{}", render_explain(&data));
        }
    }
}
