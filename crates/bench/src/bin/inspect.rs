//! Developer tool: per-version diagnostics for one kernel.
//!
//! Usage: `inspect <kernel> [procs] [scale-divisor]`
use ooc_core::{simulate, ExecConfig};
use ooc_kernels::{compile, kernel_by_name, Version};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "trans".into());
    let procs: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let scale: i64 = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let k = kernel_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown kernel `{name}`");
        std::process::exit(2);
    });
    let params: Vec<i64> = k.paper_params.iter().map(|&n| (n / scale).max(8)).collect();
    println!("kernel {} params={:?} procs={}", k.name, params, procs);
    for v in Version::ALL {
        let cv = compile(&k, v);
        let mut cfg = ExecConfig::new(params.clone(), procs);
        cfg.interleave = cv.interleave.clone();
        let r = simulate(&cv.tiled, &cfg);
        println!(
            "{:6} calls={:>10} MB={:>10.1} tiles={:>8} time={:>10.2}  layouts={}",
            v.label(),
            r.io_calls,
            r.io_bytes as f64 / 1e6,
            r.tile_steps,
            r.result.total_time,
            cv.tiled
                .layouts
                .iter()
                .enumerate()
                .map(|(a, l)| format!("{}:{:?}", cv.tiled.program.arrays[a].name, l))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
}
