//! Developer tool: per-version diagnostics for one kernel.
//!
//! For every version this prints the *analytic* simulation at the
//! scaled paper size and the *measured* store traffic of a real
//! functional run at the kernel's functional-test size (through
//! `TracingStore` instrumentation) — putting the model and the
//! observation side by side.
//!
//! Usage: `inspect <kernel> [procs] [scale-divisor] [--trace out.json] [--explain]`
//!
//! `--trace out.json` records every compiler decision and runtime tile
//! access into a Chrome-trace file (open in <https://ui.perfetto.dev>);
//! `--explain` prints the optimizer's decision records and the span
//! tree to stdout.
use ooc_bench::trace::{render_explain, TraceScope};
use ooc_core::{measure_functional, simulate, ExecConfig, FunctionalConfig, IoComparison};
use ooc_ir::ArrayId;
use ooc_kernels::{compile, kernel_by_name, Version};

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = TraceScope::from_args(&mut args);
    let name = args.first().cloned().unwrap_or_else(|| "trans".into());
    let procs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let scale: i64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let k = kernel_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown kernel `{name}`");
        std::process::exit(2);
    });
    let params: Vec<i64> = k.paper_params.iter().map(|&n| (n / scale).max(8)).collect();
    println!("kernel {} params={:?} procs={}", k.name, params, procs);
    for v in Version::ALL {
        let cv = compile(&k, v);
        let mut cfg = ExecConfig::new(params.clone(), procs);
        cfg.interleave = cv.interleave.clone();

        // Measured: run the program for real at the functional-test
        // size over traced in-memory stores, and attach the
        // observation to the simulation report.
        let run = measure_functional(
            &cv.tiled,
            &k.small_params,
            &seed,
            &FunctionalConfig::with_fraction(16),
        );
        let mut r = simulate(&cv.tiled, &cfg);
        if let Some(m) = run.total_measured() {
            r = r.with_measured(m);
        }

        println!(
            "{:6} calls={:>10} MB={:>10.1} tiles={:>8} time={:>10.2}  layouts={}",
            v.label(),
            r.io_calls,
            r.io_bytes as f64 / 1e6,
            r.tile_steps,
            r.result.total_time,
            cv.tiled
                .layouts
                .iter()
                .enumerate()
                .map(|(a, l)| format!("{}:{:?}", cv.tiled.program.arrays[a].name, l))
                .collect::<Vec<_>>()
                .join(" ")
        );
        if let Some(cmp) = IoComparison::from_run(v.label(), &run) {
            println!("       measured at {:?}: {cmp}", k.small_params);
        }
    }
    let explain = trace.explain;
    if let Some(data) = trace.finish() {
        if explain {
            print!("{}", render_explain(&data));
        }
    }
}
