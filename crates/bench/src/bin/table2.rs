//! Regenerates Table 2 of the paper: execution time of the six program
//! versions of every kernel on 16 processors (col in seconds, the
//! rest as a percentage of col), side by side with the published
//! numbers.
//!
//! Usage: `table2 [scale] [procs] [--trace out.json] [--ledger]`
//!   scale — divide every paper array extent by this (default 1 =
//!           full paper scale; use 4 for a quick run)
//!   procs — compute processors (default 16, the paper's Table 2)
//!
//! `--ledger` additionally runs every kernel's col and c-opt versions
//! for real on the synchronous executor with the I/O provenance
//! ledger attached and prints the cause-classified diff explaining
//! *why* c-opt moves fewer bytes (which capacity misses disappeared,
//! what the prefetcher wasted, ...). The cause buckets register as
//! deterministic counters under `--metrics`, gated in CI against
//! `BENCH_ledger_seed.json`.
use ooc_bench::trace::TraceScope;
use ooc_bench::{
    ledger_register, paper_table2, run_ledger_cell, run_table2, table2_register, MetricsScope,
    LEDGER_DIFF_PAIR,
};
use ooc_kernels::all_kernels;
use pfs_sim::DiskParams;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = TraceScope::from_args(&mut args);
    let metrics = MetricsScope::from_args(&mut args, "table2");
    let ledger = args.iter().any(|a| a == "--ledger");
    args.retain(|a| a != "--ledger");
    let scale: i64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(1);
    let procs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    eprintln!("running Table 2 at 1/{scale} scale on {procs} simulated processors...");
    let rows = run_table2(procs, scale);
    let paper = paper_table2();

    println!("Table 2: Experimental results on {procs} nodes (measured | paper).");
    println!("{:-<108}", "");
    println!(
        "{:8} {:>10} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "program", "col (s)", "row", "l-opt", "d-opt", "c-opt", "h-opt"
    );
    println!("{:-<108}", "");
    let mut sums = [0.0f64; 5];
    let mut paper_sums = [0.0f64; 5];
    for row in &rows {
        let pref = paper.iter().find(|(k, ..)| *k == row.kernel);
        print!("{:8} {:>10.2}", row.kernel, row.col_seconds());
        for i in 1..6 {
            let measured = row.percent_of_col(i);
            sums[i - 1] += measured;
            let ppr = pref.map_or(f64::NAN, |(_, _, r)| r[i - 1]);
            paper_sums[i - 1] += if ppr.is_nan() { 0.0 } else { ppr };
            print!(" {:>6.1}|{:<6.1}", measured, ppr);
        }
        println!();
    }
    println!("{:-<108}", "");
    print!("{:8} {:>10}", "average:", "");
    for i in 0..5 {
        print!(
            " {:>6.1}|{:<6.1}",
            sums[i] / rows.len() as f64,
            paper_sums[i] / rows.len() as f64
        );
    }
    println!();
    println!();
    println!("(columns show measured% | paper% of the col baseline)");

    // Machine-readable dump for EXPERIMENTS.md regeneration.
    if let Ok(path) = std::env::var("TABLE2_JSON") {
        let json = ooc_bench::json::table2_json(&rows);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
    if ledger {
        // Why do the optimized versions win? Run col and c-opt for
        // real (sync executor, functional-test size) with the
        // provenance ledger attached and diff the cause buckets.
        let disk = DiskParams::default();
        let (from, to) = LEDGER_DIFF_PAIR;
        println!();
        println!(
            "== I/O provenance: {} \u{2192} {} cause-bucket diffs (sync executor)",
            from.label(),
            to.label()
        );
        for k in all_kernels() {
            let (a, _) = run_ledger_cell(&k, from);
            let (b, _) = run_ledger_cell(&k, to);
            println!();
            print!("{}", ooc_analyze::diff_ledgers(&a, &b, &disk).render());
            ledger_register(metrics.registry(), &a, &disk);
            ledger_register(metrics.registry(), &b, &disk);
        }
    }
    table2_register(metrics.registry(), &rows);
    let _ = metrics.finish();
    let _ = trace.finish();
}
