//! Scaling forensics: where did the wall-clock of a parallel run go?
//!
//! For each kernel × version this traces real parallel executions at
//! 1/2/4/8 workers over striped I/O-node stores and reports:
//!
//! * the **blame waterfall** — compute, sync read/write, prefetch
//!   stall, fence wait, I/O-node queue wait, checkpoint/replay,
//!   barrier skew — per lane, summing *exactly* to the measured
//!   wall-clock (`=` marks the conservation check);
//! * a per-lane ASCII **Gantt** chart and the **critical path** with
//!   its bounding resource;
//! * the **efficiency-loss-at-N** summary across all cells;
//! * the **model-vs-measured contention gap** table (priced contention
//!   vs experienced queue waits) over 4/8/16 nodes.
//!
//! Usage: `analyze [scale] [--kernels a,b,c] [--workers-detail N]
//!         [--metrics out.json] [--json out.json] [--serve ADDR]`
//!
//! `--kernels` restricts the sweep (CSV of kernel names); the detail
//! blocks (waterfall/Gantt/critical path) print for the highest worker
//! count unless `--workers-detail` picks another; `--json out.json`
//! writes the efficiency summary and the contention-gap table as a
//! machine-readable dump; `--serve ADDR` starts the live HTTP endpoint
//! (`/metrics`, `/analyze`, `/ledger`) for the duration of the sweep.
//! Gate with `bench-compare` against `BENCH_analyze_seed.json`.

use ooc_analyze::{registry_provider, render_ledger, LiveServer};
use ooc_bench::{
    analyze_register, efficiency_summary, gap_report, run_analyze_cell, run_ledger_cell,
    MetricsScope, ANALYZE_WORKER_COUNTS, MEASURED_NODE_COUNTS,
};
use ooc_kernels::{all_kernels, Version};
use pfs_sim::DiskParams;
use std::sync::{Arc, Mutex};

const SWEEP_NODES: usize = 8;
const GAP_WORKERS: usize = 4;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = MetricsScope::from_args(&mut args, "analyze");
    let kernels: Vec<String> = ooc_bench::trace::take_value_flag(&mut args, "--kernels")
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_default();
    let detail_workers: usize = ooc_bench::trace::take_value_flag(&mut args, "--workers-detail")
        .and_then(|s| s.parse().ok())
        .unwrap_or(*ANALYZE_WORKER_COUNTS.last().expect("non-empty"));
    let serve = ooc_bench::trace::take_value_flag(&mut args, "--serve");
    let json_out = ooc_bench::trace::take_value_flag(&mut args, "--json");
    let scale: i64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);

    // The live endpoint shares the metrics registry (scrapes see cells
    // as they land), a report slot refreshed after every cell, and a
    // ledger slot refreshed at version granularity.
    let live_registry = Arc::new(ooc_metrics::Registry::new());
    let live_report = Arc::new(Mutex::new(String::new()));
    let live_ledger = Arc::new(Mutex::new(String::new()));
    let mut server = serve.map(|addr| {
        let provider = registry_provider(
            "analyze-live",
            Arc::clone(&live_registry),
            Arc::clone(&live_report),
            Arc::clone(&live_ledger),
        );
        let server = LiveServer::start(&addr, provider)
            .unwrap_or_else(|e| panic!("cannot bind live endpoint {addr}: {e}"));
        eprintln!(
            "live endpoint: http://{}/metrics, /analyze, and /ledger",
            server.local_addr()
        );
        server
    });

    eprintln!(
        "tracing parallel runs at 1/{} of measured scale: {} kernels x 6 versions x {:?} workers \
         at {SWEEP_NODES} nodes (+{:?} nodes at {GAP_WORKERS} workers for the gap table)...",
        scale * 32,
        if kernels.is_empty() {
            all_kernels().len()
        } else {
            kernels.len()
        },
        ANALYZE_WORKER_COUNTS,
        MEASURED_NODE_COUNTS
            .iter()
            .filter(|&&n| n != SWEEP_NODES)
            .collect::<Vec<_>>(),
    );

    // Sequential by construction: trace sessions are process-exclusive.
    let mut cells = Vec::new();
    for k in all_kernels() {
        if !kernels.is_empty() && !kernels.iter().any(|n| n == k.name) {
            continue;
        }
        for &v in Version::ALL.iter() {
            for workers in ANALYZE_WORKER_COUNTS {
                cells.push(run_analyze_cell(&k, v, scale, workers, SWEEP_NODES));
            }
            for nodes in MEASURED_NODE_COUNTS {
                if nodes != SWEEP_NODES {
                    cells.push(run_analyze_cell(&k, v, scale, GAP_WORKERS, nodes));
                }
            }
            // Refresh the live endpoint at version granularity: the
            // latest forensics render plus a fresh provenance ledger
            // from a quick synchronous run of the same version.
            if server.is_some() {
                let last = cells.last().expect("cells non-empty");
                *live_report.lock().expect("live report") = last.report.render(80);
                ooc_bench::analyze_register(&live_registry, std::slice::from_ref(last));
                let (ledger, _) = run_ledger_cell(&k, v);
                *live_ledger.lock().expect("live ledger") =
                    render_ledger(&ledger, &DiskParams::default());
            }
            let detail = cells
                .iter()
                .rev()
                .find(|c| {
                    c.kernel == k.name
                        && c.version == v.label()
                        && c.workers == detail_workers
                        && c.nodes == SWEEP_NODES
                })
                .expect("detail cell ran");
            println!(
                "=== {} {} (workers={}, nodes={SWEEP_NODES}, {:.1} ms measured)",
                k.name,
                v.label(),
                detail.workers,
                detail.seconds * 1e3
            );
            print!("{}", detail.report.render(72));
            println!();
        }
    }

    println!("== efficiency loss at N workers ({SWEEP_NODES} nodes)");
    print!("{}", efficiency_summary(&cells, SWEEP_NODES));
    println!();
    println!("== model-vs-measured contention gap ({GAP_WORKERS} workers)");
    print!("{}", gap_report(&cells, GAP_WORKERS).render());
    println!("(gap = measured busy makespan / priced makespan; w-share = experienced");
    println!(" queue wait over busy time — contention the analytic model leaves unpriced)");

    if let Some(path) = json_out {
        let json = ooc_bench::analyze::analyze_json(&cells, SWEEP_NODES, GAP_WORKERS);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }

    analyze_register(metrics.registry(), &cells);
    let _ = metrics.finish();
    if let Some(s) = server.as_mut() {
        s.stop();
    }
}
