//! Perf-regression gate: diffs two metrics snapshots.
//!
//! Usage:
//!   `bench-compare <baseline.json> <current.json>` — compare a fresh
//!     snapshot against a committed baseline. Deterministic counters
//!     and histograms must match exactly (any change is a hard
//!     failure — improvements refresh the baseline in the same
//!     change); wall-clock-like gauges warn beyond ±25%. Exits 1 on
//!     hard failures.
//!   `bench-compare --validate <file.json>` — check a snapshot against
//!     the `ooc-metrics-snapshot/v1` schema. Exits 1 when invalid.
//!   `bench-compare --prometheus <file.json>` — render a snapshot in
//!     the Prometheus text exposition format on stdout.
//!
//! Exit codes: 0 clean (warnings allowed), 1 hard failure / invalid
//! input, 2 usage error.
use ooc_metrics::{diff_snapshots, prometheus_text, DiffPolicy, Snapshot};

fn load(path: &str) -> Snapshot {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench-compare: cannot read {path}: {e}");
        std::process::exit(1);
    });
    Snapshot::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench-compare: {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, path] if flag == "--validate" => {
            let snap = load(path);
            println!(
                "{path}: valid snapshot from `{}` with {} series",
                snap.producer,
                snap.samples.len()
            );
        }
        [flag, path] if flag == "--prometheus" => {
            print!("{}", prometheus_text(&load(path)));
        }
        [baseline, current] => {
            let old = load(baseline);
            let new = load(current);
            let report = diff_snapshots(&old, &new, &DiffPolicy::default());
            print!(
                "comparing {current} (`{}`) against baseline {baseline} (`{}`):\n{report}",
                new.producer, old.producer
            );
            if !report.is_clean() {
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!(
                "usage: bench-compare <baseline.json> <current.json>\n\
                 \x20      bench-compare --validate <file.json>\n\
                 \x20      bench-compare --prometheus <file.json>"
            );
            std::process::exit(2);
        }
    }
}
