//! Regenerates Figure 2 of the paper: example file layouts and their
//! hyperplane vectors, rendered as the storage order of a small array
//! plus the I/O-call cost of a sample tile under each layout.
use ooc_runtime::{FileLayout, Region};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = ooc_bench::trace::TraceScope::from_args(&mut args);
    let metrics = ooc_bench::MetricsScope::from_args(&mut args, "figure2");
    let dims = [8i64, 8];
    let layouts: Vec<(&str, FileLayout)> = vec![
        (
            "row-major        g = (1,0)",
            FileLayout::from_hyperplane(&[1, 0]),
        ),
        (
            "column-major     g = (0,1)",
            FileLayout::from_hyperplane(&[0, 1]),
        ),
        (
            "diagonal         g = (1,-1)",
            FileLayout::from_hyperplane(&[1, -1]),
        ),
        (
            "anti-diagonal    g = (1,1)",
            FileLayout::from_hyperplane(&[1, 1]),
        ),
        (
            "general          g = (7,4)",
            FileLayout::from_hyperplane(&[7, 4]),
        ),
        (
            "blocked 4x4      (h-opt chunking)",
            FileLayout::Blocked2D { br: 4, bc: 4 },
        ),
    ];
    println!("Figure 2: example file layouts and their hyperplane vectors");
    println!("(numbers show each element's position in the file; 8x8 array)\n");
    for (name, layout) in &layouts {
        println!("{name}:");
        for a1 in 1..=dims[0] {
            print!("   ");
            for a2 in 1..=dims[1] {
                print!("{:>4}", layout.offset_of(&dims, &[a1, a2]));
            }
            println!();
        }
        // Cost of a 4x4 corner tile under this layout.
        let tile = Region::new(vec![1, 1], vec![4, 4]);
        let s = layout.region_run_summary(&dims, &tile);
        println!(
            "   -> a 4x4 tile costs {} contiguous runs ({} elements)\n",
            s.runs, s.elements
        );
        let short = name.split_whitespace().next().unwrap_or(name);
        let labels = [("layout", short)];
        metrics.registry().counter_add("tile_runs", &labels, s.runs);
        metrics
            .registry()
            .counter_add("tile_elements", &labels, s.elements);
    }
    let _ = metrics.finish();
    let _ = trace.finish();
}
