//! Regenerates Figure 3 of the paper: traditional tiling (square
//! tiles, innermost loop tiled) versus out-of-core tiling (innermost
//! loop untiled) — same memory, fewer I/O calls.
//!
//! The paper's setting: the §3.1 two-nest example, 8x8 arrays, 32
//! elements of memory, at most 8 elements per I/O call.
use ooc_runtime::{summary_cost, FileLayout, MemoryBudget, Region};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = ooc_bench::trace::TraceScope::from_args(&mut args);
    let metrics = ooc_bench::MetricsScope::from_args(&mut args, "figure3");
    println!("Figure 3: different tile access patterns\n");
    let dims = [8i64, 8];
    let budget = MemoryBudget::new(32);
    let per_array = budget.per_array(2);
    let max_call_elems = 8;
    println!(
        "memory = {} elements across 2 arrays ({} each); max {} elements per I/O call\n",
        budget.capacity(),
        per_array,
        max_call_elems
    );

    // (a) Traditional tiling: both loops tiled -> square 4x4 tiles.
    println!("(a) traditional tiling - 4x4 tiles (innermost loop tiled):");
    for (name, layout) in [
        ("row-major   ", FileLayout::row_major(2)),
        ("column-major", FileLayout::col_major(2)),
    ] {
        let tile = Region::new(vec![1, 1], vec![4, 4]);
        let cost = summary_cost(layout.region_run_summary(&dims, &tile), max_call_elems);
        println!(
            "    {name}: reading a 4x4 tile = {} I/O calls for {} elements",
            cost.calls, cost.elements
        );
        let labels = [("strategy", "traditional"), ("layout", name.trim_end())];
        metrics
            .registry()
            .counter_add("tile_calls", &labels, cost.calls);
    }

    // (b) Out-of-core tiling: innermost untiled -> 2x8 slabs.
    println!("\n(b) out-of-core tiling - 2x8 tiles (innermost loop NOT tiled):");
    for (name, layout) in [
        ("row-major   ", FileLayout::row_major(2)),
        ("column-major", FileLayout::col_major(2)),
    ] {
        let tile = Region::new(vec![1, 1], vec![2, 8]);
        let cost = summary_cost(layout.region_run_summary(&dims, &tile), max_call_elems);
        println!(
            "    {name}: reading a 2x8 tile = {} I/O calls for {} elements",
            cost.calls, cost.elements
        );
        let labels = [("strategy", "ooc"), ("layout", name.trim_end())];
        metrics
            .registry()
            .counter_add("tile_calls", &labels, cost.calls);
    }

    println!(
        "\nSame in-core memory either way; matching the tile shape to the file\n\
         layout turns 4 calls of 4 elements into 2 calls of 8 elements -- the\n\
         paper's motivation for never tiling the (stride-1) innermost loop."
    );
    let _ = metrics.finish();
    let _ = trace.finish();
}
