//! Regenerates Table 1 of the paper: the benchmark programs and their
//! array inventories.
use ooc_bench::trace::TraceScope;
use ooc_bench::MetricsScope;
use ooc_kernels::all_kernels;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = TraceScope::from_args(&mut args);
    let metrics = MetricsScope::from_args(&mut args, "table1");
    println!("Table 1: Programs used in our experiments.");
    println!("{:-<78}", "");
    println!("{:8} {:10} {:>4}  arrays", "program", "source", "iter");
    println!("{:-<78}", "");
    for k in all_kernels() {
        let mut by_rank = std::collections::BTreeMap::new();
        for a in &k.program.arrays {
            *by_rank.entry(a.rank()).or_insert(0usize) += 1;
        }
        let arrays = by_rank
            .iter()
            .map(|(rank, count)| format!("{count} {rank}-D"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "{:8} {:10} {:>4}  {}",
            k.name, k.source, k.iterations, arrays
        );
    }
    println!("{:-<78}", "");
    println!("(paper-scale data per kernel:)");
    for k in all_kernels() {
        println!(
            "  {:8} params={:?}  {:>8.1} MB out-of-core",
            k.name,
            k.paper_params,
            k.paper_bytes() as f64 / 1e6
        );
        let labels = [("kernel", k.name)];
        let r = metrics.registry();
        r.counter_add("arrays", &labels, k.program.arrays.len() as u64);
        r.counter_add("nests", &labels, k.program.nests.len() as u64);
        r.counter_add("iterations", &labels, u64::from(k.iterations));
        r.counter_add("paper_bytes", &labels, k.paper_bytes());
    }
    metrics
        .registry()
        .counter_add("kernels", &[], all_kernels().len() as u64);
    let _ = metrics.finish();
    let _ = trace.finish();
}
