//! Figure 4 (this repo's extension): what the asynchronous tile
//! pipeline buys on top of the paper's compiler optimizations.
//!
//! Two views over one kernel:
//!
//! 1. **Executed** — `exec_pipelined` runs the c-opt version for real
//!    (small size, in-memory stores) across a cache-capacity ×
//!    prefetch-depth sweep, printing hit rates, stalls, and sync-read
//!    counts from the pipeline's own counters. Results are asserted
//!    bit-equal to the synchronous executor on every cell.
//! 2. **Modeled** — the paper-scale trace of every version goes
//!    through `pfs-sim`'s overlap pricing: pipelined makespan
//!    (`max(compute, I/O)` per stage, bounded lookahead) versus the
//!    synchronous sum, per prefetch depth.
//!
//! Usage: `figure4 [kernel] [scale-divisor] [--metrics out.json]`
use ooc_bench::MetricsScope;
use ooc_core::pipeline::{extract_schedule, schedule_footprint};
use ooc_core::{
    build_workload, exec_pipelined, run_functional_on, ExecConfig, FunctionalConfig, PipelineConfig,
};
use ooc_ir::ArrayId;
use ooc_kernels::{compile, kernel_by_name, Version};
use ooc_runtime::MemStore;
use pfs_sim::overlap_report;

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

const DEPTHS: [usize; 5] = [0, 1, 2, 4, 8];
const CAPACITY_MULTS: [u64; 3] = [1, 2, 4];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = MetricsScope::from_args(&mut args, "figure4");
    let name = args.first().cloned().unwrap_or_else(|| "mxm".into());
    let scale: i64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let k = kernel_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown kernel `{name}`");
        std::process::exit(2);
    });
    println!("Figure 4: asynchronous tile pipeline — kernel {}\n", k.name);

    // (a) Executed sweep: c-opt at the functional-test size.
    let cv = compile(&k, Version::COpt);
    let fcfg = FunctionalConfig::with_fraction(16);
    let reference = run_functional_on(&cv.tiled, &k.small_params, &seed, &fcfg, |_, _, len| {
        Ok(MemStore::new(len))
    })
    .expect("sync reference");
    let footprint = schedule_footprint(&extract_schedule(&cv.tiled, &k.small_params, &fcfg)).max(1);
    println!(
        "(a) executed at {:?} (c-opt, in-memory stores; step footprint {} elems):",
        k.small_params, footprint
    );
    println!("    cache x depth | hit rate | stalls | async reads | sync reads | wb tiles");
    for &mult in &CAPACITY_MULTS {
        for &depth in &DEPTHS {
            let cfg = PipelineConfig {
                functional: fcfg.clone(),
                workers: 2,
                prefetch_depth: depth,
                cache_capacity: Some(footprint * mult),
                write_behind: true,
            };
            let run = exec_pipelined(&cv.tiled, &k.small_params, &seed, &cfg, |_, _, len| {
                Ok(MemStore::new(len))
            })
            .expect("pipelined run");
            assert_eq!(
                run.run.data, reference.data,
                "pipelined c-opt diverged at capacity x{mult}, depth {depth}"
            );
            let p = &run.pipeline;
            println!(
                "    {:>5}x{} d={}   | {:>6.1}% | {:>6} | {:>11} | {:>10} | {:>8}",
                mult,
                footprint,
                depth,
                p.hit_rate() * 100.0,
                p.stalls,
                p.prefetched_reads,
                p.sync_reads,
                p.writebehind_tiles
            );
            if mult == 2 && depth == 4 {
                // The headline configuration lands in the snapshot.
                p.register_into(metrics.registry(), k.name, "c-opt");
            }
        }
    }
    println!("    (every cell bit-equal to the synchronous executor)\n");

    // (b) Modeled overlap at paper scale, per version and depth.
    let params: Vec<i64> = k.paper_params.iter().map(|&n| (n / scale).max(8)).collect();
    println!("(b) modeled at {params:?} (pfs-sim overlap pricing, 1 processor):");
    println!("    version | sequential |  d=0   d=1   d=2   d=4   d=8  | hidden I/O");
    for v in Version::ALL {
        let cv = compile(&k, v);
        let mut cfg = ExecConfig::new(params.clone(), 1);
        cfg.interleave = cv.interleave.clone();
        let (_sim, workload, _report) = build_workload(&cv.tiled, &cfg);
        let trace = workload.per_proc.first().cloned().unwrap_or_default();
        let mut cells = Vec::new();
        let mut last = None;
        for &depth in &DEPTHS {
            let r = overlap_report(&trace, &cfg.machine, depth);
            cells.push(format!("{:>6.1}", r.pipelined_s));
            let depth_label = depth.to_string();
            let labels = [
                ("kernel", k.name),
                ("version", v.label()),
                ("depth", depth_label.as_str()),
            ];
            metrics
                .registry()
                .gauge_set("overlap_pipelined_seconds", &labels, r.pipelined_s);
            metrics
                .registry()
                .gauge_set("overlap_sequential_seconds", &labels, r.sequential_s);
            last = Some(r);
        }
        let last = last.expect("depths non-empty");
        println!(
            "    {:7} | {:>9.1}s | {} | {:>5.1}%",
            v.label(),
            last.sequential_s,
            cells.join(" "),
            last.hidden_frac() * 100.0
        );
    }
    println!(
        "\nPrefetch depth 0 is the synchronous executor; the pipeline converges\n\
         toward max(compute, I/O) as the window deepens. The compiler-optimized\n\
         versions leave less I/O to hide — the pipeline and the layout\n\
         optimizations compose rather than compete."
    );
    let _ = metrics.finish();
}
