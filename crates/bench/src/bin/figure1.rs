//! Regenerates Figure 1 of the paper: an imperfectly nested input
//! program is normalized into perfect nests (fusion + distribution),
//! the interference graph is built, and its connected components are
//! reported.
use ooc_core::InterferenceGraph;
use ooc_ir::{
    normalize, program_to_string, DimSize, LoopNode, Node, SurfaceExpr, SurfaceProgram, SurfaceRef,
    SurfaceStmt,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = ooc_bench::trace::TraceScope::from_args(&mut args);
    let metrics = ooc_bench::MetricsScope::from_args(&mut args, "figure1");
    // The figure's input: two imperfectly nested loop nests over
    // arrays {U, V, W} and {X, Y}.
    let mut sp = SurfaceProgram::new(&["N"]);
    let u = sp.declare_array("U", 2, 0);
    let v = sp.declare_array("V", 2, 0);
    let w = sp.declare_array("W", 2, 0);
    let x = sp.declare_array("X", 2, 0);
    let y = sp.declare_array("Y", 2, 0);

    // Nest 1 (imperfect; fixed by loop FUSION of the two j-loops —
    // both bodies only *read* V, so fusing them is legal):
    //   do i { do j { U(i,j) = V(j,i) } ; do j { W(i,j) = V(i,j) } }
    let s1 = SurfaceStmt {
        lhs: SurfaceRef::vars(u, &["i", "j"]),
        rhs: SurfaceExpr::Ref(SurfaceRef::vars(v, &["j", "i"])),
    };
    let s2 = SurfaceStmt {
        lhs: SurfaceRef::vars(w, &["i", "j"]),
        rhs: SurfaceExpr::Ref(SurfaceRef::vars(v, &["i", "j"])),
    };
    sp.top.push(Node::Loop(LoopNode::new(
        "i",
        DimSize::Param(0),
        vec![
            Node::Loop(LoopNode::new("j", DimSize::Param(0), vec![Node::Stmt(s1)])),
            Node::Loop(LoopNode::new("j", DimSize::Param(0), vec![Node::Stmt(s2)])),
        ],
    )));

    // Nest 2 (imperfect; fixed by loop DISTRIBUTION over the children):
    //   do i { do j { X(i,j) = X(i,j)*2 } ; do k(1..8) { Y(i,k) = X(i,k) } }
    let s3 = SurfaceStmt {
        lhs: SurfaceRef::vars(x, &["i", "j"]),
        rhs: SurfaceExpr::Mul(
            Box::new(SurfaceExpr::Ref(SurfaceRef::vars(x, &["i", "j"]))),
            Box::new(SurfaceExpr::Const(2.0)),
        ),
    };
    let s4 = SurfaceStmt {
        lhs: SurfaceRef::vars(y, &["i", "k"]),
        rhs: SurfaceExpr::Ref(SurfaceRef::vars(x, &["i", "k"])),
    };
    sp.top.push(Node::Loop(LoopNode::new(
        "i",
        DimSize::Param(0),
        vec![
            Node::Loop(LoopNode::new("j", DimSize::Param(0), vec![Node::Stmt(s3)])),
            Node::Loop(LoopNode::new("k", DimSize::Const(8), vec![Node::Stmt(s4)])),
        ],
    )));

    println!("Figure 1: file locality optimization pipeline\n");
    println!("Input: 2 imperfectly nested loop nests over U,V,W and X,Y\n");
    let prog = normalize(&sp).expect("normalizes");
    println!(
        "Step 1 - fusion/distribution/sinking produced {} perfect nests:\n",
        prog.nests.len()
    );
    println!("{}", program_to_string(&prog));

    let graph = InterferenceGraph::build(&prog);
    let comps = graph.connected_components();
    println!(
        "Step 2 - interference graph: {} connected components",
        comps.len()
    );
    for (i, c) in comps.iter().enumerate() {
        let arrays: Vec<&str> = c
            .arrays
            .iter()
            .map(|a| prog.arrays[a.0].name.as_str())
            .collect();
        let nests: Vec<&str> = c
            .nests
            .iter()
            .map(|n| prog.nests[n.0].name.as_str())
            .collect();
        println!(
            "  component {}: nests {:?} over arrays {:?}",
            i + 1,
            nests,
            arrays
        );
    }
    println!("\nEach component is optimized independently (Step 3).");
    let r = metrics.registry();
    r.counter_add("normalized_nests", &[], prog.nests.len() as u64);
    r.counter_add("components", &[], comps.len() as u64);
    for (i, c) in comps.iter().enumerate() {
        let idx = (i + 1).to_string();
        let labels = [("component", idx.as_str())];
        r.counter_add("component_arrays", &labels, c.arrays.len() as u64);
        r.counter_add("component_nests", &labels, c.nests.len() as u64);
    }
    let _ = metrics.finish();
    let _ = trace.finish();
}
