//! The **measured** Table 3 mode: instead of pricing analytic call
//! counts on the simulated machine, actually run every kernel version
//! through the parallel executor (`ooc-core`'s `exec_parallel`) over
//! stores striped across simulated I/O nodes
//! (`ooc-runtime`'s [`StripedStore`] / [`IoNodePool`]), and measure
//! wall-clock speedup, per-node traffic, and queueing behaviour.
//!
//! Two result classes come out of each cell, and they gate
//! differently:
//!
//! * **Deterministic** — per-node call/element counts (pure functions
//!   of the stripe mapping and the tile walk) register as counters;
//!   `bench-compare` exact-matches them against the committed
//!   `BENCH_table3_seed.json`.
//! * **Timing** — measured seconds, speedups, priced contention
//!   seconds, and queue-depth/wait summaries register as gauges;
//!   `bench-compare` only warns when they drift.
//!
//! The measured mode runs far smaller inputs than the simulated mode:
//! it moves real bytes through real threads, so
//! [`measured_params`] divides the paper sizes by `32 * scale`
//! (`table3 4 --workers 4` → 1/128 of paper size, floor 8), and the
//! stripe unit shrinks to [`MEASURED_STRIPE_ELEMS`] so tiles still
//! spread across every node.

use crate::experiments::scaled_params;
use ooc_core::{exec_parallel, FunctionalConfig, ParallelConfig, PipelineConfig};
use ooc_ir::ArrayId;
use ooc_kernels::{all_kernels, compile, Kernel, Version};
use ooc_metrics::Registry;
use ooc_runtime::{IoNodePool, MemStore, NodeStats, StripeConfig, StripedStore};
use pfs_sim::{price_node_loads, ContentionReport, DiskParams, NodeLoad};
use rayon::prelude::*;
use std::io;
use std::time::Instant;

/// Stripe unit of the measured mode, in elements (512 bytes — the
/// Paragon's 64 KB unit scaled like the 1/128 default problem size).
pub const MEASURED_STRIPE_ELEMS: u64 = 64;

/// I/O-node counts the measured sweep covers.
pub const MEASURED_NODE_COUNTS: [usize; 3] = [4, 8, 16];

/// One `(kernel, version, io-nodes)` cell of the measured Table 3.
#[derive(Debug, Clone)]
pub struct MeasuredEntry {
    /// Kernel name.
    pub kernel: String,
    /// Version label.
    pub version: String,
    /// Simulated I/O nodes the stores were striped over.
    pub nodes: usize,
    /// Worker shards of the measured run.
    pub workers: usize,
    /// Measured wall-clock seconds with `workers` shards.
    pub seconds: f64,
    /// Measured wall-clock seconds of the single-shard baseline on
    /// the same striped stores.
    pub baseline_seconds: f64,
    /// `baseline_seconds / seconds` — the measured speedup curve.
    pub speedup: f64,
    /// Per-node traffic and queue timings from the measured run.
    pub node_stats: Vec<NodeStats>,
    /// The per-node load distribution priced on the simulated disks.
    pub priced: ContentionReport,
}

impl MeasuredEntry {
    /// Total I/O calls across all nodes (reads + writes).
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.node_stats
            .iter()
            .map(|n| n.io.read_calls + n.io.write_calls)
            .sum()
    }
}

/// The measured mode's problem sizes: the paper parameters divided by
/// `32 * scale` (floor 8) — small enough to actually execute, large
/// enough that tiles cross stripe and node boundaries.
#[must_use]
pub fn measured_params(kernel: &Kernel, scale: i64) -> Vec<i64> {
    scaled_params(kernel, scale.max(1).saturating_mul(32))
}

/// The deterministic seed every measured run initializes arrays with
/// (shared with the differential test suites' style: array- and
/// index-dependent, integer-derived so it is exactly representable).
#[must_use]
pub fn measured_seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as u64 + 1).wrapping_mul(2_654_435_761);
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x as u64 * 17);
    }
    (h % 1009) as f64 / 64.0 + 1.0
}

pub(crate) fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        functional: FunctionalConfig::with_fraction(16),
        ..PipelineConfig::default()
    }
}

/// Runs one kernel version over `nodes` striped in-memory stores with
/// `shards` workers; returns measured seconds and the pool snapshot.
fn run_cell(
    tiled: &ooc_core::TiledProgram,
    params: &[i64],
    nodes: usize,
    shards: usize,
) -> io::Result<(f64, Vec<NodeStats>)> {
    let pool = IoNodePool::new(StripeConfig {
        stripe_elems: MEASURED_STRIPE_ELEMS,
        ..StripeConfig::with_nodes(nodes)
    });
    let cfg = ParallelConfig {
        pipeline: pipeline_config(),
        shards,
    };
    let started = Instant::now();
    exec_parallel(tiled, params, &measured_seed, &cfg, |_, _, len| {
        StripedStore::build(&pool, len, |_, part_len| Ok(MemStore::new(part_len)))
    })?;
    Ok((started.elapsed().as_secs_f64(), pool.snapshot()))
}

/// Runs the measured Table 3: all ten kernels × six versions ×
/// [`MEASURED_NODE_COUNTS`], each cell measured with `workers` shards
/// against a single-shard baseline over identically striped stores.
///
/// # Panics
/// Panics when a run fails (in-memory stores cannot fail unless the
/// executor itself is broken) or when a conservation invariant breaks:
/// per-node **write** traffic must match the single-shard baseline
/// exactly (written regions are shard-disjoint and each dirty tile is
/// flushed once, so sharding cannot change what is written), and each
/// run's **total** traffic must be identical across every node count
/// (stripe boundaries are fixed; only node assignment varies with
/// `K`). Read traffic is *not* compared across worker counts: every
/// shard owns a private tile pool, so the aggregate cache grows with
/// workers and legitimately absorbs some re-reads.
#[must_use]
pub fn run_measured_table3(scale: i64, workers: usize) -> Vec<MeasuredEntry> {
    let kernels = all_kernels();
    let work: Vec<(usize, Version)> = (0..kernels.len())
        .flat_map(|k| Version::ALL.iter().map(move |&v| (k, v)))
        .collect();
    let mut entries: Vec<MeasuredEntry> = work
        .par_iter()
        .flat_map(|&(ki, v)| {
            let k = &kernels[ki];
            let params = measured_params(k, scale);
            let cv = compile(k, v);
            let cells: Vec<MeasuredEntry> = MEASURED_NODE_COUNTS
                .iter()
                .map(|&nodes| {
                    let (t1, base_stats) =
                        run_cell(&cv.tiled, &params, nodes, 1).expect("baseline run");
                    let (tw, node_stats) =
                        run_cell(&cv.tiled, &params, nodes, workers).expect("measured run");
                    for (kn, (b, m)) in base_stats.iter().zip(&node_stats).enumerate() {
                        assert_eq!(
                            (b.io.write_calls, b.io.write_elems),
                            (m.io.write_calls, m.io.write_elems),
                            "{} {} nodes={nodes} node {kn}: parallel writes diverge from serial",
                            k.name,
                            v.label(),
                        );
                    }
                    let loads: Vec<NodeLoad> = node_stats
                        .iter()
                        .map(|n| NodeLoad {
                            calls: n.io.read_calls + n.io.write_calls,
                            bytes: (n.io.read_elems + n.io.write_elems) * ooc_runtime::ELEM_BYTES,
                        })
                        .collect();
                    let priced = price_node_loads(&loads, &DiskParams::default());
                    MeasuredEntry {
                        kernel: k.name.to_string(),
                        version: v.label().to_string(),
                        nodes,
                        workers,
                        seconds: tw,
                        baseline_seconds: t1,
                        speedup: t1 / tw.max(f64::MIN_POSITIVE),
                        node_stats,
                        priced,
                    }
                })
                .collect();
            let totals = |e: &MeasuredEntry| -> (u64, u64, u64, u64) {
                e.node_stats.iter().fold((0, 0, 0, 0), |acc, n| {
                    (
                        acc.0 + n.io.read_calls,
                        acc.1 + n.io.write_calls,
                        acc.2 + n.io.read_elems,
                        acc.3 + n.io.write_elems,
                    )
                })
            };
            for pair in cells.windows(2) {
                assert_eq!(
                    totals(&pair[0]),
                    totals(&pair[1]),
                    "{} {}: total traffic varies between {} and {} nodes",
                    k.name,
                    v.label(),
                    pair[0].nodes,
                    pair[1].nodes,
                );
            }
            cells
        })
        .collect();
    entries.sort_by(|a, b| {
        (a.kernel.as_str(), a.version.as_str(), a.nodes).cmp(&(
            b.kernel.as_str(),
            b.version.as_str(),
            b.nodes,
        ))
    });
    entries
}

/// Registers measured Table 3 results. Deterministic per-node traffic
/// registers as counters (exact-matched by `bench-compare`); measured
/// and priced timings register as gauges (warn-only drift).
pub fn measured_table3_register(registry: &Registry, entries: &[MeasuredEntry]) {
    for e in entries {
        let nodes = e.nodes.to_string();
        let labels = [
            ("kernel", e.kernel.as_str()),
            ("version", e.version.as_str()),
            ("nodes", nodes.as_str()),
        ];
        // Deterministic: totals and the per-node split.
        let mut wait_ns = 0u64;
        let mut depth_n = 0u64;
        let mut wait_hist = ooc_metrics::Histogram::default();
        let mut depth_hist = ooc_metrics::Histogram::default();
        for (kn, n) in e.node_stats.iter().enumerate() {
            let node = kn.to_string();
            let nl = [labels[0], labels[1], labels[2], ("node", node.as_str())];
            registry.counter_add(
                "striped_node_calls_total",
                &nl,
                n.io.read_calls + n.io.write_calls,
            );
            registry.counter_add(
                "striped_node_elems_total",
                &nl,
                n.io.read_elems + n.io.write_elems,
            );
            wait_ns += n.timing.wait_ns;
            depth_n += n.timing.depth_hist.count;
            wait_hist.merge(&n.timing.wait_hist);
            depth_hist.merge(&n.timing.depth_hist);
        }
        // Queue histograms, merged across nodes. The `timing_` prefix
        // tells `bench-compare` to gate on observation *count* only
        // (one observation per I/O call — deterministic), never on the
        // wall-clock-dependent bucket shape.
        registry.record_hist("timing_queue_wait_ns", &labels, &wait_hist);
        registry.record_hist("timing_queue_depth", &labels, &depth_hist);
        registry.counter_add(
            "striped_read_calls_total",
            &labels,
            e.node_stats.iter().map(|n| n.io.read_calls).sum(),
        );
        registry.counter_add(
            "striped_write_calls_total",
            &labels,
            e.node_stats.iter().map(|n| n.io.write_calls).sum(),
        );
        registry.counter_add(
            "striped_read_elems_total",
            &labels,
            e.node_stats.iter().map(|n| n.io.read_elems).sum(),
        );
        registry.counter_add(
            "striped_write_elems_total",
            &labels,
            e.node_stats.iter().map(|n| n.io.write_elems).sum(),
        );
        // Timing-dependent: gauges only (never exact-gated).
        registry.gauge_set("measured_seconds", &labels, e.seconds);
        registry.gauge_set("measured_baseline_seconds", &labels, e.baseline_seconds);
        registry.gauge_set("measured_speedup", &labels, e.speedup);
        registry.gauge_set("priced_makespan_s", &labels, e.priced.makespan_s);
        registry.gauge_set("priced_serial_s", &labels, e.priced.serial_s);
        registry.gauge_set("priced_speedup", &labels, e.priced.speedup());
        registry.gauge_set("priced_skew", &labels, e.priced.skew());
        registry.gauge_set("queue_wait_ns_total", &labels, wait_ns as f64);
        registry.gauge_set("queue_depth_samples", &labels, depth_n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_kernels::kernel_by_name;
    use ooc_metrics::{Snapshot, Value};

    #[test]
    fn measured_params_shrink_with_floor() {
        let k = kernel_by_name("mat").expect("kernel");
        assert_eq!(measured_params(&k, 4), vec![32]);
        assert_eq!(measured_params(&k, 1_000_000), vec![8]);
    }

    #[test]
    fn one_measured_cell_conserves_traffic_across_node_counts() {
        let k = kernel_by_name("trans").expect("kernel");
        let cv = compile(&k, Version::DOpt);
        let params = measured_params(&k, 4);
        let totals: Vec<(u64, u64)> = [1usize, 4, 8]
            .iter()
            .map(|&nodes| {
                let (_, stats) = run_cell(&cv.tiled, &params, nodes, 2).expect("run");
                (
                    stats
                        .iter()
                        .map(|n| n.io.read_calls + n.io.write_calls)
                        .sum(),
                    stats
                        .iter()
                        .map(|n| n.io.read_elems + n.io.write_elems)
                        .sum(),
                )
            })
            .collect();
        assert_eq!(totals[0], totals[1], "4-node traffic diverges");
        assert_eq!(totals[0], totals[2], "8-node traffic diverges");
        assert!(totals[0].0 > 0);
    }

    #[test]
    fn registration_separates_counters_from_gauges() {
        let k = kernel_by_name("trans").expect("kernel");
        let cv = compile(&k, Version::COpt);
        let params = measured_params(&k, 8);
        let (secs, node_stats) = run_cell(&cv.tiled, &params, 4, 2).expect("run");
        let loads: Vec<NodeLoad> = node_stats
            .iter()
            .map(|n| NodeLoad {
                calls: n.io.read_calls + n.io.write_calls,
                bytes: (n.io.read_elems + n.io.write_elems) * 8,
            })
            .collect();
        let entry = MeasuredEntry {
            kernel: "trans".into(),
            version: "c-opt".into(),
            nodes: 4,
            workers: 2,
            seconds: secs,
            baseline_seconds: secs,
            speedup: 1.0,
            priced: price_node_loads(&loads, &DiskParams::default()),
            node_stats,
        };
        let r = Registry::new();
        measured_table3_register(&r, std::slice::from_ref(&entry));
        let snap = Snapshot::capture("test", &r);
        let labels = [("kernel", "trans"), ("version", "c-opt"), ("nodes", "4")];
        match r.get("striped_read_calls_total", &labels) {
            Some(Value::Counter(n)) => assert!(n > 0),
            other => panic!("expected counter, got {other:?}"),
        }
        match r.get("measured_speedup", &labels) {
            Some(Value::Gauge(_)) => {}
            other => panic!("expected gauge, got {other:?}"),
        }
        // Per-node counters sum to the totals.
        let per_node: u64 = (0..4)
            .map(|kn| {
                let node = kn.to_string();
                let nl = [labels[0], labels[1], labels[2], ("node", node.as_str())];
                match r.get("striped_node_calls_total", &nl) {
                    Some(Value::Counter(n)) => n,
                    other => panic!("missing node counter: {other:?}"),
                }
            })
            .sum();
        assert_eq!(per_node, entry.total_calls());
        assert!(!snap.samples.is_empty());
        // Queue histograms register under the timing_ prefix with one
        // observation per I/O call (count-gated by bench-compare).
        match r.get("timing_queue_wait_ns", &labels) {
            Some(Value::Histogram(h)) => assert_eq!(h.count, entry.total_calls()),
            other => panic!("expected timing histogram, got {other:?}"),
        }
        match r.get("timing_queue_depth", &labels) {
            Some(Value::Histogram(h)) => assert_eq!(h.count, entry.total_calls()),
            other => panic!("expected timing histogram, got {other:?}"),
        }
    }
}
