//! `--metrics out.json` support for the experiment binaries.
//!
//! [`MetricsScope::from_args`] pulls `--metrics PATH` (or
//! `--metrics=PATH`) out of an argument list and hands the binary an
//! `ooc_metrics` [`Registry`] to fill. [`MetricsScope::finish`]
//! captures a [`Snapshot`], appends a `wall_ms` gauge (host wall-clock
//! — drift-tolerant by design, counters stay deterministic), validates
//! the JSON against the snapshot schema, and writes it to the
//! requested path. `bench-compare` then diffs two such files.
//!
//! The `*_register` helpers translate experiment results into registry
//! series; the perf-regression gate test reuses them so a fresh
//! in-process run registers byte-identically to what the binary wrote
//! into the committed baseline.

use crate::experiments::{Table2Row, Table3Entry};
use ooc_metrics::{validate_snapshot_json, Registry, Snapshot};
use std::time::Instant;

/// A started (or inert) metrics scope for one binary invocation.
pub struct MetricsScope {
    registry: Registry,
    path: Option<String>,
    producer: &'static str,
    started: Instant,
}

impl MetricsScope {
    /// Parses and removes `--metrics PATH` from `args` (positional
    /// argument handling stays untouched). The registry is live either
    /// way; without a path, [`finish`](Self::finish) writes nothing.
    #[must_use]
    pub fn from_args(args: &mut Vec<String>, producer: &'static str) -> MetricsScope {
        let path = crate::trace::take_value_flag(args, "--metrics");
        MetricsScope {
            registry: Registry::new(),
            path,
            producer,
            started: Instant::now(),
        }
    }

    /// `true` when a snapshot will be written.
    #[must_use]
    pub fn active(&self) -> bool {
        self.path.is_some()
    }

    /// The registry the binary fills.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Captures the snapshot, validates it, and writes it when a path
    /// was given. Returns the snapshot (written or not).
    ///
    /// # Panics
    /// Panics if the emitted JSON fails schema validation (a bug in
    /// the exposition code — CI runs this path on purpose) or the
    /// output file cannot be written.
    pub fn finish(self) -> Snapshot {
        self.registry
            .gauge_set("wall_ms", &[], self.started.elapsed().as_secs_f64() * 1e3);
        let snapshot = Snapshot::capture(self.producer, &self.registry);
        if let Some(path) = &self.path {
            let json = snapshot.to_json();
            validate_snapshot_json(&json)
                .unwrap_or_else(|e| panic!("emitted snapshot is schema-invalid: {e}"));
            std::fs::write(path, format!("{}\n", json.pretty()))
                .unwrap_or_else(|e| panic!("cannot write metrics to {path}: {e}"));
            eprintln!(
                "metrics: wrote {path} ({} series) — diff with bench-compare",
                snapshot.samples.len()
            );
        }
        snapshot
    }
}

/// Registers Table 2 results: per `{kernel, version}` the analytic
/// `io_calls`/`io_bytes` counters (deterministic — exact-match in
/// diffs) and the simulated `sim_seconds` gauge.
pub fn table2_register(registry: &Registry, rows: &[Table2Row]) {
    for row in rows {
        for cell in &row.cells {
            let labels = [
                ("kernel", row.kernel.as_str()),
                ("version", cell.version.as_str()),
            ];
            registry.counter_add("io_calls", &labels, cell.io_calls);
            registry.counter_add("io_bytes", &labels, cell.io_bytes);
            registry.gauge_set("sim_seconds", &labels, cell.seconds);
        }
    }
}

/// Registers Table 3 results: per `{kernel, version, procs}` the
/// simulated time and speedup gauges.
pub fn table3_register(registry: &Registry, entries: &[Table3Entry]) {
    for e in entries {
        let procs = e.procs.to_string();
        let labels = [
            ("kernel", e.kernel.as_str()),
            ("version", e.version.as_str()),
            ("procs", procs.as_str()),
        ];
        registry.gauge_set("sim_seconds", &labels, e.seconds);
        registry.gauge_set("speedup", &labels, e.speedup);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table2_row;
    use ooc_kernels::kernel_by_name;
    use ooc_metrics::Value;

    #[test]
    fn metrics_flag_extracted_and_inert_without_path() {
        let mut args = vec![
            "trans".to_string(),
            "--metrics".to_string(),
            "/tmp/m.json".to_string(),
            "16".to_string(),
        ];
        let scope = MetricsScope::from_args(&mut args, "test");
        assert!(scope.active());
        assert_eq!(args, vec!["trans".to_string(), "16".to_string()]);

        let mut args = vec!["trans".to_string()];
        let scope = MetricsScope::from_args(&mut args, "test");
        assert!(!scope.active());
        // finish() still yields a valid snapshot with the wall gauge.
        let snap = scope.finish();
        assert_eq!(snap.producer, "test");
        assert!(snap.get("wall_ms", &[]).is_some());
        validate_snapshot_json(&snap.to_json()).expect("schema-valid");
    }

    #[test]
    fn table2_registration_is_deterministic() {
        let k = kernel_by_name("trans").expect("kernel");
        let row = table2_row(&k, 4, 32);
        let (a, b) = (Registry::new(), Registry::new());
        table2_register(&a, std::slice::from_ref(&row));
        table2_register(&b, std::slice::from_ref(&row));
        assert_eq!(
            Snapshot::capture("x", &a).samples,
            Snapshot::capture("x", &b).samples
        );
        let labels = [("kernel", "trans"), ("version", "col")];
        match a.get("io_calls", &labels) {
            Some(Value::Counter(n)) => assert_eq!(n, row.cells[0].io_calls),
            other => panic!("expected counter, got {other:?}"),
        }
    }
}
