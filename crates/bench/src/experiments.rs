//! The experiment runners behind the table harnesses.

use ooc_core::{simulate, ExecConfig};
use ooc_kernels::{all_kernels, compile, Kernel, Version};
use rayon::prelude::*;

/// One version's measurement within a kernel row.
#[derive(Debug, Clone)]
pub struct Table2Cell {
    /// Version label (`col`, `row`, ...).
    pub version: String,
    /// Simulated wall-clock seconds.
    pub seconds: f64,
    /// Total I/O calls.
    pub io_calls: u64,
    /// Total bytes moved.
    pub io_bytes: u64,
}

/// One kernel row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Kernel name.
    pub kernel: String,
    /// Parameter values used.
    pub params: Vec<i64>,
    /// Per-version cells, in `Version::ALL` order.
    pub cells: Vec<Table2Cell>,
}

impl Table2Row {
    /// Execution time of the `col` baseline.
    #[must_use]
    pub fn col_seconds(&self) -> f64 {
        self.cells[0].seconds
    }

    /// A version's time as a percentage of `col` (the paper's format).
    #[must_use]
    pub fn percent_of_col(&self, idx: usize) -> f64 {
        100.0 * self.cells[idx].seconds / self.col_seconds()
    }
}

/// Scales a kernel's paper parameters by `1/scale` (min 8) — used to
/// run the tables quickly at reduced size.
#[must_use]
pub fn scaled_params(kernel: &Kernel, scale: i64) -> Vec<i64> {
    kernel
        .paper_params
        .iter()
        .map(|&n| (n / scale.max(1)).max(8))
        .collect()
}

/// Runs one kernel at one processor count across all six versions.
#[must_use]
pub fn table2_row(kernel: &Kernel, procs: usize, scale: i64) -> Table2Row {
    let params = scaled_params(kernel, scale);
    let cells: Vec<Table2Cell> = Version::ALL
        .par_iter()
        .map(|&v| {
            let cv = compile(kernel, v);
            let mut cfg = ExecConfig::new(params.clone(), procs);
            cfg.interleave = cv.interleave.clone();
            let r = simulate(&cv.tiled, &cfg);
            Table2Cell {
                version: v.label().to_string(),
                seconds: r.result.total_time,
                io_calls: r.io_calls,
                io_bytes: r.io_bytes,
            }
        })
        .collect();
    Table2Row {
        kernel: kernel.name.to_string(),
        params,
        cells,
    }
}

/// Regenerates Table 2: all ten kernels, six versions, 16 processors.
#[must_use]
pub fn run_table2(procs: usize, scale: i64) -> Vec<Table2Row> {
    all_kernels()
        .par_iter()
        .map(|k| table2_row(k, procs, scale))
        .collect()
}

/// One (kernel, version, procs) speedup entry of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Entry {
    /// Kernel name.
    pub kernel: String,
    /// Version label.
    pub version: String,
    /// Processor count.
    pub procs: usize,
    /// Simulated seconds on `procs` processors.
    pub seconds: f64,
    /// Speedup relative to the same version on 1 processor
    /// (the paper's definition).
    pub speedup: f64,
}

/// Regenerates Table 3: speedups of every version of every kernel on
/// 16/32/64/128 processors versus its own single-node run.
#[must_use]
pub fn run_table3(scale: i64, proc_counts: &[usize]) -> Vec<Table3Entry> {
    let kernels = all_kernels();
    let work: Vec<(usize, Version)> = (0..kernels.len())
        .flat_map(|k| Version::ALL.iter().map(move |&v| (k, v)))
        .collect();
    work.par_iter()
        .flat_map(|&(ki, v)| {
            let k = &kernels[ki];
            let params = scaled_params(k, scale);
            let cv = compile(k, v);
            let time_at = |procs: usize| {
                let mut cfg = ExecConfig::new(params.clone(), procs);
                cfg.interleave = cv.interleave.clone();
                simulate(&cv.tiled, &cfg).result.total_time
            };
            let t1 = time_at(1);
            proc_counts
                .iter()
                .map(|&p| Table3Entry {
                    kernel: k.name.to_string(),
                    version: v.label().to_string(),
                    procs: p,
                    seconds: time_at(p),
                    speedup: t1 / time_at(p).max(f64::MIN_POSITIVE),
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_kernels::kernel_by_name;

    #[test]
    fn table2_row_has_six_cells() {
        let k = kernel_by_name("trans").expect("kernel");
        let row = table2_row(&k, 4, 32);
        assert_eq!(row.cells.len(), 6);
        assert_eq!(row.cells[0].version, "col");
        assert!(row.col_seconds() > 0.0);
        assert!((row.percent_of_col(0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_params_floor() {
        let k = kernel_by_name("mat").expect("kernel");
        assert_eq!(scaled_params(&k, 4), vec![1024]);
        assert_eq!(scaled_params(&k, 1_000_000), vec![8]);
    }

    #[test]
    fn table3_speedup_definition() {
        let k = kernel_by_name("trans").expect("kernel");
        let params = scaled_params(&k, 32);
        let cv = compile(&k, Version::DOpt);
        let t1 = simulate(&cv.tiled, &ExecConfig::new(params.clone(), 1))
            .result
            .total_time;
        let t4 = simulate(&cv.tiled, &ExecConfig::new(params, 4))
            .result
            .total_time;
        assert!(t4 < t1, "more processors must not be slower: {t4} vs {t1}");
    }
}
