//! Provenance-ledger cells behind `table2 --ledger`, `inspect
//! --ledger`, and the live `/ledger` endpoint.
//!
//! Each cell runs one kernel version through the **synchronous**
//! functional executor at the kernel's functional-test size with a
//! [`LedgerRecorder`] attached, asserts the conservation law (cause
//! buckets sum exactly to the analytic I/O totals, per array, calls
//! and elements alike), and returns the finished ledger. The sync
//! walk is the deterministic executor — its cause classification
//! depends only on the program and the cache fraction, never on
//! thread timing — so `bench-compare` can gate the registered
//! `ledger_*` counters exactly.

use ooc_analyze::{diff_ledgers, LedgerDiff};
use ooc_core::exec::FunctionalRun;
use ooc_core::{run_functional_on, FunctionalConfig};
use ooc_ir::ArrayId;
use ooc_kernels::{compile, Kernel, Version};
use ooc_metrics::Registry;
use ooc_runtime::{LedgerRecorder, MemStore, ProvenanceLedger};
use pfs_sim::DiskParams;

/// Cache fraction the ledger cells run at: 1/16 of the total array
/// footprint, matching `inspect`'s measured view, so re-reads after
/// eviction (capacity misses) actually occur on the small inputs.
pub const LEDGER_FRACTION: u64 = 16;

/// The version pair the diff mode explains by default: the paper's
/// unoptimized baseline against its combined-optimization version.
pub const LEDGER_DIFF_PAIR: (Version, Version) = (Version::Col, Version::COpt);

fn seed(a: ArrayId, idx: &[i64]) -> f64 {
    let mut h = (a.0 as i64 + 1) * 2654435761;
    for &x in idx {
        h = h.wrapping_mul(31).wrapping_add(x * 17);
    }
    ((h % 1009) as f64) / 64.0 + 1.0
}

/// Runs one `(kernel, version)` ledger cell on the synchronous
/// executor and checks cause-bucket conservation against the run's
/// analytic per-array totals.
///
/// # Panics
/// Panics when the run fails (in-memory stores cannot fail unless the
/// executor is broken) or when conservation is violated — the
/// invariant the ledger exists to guarantee.
#[must_use]
pub fn run_ledger_cell(kernel: &Kernel, version: Version) -> (ProvenanceLedger, FunctionalRun) {
    let cv = compile(kernel, version);
    let rec = LedgerRecorder::new();
    rec.set_run(kernel.name, version.label());
    let cfg = FunctionalConfig::with_fraction(LEDGER_FRACTION).with_ledger(rec.clone());
    let run = run_functional_on(&cv.tiled, &kernel.small_params, &seed, &cfg, |_, _, len| {
        Ok(MemStore::new(len))
    })
    .expect("ledger run over in-memory stores");
    let ledger = rec.take();
    let stats: Vec<_> = run.profiles.iter().map(|p| p.stats).collect();
    if let Err(e) = ledger.check_conservation(&stats) {
        panic!(
            "{} {}: ledger conservation violated: {e}",
            kernel.name,
            version.label()
        );
    }
    (ledger, run)
}

/// The version-diff cell: runs both versions of `kernel` and explains
/// where the bytes went (e.g. which capacity misses the optimized
/// version eliminated and why).
#[must_use]
pub fn run_ledger_diff(
    kernel: &Kernel,
    from: Version,
    to: Version,
    disk: &DiskParams,
) -> LedgerDiff {
    let (a, _) = run_ledger_cell(kernel, from);
    let (b, _) = run_ledger_cell(kernel, to);
    diff_ledgers(&a, &b, disk)
}

/// Registers a ledger's cause buckets under `(kernel, version)`
/// labels taken from the ledger's own identity stamp.
pub fn ledger_register(registry: &Registry, ledger: &ProvenanceLedger, disk: &DiskParams) {
    let labels = [
        ("kernel", ledger.kernel.as_str()),
        ("version", ledger.version.as_str()),
    ];
    ooc_analyze::ledger::register_metrics(ledger, disk, registry, &labels);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_kernels::kernel_by_name;
    use ooc_metrics::{Snapshot, Value};
    use ooc_runtime::IoCause;

    #[test]
    fn trans_cell_conserves_and_registers() {
        let k = kernel_by_name("trans").expect("kernel");
        let (ledger, _) = run_ledger_cell(&k, Version::Col);
        assert_eq!(ledger.kernel, "trans");
        assert_eq!(ledger.version, "col");
        assert_eq!(ledger.executor, "sync");
        assert!(ledger.cause_elems(IoCause::Compulsory) > 0);
        let r = Registry::new();
        ledger_register(&r, &ledger, &DiskParams::default());
        let snap = Snapshot::capture("test", &r);
        let labels = [
            ("cause", "compulsory"),
            ("kernel", "trans"),
            ("version", "col"),
        ];
        match snap.get("ledger_bytes_total", &labels) {
            Some(Value::Counter(n)) => assert!(*n > 0),
            other => panic!("expected compulsory bytes counter, got {other:?}"),
        }
    }

    #[test]
    fn diff_cell_prices_both_sides() {
        let k = kernel_by_name("trans").expect("kernel");
        let (from, to) = LEDGER_DIFF_PAIR;
        let diff = run_ledger_diff(&k, from, to, &DiskParams::default());
        assert!(diff.a_seconds > 0.0 && diff.b_seconds > 0.0);
        let text = diff.render();
        assert!(text.contains("ledger diff"), "{text}");
    }
}
