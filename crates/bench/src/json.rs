//! Machine-readable table dumps, built on the shared JSON value tree.
//!
//! The hand-rolled writer that used to live here moved to
//! [`ooc_trace::json`] so the trace exporter and the table dumps share
//! one escaping implementation; [`Json`] is re-exported so existing
//! callers keep working. The pretty-printer still produces the same
//! 2-space-indented `serde_json` layout, so previously generated
//! `table*_results.json` files stay diffable.

use crate::experiments::{Table2Row, Table3Entry};

pub use ooc_trace::json::Json;

/// Serializes Table 2 rows in the historical `serde_json` layout.
#[must_use]
pub fn table2_json(rows: &[Table2Row]) -> String {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("kernel", Json::Str(r.kernel.clone())),
                    (
                        "params",
                        Json::Arr(r.params.iter().map(|&p| Json::I64(p)).collect()),
                    ),
                    (
                        "cells",
                        Json::Arr(
                            r.cells
                                .iter()
                                .map(|c| {
                                    Json::obj([
                                        ("version", Json::Str(c.version.clone())),
                                        ("seconds", Json::F64(c.seconds)),
                                        ("io_calls", Json::U64(c.io_calls)),
                                        ("io_bytes", Json::U64(c.io_bytes)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
    .pretty()
}

/// Serializes Table 3 entries in the historical `serde_json` layout.
#[must_use]
pub fn table3_json(entries: &[Table3Entry]) -> String {
    Json::Arr(
        entries
            .iter()
            .map(|e| {
                Json::obj([
                    ("kernel", Json::Str(e.kernel.clone())),
                    ("version", Json::Str(e.version.clone())),
                    ("procs", Json::U64(e.procs as u64)),
                    ("seconds", Json::F64(e.seconds)),
                    ("speedup", Json::F64(e.speedup)),
                ])
            })
            .collect(),
    )
    .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_json_keeps_serde_layout() {
        let v = Json::obj([
            ("name", Json::Str("a\"b".into())),
            ("xs", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("t", Json::F64(2.0)),
            ("u", Json::F64(2.5)),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"name\": \"a\\\"b\",\n  \"xs\": [\n    1,\n    2\n  ],\n  \"t\": 2.0,\n  \"u\": 2.5\n}"
        );
    }
}
