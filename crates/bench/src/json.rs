//! Dependency-free JSON emission for the machine-readable table dumps.
//!
//! Replaces `serde_json` (unavailable offline) with a tiny value tree
//! and pretty-printer producing the same 2-space-indented layout, so
//! previously generated `table*_results.json` files stay diffable.

use crate::experiments::{Table2Row, Table3Entry};
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// A string.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (shortest round-trip formatting).
    F64(f64),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Pretty-prints with 2-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    let _ = write!(out, "\"{k}\": ");
                    v.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

/// Serializes Table 2 rows in the historical `serde_json` layout.
#[must_use]
pub fn table2_json(rows: &[Table2Row]) -> String {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::Obj(vec![
                    ("kernel", Json::Str(r.kernel.clone())),
                    (
                        "params",
                        Json::Arr(r.params.iter().map(|&p| Json::I64(p)).collect()),
                    ),
                    (
                        "cells",
                        Json::Arr(
                            r.cells
                                .iter()
                                .map(|c| {
                                    Json::Obj(vec![
                                        ("version", Json::Str(c.version.clone())),
                                        ("seconds", Json::F64(c.seconds)),
                                        ("io_calls", Json::U64(c.io_calls)),
                                        ("io_bytes", Json::U64(c.io_bytes)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
    .pretty()
}

/// Serializes Table 3 entries in the historical `serde_json` layout.
#[must_use]
pub fn table3_json(entries: &[Table3Entry]) -> String {
    Json::Arr(
        entries
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("kernel", Json::Str(e.kernel.clone())),
                    ("version", Json::Str(e.version.clone())),
                    ("procs", Json::U64(e.procs as u64)),
                    ("seconds", Json::F64(e.seconds)),
                    ("speedup", Json::F64(e.speedup)),
                ])
            })
            .collect(),
    )
    .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_json_layout() {
        let v = Json::Obj(vec![
            ("name", Json::Str("a\"b".into())),
            ("xs", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("t", Json::F64(2.0)),
            ("u", Json::F64(2.5)),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"name\": \"a\\\"b\",\n  \"xs\": [\n    1,\n    2\n  ],\n  \"t\": 2.0,\n  \"u\": 2.5\n}"
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }
}
