//! The scaling-forensics sweep behind the `analyze` binary and
//! `inspect --analyze`.
//!
//! Each cell runs one kernel version through the parallel executor
//! over striped in-memory stores **under a trace session**, then
//! reconstructs the run with [`ooc_analyze`]: a per-lane blame
//! waterfall that sums exactly to the measured wall-clock, the
//! critical path, and (per node count) the model-vs-measured
//! contention gap from [`pfs_sim::GapReport`].
//!
//! Trace sessions are process-exclusive, so cells run strictly
//! sequentially — never call this while another session (e.g.
//! `--trace`) is live.

use crate::measured::{measured_params, measured_seed, MEASURED_STRIPE_ELEMS};
use ooc_analyze::{AnalysisReport, Blame, ALL_BLAMES};
use ooc_core::{exec_parallel, ParallelConfig};
use ooc_kernels::{all_kernels, compile, Kernel, Version};
use ooc_metrics::Registry;
use ooc_runtime::{IoNodePool, MemStore, NodeStats, StripeConfig, StripedStore};
use ooc_trace::Session;
use pfs_sim::{price_node_loads, DiskParams, GapCell, GapReport, NodeLoad};
use std::time::Instant;

/// Worker counts the forensics sweep covers.
pub const ANALYZE_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One traced `(kernel, version, workers, nodes)` forensics cell.
#[derive(Debug, Clone)]
pub struct AnalyzeCell {
    /// Kernel name.
    pub kernel: String,
    /// Version label.
    pub version: String,
    /// Worker shards of the run.
    pub workers: usize,
    /// I/O nodes the stores were striped over.
    pub nodes: usize,
    /// Measured wall-clock seconds of the traced run.
    pub seconds: f64,
    /// The reconstructed forensics.
    pub report: AnalysisReport,
    /// Per-node traffic and queue timings.
    pub node_stats: Vec<NodeStats>,
}

impl AnalyzeCell {
    /// The gap-report row for this cell: priced contention vs
    /// experienced per-node busy/wait seconds.
    #[must_use]
    pub fn gap_cell(&self) -> GapCell {
        let loads: Vec<NodeLoad> = self
            .node_stats
            .iter()
            .map(|n| NodeLoad {
                calls: n.io.read_calls + n.io.write_calls,
                bytes: (n.io.read_elems + n.io.write_elems) * ooc_runtime::ELEM_BYTES,
            })
            .collect();
        let priced = price_node_loads(&loads, &DiskParams::default());
        GapCell {
            kernel: self.kernel.clone(),
            version: self.version.clone(),
            nodes: self.nodes,
            priced_makespan_s: priced.makespan_s,
            priced_serial_s: priced.serial_s,
            measured_busy_s: self
                .node_stats
                .iter()
                .map(|n| n.timing.busy_ns as f64 / 1e9)
                .collect(),
            measured_wait_s: self
                .node_stats
                .iter()
                .map(|n| n.timing.wait_ns as f64 / 1e9)
                .collect(),
        }
    }
}

/// Runs one traced forensics cell. Must not be called while another
/// trace session is installed.
///
/// # Panics
/// Panics when the run fails (in-memory stores cannot fail unless the
/// executor is broken) or when a lane's waterfall fails conservation —
/// the property the whole subsystem exists to guarantee.
#[must_use]
pub fn run_analyze_cell(
    kernel: &Kernel,
    version: Version,
    scale: i64,
    workers: usize,
    nodes: usize,
) -> AnalyzeCell {
    let cv = compile(kernel, version);
    let params = measured_params(kernel, scale);
    let pool = IoNodePool::new(StripeConfig {
        stripe_elems: MEASURED_STRIPE_ELEMS,
        ..StripeConfig::with_nodes(nodes)
    });
    let cfg = ParallelConfig {
        pipeline: crate::measured::pipeline_config(),
        shards: workers,
    };
    let session = Session::start();
    let started = Instant::now();
    exec_parallel(&cv.tiled, &params, &measured_seed, &cfg, |_, _, len| {
        StripedStore::build(&pool, len, |_, part_len| Ok(MemStore::new(part_len)))
    })
    .expect("analyze run");
    let seconds = started.elapsed().as_secs_f64();
    let data = session.finish();
    // Every traced cell must also survive the Chrome exporter's
    // structural checker — CI leans on this (balanced spans, flow
    // pairing, monotone timestamps per thread).
    ooc_trace::chrome::validate_chrome_trace(&ooc_trace::chrome::chrome_trace_json(&data.events))
        .unwrap_or_else(|e| {
            panic!(
                "{} {} workers={workers}: trace fails structural validation: {e}",
                kernel.name,
                version.label(),
            )
        });
    let report = AnalysisReport::from_trace(&data);
    for lane in &report.timeline.lanes {
        assert!(
            lane.blame.is_conserving(),
            "{} {} workers={workers} nodes={nodes}: lane {} waterfall does not conserve \
             ({} us attributed vs {} us wall)",
            kernel.name,
            version.label(),
            lane.label,
            lane.blame.total_us(),
            lane.blame.wall_us,
        );
    }
    assert!(
        report.critical.total_us <= report.timeline.wall_us,
        "{} {}: critical path exceeds wall-clock",
        kernel.name,
        version.label(),
    );
    AnalyzeCell {
        kernel: kernel.name.to_string(),
        version: version.label().to_string(),
        workers,
        nodes,
        seconds,
        report,
        node_stats: pool.snapshot(),
    }
}

/// Runs the full forensics sweep: `kernels` (all when empty) × six
/// versions × [`ANALYZE_WORKER_COUNTS`] at `nodes`, plus the extra
/// node counts in `gap_nodes` at `gap_workers` for the contention gap
/// table. Strictly sequential (trace sessions are process-exclusive).
#[must_use]
pub fn run_analyze_sweep(
    scale: i64,
    kernels: &[String],
    nodes: usize,
    gap_nodes: &[usize],
    gap_workers: usize,
) -> Vec<AnalyzeCell> {
    let mut cells = Vec::new();
    for k in all_kernels() {
        if !kernels.is_empty() && !kernels.iter().any(|n| n == k.name) {
            continue;
        }
        for &v in Version::ALL.iter() {
            for workers in ANALYZE_WORKER_COUNTS {
                cells.push(run_analyze_cell(&k, v, scale, workers, nodes));
            }
            for &gn in gap_nodes {
                if gn != nodes {
                    cells.push(run_analyze_cell(&k, v, scale, gap_workers, gn));
                }
            }
        }
    }
    cells
}

/// The contention gap table over every cell run with `gap_workers`.
#[must_use]
pub fn gap_report(cells: &[AnalyzeCell], gap_workers: usize) -> GapReport {
    let mut report = GapReport::default();
    for c in cells.iter().filter(|c| c.workers == gap_workers) {
        report.push(c.gap_cell());
    }
    report.sort();
    report
}

/// The efficiency-loss-at-N summary: one row per kernel × version,
/// showing shard efficiency at each worker count and, at the highest,
/// the dominant blame and the critical path's bounding resource.
#[must_use]
pub fn efficiency_summary(cells: &[AnalyzeCell], nodes: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{:<10} {:<8}", "kernel", "version");
    for w in ANALYZE_WORKER_COUNTS {
        let _ = write!(out, " {:>6}", format!("eff@{w}"));
    }
    let _ = writeln!(out, " {:>16} {:>16}", "dominant-loss", "bounded-by");
    let mut keys: Vec<(String, String)> = cells
        .iter()
        .map(|c| (c.kernel.clone(), c.version.clone()))
        .collect();
    keys.sort();
    keys.dedup();
    for (kernel, version) in keys {
        let _ = write!(out, "{kernel:<10} {version:<8}");
        let mut last: Option<&AnalyzeCell> = None;
        for w in ANALYZE_WORKER_COUNTS {
            let cell = cells.iter().find(|c| {
                c.kernel == kernel && c.version == version && c.workers == w && c.nodes == nodes
            });
            match cell.and_then(|c| c.report.shard_efficiency()) {
                Some(eff) => {
                    let _ = write!(out, " {:>5.0}%", eff * 100.0);
                }
                None => {
                    let _ = write!(out, " {:>6}", "-");
                }
            }
            if cell.is_some() {
                last = cell;
            }
        }
        // The dominant *loss* is the heaviest non-compute category of
        // the shard lanes' aggregate at the highest worker count.
        let loss = last.and_then(|c| {
            let agg = c.report.timeline.aggregate();
            ALL_BLAMES
                .iter()
                .copied()
                .filter(|b| *b != Blame::Compute && agg.get(*b) > 0)
                .max_by_key(|b| agg.get(*b))
        });
        let bound = last.and_then(|c| c.report.critical.bounding());
        let _ = writeln!(
            out,
            " {:>16} {:>16}",
            loss.map_or("-", Blame::label),
            bound.map_or("-", Blame::label),
        );
    }
    out
}

/// Machine-readable twin of [`efficiency_summary`] and
/// [`gap_report`]: one `efficiency` row per kernel × version with the
/// per-worker-count shard efficiencies, the dominant loss, and the
/// critical path's bounding resource, plus one `gap` row per
/// contention-gap cell. Built on [`ooc_trace::json::Json`] so the
/// layout matches the other table dumps.
#[must_use]
pub fn analyze_json(cells: &[AnalyzeCell], nodes: usize, gap_workers: usize) -> String {
    use ooc_trace::json::Json;
    let mut keys: Vec<(String, String)> = cells
        .iter()
        .map(|c| (c.kernel.clone(), c.version.clone()))
        .collect();
    keys.sort();
    keys.dedup();
    let efficiency = keys
        .iter()
        .map(|(kernel, version)| {
            let mut effs = Vec::new();
            let mut last: Option<&AnalyzeCell> = None;
            for w in ANALYZE_WORKER_COUNTS {
                let cell = cells.iter().find(|c| {
                    c.kernel == *kernel
                        && c.version == *version
                        && c.workers == w
                        && c.nodes == nodes
                });
                effs.push((
                    format!("w{w}"),
                    cell.and_then(|c| c.report.shard_efficiency())
                        .map_or(Json::Null, Json::F64),
                ));
                if cell.is_some() {
                    last = cell;
                }
            }
            let loss = last.and_then(|c| {
                let agg = c.report.timeline.aggregate();
                ALL_BLAMES
                    .iter()
                    .copied()
                    .filter(|b| *b != Blame::Compute && agg.get(*b) > 0)
                    .max_by_key(|b| agg.get(*b))
            });
            let bound = last.and_then(|c| c.report.critical.bounding());
            Json::obj([
                ("kernel", Json::Str(kernel.clone())),
                ("version", Json::Str(version.clone())),
                ("efficiency", Json::Obj(effs)),
                (
                    "dominant_loss",
                    loss.map_or(Json::Null, |b| Json::Str(b.label().to_string())),
                ),
                (
                    "bounded_by",
                    bound.map_or(Json::Null, |b| Json::Str(b.label().to_string())),
                ),
            ])
        })
        .collect();
    let gap = gap_report(cells, gap_workers)
        .cells
        .iter()
        .map(|g| {
            Json::obj([
                ("kernel", Json::Str(g.kernel.clone())),
                ("version", Json::Str(g.version.clone())),
                ("nodes", Json::U64(g.nodes as u64)),
                ("priced_makespan_s", Json::F64(g.priced_makespan_s)),
                ("priced_serial_s", Json::F64(g.priced_serial_s)),
                ("busy_gap", Json::F64(g.busy_gap())),
                ("wait_share", Json::F64(g.wait_share())),
            ])
        })
        .collect();
    Json::obj([
        ("nodes", Json::U64(nodes as u64)),
        ("gap_workers", Json::U64(gap_workers as u64)),
        ("efficiency", Json::Arr(efficiency)),
        ("gap", Json::Arr(gap)),
    ])
    .pretty()
}

/// Registers the sweep's results.
///
/// Deterministic structure registers as counters (`bench-compare`
/// exact-matches them): cells analyzed, conservation/critical-bound
/// violations (always zero — registering them *proves* the run
/// checked), and per-cell lane counts (fixed by the executor's
/// thread topology for a given config). Timing-derived decompositions
/// register as warn-only gauges.
pub fn analyze_register(registry: &Registry, cells: &[AnalyzeCell]) {
    registry.counter_add("analyze_cells_total", &[], cells.len() as u64);
    let violations = cells
        .iter()
        .flat_map(|c| &c.report.timeline.lanes)
        .filter(|l| !l.blame.is_conserving())
        .count();
    registry.counter_add(
        "analyze_conservation_failures_total",
        &[],
        violations as u64,
    );
    let bound_violations = cells
        .iter()
        .filter(|c| c.report.critical.total_us > c.report.timeline.wall_us)
        .count();
    registry.counter_add(
        "analyze_critical_bound_violations_total",
        &[],
        bound_violations as u64,
    );
    for c in cells {
        let workers = c.workers.to_string();
        let nodes = c.nodes.to_string();
        let labels = [
            ("kernel", c.kernel.as_str()),
            ("version", c.version.as_str()),
            ("workers", workers.as_str()),
            ("nodes", nodes.as_str()),
        ];
        c.report.register_metrics(registry, &labels);
        if let Some(eff) = c.report.shard_efficiency() {
            registry.gauge_set("analyze_shard_efficiency", &labels, eff);
        }
        let gap = c.gap_cell();
        registry.gauge_set("gap_priced_makespan_s", &labels, gap.priced_makespan_s);
        registry.gauge_set("gap_busy_ratio", &labels, gap.busy_gap());
        registry.gauge_set("gap_wait_share", &labels, gap.wait_share());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_kernels::kernel_by_name;
    use ooc_metrics::{Snapshot, Value};

    #[test]
    fn one_cell_conserves_and_names_a_critical_path() {
        let k = kernel_by_name("trans").expect("kernel");
        let cell = run_analyze_cell(&k, Version::COpt, 8, 2, 4);
        assert_eq!(cell.report.timeline.shard_lanes(), 2);
        assert!(cell.report.timeline.wall_us > 0);
        assert!(!cell.report.critical.steps.is_empty());
        // The gap row exposes experienced waits the model does not price.
        let gap = cell.gap_cell();
        assert_eq!(gap.nodes, 4);
        assert!(gap.priced_makespan_s > 0.0);
        let text = cell.report.render(60);
        assert!(text.contains("critical path:"), "{text}");
    }

    #[test]
    fn registration_gates_structure_not_timing() {
        let k = kernel_by_name("trans").expect("kernel");
        let cell = run_analyze_cell(&k, Version::Col, 8, 2, 4);
        let r = Registry::new();
        analyze_register(&r, std::slice::from_ref(&cell));
        let snap = Snapshot::capture("test", &r);
        match snap.get("analyze_cells_total", &[]) {
            Some(Value::Counter(1)) => {}
            other => panic!("expected 1 cell, got {other:?}"),
        }
        match snap.get("analyze_conservation_failures_total", &[]) {
            Some(Value::Counter(0)) => {}
            other => panic!("expected 0 failures, got {other:?}"),
        }
        let labels = [
            ("kernel", "trans"),
            ("nodes", "4"),
            ("version", "col"),
            ("workers", "2"),
        ];
        match r.get("analyze_shard_efficiency", &labels) {
            Some(Value::Gauge(g)) => assert!(g > 0.0 && g <= 1.0),
            other => panic!("expected efficiency gauge, got {other:?}"),
        }
    }

    #[test]
    fn efficiency_summary_has_one_row_per_version() {
        let k = kernel_by_name("trans").expect("kernel");
        let cells = vec![
            run_analyze_cell(&k, Version::DOpt, 16, 1, 4),
            run_analyze_cell(&k, Version::DOpt, 16, 2, 4),
        ];
        let text = efficiency_summary(&cells, 4);
        assert!(text.contains("trans"), "{text}");
        assert!(text.contains("eff@1"), "{text}");
        assert!(text.contains("bounded-by"), "{text}");
    }
}
