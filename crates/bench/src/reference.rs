//! The paper's published numbers, for side-by-side comparison in the
//! harness output and in `EXPERIMENTS.md`.

/// Table 2 of the paper: `(kernel, col seconds, [row, l-opt, d-opt,
/// c-opt, h-opt] as % of col)` on 16 processors.
#[must_use]
pub fn paper_table2() -> Vec<(&'static str, f64, [f64; 5])> {
    vec![
        ("mat", 257.20, [93.3, 65.1, 56.8, 60.8, 54.3]),
        ("mxm", 220.01, [181.5, 100.0, 112.6, 79.8, 67.0]),
        ("adi", 144.12, [134.9, 22.8, 46.5, 22.8, 22.8]),
        ("vpenta", 135.00, [47.1, 100.0, 47.1, 47.1, 29.9]),
        ("btrix", 91.45, [66.6, 100.0, 61.3, 61.3, 42.3]),
        ("emit", 88.64, [176.5, 100.0, 100.0, 100.0, 100.0]),
        ("syr2k", 215.34, [86.3, 52.0, 77.4, 52.0, 47.6]),
        ("htribk", 248.61, [110.8, 127.2, 81.1, 81.1, 72.6]),
        ("gfunp", 86.05, [128.4, 73.3, 68.0, 46.9, 34.0]),
        ("trans", 181.90, [100.0, 100.0, 48.2, 48.2, 48.2]),
    ]
}

/// The kernels whose scalability the paper details in Table 3 (with
/// the decomposition suffix it prints, e.g. `mat.2`).
pub const PAPER_TABLE3_KERNELS: [(&str, &str); 10] = [
    ("mat", "mat.2"),
    ("mxm", "mxm.2"),
    ("adi", "adi.2"),
    ("vpenta", "vpenta.6"),
    ("btrix", "btrix.4"),
    ("emit", "emit.3"),
    ("syr2k", "syr2k.2"),
    ("htribk", "htribk.2"),
    ("gfunp", "gfunp.4"),
    ("trans", "trans.2"),
];

/// Table 3 of the paper: speedup of `(kernel, version)` on
/// 16/32/64/128 processors versus the same version on one node.
/// Returns `None` for combinations the paper does not list.
#[must_use]
pub fn paper_table3_entry(kernel: &str, version: &str) -> Option<[f64; 4]> {
    let t: &[(&str, &str, [f64; 4])] = &[
        ("mat", "col", [10.9, 20.6, 34.8, 64.3]),
        ("mat", "row", [11.0, 20.9, 35.6, 66.0]),
        ("mat", "l-opt", [13.9, 27.6, 53.8, 100.4]),
        ("mat", "d-opt", [14.5, 28.1, 55.0, 104.2]),
        ("mat", "c-opt", [14.0, 27.7, 54.8, 102.7]),
        ("mat", "h-opt", [15.2, 30.9, 60.9, 115.6]),
        ("mxm", "col", [11.1, 21.2, 37.6, 70.0]),
        ("mxm", "row", [8.2, 15.4, 30.0, 52.6]),
        ("mxm", "l-opt", [11.1, 21.2, 37.6, 70.0]),
        ("mxm", "d-opt", [9.7, 17.0, 32.1, 56.4]),
        ("mxm", "c-opt", [13.7, 24.8, 56.4, 106.6]),
        ("mxm", "h-opt", [13.7, 24.8, 56.1, 107.2]),
        ("adi", "col", [12.0, 22.2, 51.2, 70.9]),
        ("adi", "row", [6.89, 10.9, 18.6, 31.4]),
        ("adi", "l-opt", [15.3, 28.2, 61.4, 107.5]),
        ("adi", "d-opt", [13.8, 24.0, 55.5, 74.9]),
        ("adi", "c-opt", [15.3, 28.2, 61.4, 107.5]),
        ("adi", "h-opt", [15.3, 28.2, 61.4, 107.5]),
        ("vpenta", "col", [10.0, 24.2, 51.3, 78.9]),
        ("vpenta", "row", [14.5, 28.0, 60.9, 109.8]),
        ("vpenta", "l-opt", [10.0, 24.2, 51.3, 78.9]),
        ("vpenta", "d-opt", [14.5, 28.0, 60.9, 109.8]),
        ("vpenta", "c-opt", [14.5, 28.0, 60.9, 109.8]),
        ("vpenta", "h-opt", [14.7, 29.0, 62.4, 108.2]),
        ("btrix", "col", [10.0, 18.1, 27.0, 42.7]),
        ("btrix", "row", [12.9, 23.9, 45.8, 87.1]),
        ("btrix", "l-opt", [10.0, 18.1, 27.0, 42.7]),
        ("btrix", "d-opt", [13.9, 25.1, 46.2, 98.1]),
        ("btrix", "c-opt", [13.9, 25.1, 46.2, 98.1]),
        ("btrix", "h-opt", [13.1, 24.6, 44.3, 93.1]),
        ("emit", "col", [12.7, 23.1, 45.0, 89.9]),
        ("emit", "row", [6.8, 11.0, 18.5, 33.9]),
        ("emit", "l-opt", [12.7, 23.1, 45.0, 89.9]),
        ("emit", "d-opt", [12.7, 23.1, 45.0, 89.9]),
        ("emit", "c-opt", [12.7, 23.1, 45.0, 89.9]),
        ("emit", "h-opt", [12.7, 32.1, 45.0, 89.9]),
        ("syr2k", "col", [10.3, 20.0, 36.5, 71.5]),
        ("syr2k", "row", [11.7, 22.0, 38.9, 78.0]),
        ("syr2k", "l-opt", [13.8, 26.8, 51.0, 95.1]),
        ("syr2k", "d-opt", [12.5, 24.1, 45.6, 87.4]),
        ("syr2k", "c-opt", [13.8, 26.8, 51.0, 95.1]),
        ("syr2k", "h-opt", [14.1, 26.0, 51.0, 95.3]),
        ("htribk", "col", [11.7, 20.3, 37.7, 76.6]),
        ("htribk", "row", [9.5, 16.9, 30.0, 55.4]),
        ("htribk", "l-opt", [8.8, 15.0, 24.3, 44.0]),
        ("htribk", "d-opt", [11.9, 21.5, 37.9, 76.9]),
        ("htribk", "c-opt", [11.9, 21.5, 37.9, 76.9]),
        ("htribk", "h-opt", [12.1, 21.6, 40.1, 76.9]),
        ("gfunp", "col", [10.9, 20.4, 38.4, 70.8]),
        ("gfunp", "row", [9.5, 17.0, 32.6, 60.6]),
        ("gfunp", "l-opt", [8.1, 15.7, 28.2, 52.2]),
        ("gfunp", "d-opt", [14.0, 25.0, 56.0, 102.3]),
        ("gfunp", "c-opt", [14.0, 25.0, 56.0, 102.3]),
        ("gfunp", "h-opt", [14.5, 24.7, 57.0, 105.7]),
        ("trans", "col", [13.0, 22.7, 31.6, 67.7]),
        ("trans", "row", [13.0, 22.7, 31.6, 67.7]),
        ("trans", "l-opt", [13.0, 22.7, 31.6, 67.7]),
        ("trans", "d-opt", [15.4, 30.9, 60.2, 113.0]),
        ("trans", "c-opt", [15.4, 30.9, 60.2, 113.0]),
        ("trans", "h-opt", [15.4, 30.9, 60.2, 113.0]),
    ];
    t.iter()
        .find(|(k, v, _)| *k == kernel && *v == version)
        .map(|(_, _, s)| *s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reference_complete() {
        let t = paper_table2();
        assert_eq!(t.len(), 10);
        // Paper's reported averages: 112.5 / 84.0 / 69.9 / 60.0 / 51.9.
        let avgs: Vec<f64> = (0..5)
            .map(|i| t.iter().map(|(_, _, r)| r[i]).sum::<f64>() / 10.0)
            .collect();
        assert!((avgs[0] - 112.54).abs() < 0.1, "row avg {}", avgs[0]);
        assert!((avgs[1] - 84.04).abs() < 0.1, "l-opt avg {}", avgs[1]);
        assert!((avgs[2] - 69.9).abs() < 0.1, "d-opt avg {}", avgs[2]);
        assert!((avgs[3] - 60.04).abs() < 0.1, "c-opt avg {}", avgs[3]);
        assert!((avgs[4] - 51.87).abs() < 0.1, "h-opt avg {}", avgs[4]);
    }

    #[test]
    fn table3_reference_lookup() {
        assert_eq!(
            paper_table3_entry("mat", "c-opt"),
            Some([14.0, 27.7, 54.8, 102.7])
        );
        assert_eq!(paper_table3_entry("nope", "col"), None);
        // Every kernel/version pair present.
        for (k, _) in PAPER_TABLE3_KERNELS {
            for v in ["col", "row", "l-opt", "d-opt", "c-opt", "h-opt"] {
                assert!(paper_table3_entry(k, v).is_some(), "{k}/{v} missing");
            }
        }
    }
}
