//! The degraded-mode experiment behind `table3 --kill-node`,
//! `inspect --scrub`, and the CI degraded smoke step.
//!
//! One demo = one kernel's c-opt version run through the durable
//! **parallel** executor over a [`StripedMedium`]: every array
//! striped with a rotating parity lane across four simulated I/O
//! nodes. The sweep kills each node in turn *at its very first
//! arrival* (the node is dead from the start — discovery, quarantine,
//! and resume all happen on a serial, deterministic schedule, so
//! every repair counter exact-gates against the committed
//! `BENCH_degraded_seed.json`), then samples **mid-run** and
//! **late** (write-behind-drain) kill points placed from a fault-free
//! twin's arrival counts — those cells assert the bit-equality and
//! bounded-replay contract but register nothing deterministic,
//! because discovery timing under concurrent shards legitimately
//! moves the split between pre- and post-loss traffic.
//!
//! Each killed cell closes with a verify-only scrub (groups touching
//! the dead node are skipped, everything else must be clean) and a
//! healthy-vs-degraded bandwidth pricing from `pfs-sim`'s
//! [`price_degraded`] fan-out model.

use ooc_analyze::{diff_ledgers, LedgerDiff};
use ooc_core::{
    max_intents_per_interval, parse_manifest, run_parallel_surviving_node_loss, DurabilityConfig,
    FunctionalConfig, NodeLossOutcome, ParallelConfig, PipelineConfig, StripedMedium,
};
use ooc_kernels::{compile, kernel_by_name, Kernel, Version};
use ooc_metrics::Registry;
use ooc_runtime::{
    parse_journal, IoCause, LedgerRecorder, NodeFaultConfig, NodeHealth, NodeStats,
    ProvenanceLedger, RepairIo, ScrubReport, StripeConfig,
};
use pfs_sim::{price_degraded, DegradedReport, DiskParams, NodeLoad};

use crate::measured::measured_seed;

/// I/O nodes of the degraded sweep (one lost at a time; K−1 = 3
/// survivors reconstruct).
pub const DEGRADED_NODES: usize = 4;

/// Kernels the degraded harness (`table3 --kill-node`, the CI smoke
/// step) sweeps: one square transpose-bound kernel and one
/// multiply-bound kernel, both quick at functional scale.
pub const DEGRADED_KERNELS: [&str; 2] = ["trans", "mxm"];

/// Stripe unit of the degraded sweep, in elements — small enough that
/// the kernels' functional-test arrays spread over all four nodes and
/// every node owns both data stripes and rotating parity chunks.
pub const DEGRADED_STRIPE_ELEMS: u64 = 8;

fn stripes() -> StripeConfig {
    StripeConfig {
        stripe_elems: DEGRADED_STRIPE_ELEMS,
        ..StripeConfig::with_nodes(DEGRADED_NODES)
    }
}

fn pcfg(ledger: Option<LedgerRecorder>) -> ParallelConfig {
    let functional = match ledger {
        Some(rec) => FunctionalConfig::with_fraction(16).with_ledger(rec),
        None => FunctionalConfig::with_fraction(16),
    };
    ParallelConfig {
        pipeline: PipelineConfig {
            functional,
            ..PipelineConfig::default()
        },
        shards: 2,
    }
}

/// One deterministic kill cell: node `killed` dead from its first
/// arrival, run survived through quarantine + resume.
#[derive(Debug)]
pub struct DegradedCell {
    /// The node killed.
    pub killed: usize,
    /// Resumes the survival loop took (1 for a first-arrival kill).
    pub resumes: u64,
    /// Repair-plane traffic by cause, summed over nodes.
    pub repair: RepairIo,
    /// Per-node traffic/health/repair at the end of the run.
    pub node_stats: Vec<NodeStats>,
    /// Verify-only scrub of the finished (still-degraded) medium.
    pub scrub: ScrubReport,
    /// Journal intents rolled back by the resume.
    pub rolled_back_tiles: u64,
    /// The degraded run's provenance ledger (repair causes populate
    /// the repair channel; data-plane conservation still holds).
    pub ledger: ProvenanceLedger,
    /// Healthy-vs-degraded bandwidth pricing for this node's loss,
    /// from the healthy twin's per-node loads.
    pub priced: DegradedReport,
}

/// The full sweep on one kernel.
#[derive(Debug)]
pub struct DegradedDemo {
    /// Kernel name.
    pub kernel: String,
    /// Version label (always c-opt — the optimized walk).
    pub version: String,
    /// Fault-free twin: per-node stats (loads for pricing, arrival
    /// counts for mid-run kill placement).
    pub healthy_stats: Vec<NodeStats>,
    /// The twin's parity-upkeep traffic (every data write pays a
    /// parity read-modify-write even with no faults).
    pub healthy_repair: RepairIo,
    /// The twin's provenance ledger.
    pub healthy_ledger: ProvenanceLedger,
    /// One deterministic first-arrival kill per node.
    pub cells: Vec<DegradedCell>,
    /// Extra `(node, kill_at)` points verified bit-equal (mid-run and
    /// write-behind-drain kills; counters not registered).
    pub sampled_kills: Vec<(usize, u64)>,
}

impl DegradedDemo {
    /// The sweep's worst single-node loss by priced degraded makespan.
    #[must_use]
    pub fn worst_priced(&self) -> Option<&DegradedReport> {
        self.cells.iter().map(|c| &c.priced).max_by(|a, b| {
            a.degraded
                .makespan_s
                .partial_cmp(&b.degraded.makespan_s)
                .expect("finite makespans")
        })
    }
}

fn node_loads(stats: &[NodeStats]) -> Vec<NodeLoad> {
    stats
        .iter()
        .map(|n| NodeLoad {
            calls: n.io.total_calls() + n.repair.total_calls(),
            bytes: (n.io.read_elems + n.io.write_elems + n.repair.total_elems())
                * ooc_runtime::ELEM_BYTES,
        })
        .collect()
}

fn run_survival(
    k: &Kernel,
    tiled: &ooc_core::TiledProgram,
    faults: NodeFaultConfig,
    version_stamp: &str,
) -> (NodeLossOutcome, StripedMedium, ProvenanceLedger) {
    let rec = LedgerRecorder::new();
    rec.set_run(k.name, version_stamp);
    let mut medium = StripedMedium::with_faults(stripes(), faults).with_ledger(rec.clone());
    let out = run_parallel_surviving_node_loss(
        tiled,
        &k.small_params,
        &measured_seed,
        &pcfg(Some(rec.clone())),
        &DurabilityConfig::default(),
        &mut medium,
    )
    .expect("degraded survival run");
    (out, medium, rec.take())
}

/// Runs the degraded sweep on `kernel`'s c-opt version: a fault-free
/// twin, one first-arrival kill per node (or only `kill_node` when
/// given), and sampled mid-run / drain-phase kills. Panics if any
/// survived run is not bit-equal to the fault-free one, if data-plane
/// ledger conservation breaks, or if replay exceeds one checkpoint
/// interval — that is the experiment's contract.
///
/// # Panics
/// Panics on an unknown kernel or any degraded-mode invariant
/// violation.
#[must_use]
pub fn run_degraded_demo(kernel: &str, kill_node: Option<usize>) -> DegradedDemo {
    let k = kernel_by_name(kernel).unwrap_or_else(|| panic!("unknown kernel `{kernel}`"));
    let cv = compile(&k, Version::COpt);
    let disk = DiskParams::default();

    // Fault-free twin: expected bits, healthy loads, arrival counts,
    // and the journal/manifest that bound replay.
    let (healthy, healthy_medium, healthy_ledger) =
        run_survival(&k, &cv.tiled, NodeFaultConfig::new(), "c-opt-healthy");
    assert!(healthy.loss.nodes_lost.is_empty());
    let expected = healthy.outcome.run.run.data.clone();
    assert_ledger_conserves(&k, &healthy_ledger, &healthy.outcome);
    let healthy_loads = node_loads(&healthy.loss.node_stats);
    let arrivals: Vec<u64> = healthy
        .loss
        .node_stats
        .iter()
        .map(|n| n.io.total_calls() + n.repair.total_calls())
        .collect();
    let bound = max_intents_per_interval(
        &parse_journal(&healthy_medium.journal_bytes()),
        &parse_manifest(&healthy_medium.manifest_bytes()).watermarks(),
    );

    let targets: Vec<usize> = match kill_node {
        Some(n) => {
            assert!(
                n < DEGRADED_NODES,
                "--kill-node {n}: only {DEGRADED_NODES} nodes"
            );
            vec![n]
        }
        None => (0..DEGRADED_NODES).collect(),
    };
    let mut cells = Vec::new();
    for &node in &targets {
        let faults = NodeFaultConfig::new().permanent_fail_at(node, 0);
        let (out, medium, ledger) = run_survival(&k, &cv.tiled, faults, "c-opt-degraded");
        assert_eq!(
            out.outcome.run.run.data, expected,
            "{}: degraded run diverged with node {node} dead",
            k.name
        );
        if out.loss.nodes_lost.is_empty() {
            // The node's first arrival was a parity-plane call, which
            // the single-fault model tolerates in place: health flips
            // to Down and every later data access degrades silently.
            // Redundancy absorbed the loss with no resume at all.
            assert_eq!(
                medium.pool().health(node),
                NodeHealth::Down,
                "{}: node {node} neither discovered nor marked dead",
                k.name
            );
        } else {
            assert_eq!(out.loss.nodes_lost, vec![node]);
        }
        assert_ledger_conserves(&k, &ledger, &out.outcome);
        for (a, n) in &out.outcome.report.rolled_back_by_array {
            let max = bound.get(a).copied().unwrap_or(0);
            assert!(*n <= max, "array {a}: rolled back {n} > bound {max}");
        }
        let scrub = medium.scrub(false).expect("verify-only scrub");
        assert_eq!(
            scrub.unrecoverable, 0,
            "{}: scrub found unrecoverable groups with one node down",
            k.name
        );
        cells.push(DegradedCell {
            killed: node,
            resumes: out.loss.resumes,
            repair: out.loss.repair,
            node_stats: out.loss.node_stats,
            scrub,
            rolled_back_tiles: out.outcome.report.rolled_back_tiles,
            ledger,
            priced: price_degraded(&healthy_loads, node, &disk),
        });
    }

    // Sampled kill points on the busiest node: mid-run and the tail
    // of the arrival stream (write-behind drain). Bit-equality is the
    // contract; counters stay unregistered (discovery timing under
    // concurrent shards is not deterministic).
    let busiest = (0..DEGRADED_NODES)
        .max_by_key(|&n| arrivals[n])
        .expect("nodes");
    let mut sampled_kills = Vec::new();
    for at in [arrivals[busiest] / 2, arrivals[busiest].saturating_sub(2)] {
        if at == 0 {
            continue;
        }
        let faults = NodeFaultConfig::new().permanent_fail_at(busiest, at);
        let rec = LedgerRecorder::new();
        let mut medium = StripedMedium::with_faults(stripes(), faults).with_ledger(rec);
        let out = run_parallel_surviving_node_loss(
            &cv.tiled,
            &k.small_params,
            &measured_seed,
            &pcfg(None),
            &DurabilityConfig::default(),
            &mut medium,
        )
        .expect("sampled-kill survival run");
        assert_eq!(
            out.outcome.run.run.data, expected,
            "{}: node {busiest} killed at call {at}: survived run diverged",
            k.name
        );
        for (a, n) in &out.outcome.report.rolled_back_by_array {
            let max = bound.get(a).copied().unwrap_or(0);
            assert!(
                *n <= max,
                "kill@{at} array {a}: rolled back {n} > bound {max}"
            );
        }
        sampled_kills.push((busiest, at));
    }

    DegradedDemo {
        kernel: k.name.to_string(),
        version: "c-opt".to_string(),
        healthy_stats: healthy.loss.node_stats,
        healthy_repair: healthy.loss.repair,
        healthy_ledger,
        cells,
        sampled_kills,
    }
}

fn assert_ledger_conserves(
    k: &Kernel,
    ledger: &ProvenanceLedger,
    out: &ooc_core::ParallelDurableOutcome,
) {
    let stats: Vec<_> = out.run.run.profiles.iter().map(|p| p.stats).collect();
    if let Err(e) = ledger.check_conservation(&stats) {
        panic!("{}: degraded-run ledger conservation violated: {e}", k.name);
    }
}

/// The healthy-vs-degraded provenance diff for one kernel: where the
/// extra bytes of losing `kill_node` (default 0) went, cause by
/// cause — parity upkeep, reconstruction, scrubbing.
#[must_use]
pub fn run_degraded_ledger_diff(kernel: &str, kill_node: usize, disk: &DiskParams) -> LedgerDiff {
    let demo = run_degraded_demo(kernel, Some(kill_node));
    let cell = demo.cells.first().expect("one kill cell");
    diff_ledgers(&demo.healthy_ledger, &cell.ledger, disk)
}

/// Registers the sweep's counters per `{kernel, version, killed}`.
/// Repair, scrub, and resume counters from the first-arrival kills
/// are deterministic (exact-gated by `bench-compare` against
/// `BENCH_degraded_seed.json`); priced slowdowns register as gauges
/// (warn-only).
pub fn degraded_register(registry: &Registry, demo: &DegradedDemo) {
    // The healthy twin's parity upkeep, under killed="none".
    let base = [
        ("kernel", demo.kernel.as_str()),
        ("version", demo.version.as_str()),
        ("killed", "none"),
    ];
    registry.counter_add(
        "repair_parity_write_calls_total",
        &base,
        demo.healthy_repair.get(IoCause::ParityWrite).total_calls(),
    );
    registry.counter_add(
        "repair_calls_total",
        &base,
        demo.healthy_repair.total_calls(),
    );
    registry.counter_add(
        "repair_elems_total",
        &base,
        demo.healthy_repair.total_elems(),
    );
    for cell in &demo.cells {
        let killed = cell.killed.to_string();
        let labels = [
            ("kernel", demo.kernel.as_str()),
            ("version", demo.version.as_str()),
            ("killed", killed.as_str()),
        ];
        let c = |name: &str, v: u64| registry.counter_add(name, &labels, v);
        for cause in IoCause::REPAIR {
            let ctr = cell.repair.get(cause);
            c(
                &format!("repair_{}_calls_total", cause.label()),
                ctr.total_calls(),
            );
            c(
                &format!("repair_{}_elems_total", cause.label()),
                ctr.total_elems(),
            );
        }
        c("repair_calls_total", cell.repair.total_calls());
        c("repair_elems_total", cell.repair.total_elems());
        c("node_loss_resumes_total", cell.resumes);
        c("recovery_replayed_tiles_total", cell.rolled_back_tiles);
        c("scrub_groups_total", cell.scrub.groups);
        c("scrub_clean_total", cell.scrub.clean);
        c("scrub_skipped_total", cell.scrub.skipped);
        c("scrub_unrecoverable_total", cell.scrub.unrecoverable);
        let timeouts: u64 = cell.node_stats.iter().map(|s| s.timing.timeouts).sum();
        c("hedge_timeouts_total", timeouts);
        // Priced healthy-vs-degraded bandwidth: gauges (model output,
        // stable, but bench-compare treats gauges as warn-only).
        registry.gauge_set("priced_degraded_slowdown", &labels, cell.priced.slowdown());
        registry.gauge_set(
            "priced_bandwidth_retention",
            &labels,
            cell.priced.bandwidth_retention(),
        );
        registry.gauge_set(
            "priced_degraded_makespan_s",
            &labels,
            cell.priced.degraded.makespan_s,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_metrics::Snapshot;

    #[test]
    fn degraded_demo_survives_and_registers_deterministically() {
        let demo = run_degraded_demo("trans", None);
        assert_eq!(demo.cells.len(), DEGRADED_NODES);
        assert_eq!(demo.sampled_kills.len(), 2, "{:?}", demo.sampled_kills);
        for cell in &demo.cells {
            assert!(
                cell.resumes <= 1,
                "node {}: {} resumes",
                cell.killed,
                cell.resumes
            );
            assert!(
                cell.repair.get(IoCause::DegradedReconstruct).read_calls > 0,
                "node {}: no reconstruction traffic",
                cell.killed
            );
            assert!(cell.priced.slowdown() >= 1.0);
            // The dead node's groups are skipped, the rest verify clean.
            assert!(cell.scrub.skipped > 0, "node {}", cell.killed);
            assert_eq!(cell.scrub.clean + cell.scrub.skipped, cell.scrub.groups);
        }
        // Data-plane-first kills need a journal-bounded resume;
        // parity-plane-first kills are absorbed with none.
        assert!(demo.cells.iter().map(|c| c.resumes).sum::<u64>() >= 1);
        // The healthy twin pays parity upkeep but nothing else.
        assert!(demo.healthy_repair.get(IoCause::ParityWrite).write_calls > 0);
        assert_eq!(
            demo.healthy_repair
                .get(IoCause::DegradedReconstruct)
                .read_calls,
            0
        );
        // Registration is deterministic across fresh runs.
        let again = run_degraded_demo("trans", None);
        let (a, b) = (Registry::new(), Registry::new());
        degraded_register(&a, &demo);
        degraded_register(&b, &again);
        assert_eq!(
            Snapshot::capture("x", &a).samples,
            Snapshot::capture("x", &b).samples
        );
    }

    #[test]
    fn healthy_vs_degraded_diff_names_the_repair_causes() {
        let diff = run_degraded_ledger_diff("trans", 1, &DiskParams::default());
        let text = diff.render();
        assert!(
            text.contains("degraded_reconstruct"),
            "diff must surface reconstruction traffic:\n{text}"
        );
        assert!(
            text.contains("parity_write"),
            "diff must surface parity upkeep:\n{text}"
        );
    }
}
