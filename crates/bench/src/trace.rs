//! `--trace out.json` support for the experiment binaries.
//!
//! [`TraceScope::from_args`] pulls `--trace PATH` (or `--trace=PATH`)
//! and `--explain` out of an argument list and, when tracing was
//! requested, starts a process-wide [`ooc_trace::Session`] so every
//! instrumented layer (compiler, runtime, simulator) records into it.
//! [`TraceScope::finish`] exports the session as Chrome-trace JSON,
//! validates it with the library's own structural validator (so CI can
//! trust the file opens in Perfetto), and writes it to the requested
//! path.

use ooc_trace::chrome::{chrome_trace_json, validate_chrome_trace};
use ooc_trace::{Session, TraceData};

/// A started (or inert) tracing scope for one binary invocation.
pub struct TraceScope {
    session: Option<Session>,
    path: Option<String>,
    /// `true` when `--explain` was passed: the caller should render
    /// decision records after the run.
    pub explain: bool,
}

/// Removes `--flag VALUE` / `--flag=VALUE` from `args`, returning the
/// value if present.
pub fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            args.remove(i);
            if i < args.len() {
                value = Some(args.remove(i));
            }
        } else if let Some(v) = args[i].strip_prefix(&prefix) {
            value = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    value
}

/// Removes every occurrence of the bare `flag` from `args`; `true` if
/// it appeared.
pub(crate) fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

impl TraceScope {
    /// Parses and removes `--trace PATH` and `--explain` from `args`
    /// (so positional argument handling stays untouched), starting a
    /// trace session when either was requested.
    #[must_use]
    pub fn from_args(args: &mut Vec<String>) -> TraceScope {
        let path = take_value_flag(args, "--trace");
        let explain = take_bool_flag(args, "--explain");
        let session = (path.is_some() || explain).then(Session::start);
        TraceScope {
            session,
            path,
            explain,
        }
    }

    /// `true` when a session is live.
    #[must_use]
    pub fn active(&self) -> bool {
        self.session.is_some()
    }

    /// Ends the session; exports, validates, and writes the Chrome
    /// trace when a path was given. Returns the collected data (for
    /// explain-mode rendering), `None` when tracing was off.
    ///
    /// # Panics
    /// Panics if the exported JSON fails structural validation (a bug
    /// in the exporter — CI runs this path on purpose) or the output
    /// file cannot be written.
    pub fn finish(self) -> Option<TraceData> {
        let data = self.session?.finish();
        if let Some(path) = &self.path {
            let json = chrome_trace_json(&data.events);
            let summary = validate_chrome_trace(&json)
                .unwrap_or_else(|e| panic!("emitted trace is structurally invalid: {e}"));
            std::fs::write(path, &json)
                .unwrap_or_else(|e| panic!("cannot write trace to {path}: {e}"));
            eprintln!(
                "trace: wrote {path} ({} events: {} spans, {} instants, {} counter samples) \
                 — open in https://ui.perfetto.dev or chrome://tracing",
                summary.events, summary.spans, summary.instants, summary.counters
            );
        }
        Some(data)
    }
}

/// Renders a finished trace's decision records and span tree for
/// terminal consumption (the `--explain` mode of `inspect`).
#[must_use]
pub fn render_explain(data: &TraceData) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "decision records ({}):", data.explains.len());
    for e in &data.explains {
        let _ = writeln!(out, "  {e}");
    }
    let _ = writeln!(out, "span tree:");
    for line in ooc_trace::tree::render_tree(&data.events).lines() {
        let _ = writeln!(out, "  {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_extracted_and_positionals_survive() {
        let mut args = vec![
            "trans".to_string(),
            "--trace".to_string(),
            "/tmp/out.json".to_string(),
            "16".to_string(),
            "--explain".to_string(),
        ];
        let path = take_value_flag(&mut args, "--trace");
        let explain = take_bool_flag(&mut args, "--explain");
        assert_eq!(path.as_deref(), Some("/tmp/out.json"));
        assert!(explain);
        assert_eq!(args, vec!["trans".to_string(), "16".to_string()]);
    }

    #[test]
    fn equals_form_works() {
        let mut args = vec!["--trace=/tmp/t.json".to_string(), "8".to_string()];
        assert_eq!(
            take_value_flag(&mut args, "--trace").as_deref(),
            Some("/tmp/t.json")
        );
        assert_eq!(args, vec!["8".to_string()]);
    }

    #[test]
    fn inert_scope_returns_none() {
        let mut args = vec!["trans".to_string()];
        let scope = TraceScope::from_args(&mut args);
        assert!(!scope.active());
        assert!(scope.finish().is_none());
    }
}
