//! The runtime's central query: contiguous-run accounting per layout.
use criterion::{criterion_group, criterion_main, Criterion};
use ooc_runtime::{FileLayout, Region};
use std::hint::black_box;

fn bench_run_summaries(c: &mut Criterion) {
    let dims = [4096i64, 4096];
    let tile = Region::new(vec![129, 257], vec![384, 512]);
    for (name, layout) in [
        ("row_major", FileLayout::row_major(2)),
        ("col_major", FileLayout::col_major(2)),
        ("blocked_64", FileLayout::Blocked2D { br: 64, bc: 64 }),
    ] {
        c.bench_function(&format!("layout/summary_256x256_tile/{name}"), |b| {
            b.iter(|| black_box(&layout).region_run_summary(black_box(&dims), black_box(&tile)))
        });
    }
    // Hyperplane layouts walk their hyperplane family: measure at a
    // moderate array size.
    let dims_small = [512i64, 512];
    let tile_small = Region::new(vec![17, 33], vec![80, 96]);
    let diag = FileLayout::Hyperplane2D(1, -1);
    c.bench_function("layout/summary_64x64_tile/diagonal", |b| {
        b.iter(|| {
            black_box(&diag).region_run_summary(black_box(&dims_small), black_box(&tile_small))
        })
    });
}

fn bench_exact_runs(c: &mut Criterion) {
    let dims = [128i64, 128];
    let tile = Region::new(vec![9, 17], vec![40, 48]);
    let col = FileLayout::col_major(2);
    c.bench_function("layout/exact_runs_32x32_tile/col_major", |b| {
        b.iter(|| black_box(&col).region_runs(black_box(&dims), black_box(&tile)))
    });
}

criterion_group!(benches, bench_run_summaries, bench_exact_runs);
criterion_main!(benches);
