//! Figure 3 as an ablation: the four tiling strategies on the worked
//! example, measuring both the planning cost and the resulting call
//! counts (reported via a one-off println at bench start).
use criterion::{criterion_group, criterion_main, Criterion};
use ooc_core::{optimize, simulate, ExecConfig, OptimizeOptions, TiledProgram, TilingStrategy};
use ooc_ir::{ArrayRef, Expr, LoopNest, Program, Statement};
use std::hint::black_box;

fn worked_example() -> Program {
    let mut p = Program::new(&["N"]);
    let u = p.declare_array("U", 2, 0);
    let v = p.declare_array("V", 2, 0);
    let s = Statement::assign(
        ArrayRef::new(u, &[vec![1, 0], vec![0, 1]], vec![0, 0]),
        Expr::Ref(ArrayRef::new(v, &[vec![0, 1], vec![1, 0]], vec![0, 0])),
    );
    p.add_nest(LoopNest::rectangular("n", 2, 1, 0, vec![s]));
    p
}

fn bench_strategies(c: &mut Criterion) {
    let prog = worked_example();
    let opt = optimize(&prog, &OptimizeOptions::default());
    let cfg = ExecConfig::new(vec![1024], 16);
    for (name, strategy) in [
        ("out_of_core", TilingStrategy::OutOfCore),
        ("optimized", TilingStrategy::Optimized),
        ("slab", TilingStrategy::Slab),
        ("traditional_square", TilingStrategy::Traditional),
    ] {
        let tp = TiledProgram::from_optimized(&opt, strategy);
        let calls = simulate(&tp, &cfg).io_calls;
        println!("figure3 ablation: {name:18} -> {calls} I/O calls");
        c.bench_function(&format!("figure3/plan_and_simulate/{name}"), |b| {
            b.iter(|| simulate(black_box(&tp), black_box(&cfg)))
        });
    }
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
