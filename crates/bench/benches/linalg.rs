//! Micro-benchmarks of the exact linear algebra that every compiler
//! decision rests on.
use criterion::{criterion_group, criterion_main, Criterion};
use ooc_linalg::{column_hnf, complete_last_column, completion_candidates, Matrix, Polyhedron};
use std::hint::black_box;

fn bench_matrix_ops(c: &mut Criterion) {
    let m4 = Matrix::from_i64(4, 4, &[2, 1, 0, 3, 0, 1, 4, 1, 5, 0, 1, 2, 1, 1, 0, 1]);
    c.bench_function("matrix/inverse_4x4", |b| {
        b.iter(|| black_box(&m4).inverse())
    });
    c.bench_function("matrix/determinant_4x4", |b| {
        b.iter(|| black_box(&m4).determinant())
    });
    let rect = Matrix::from_i64(2, 4, &[1, 0, 2, 1, 0, 1, 1, 3]);
    c.bench_function("matrix/integer_nullspace_2x4", |b| {
        b.iter(|| black_box(&rect).integer_nullspace())
    });
    c.bench_function("matrix/hnf_4x4", |b| b.iter(|| column_hnf(black_box(&m4))));
}

fn bench_completion(c: &mut Criterion) {
    c.bench_function("completion/last_column_depth4", |b| {
        b.iter(|| complete_last_column(black_box(&[1, 2, 3, 5])))
    });
    c.bench_function("completion/candidates_depth4_limit24", |b| {
        b.iter(|| completion_candidates(black_box(&[1, 2, 3, 5]), 24))
    });
}

fn bench_fourier_motzkin(c: &mut Criterion) {
    // A 4-deep rectangular nest transformed by a skew: bounds via FM.
    let mut p = Polyhedron::universe(4, 1);
    for v in 0..4 {
        p.add_var_range_param(v, 0);
    }
    let skew = Matrix::from_i64(4, 4, &[1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 1]);
    let transformed = p.transform(&skew);
    c.bench_function("fm/loop_bounds_depth4_skewed", |b| {
        b.iter(|| black_box(&transformed).loop_bounds())
    });
}

criterion_group!(
    benches,
    bench_matrix_ops,
    bench_completion,
    bench_fourier_motzkin
);
criterion_main!(benches);
