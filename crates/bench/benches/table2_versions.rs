//! Table 2's pipeline as a benchmark: compile + simulate one kernel
//! version (reduced scale so Criterion can iterate).
use criterion::{criterion_group, criterion_main, Criterion};
use ooc_core::{simulate, ExecConfig};
use ooc_kernels::{compile, kernel_by_name, Version};
use std::hint::black_box;

fn bench_versions(c: &mut Criterion) {
    for name in ["trans", "mat", "adi"] {
        let k = kernel_by_name(name).expect("kernel");
        let params: Vec<i64> = k.paper_params.iter().map(|&n| (n / 16).max(8)).collect();
        for v in Version::ALL {
            let cv = compile(&k, v);
            let mut cfg = ExecConfig::new(params.clone(), 16);
            cfg.interleave = cv.interleave.clone();
            c.bench_function(&format!("table2/{name}/{}", v.label()), |b| {
                b.iter(|| simulate(black_box(&cv.tiled), black_box(&cfg)))
            });
        }
    }
}

criterion_group!(benches, bench_versions);
criterion_main!(benches);
