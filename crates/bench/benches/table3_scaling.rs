//! Table 3's pipeline as a benchmark: the same compiled kernel
//! simulated across the paper's processor counts.
use criterion::{criterion_group, criterion_main, Criterion};
use ooc_core::{simulate, ExecConfig};
use ooc_kernels::{compile, kernel_by_name, Version};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let k = kernel_by_name("trans").expect("kernel");
    let cv = compile(&k, Version::COpt);
    for procs in [1usize, 16, 32, 64, 128] {
        let cfg = ExecConfig::new(vec![512], procs);
        c.bench_function(&format!("table3/trans_c_opt/{procs}procs"), |b| {
            b.iter(|| simulate(black_box(&cv.tiled), black_box(&cfg)))
        });
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
