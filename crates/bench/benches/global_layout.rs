//! Ablation: greedy layout propagation (§3) versus the exact global
//! layout search (§5's proposed future work).
use criterion::{criterion_group, criterion_main, Criterion};
use ooc_core::{modeled_program_cost, optimize, optimize_global, GlobalOptions, OptimizeOptions};
use ooc_kernels::kernel_by_name;
use std::hint::black_box;

fn bench_global(c: &mut Criterion) {
    for name in ["trans", "gfunp", "mat"] {
        let k = kernel_by_name(name).expect("kernel");
        let opts = OptimizeOptions::default();
        let gopts = GlobalOptions::default();
        // Report the modeled costs once.
        let greedy = optimize(&k.program, &opts);
        let global = optimize_global(&k.program, &gopts);
        println!(
            "global-layout ablation {name:8}: greedy {:.3}, global {:.3} \
             ({} assignments{})",
            modeled_program_cost(&k.program, &greedy, &opts),
            global.modeled_cost,
            global.assignments_searched,
            if global.fell_back { ", fell back" } else { "" },
        );
        c.bench_function(&format!("global_layout/greedy/{name}"), |b| {
            b.iter(|| optimize(black_box(&k.program), &opts))
        });
        c.bench_function(&format!("global_layout/exact/{name}"), |b| {
            b.iter(|| optimize_global(black_box(&k.program), &gopts))
        });
    }
}

criterion_group!(benches, bench_global);
criterion_main!(benches);
