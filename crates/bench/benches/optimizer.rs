//! Compile-time cost of the paper's optimizer on the ten kernels.
use criterion::{criterion_group, criterion_main, Criterion};
use ooc_core::{optimize, optimize_data_only, optimize_loop_only, OptimizeOptions};
use ooc_kernels::all_kernels;
use std::hint::black_box;

fn bench_optimize(c: &mut Criterion) {
    let opts = OptimizeOptions::default();
    for k in all_kernels() {
        c.bench_function(&format!("optimizer/c_opt/{}", k.name), |b| {
            b.iter(|| optimize(black_box(&k.program), &opts))
        });
    }
    // The single-technique passes on one representative kernel.
    let gfunp = all_kernels()
        .into_iter()
        .find(|k| k.name == "gfunp")
        .expect("gfunp");
    c.bench_function("optimizer/l_opt/gfunp", |b| {
        b.iter(|| optimize_loop_only(black_box(&gfunp.program), &opts, None))
    });
    c.bench_function("optimizer/d_opt/gfunp", |b| {
        b.iter(|| optimize_data_only(black_box(&gfunp.program), &opts))
    });
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);
