//! Throughput of the discrete-event PFS simulator itself.
use criterion::{criterion_group, criterion_main, Criterion};
use pfs_sim::{MachineConfig, Op, PfsSim, Workload};
use std::hint::black_box;

fn synthetic_workload(procs: usize, ops_per_proc: usize) -> (PfsSim, Workload) {
    let mut sim = PfsSim::new(MachineConfig::default());
    let f = sim.create_file(1 << 30);
    let per_proc = (0..procs)
        .map(|p| {
            (0..ops_per_proc)
                .map(|i| {
                    if i % 4 == 3 {
                        Op::Compute { seconds: 1e-3 }
                    } else {
                        Op::Io {
                            file: f,
                            offset: ((p * ops_per_proc + i) as u64 * 131072) % (1 << 29),
                            bytes: 65536,
                            span: 262144,
                            calls: 8,
                            is_write: i % 2 == 0,
                        }
                    }
                })
                .collect()
        })
        .collect();
    (sim, Workload { per_proc })
}

fn bench_des(c: &mut Criterion) {
    for (procs, ops) in [(16usize, 256usize), (128, 64)] {
        let (sim, w) = synthetic_workload(procs, ops);
        c.bench_function(&format!("pfs/des_{procs}procs_{ops}ops"), |b| {
            b.iter(|| sim.simulate(black_box(&w)))
        });
    }
}

fn bench_node_shares(c: &mut Criterion) {
    let sim = PfsSim::new(MachineConfig::default());
    c.bench_function("pfs/node_shares_16MB_span", |b| {
        b.iter(|| sim.node_shares(black_box(1 << 20), 16 << 20, 4 << 20, 256))
    });
}

criterion_group!(benches, bench_des, bench_node_shares);
criterion_main!(benches);
