//! Out-of-core arrays: the PASSION-like runtime object programs
//! stage data tiles through.
//!
//! An [`OocArray`] couples an array shape, a [`FileLayout`], and a
//! backing [`Store`]. Tiles (rectangular [`Region`]s) are read into
//! and written from [`Tile`] buffers; every transfer is accounted in
//! [`IoStats`] as the number of I/O *calls* it costs — maximal
//! contiguous runs, split by the maximum transfer size — which is
//! precisely the quantity the paper's optimizations minimize.

use crate::layout::{FileLayout, Region, RunSummary};
use crate::store::{MemStore, Store, ELEM_BYTES};
use std::io;
use std::time::Duration;

/// Runtime parameters for I/O call accounting.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Maximum elements a single I/O call may move (runs longer than
    /// this are split). Mirrors `PfsConfig::max_call_bytes / 8`.
    pub max_call_elems: u64,
    /// Recovery policy for transient store failures.
    pub retry: RetryPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            max_call_elems: 4 * 1024 * 1024 / ELEM_BYTES,
            retry: RetryPolicy::default(),
        }
    }
}

/// Retry-with-backoff policy for transient store errors
/// ([`io::ErrorKind::Interrupted`], `WouldBlock`, `TimedOut`): a
/// failed run is re-issued up to `max_attempts` total tries, sleeping
/// `base_backoff * 2^(attempt-1)` between tries. Non-transient errors
/// (out-of-range, corrupt files) propagate immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per run, including the first (≥ 1).
    pub max_attempts: u32,
    /// First backoff; doubles per retry. `Duration::ZERO` (the
    /// default) never sleeps — right for tests and in-memory stores.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
        }
    }

    /// Whether `e` is worth retrying.
    #[must_use]
    pub fn is_transient(e: &io::Error) -> bool {
        // Node faults are structural, not transient: a dead node stays
        // dead, and a lane-deadline miss must reach the hedging /
        // degraded-read machinery instead of being blindly re-queued.
        if crate::fault::is_node_down(e) || crate::fault::is_node_slow(e) {
            return false;
        }
        matches!(
            e.kind(),
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    }

    /// Runs `op` under this policy; `retries` counts re-issues.
    ///
    /// # Errors
    /// Returns the last error once attempts are exhausted, and
    /// non-transient errors immediately.
    pub fn run(&self, retries: &mut u64, mut op: impl FnMut() -> io::Result<()>) -> io::Result<()> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(()) => return Ok(()),
                Err(e) if attempt + 1 < self.max_attempts.max(1) && Self::is_transient(&e) => {
                    if ooc_trace::enabled() {
                        ooc_trace::instant(
                            "runtime",
                            "io-retry",
                            vec![
                                ("attempt", u64::from(attempt + 1).into()),
                                ("error", e.kind().to_string().into()),
                            ],
                        );
                    }
                    if !self.base_backoff.is_zero() {
                        std::thread::sleep(self.base_backoff * 2u32.saturating_pow(attempt));
                    }
                    attempt += 1;
                    *retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Cumulative I/O statistics of one array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Tile-read operations.
    pub reads: u64,
    /// Tile-write operations.
    pub writes: u64,
    /// I/O calls issued by reads.
    pub read_calls: u64,
    /// I/O calls issued by writes.
    pub write_calls: u64,
    /// Elements transferred by reads.
    pub read_elems: u64,
    /// Elements transferred by writes.
    pub write_elems: u64,
    /// Transient store failures recovered by retry.
    pub retries: u64,
}

impl IoStats {
    /// Total calls (reads + writes).
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.read_calls + self.write_calls
    }

    /// Total elements (reads + writes).
    #[must_use]
    pub fn total_elems(&self) -> u64 {
        self.read_elems + self.write_elems
    }

    /// Total bytes (reads + writes).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_elems() * ELEM_BYTES
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &IoStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_calls += other.read_calls;
        self.write_calls += other.write_calls;
        self.read_elems += other.read_elems;
        self.write_elems += other.write_elems;
        self.retries += other.retries;
    }
}

/// Cost of a single region access, derived from the layout's run
/// structure and the call-size cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoCost {
    /// I/O calls required.
    pub calls: u64,
    /// Elements moved.
    pub elements: u64,
    /// Starting byte offset in the file (for stripe mapping).
    pub start_byte: u64,
    /// Bytes spanned in the file, `start..end` (≥ moved bytes for
    /// strided access).
    pub span_bytes: u64,
}

/// An in-memory rectangular tile of an array.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    region: Region,
    data: Vec<f64>,
}

impl Tile {
    /// Zero-filled tile covering `region`.
    #[must_use]
    pub fn zeroed(region: Region) -> Self {
        let len = usize::try_from(region.len()).expect("tile too large");
        Tile {
            region,
            data: vec![0.0; len],
        }
    }

    /// The covered region.
    #[must_use]
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Raw data in canonical region-row-major order.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data in canonical region-row-major order.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    fn pos(&self, idx: &[i64]) -> usize {
        assert!(self.region.contains(idx), "index {idx:?} outside tile");
        let mut off: i64 = 0;
        for (d, &x) in idx.iter().enumerate() {
            off = off * self.region.extent(d) + (x - self.region.lo[d]);
        }
        usize::try_from(off).expect("tile offset")
    }

    /// Reads the element at global (1-based) index `idx`.
    #[must_use]
    pub fn get(&self, idx: &[i64]) -> f64 {
        self.data[self.pos(idx)]
    }

    /// Writes the element at global index `idx`.
    pub fn set(&mut self, idx: &[i64], v: f64) {
        let p = self.pos(idx);
        self.data[p] = v;
    }
}

/// An out-of-core array over a backing store.
#[derive(Debug)]
pub struct OocArray<S: Store> {
    name: String,
    dims: Vec<i64>,
    layout: FileLayout,
    store: S,
    config: RuntimeConfig,
    stats: IoStats,
}

impl OocArray<MemStore> {
    /// Creates an in-memory-backed array (tests, functional runs).
    #[must_use]
    pub fn in_memory(name: &str, dims: &[i64], layout: FileLayout) -> Self {
        let len: i64 = dims.iter().product();
        OocArray::new(
            name,
            dims,
            layout,
            MemStore::new(u64::try_from(len).expect("positive size")),
            RuntimeConfig::default(),
        )
    }
}

impl<S: Store> OocArray<S> {
    /// Creates an array over the given store.
    ///
    /// # Panics
    /// Panics if the store size does not match the array shape.
    #[must_use]
    pub fn new(
        name: &str,
        dims: &[i64],
        layout: FileLayout,
        store: S,
        config: RuntimeConfig,
    ) -> Self {
        let len: i64 = dims.iter().product();
        assert_eq!(
            store.len(),
            u64::try_from(len).expect("positive size"),
            "store size does not match array shape"
        );
        OocArray {
            name: name.to_string(),
            dims: dims.to_vec(),
            layout,
            store,
            config,
            stats: IoStats::default(),
        }
    }

    /// Array name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensions.
    #[must_use]
    pub fn dims(&self) -> &[i64] {
        &self.dims
    }

    /// The file layout.
    #[must_use]
    pub fn layout(&self) -> &FileLayout {
        &self.layout
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets statistics.
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Resets tile statistics *and* any store-level measurement
    /// (e.g. a [`TracingStore`](crate::trace::TracingStore) trace).
    pub fn reset_all_metrics(&mut self) {
        self.reset_stats();
        self.store.reset_metrics();
    }

    /// The store's measured I/O, when the store is instrumented.
    #[must_use]
    pub fn measured(&self) -> Option<crate::trace::MeasuredIo> {
        self.store.metrics()
    }

    /// The store's full access-pattern call trace, when the store is a
    /// [`ProfilingStore`](crate::profile::ProfilingStore).
    #[must_use]
    pub fn access_log(&self) -> Option<Vec<crate::profile::AccessRecord>> {
        self.store.access_log()
    }

    /// The backing store.
    #[must_use]
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The I/O cost of accessing `region` under the array's layout —
    /// no data is moved.
    #[must_use]
    pub fn io_cost(&self, region: &Region) -> IoCost {
        summary_cost(
            self.layout.region_run_summary(&self.dims, region),
            self.config.max_call_elems,
        )
    }

    /// The **exact** I/O call count a [`read_tile`](Self::read_tile)
    /// or [`write_tile`](Self::write_tile) of `region` incurs — the
    /// same per-run `div_ceil` accounting those methods apply, unlike
    /// [`io_cost`](Self::io_cost)'s average-run approximation. The
    /// provenance ledger uses this so cause buckets conserve exactly
    /// against [`IoStats`] call totals. No data is moved.
    #[must_use]
    pub fn exact_tile_calls(&self, region: &Region) -> u64 {
        let region = region.clamped(&self.dims);
        self.layout
            .region_runs(&self.dims, &region)
            .iter()
            .map(|run| run.len.div_ceil(self.config.max_call_elems))
            .sum()
    }

    /// Reads a tile, counting calls.
    ///
    /// # Errors
    /// Propagates store errors.
    pub fn read_tile(&mut self, region: &Region) -> io::Result<Tile> {
        let region = region.clamped(&self.dims);
        let mut tile = Tile::zeroed(region.clone());
        let runs = self.layout.region_runs(&self.dims, &region);
        // Pull every run, then scatter into the tile by element lookup.
        let mut run_data: Vec<(u64, Vec<f64>)> = Vec::with_capacity(runs.len());
        let mut calls = 0u64;
        let retry = self.config.retry;
        for run in &runs {
            let mut buf = vec![0.0; usize::try_from(run.len).expect("run len")];
            let store = &self.store;
            retry.run(&mut self.stats.retries, || {
                store.read_run(run.start, &mut buf)
            })?;
            calls += run.len.div_ceil(self.config.max_call_elems);
            run_data.push((run.start, buf));
        }
        for_each_index(&region, |idx| {
            let off = self.layout.offset_of(&self.dims, idx);
            let v = lookup(&run_data, off);
            tile.set(idx, v);
        });
        self.stats.reads += 1;
        self.stats.read_calls += calls;
        self.stats.read_elems += region.len() as u64;
        Ok(tile)
    }

    /// Writes a tile back, counting calls.
    ///
    /// # Errors
    /// Propagates store errors.
    pub fn write_tile(&mut self, tile: &Tile) -> io::Result<()> {
        let region = tile.region().clamped(&self.dims);
        let runs = self.layout.region_runs(&self.dims, &region);
        // Gather tile elements into per-run buffers.
        let mut run_data: Vec<(u64, Vec<f64>)> = runs
            .iter()
            .map(|r| (r.start, vec![0.0; usize::try_from(r.len).expect("run len")]))
            .collect();
        for_each_index(&region, |idx| {
            let off = self.layout.offset_of(&self.dims, idx);
            store_into(&mut run_data, off, tile.get(idx));
        });
        let mut calls = 0u64;
        let retry = self.config.retry;
        for (start, buf) in &run_data {
            let store = &mut self.store;
            retry.run(&mut self.stats.retries, || store.write_run(*start, buf))?;
            calls += (buf.len() as u64).div_ceil(self.config.max_call_elems);
        }
        self.stats.writes += 1;
        self.stats.write_calls += calls;
        self.stats.write_elems += region.len() as u64;
        Ok(())
    }

    /// Reads one element (costing a full call) — convenience for tests.
    ///
    /// # Errors
    /// Propagates store errors.
    pub fn read_element(&mut self, idx: &[i64]) -> io::Result<f64> {
        let region = Region::new(idx.to_vec(), idx.to_vec());
        Ok(self.read_tile(&region)?.get(idx))
    }

    /// Direct whole-array initialization through the layout (costed as
    /// one sequential write sweep).
    ///
    /// # Errors
    /// Propagates store errors.
    pub fn initialize(&mut self, f: impl Fn(&[i64]) -> f64) -> io::Result<()> {
        let region = Region::full(&self.dims);
        let mut tile = Tile::zeroed(region.clone());
        for_each_index(&region, |idx| tile.set(idx, f(idx)));
        self.write_tile(&tile)
    }
}

/// Converts a run summary into an I/O cost under a call-size cap.
#[must_use]
pub fn summary_cost(s: RunSummary, max_call_elems: u64) -> IoCost {
    if s.elements == 0 {
        return IoCost {
            calls: 0,
            elements: 0,
            start_byte: 0,
            span_bytes: 0,
        };
    }
    // Average run length; long runs split into multiple calls. Splitting
    // is computed per average run, which is exact when runs are uniform
    // (rectangular tiles under linear layouts always are).
    let avg = (s.elements / s.runs).max(1);
    let calls_per_run = avg.div_ceil(max_call_elems);
    let rem = s.elements % s.runs;
    // Distribute the remainder conservatively: at most one extra call.
    let extra = u64::from(rem > 0 && (avg + 1).div_ceil(max_call_elems) > calls_per_run);
    IoCost {
        calls: s.runs * calls_per_run + extra,
        elements: s.elements,
        start_byte: s.min_start * ELEM_BYTES,
        span_bytes: (s.max_end - s.min_start) * ELEM_BYTES,
    }
}

fn for_each_index(region: &Region, mut f: impl FnMut(&[i64])) {
    if region.is_empty() {
        return;
    }
    let mut idx = region.lo.clone();
    loop {
        f(&idx);
        let mut d = region.rank();
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] <= region.hi[d] {
                break;
            }
            idx[d] = region.lo[d];
            if d == 0 {
                return;
            }
        }
    }
}

fn lookup(runs: &[(u64, Vec<f64>)], off: u64) -> f64 {
    let i = runs
        .partition_point(|(start, _)| *start <= off)
        .checked_sub(1)
        .expect("offset before first run");
    let (start, buf) = &runs[i];
    buf[usize::try_from(off - start).expect("in-run offset")]
}

fn store_into(runs: &mut [(u64, Vec<f64>)], off: u64, v: f64) {
    let i = runs
        .partition_point(|(start, _)| *start <= off)
        .checked_sub(1)
        .expect("offset before first run");
    let (start, buf) = &mut runs[i];
    buf[usize::try_from(off - *start).expect("in-run offset")] = v;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RuntimeConfig {
        RuntimeConfig {
            max_call_elems: 8,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn read_write_roundtrip_all_layouts() {
        for layout in [
            FileLayout::row_major(2),
            FileLayout::col_major(2),
            FileLayout::Hyperplane2D(1, 1),
            FileLayout::Hyperplane2D(1, -1),
            FileLayout::Blocked2D { br: 2, bc: 2 },
        ] {
            let mut a = OocArray::in_memory("A", &[4, 4], layout.clone());
            a.initialize(|idx| (idx[0] * 10 + idx[1]) as f64)
                .expect("init");
            let tile = a
                .read_tile(&Region::new(vec![2, 2], vec![3, 4]))
                .expect("read");
            assert_eq!(tile.get(&[2, 2]), 22.0, "{layout:?}");
            assert_eq!(tile.get(&[3, 4]), 34.0, "{layout:?}");

            // Modify and write back; re-read to verify.
            let mut tile = tile;
            tile.set(&[2, 3], -1.0);
            a.write_tile(&tile).expect("write");
            assert_eq!(a.read_element(&[2, 3]).expect("read"), -1.0, "{layout:?}");
            assert_eq!(a.read_element(&[2, 2]).expect("read"), 22.0, "{layout:?}");
        }
    }

    #[test]
    fn call_accounting_matches_figure3() {
        // 8x8 column-major array, memory tile 4x4 (Figure 3(a)): 4 calls.
        let mut a = OocArray::new(
            "V",
            &[8, 8],
            FileLayout::col_major(2),
            MemStore::new(64),
            small_config(),
        );
        a.reset_stats();
        let _ = a
            .read_tile(&Region::new(vec![1, 1], vec![4, 4]))
            .expect("read");
        assert_eq!(a.stats().read_calls, 4);

        // Figure 3(b): 2 full rows of a row-major array, max 8 elements
        // per call: a single 16-element run = 2 calls.
        let mut b = OocArray::new(
            "V",
            &[8, 8],
            FileLayout::row_major(2),
            MemStore::new(64),
            small_config(),
        );
        let _ = b
            .read_tile(&Region::new(vec![1, 1], vec![2, 8]))
            .expect("read");
        assert_eq!(b.stats().read_calls, 2);
    }

    #[test]
    fn io_cost_no_data_movement() {
        let a = OocArray::in_memory("A", &[8, 8], FileLayout::col_major(2));
        let c = a.io_cost(&Region::new(vec![1, 1], vec![4, 4]));
        assert_eq!(c.calls, 4);
        assert_eq!(c.elements, 16);
        // No stats recorded by io_cost.
        assert_eq!(a.stats(), IoStats::default());
    }

    #[test]
    fn stats_accumulate() {
        let mut a = OocArray::in_memory("A", &[4, 4], FileLayout::row_major(2));
        let t = a
            .read_tile(&Region::new(vec![1, 1], vec![2, 4]))
            .expect("r");
        a.write_tile(&t).expect("w");
        let s = a.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.read_elems, 8);
        assert_eq!(s.write_elems, 8);
        assert!(s.read_calls >= 1 && s.write_calls >= 1);
        assert_eq!(s.total_bytes(), 16 * 8);
    }

    #[test]
    fn out_of_bounds_regions_clamped() {
        let mut a = OocArray::in_memory("A", &[4, 4], FileLayout::row_major(2));
        let tile = a
            .read_tile(&Region::new(vec![3, 3], vec![9, 9]))
            .expect("r");
        assert_eq!(tile.region().len(), 4);
    }

    #[test]
    fn tile_indexing() {
        let mut t = Tile::zeroed(Region::new(vec![2, 3], vec![4, 5]));
        t.set(&[3, 4], 7.5);
        assert_eq!(t.get(&[3, 4]), 7.5);
        assert_eq!(t.get(&[2, 3]), 0.0);
        assert_eq!(t.data().len(), 9);
    }

    #[test]
    #[should_panic(expected = "outside tile")]
    fn tile_bounds_checked() {
        let t = Tile::zeroed(Region::new(vec![1, 1], vec![2, 2]));
        let _ = t.get(&[3, 1]);
    }

    #[test]
    fn summary_cost_call_splitting() {
        let s = RunSummary {
            runs: 2,
            elements: 32,
            min_start: 0,
            max_end: 40,
        };
        // Runs of 16, cap 8 -> 2 calls each.
        let c = summary_cost(s, 8);
        assert_eq!(c.calls, 4);
        assert_eq!(c.span_bytes, 320);
        // Cap large: 1 call per run.
        let c = summary_cost(s, 1000);
        assert_eq!(c.calls, 2);
    }

    #[test]
    fn three_d_array_tiles() {
        let mut a = OocArray::in_memory("B", &[3, 4, 5], FileLayout::row_major(3));
        a.initialize(|idx| (idx[0] * 100 + idx[1] * 10 + idx[2]) as f64)
            .expect("init");
        let t = a
            .read_tile(&Region::new(vec![2, 1, 1], vec![2, 4, 5]))
            .expect("read");
        assert_eq!(t.get(&[2, 3, 4]), 234.0);
        // A full [1,.,.] plane of a row-major 3-D array is contiguous.
        let cost = a.io_cost(&Region::new(vec![1, 1, 1], vec![1, 4, 5]));
        assert_eq!(cost.calls, 1);
    }
}
