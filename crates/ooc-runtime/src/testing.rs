//! Test plumbing for the instrumented store layer: self-cleaning
//! temporary directories and a [`Backend`] selector that builds
//! equivalent in-memory or on-disk stores, so differential tests can
//! run the same program against both and compare measured I/O.

use crate::store::{FileStore, MemStore, Store};
use crate::striped::{IoNodePool, StripedStore};
use crate::trace::{TraceHandle, TracingStore};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A traced, striped, sendable store as built by
/// [`Backend::open_striped_traced`].
pub type TracedStriped = TracingStore<StripedStore<Box<dyn Store + Send>>>;

/// A process-unique temporary directory removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `$TMPDIR/<prefix>-<pid>-<n>`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn new(prefix: &str) -> io::Result<Self> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Which concrete [`Store`] a test run should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// [`MemStore`]: fast, deterministic.
    Mem,
    /// [`FileStore`]: real files under a test directory.
    File,
}

impl Backend {
    /// Both backends, for exhaustive differential sweeps.
    pub const ALL: [Backend; 2] = [Backend::Mem, Backend::File];

    /// Short name for test diagnostics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Backend::Mem => "mem",
            Backend::File => "file",
        }
    }

    /// Builds a zeroed store of `len` elements. File-backed stores
    /// live at `dir/<name>.dat`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open(self, dir: &Path, name: &str, len: u64) -> io::Result<Box<dyn Store>> {
        match self {
            Backend::Mem => Ok(Box::new(MemStore::new(len))),
            Backend::File => Ok(Box::new(FileStore::create(
                &dir.join(format!("{name}.dat")),
                len,
            )?)),
        }
    }

    /// Like [`Backend::open`], wrapped in a [`TracingStore`]; the
    /// returned handle observes the store after it moves into an array.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open_traced(
        self,
        dir: &Path,
        name: &str,
        len: u64,
    ) -> io::Result<(TracingStore<Box<dyn Store>>, TraceHandle)> {
        let store = TracingStore::new(self.open(dir, name, len)?);
        let trace = store.trace();
        Ok((store, trace))
    }

    /// Like [`Backend::open`], but the trait object is `Send` so the
    /// store can cross into pipeline worker threads (behind a
    /// [`SharedStore`](crate::shared::SharedStore)).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open_sendable(
        self,
        dir: &Path,
        name: &str,
        len: u64,
    ) -> io::Result<Box<dyn Store + Send>> {
        match self {
            Backend::Mem => Ok(Box::new(MemStore::new(len))),
            Backend::File => Ok(Box::new(FileStore::create(
                &dir.join(format!("{name}.dat")),
                len,
            )?)),
        }
    }

    /// Like [`Backend::open_sendable`], wrapped in a [`TracingStore`]
    /// so pipelined differential tests observe measured I/O across
    /// threads.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open_traced_send(
        self,
        dir: &Path,
        name: &str,
        len: u64,
    ) -> io::Result<(TracingStore<Box<dyn Store + Send>>, TraceHandle)> {
        let store = TracingStore::new(self.open_sendable(dir, name, len)?);
        let trace = store.trace();
        Ok((store, trace))
    }

    /// Builds a [`StripedStore`] over this backend: one part store per
    /// I/O node of `pool` (file parts at `dir/<name>.n<k>.dat`),
    /// routed through the pool's FIFO lanes.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open_striped(
        self,
        dir: &Path,
        name: &str,
        len: u64,
        pool: &IoNodePool,
    ) -> io::Result<StripedStore<Box<dyn Store + Send>>> {
        StripedStore::build(pool, len, |node, part_len| {
            self.open_sendable(dir, &format!("{name}.n{node}"), part_len)
        })
    }

    /// Like [`Backend::open_striped`], wrapped in a [`TracingStore`]
    /// so differential tests see the array's measured store-level I/O
    /// alongside the pool's per-node statistics.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open_striped_traced(
        self,
        dir: &Path,
        name: &str,
        len: u64,
        pool: &IoNodePool,
    ) -> io::Result<(TracedStriped, TraceHandle)> {
        let store = TracingStore::new(self.open_striped(dir, name, len, pool)?);
        let trace = store.trace();
        Ok((store, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_is_unique_and_cleaned() {
        let p1;
        {
            let d1 = TempDir::new("ooc-testing").expect("mk");
            let d2 = TempDir::new("ooc-testing").expect("mk");
            assert_ne!(d1.path(), d2.path());
            assert!(d1.path().is_dir());
            p1 = d1.path().to_path_buf();
        }
        assert!(!p1.exists(), "dropped TempDir is removed");
    }

    #[test]
    fn backends_are_equivalent_and_traceable() {
        let dir = TempDir::new("ooc-backend").expect("mk");
        for backend in Backend::ALL {
            let (mut store, trace) = backend.open_traced(dir.path(), "arr", 16).expect("open");
            assert_eq!(store.len(), 16);
            store.write_run(3, &[1.5, 2.5]).expect("write");
            let mut buf = [0.0; 2];
            store.read_run(3, &mut buf).expect("read");
            assert_eq!(buf, [1.5, 2.5], "{} backend roundtrip", backend.label());
            let m = trace.snapshot();
            assert_eq!(m.write_calls, 1);
            assert_eq!(m.read_calls, 1);
        }
    }
}
