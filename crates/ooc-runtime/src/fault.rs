//! Deterministic fault injection: [`FaultStore`] makes a fraction of
//! store calls fail with *transient* [`io::Error`]s (kind
//! [`io::ErrorKind::Interrupted`]), driven by a seeded PRNG so every
//! failure sequence replays exactly.
//!
//! Paired with the retry policy in
//! [`RuntimeConfig`](crate::array::RuntimeConfig), this proves the
//! runtime's read/write paths survive flaky backing storage without
//! changing results — the robustness half of the instrumented store
//! layer.
//!
//! Determinism is **per (store, call index)**, not per global call
//! order: each store (one per array) numbers its own calls, and the
//! raw fail/pass decision for call `k` is a pure hash of
//! `(seed, k)` — see [`FaultStore::would_fail_at`]. Concurrent callers
//! (prefetch workers hammering several arrays at once) therefore
//! observe exactly the same injected-fault schedule per array as a
//! single-threaded run, regardless of how the threads interleave.
//! An earlier revision walked one xorshift state per *draw*, which
//! made each decision a function of the whole draw history threaded
//! through the shared state — impossible to replay or predict for one
//! call in isolation once callers interleave.
//!
//! Beyond transients, [`CrashMode`] models *hard* process death at a
//! chosen per-store call index: `CrashAt` makes that call and every
//! later one fail with a permanent [`CrashedError`], and `TornWrite`
//! additionally lands a prefix of the dying write — the torn-page
//! hazard checksums and the write intent journal exist to catch.
//! Crash decisions are pure functions of the call index too, so the
//! deterministic-replay guarantee is unchanged: the transient
//! schedule below the crash point is exactly the capped
//! [`fault_plan`] schedule.

use crate::store::Store;
use crate::trace::MeasuredIo;
use std::collections::BTreeMap;
use std::io;
use std::sync::{Arc, Mutex};

/// A simulated *hard* crash, as opposed to the transient failures a
/// retry loop can ride out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashMode {
    /// No crash; only transient faults (the pre-crash default).
    #[default]
    None,
    /// Store call number `0` (this store's own counter) fails
    /// permanently at the given index; every later call fails too —
    /// the process is "dead" from that point on.
    CrashAt(u64),
    /// Like [`CrashMode::CrashAt`], but if the dying call is a write,
    /// a prefix of the buffer (`frac_per_mille`/1000 of its elements)
    /// lands in the backing store first — a torn write.
    TornWrite {
        /// Call index at which the crash fires.
        at: u64,
        /// Fraction of the dying write that lands, in parts per 1000.
        frac_per_mille: u32,
    },
}

impl CrashMode {
    /// The call index at which this mode crashes, if any.
    #[must_use]
    pub fn crash_index(&self) -> Option<u64> {
        match self {
            CrashMode::None => None,
            CrashMode::CrashAt(at) | CrashMode::TornWrite { at, .. } => Some(*at),
        }
    }
}

/// Configuration of a [`FaultStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// PRNG seed; equal seeds give identical failure sequences.
    pub seed: u64,
    /// Probability of failing a call, in parts per 1000.
    pub fail_per_mille: u32,
    /// Total failures to inject before going permanently quiet
    /// (`u64::MAX` = unbounded).
    pub max_faults: u64,
    /// Cap on back-to-back failures, so a bounded retry loop always
    /// makes progress.
    pub max_consecutive: u32,
    /// Hard-crash injection on top of the transient schedule.
    pub crash: CrashMode,
}

impl FaultConfig {
    /// Fails roughly `per_mille`/1000 of calls under `seed`.
    #[must_use]
    pub fn transient(seed: u64, per_mille: u32) -> Self {
        FaultConfig {
            seed,
            fail_per_mille: per_mille,
            max_faults: u64::MAX,
            max_consecutive: 2,
            crash: CrashMode::None,
        }
    }

    /// Injects exactly `n` failures (spread by `seed`), then stops.
    #[must_use]
    pub fn first_n(seed: u64, n: u64) -> Self {
        FaultConfig {
            seed,
            fail_per_mille: 333,
            max_faults: n,
            max_consecutive: 1,
            crash: CrashMode::None,
        }
    }

    /// No transient faults; hard crash at store call `at`.
    #[must_use]
    pub fn crash_at(at: u64) -> Self {
        FaultConfig::transient(0, 0).with_crash(CrashMode::CrashAt(at))
    }

    /// No transient faults; torn write landing `frac_per_mille`/1000
    /// of the dying write at store call `at`.
    #[must_use]
    pub fn torn_write(at: u64, frac_per_mille: u32) -> Self {
        FaultConfig::transient(0, 0).with_crash(CrashMode::TornWrite { at, frac_per_mille })
    }

    /// This config with its crash mode replaced.
    #[must_use]
    pub fn with_crash(mut self, crash: CrashMode) -> Self {
        self.crash = crash;
        self
    }
}

/// The payload of a crash-injected [`io::Error`] — kind
/// [`io::ErrorKind::Other`], never matched by the transient retry
/// predicate.
#[derive(Debug)]
pub struct CrashedError {
    /// The store-call index the crash fired at.
    pub call: u64,
    /// Whether a torn prefix of the dying write landed.
    pub torn: bool,
}

impl std::fmt::Display for CrashedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected crash at store call {}{}",
            self.call,
            if self.torn { " (torn write)" } else { "" }
        )
    }
}

impl std::error::Error for CrashedError {}

/// Whether `e` is an injected crash (see [`CrashMode`]).
#[must_use]
pub fn is_crashed(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<CrashedError>())
}

/// Per-node fault injection for an
/// [`IoNodePool`](crate::striped::IoNodePool): *permanent* node death
/// and *gray* slowdown, the two failure modes [`CrashMode`] cannot
/// express (a crash kills the process; these kill or degrade one
/// storage node while the run keeps going).
///
/// Like the transient schedule, injection is deterministic and
/// replayable: each lane numbers its own arrivals, and node `n` dies
/// at *its* call number `down_at[n]` regardless of which thread (or
/// which logical segment) happens to be that arrival. At a fixed
/// shard count the set of calls reaching each node is deterministic,
/// so `permanent_fail_at(n, 0)` — dead from the start — reproduces
/// exact repair-traffic counts run over run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeFaultConfig {
    /// Node → per-node arrival index at which the node dies and stays
    /// dead (every call from that index on fails with
    /// [`NodeDownError`]).
    pub down_at: BTreeMap<usize, u64>,
    /// Node → extra nanoseconds of injected service time per call — a
    /// gray straggler that still answers, just slowly.
    pub slow_ns: BTreeMap<usize, u64>,
}

impl NodeFaultConfig {
    /// No injected node faults.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// This config with node `node` dying permanently at its `call`-th
    /// arrival (0 = dead before the run starts).
    #[must_use]
    pub fn permanent_fail_at(mut self, node: usize, call: u64) -> Self {
        self.down_at.insert(node, call);
        self
    }

    /// This config with node `node` serving every call `delay_ns`
    /// nanoseconds late.
    #[must_use]
    pub fn slow_node(mut self, node: usize, delay_ns: u64) -> Self {
        self.slow_ns.insert(node, delay_ns);
        self
    }

    /// A seeded single-node kill: derives `(node, call)` from the same
    /// splitmix-style hash the transient schedule uses, so fault
    /// sweeps can scatter kill points deterministically.
    #[must_use]
    pub fn seeded_kill(seed: u64, nodes: usize, max_call: u64) -> Self {
        let h = |salt: u64| {
            let mut x = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9))
                | 1;
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            x
        };
        let node = usize::try_from(h(1) % nodes.max(1) as u64).expect("node fits usize");
        let call = h(2) % max_call.max(1);
        Self::new().permanent_fail_at(node, call)
    }

    /// `true` when no faults are configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.down_at.is_empty() && self.slow_ns.is_empty()
    }
}

/// The payload of a dead-node [`io::Error`]: node `node` failed
/// permanently at its own call number `call` (injected or declared
/// via quarantine). Never matched by the transient retry predicate.
#[derive(Debug)]
pub struct NodeDownError {
    /// The dead I/O node.
    pub node: usize,
    /// The per-node arrival index the death fired at.
    pub call: u64,
}

impl std::fmt::Display for NodeDownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "I/O node {} down (at node call {})",
            self.node, self.call
        )
    }
}

impl std::error::Error for NodeDownError {}

/// The payload of a lane-deadline [`io::Error`]: node `node` did not
/// grant service within the caller's deadline — a straggler signal,
/// not a death sentence. Distinct from both transient faults and
/// [`NodeDownError`].
#[derive(Debug)]
pub struct NodeSlowError {
    /// The slow I/O node.
    pub node: usize,
    /// Nanoseconds the caller waited before giving up.
    pub waited_ns: u64,
}

impl std::fmt::Display for NodeSlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "I/O node {} missed its service deadline after {} ns",
            self.node, self.waited_ns
        )
    }
}

impl std::error::Error for NodeSlowError {}

/// Whether `e` is a dead-node error (see [`NodeDownError`]).
#[must_use]
pub fn is_node_down(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<NodeDownError>())
}

/// The dead-node payload of `e`, if any.
#[must_use]
pub fn node_down(e: &io::Error) -> Option<&NodeDownError> {
    e.get_ref().and_then(|inner| inner.downcast_ref())
}

/// Whether `e` is a lane-deadline timeout (see [`NodeSlowError`]).
#[must_use]
pub fn is_node_slow(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<NodeSlowError>())
}

/// A dead-node [`io::Error`] for node `node` at per-node call `call`.
#[must_use]
pub fn node_down_error(node: usize, call: u64) -> io::Error {
    io::Error::other(NodeDownError { node, call })
}

/// A lane-deadline [`io::Error`] for node `node` after waiting
/// `waited_ns` nanoseconds.
#[must_use]
pub fn node_slow_error(node: usize, waited_ns: u64) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, NodeSlowError { node, waited_ns })
}

#[derive(Debug)]
struct FaultState {
    /// Index the next call will be assigned (per-store counter).
    next_call: u64,
    injected: u64,
    consecutive: u32,
    /// Sticky once the crash index is reached.
    crashed: bool,
}

/// What a single store call does under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Roll {
    Pass,
    Transient,
    Crash {
        index: u64,
        /// `Some(frac_per_mille)` when a torn prefix should land.
        torn: Option<u32>,
    },
}

/// A [`Store`] wrapper injecting seeded transient failures.
#[derive(Debug)]
pub struct FaultStore<S> {
    inner: S,
    config: FaultConfig,
    state: Arc<Mutex<FaultState>>,
}

/// A cheap shared handle counting the failures a [`FaultStore`] has
/// injected so far.
#[derive(Debug, Clone)]
pub struct FaultHandle(Arc<Mutex<FaultState>>);

impl FaultHandle {
    /// Failures injected so far.
    ///
    /// # Panics
    /// Panics if the fault mutex was poisoned.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.0.lock().expect("fault lock").injected
    }

    /// Store calls attempted so far (including failed ones) — the
    /// per-store call-index space crash points are expressed in.
    ///
    /// # Panics
    /// Panics if the fault mutex was poisoned.
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.0.lock().expect("fault lock").next_call
    }

    /// Whether the crash point has fired.
    ///
    /// # Panics
    /// Panics if the fault mutex was poisoned.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.0.lock().expect("fault lock").crashed
    }
}

impl<S: Store> FaultStore<S> {
    /// Wraps `inner` under `config`.
    #[must_use]
    pub fn new(inner: S, config: FaultConfig) -> Self {
        FaultStore {
            inner,
            config,
            state: Arc::new(Mutex::new(FaultState {
                next_call: 0,
                injected: 0,
                consecutive: 0,
                crashed: false,
            })),
        }
    }

    /// A shared handle onto the injection counter.
    #[must_use]
    pub fn handle(&self) -> FaultHandle {
        FaultHandle(Arc::clone(&self.state))
    }

    /// Failures injected so far.
    ///
    /// # Panics
    /// Panics if the fault mutex was poisoned.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.state.lock().expect("fault lock").injected
    }

    /// Unwraps the backing store.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Whether this store's call number `index` fails, as a pure
    /// function of `(config, index)` — the full capped schedule is
    /// replayed from 0, so the answer is independent of when (or from
    /// which thread) the call actually arrives. Covers both the
    /// transient schedule and the crash point.
    #[must_use]
    pub fn would_fail_at(&self, index: u64) -> bool {
        if self
            .config
            .crash
            .crash_index()
            .is_some_and(|at| index >= at)
        {
            return true;
        }
        fault_plan(&self.config, index + 1)
            .last()
            .copied()
            .unwrap_or(false)
    }

    /// Decides (and records) what the next call does. The lock only
    /// serializes the per-store call counter and the running caps;
    /// the underlying decisions are pure functions of the index —
    /// [`raw_fault`] for transients, [`CrashMode::crash_index`] for
    /// the crash point.
    fn roll(&self) -> Roll {
        let mut s = self.state.lock().expect("fault lock");
        let index = s.next_call;
        s.next_call += 1;
        if s.crashed {
            return Roll::Crash { index, torn: None };
        }
        if let Some(at) = self.config.crash.crash_index() {
            if index >= at {
                s.crashed = true;
                s.injected += 1;
                let torn = match self.config.crash {
                    CrashMode::TornWrite { frac_per_mille, .. } if index == at => {
                        Some(frac_per_mille)
                    }
                    _ => None,
                };
                return Roll::Crash { index, torn };
            }
        }
        let fail = raw_fault(&self.config, index)
            && s.injected < self.config.max_faults
            && s.consecutive < self.config.max_consecutive;
        if fail {
            s.injected += 1;
            s.consecutive += 1;
            Roll::Transient
        } else {
            s.consecutive = 0;
            Roll::Pass
        }
    }

    fn transient_error() -> io::Error {
        io::Error::new(io::ErrorKind::Interrupted, "injected transient I/O failure")
    }

    fn crashed_error(index: u64, torn: bool) -> io::Error {
        io::Error::other(CrashedError { call: index, torn })
    }
}

/// The raw (uncapped) fail decision for call `index` under `config`:
/// a stateless splitmix64-style hash of `(seed, index)`. Every capped
/// decision derives from these, so the whole schedule is a pure
/// function of the per-store call index.
#[must_use]
pub fn raw_fault(config: &FaultConfig, index: u64) -> bool {
    let mut x = config
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        | 1;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x % 1000 < u64::from(config.fail_per_mille)
}

/// The capped fail/pass schedule for the first `calls` calls of a
/// store under `config` — exactly what a [`FaultStore`] with that
/// config injects, whatever the caller interleaving. Regression tests
/// compare concurrent observations against this plan.
#[must_use]
pub fn fault_plan(config: &FaultConfig, calls: u64) -> Vec<bool> {
    let mut plan = Vec::with_capacity(usize::try_from(calls).unwrap_or(0));
    let (mut injected, mut consecutive) = (0u64, 0u32);
    for index in 0..calls {
        let fail = raw_fault(config, index)
            && injected < config.max_faults
            && consecutive < config.max_consecutive;
        if fail {
            injected += 1;
            consecutive += 1;
        } else {
            consecutive = 0;
        }
        plan.push(fail);
    }
    plan
}

impl<S: Store> Store for FaultStore<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_run(&self, offset: u64, buf: &mut [f64]) -> io::Result<()> {
        match self.roll() {
            Roll::Pass => self.inner.read_run(offset, buf),
            Roll::Transient => Err(Self::transient_error()),
            Roll::Crash { index, .. } => Err(Self::crashed_error(index, false)),
        }
    }

    fn write_run(&mut self, offset: u64, buf: &[f64]) -> io::Result<()> {
        match self.roll() {
            Roll::Pass => self.inner.write_run(offset, buf),
            Roll::Transient => Err(Self::transient_error()),
            Roll::Crash { index, torn } => {
                if let Some(frac) = torn {
                    // A torn write: the head of the buffer lands, the
                    // tail is lost, and the caller sees the crash.
                    let keep = (buf.len() as u64 * u64::from(frac.min(1000)) / 1000) as usize;
                    if keep > 0 {
                        let _ = self.inner.write_run(offset, &buf[..keep]);
                    }
                }
                Err(Self::crashed_error(index, torn.is_some()))
            }
        }
    }

    fn reset_metrics(&mut self) {
        self.inner.reset_metrics();
    }

    fn metrics(&self) -> Option<MeasuredIo> {
        self.inner.metrics()
    }

    fn access_log(&self) -> Option<Vec<crate::profile::AccessRecord>> {
        self.inner.access_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    #[test]
    fn deterministic_for_equal_seeds() {
        let run = |seed: u64| -> Vec<bool> {
            let s = FaultStore::new(MemStore::new(8), FaultConfig::transient(seed, 300));
            (0..100)
                .map(|_| {
                    let mut buf = [0.0; 1];
                    s.read_run(0, &mut buf).is_err()
                })
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds must differ");
    }

    #[test]
    fn respects_max_faults_and_consecutive_cap() {
        let mut s = FaultStore::new(MemStore::new(8), FaultConfig::first_n(7, 3));
        let mut failures = 0;
        let mut consecutive: u32 = 0;
        for i in 0..200u64 {
            let r = s.write_run(i % 4, &[1.0]);
            if r.is_err() {
                failures += 1;
                consecutive += 1;
                assert!(consecutive <= 1, "max_consecutive=1 violated");
            } else {
                consecutive = 0;
            }
        }
        assert_eq!(failures, 3, "exactly max_faults injected");
        assert_eq!(s.injected(), 3);
        assert_eq!(s.handle().injected(), 3);
    }

    #[test]
    fn failures_are_transient_and_side_effect_free() {
        let mut s = FaultStore::new(MemStore::new(4), FaultConfig::first_n(1, 1));
        // Drive calls until the single failure fires; retrying the same
        // write must then succeed and take effect.
        let mut failed_once = false;
        for _ in 0..50 {
            match s.write_run(0, &[9.0]) {
                Ok(()) => {}
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::Interrupted);
                    failed_once = true;
                    s.write_run(0, &[9.0]).expect("retry succeeds");
                }
            }
        }
        assert!(failed_once, "the injected failure fired");
        let mut buf = [0.0; 1];
        s.read_run(0, &mut buf).expect("read");
        assert_eq!(buf[0], 9.0);
    }

    #[test]
    fn would_fail_at_matches_observed_schedule() {
        let config = FaultConfig::transient(99, 250);
        let s = FaultStore::new(MemStore::new(8), config);
        let plan = fault_plan(&config, 64);
        for (k, planned) in plan.iter().enumerate() {
            assert_eq!(
                s.would_fail_at(k as u64),
                *planned,
                "plan/replay disagree at call {k}"
            );
            let mut buf = [0.0; 1];
            let observed = s.read_run(0, &mut buf).is_err();
            assert_eq!(observed, *planned, "live call {k} diverged from plan");
        }
    }

    #[test]
    fn per_store_schedule_survives_concurrent_callers() {
        // Two stores under the same config: one hammered from four
        // threads, one driven sequentially. Each store numbers its own
        // calls, so the *set* of injected faults must match the pure
        // plan exactly — thread interleaving only changes which caller
        // observes a given failure, never how many fire or when (by
        // call index) they fire.
        let config = FaultConfig::transient(7, 300);
        let calls_per_thread = 64u64;
        let threads = 4u64;
        let total = calls_per_thread * threads;

        let concurrent = FaultStore::new(MemStore::new(8), config);
        let failures = Mutex::new(0u64);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local = 0u64;
                    for _ in 0..calls_per_thread {
                        let mut buf = [0.0; 1];
                        if concurrent.read_run(0, &mut buf).is_err() {
                            local += 1;
                        }
                    }
                    *failures.lock().expect("count lock") += local;
                });
            }
        });

        let planned: u64 = fault_plan(&config, total).iter().filter(|&&f| f).count() as u64;
        assert!(planned > 0, "config must actually inject");
        assert_eq!(*failures.lock().expect("count lock"), planned);
        assert_eq!(concurrent.injected(), planned);

        // And the sequential twin sees the identical schedule.
        let sequential = FaultStore::new(MemStore::new(8), config);
        let observed: Vec<bool> = (0..total)
            .map(|_| {
                let mut buf = [0.0; 1];
                sequential.read_run(0, &mut buf).is_err()
            })
            .collect();
        assert_eq!(observed, fault_plan(&config, total));
    }

    #[test]
    fn crash_at_is_sticky_and_not_transient() {
        let mut s = FaultStore::new(MemStore::new(8), FaultConfig::crash_at(3));
        let mut buf = [0.0; 1];
        for k in 0..3u64 {
            s.read_run(k % 4, &mut buf).expect("pre-crash calls pass");
        }
        let e = s.write_run(0, &[1.0]).expect_err("call 3 crashes");
        assert!(is_crashed(&e), "typed crash payload");
        assert!(
            !crate::array::RetryPolicy::is_transient(&e),
            "crashes must not be retried"
        );
        // Dead forever: every later call fails too.
        for _ in 0..5 {
            let e = s.read_run(0, &mut buf).expect_err("dead store");
            assert!(is_crashed(&e));
        }
        assert!(s.handle().crashed());
        assert_eq!(s.handle().calls(), 9);
        // The dying (non-torn) write left no trace.
        let fresh = FaultStore::new(MemStore::new(8), FaultConfig::transient(0, 0));
        fresh.read_run(0, &mut buf).expect("read");
        assert_eq!(buf[0], 0.0);
    }

    #[test]
    fn torn_write_lands_a_prefix() {
        let mut s = FaultStore::new(MemStore::new(8), FaultConfig::torn_write(0, 500));
        let e = s
            .write_run(0, &[1.0, 2.0, 3.0, 4.0])
            .expect_err("call 0 crashes");
        assert!(is_crashed(&e));
        assert!(e.to_string().contains("torn write"));
        // Half the buffer landed before the crash.
        let inner = s.into_inner();
        let mut buf = [0.0; 4];
        inner.read_run(0, &mut buf).expect("read inner");
        assert_eq!(buf, [1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn crash_keeps_transient_schedule_below_crash_point() {
        // The same seeded transient schedule replays identically with
        // and without a crash bolted on — determinism satellite.
        let plain = FaultConfig::transient(11, 300);
        let crashing = plain.with_crash(CrashMode::CrashAt(40));
        let plan = fault_plan(&plain, 40);
        let s = FaultStore::new(MemStore::new(8), crashing);
        let mut buf = [0.0; 1];
        for (k, planned) in plan.iter().enumerate() {
            assert_eq!(s.would_fail_at(k as u64), *planned, "plan at {k}");
            let r = s.read_run(0, &mut buf);
            match r {
                Ok(()) => assert!(!planned, "call {k} passed but plan says fail"),
                Err(e) => {
                    assert!(planned, "call {k} failed but plan says pass");
                    assert!(
                        !is_crashed(&e),
                        "below the crash point faults are transient"
                    );
                }
            }
        }
        assert!(s.would_fail_at(40), "crash point fails");
        let e = s.read_run(0, &mut buf).expect_err("call 40 crashes");
        assert!(is_crashed(&e));
    }

    #[test]
    fn node_fault_errors_are_typed_and_not_transient() {
        let down = io::Error::other(NodeDownError { node: 2, call: 17 });
        assert!(is_node_down(&down));
        assert!(!is_node_slow(&down));
        assert!(!is_crashed(&down));
        assert!(!crate::array::RetryPolicy::is_transient(&down));
        assert_eq!(node_down(&down).expect("payload").node, 2);
        assert_eq!(node_down(&down).expect("payload").call, 17);

        let slow = io::Error::new(
            io::ErrorKind::TimedOut,
            NodeSlowError {
                node: 1,
                waited_ns: 5_000,
            },
        );
        assert!(is_node_slow(&slow));
        assert!(!is_node_down(&slow));
        assert!(!crate::array::RetryPolicy::is_transient(&slow));
        assert!(slow.to_string().contains("node 1"));
    }

    #[test]
    fn node_fault_config_builders_compose() {
        let cfg = NodeFaultConfig::new()
            .permanent_fail_at(3, 40)
            .slow_node(1, 2_000);
        assert_eq!(cfg.down_at.get(&3), Some(&40));
        assert_eq!(cfg.slow_ns.get(&1), Some(&2_000));
        assert!(!cfg.is_empty());
        assert!(NodeFaultConfig::new().is_empty());
    }

    #[test]
    fn seeded_kill_is_deterministic_and_in_range() {
        let a = NodeFaultConfig::seeded_kill(9, 4, 100);
        let b = NodeFaultConfig::seeded_kill(9, 4, 100);
        assert_eq!(a, b, "equal seeds give equal kills");
        let (&node, &call) = a.down_at.iter().next().expect("one kill");
        assert!(node < 4);
        assert!(call < 100);
        let c = NodeFaultConfig::seeded_kill(10, 4, 100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn zero_rate_never_fails() {
        let s = FaultStore::new(MemStore::new(8), FaultConfig::transient(1, 0));
        for _ in 0..100 {
            let mut buf = [0.0; 2];
            s.read_run(0, &mut buf).expect("no faults at rate 0");
        }
        assert_eq!(s.injected(), 0);
    }
}
