//! Deterministic fault injection: [`FaultStore`] makes a fraction of
//! store calls fail with *transient* [`io::Error`]s (kind
//! [`io::ErrorKind::Interrupted`]), driven by a seeded PRNG so every
//! failure sequence replays exactly.
//!
//! Paired with the retry policy in
//! [`RuntimeConfig`](crate::array::RuntimeConfig), this proves the
//! runtime's read/write paths survive flaky backing storage without
//! changing results — the robustness half of the instrumented store
//! layer.

use crate::store::Store;
use crate::trace::MeasuredIo;
use std::io;
use std::sync::{Arc, Mutex};

/// Configuration of a [`FaultStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// PRNG seed; equal seeds give identical failure sequences.
    pub seed: u64,
    /// Probability of failing a call, in parts per 1000.
    pub fail_per_mille: u32,
    /// Total failures to inject before going permanently quiet
    /// (`u64::MAX` = unbounded).
    pub max_faults: u64,
    /// Cap on back-to-back failures, so a bounded retry loop always
    /// makes progress.
    pub max_consecutive: u32,
}

impl FaultConfig {
    /// Fails roughly `per_mille`/1000 of calls under `seed`.
    #[must_use]
    pub fn transient(seed: u64, per_mille: u32) -> Self {
        FaultConfig {
            seed,
            fail_per_mille: per_mille,
            max_faults: u64::MAX,
            max_consecutive: 2,
        }
    }

    /// Injects exactly `n` failures (spread by `seed`), then stops.
    #[must_use]
    pub fn first_n(seed: u64, n: u64) -> Self {
        FaultConfig {
            seed,
            fail_per_mille: 333,
            max_faults: n,
            max_consecutive: 1,
        }
    }
}

#[derive(Debug)]
struct FaultState {
    rng: u64,
    injected: u64,
    consecutive: u32,
}

/// A [`Store`] wrapper injecting seeded transient failures.
#[derive(Debug)]
pub struct FaultStore<S> {
    inner: S,
    config: FaultConfig,
    state: Arc<Mutex<FaultState>>,
}

/// A cheap shared handle counting the failures a [`FaultStore`] has
/// injected so far.
#[derive(Debug, Clone)]
pub struct FaultHandle(Arc<Mutex<FaultState>>);

impl FaultHandle {
    /// Failures injected so far.
    ///
    /// # Panics
    /// Panics if the fault mutex was poisoned.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.0.lock().expect("fault lock").injected
    }
}

impl<S: Store> FaultStore<S> {
    /// Wraps `inner` under `config`.
    #[must_use]
    pub fn new(inner: S, config: FaultConfig) -> Self {
        FaultStore {
            inner,
            config,
            state: Arc::new(Mutex::new(FaultState {
                // Scrambled so nearby seeds give unrelated sequences
                // (`seed | 1` alone maps 42 and 43 to the same state).
                rng: config.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
                injected: 0,
                consecutive: 0,
            })),
        }
    }

    /// A shared handle onto the injection counter.
    #[must_use]
    pub fn handle(&self) -> FaultHandle {
        FaultHandle(Arc::clone(&self.state))
    }

    /// Failures injected so far.
    ///
    /// # Panics
    /// Panics if the fault mutex was poisoned.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.state.lock().expect("fault lock").injected
    }

    /// Unwraps the backing store.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Decides (and records) whether the next call fails.
    fn roll(&self) -> bool {
        let mut s = self.state.lock().expect("fault lock");
        // xorshift64*.
        let mut x = s.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        s.rng = x;
        let draw = x.wrapping_mul(0x2545_f491_4f6c_dd1d) % 1000;
        let fail = draw < u64::from(self.config.fail_per_mille)
            && s.injected < self.config.max_faults
            && s.consecutive < self.config.max_consecutive;
        if fail {
            s.injected += 1;
            s.consecutive += 1;
        } else {
            s.consecutive = 0;
        }
        fail
    }

    fn transient_error() -> io::Error {
        io::Error::new(io::ErrorKind::Interrupted, "injected transient I/O failure")
    }
}

impl<S: Store> Store for FaultStore<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_run(&self, offset: u64, buf: &mut [f64]) -> io::Result<()> {
        if self.roll() {
            return Err(Self::transient_error());
        }
        self.inner.read_run(offset, buf)
    }

    fn write_run(&mut self, offset: u64, buf: &[f64]) -> io::Result<()> {
        if self.roll() {
            return Err(Self::transient_error());
        }
        self.inner.write_run(offset, buf)
    }

    fn reset_metrics(&mut self) {
        self.inner.reset_metrics();
    }

    fn metrics(&self) -> Option<MeasuredIo> {
        self.inner.metrics()
    }

    fn access_log(&self) -> Option<Vec<crate::profile::AccessRecord>> {
        self.inner.access_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    #[test]
    fn deterministic_for_equal_seeds() {
        let run = |seed: u64| -> Vec<bool> {
            let s = FaultStore::new(MemStore::new(8), FaultConfig::transient(seed, 300));
            (0..100)
                .map(|_| {
                    let mut buf = [0.0; 1];
                    s.read_run(0, &mut buf).is_err()
                })
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds must differ");
    }

    #[test]
    fn respects_max_faults_and_consecutive_cap() {
        let mut s = FaultStore::new(MemStore::new(8), FaultConfig::first_n(7, 3));
        let mut failures = 0;
        let mut consecutive: u32 = 0;
        for i in 0..200u64 {
            let r = s.write_run(i % 4, &[1.0]);
            if r.is_err() {
                failures += 1;
                consecutive += 1;
                assert!(consecutive <= 1, "max_consecutive=1 violated");
            } else {
                consecutive = 0;
            }
        }
        assert_eq!(failures, 3, "exactly max_faults injected");
        assert_eq!(s.injected(), 3);
        assert_eq!(s.handle().injected(), 3);
    }

    #[test]
    fn failures_are_transient_and_side_effect_free() {
        let mut s = FaultStore::new(MemStore::new(4), FaultConfig::first_n(1, 1));
        // Drive calls until the single failure fires; retrying the same
        // write must then succeed and take effect.
        let mut failed_once = false;
        for _ in 0..50 {
            match s.write_run(0, &[9.0]) {
                Ok(()) => {}
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::Interrupted);
                    failed_once = true;
                    s.write_run(0, &[9.0]).expect("retry succeeds");
                }
            }
        }
        assert!(failed_once, "the injected failure fired");
        let mut buf = [0.0; 1];
        s.read_run(0, &mut buf).expect("read");
        assert_eq!(buf[0], 9.0);
    }

    #[test]
    fn zero_rate_never_fails() {
        let s = FaultStore::new(MemStore::new(8), FaultConfig::transient(1, 0));
        for _ in 0..100 {
            let mut buf = [0.0; 2];
            s.read_run(0, &mut buf).expect("no faults at rate 0");
        }
        assert_eq!(s.injected(), 0);
    }
}
