//! The I/O provenance ledger: every read/write of a run, classified
//! by **cause** and attributed to its source-level identity.
//!
//! The totals layer ([`IoStats`], [`MeasuredIo`](crate::MeasuredIo))
//! can say a run moved fewer bytes; the ledger says **why**: which
//! tiles were re-read because the cache evicted them
//! ([`IoCause::CapacityMiss`], with the evicting step and the Belady
//! next-use distance at eviction), which prefetches were delivered
//! but never consumed ([`IoCause::PrefetchWasted`]), which writes
//! were recovery replays ([`IoCause::ReplayWrite`]).
//!
//! The headline invariant mirrors the wall-clock blame waterfall:
//! the ledger is a **conserving partition**. Per array, the sum of
//! read-side cause buckets equals the analytic read totals exactly,
//! and likewise for writes — enforced by construction (executors emit
//! exactly one event per accounted transfer, with the same
//! run-splitting arithmetic via `OocArray::exact_tile_calls`) and
//! asserted by [`ProvenanceLedger::check_conservation`]. Checksum
//! sidecar traffic rides in a separate channel: it never enters the
//! data store's [`MeasuredIo`](crate::MeasuredIo), so it is reported alongside, not
//! inside, the conserved buckets.

use crate::array::IoStats;
use crate::layout::Region;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Why a transfer happened. The first five are read-side causes, the
/// next three write-side; [`IoCause::ChecksumOverhead`] is the
/// sidecar channel outside the conserved partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IoCause {
    /// First touch of a tile region on this executor locality (the
    /// sync walk, or one shard of a parallel run) — unavoidable cold
    /// traffic.
    Compulsory,
    /// Re-read of a region previously staged and then evicted or
    /// displaced; carries the evicting step and the Belady next-use
    /// annotation at eviction when known.
    CapacityMiss,
    /// A prefetch delivery that a step actually consumed.
    PrefetchUseful,
    /// A prefetch delivery never consumed before the nest barrier or
    /// run end — bytes moved for nothing.
    PrefetchWasted,
    /// The read side of the recovery machinery: journal pre-image
    /// reads taken before an intent is logged.
    ReplayRead,
    /// First write-back of a tile region.
    WriteBack,
    /// The same region written more than once — rewrite traffic a
    /// better schedule could batch.
    WriteRewrite,
    /// The write side of recovery: rollback restoring pre-images
    /// after a crash or aborted intent.
    ReplayWrite,
    /// Parity-lane maintenance traffic: old-data/old-parity reads and
    /// the parity-chunk writes of the striped store's rotating parity
    /// lane. Repair plane, outside the conserved data partition.
    ParityWrite,
    /// Peer-and-parity traffic reconstructing a lost or corrupt chunk
    /// (degraded reads, resilvering a replacement node). Repair plane.
    DegradedReconstruct,
    /// Peer-and-parity traffic serving a hedged read after a straggler
    /// deadline expired. Repair plane.
    HedgedRead,
    /// Scrubber verification reads walking stripes and parity chunks.
    /// Repair plane.
    ScrubRead,
    /// Checksum sidecar traffic (CRC maintenance); reported outside
    /// the conserved data partition.
    ChecksumOverhead,
}

impl IoCause {
    /// Every cause, in display order.
    pub const ALL: [IoCause; 13] = [
        IoCause::Compulsory,
        IoCause::CapacityMiss,
        IoCause::PrefetchUseful,
        IoCause::PrefetchWasted,
        IoCause::ReplayRead,
        IoCause::WriteBack,
        IoCause::WriteRewrite,
        IoCause::ReplayWrite,
        IoCause::ParityWrite,
        IoCause::DegradedReconstruct,
        IoCause::HedgedRead,
        IoCause::ScrubRead,
        IoCause::ChecksumOverhead,
    ];

    /// The repair-plane causes: redundancy maintenance and
    /// reconstruction traffic. Like [`IoCause::ChecksumOverhead`],
    /// these ride outside the conserved data partition — degraded runs
    /// keep the same data-cause buckets as healthy runs.
    pub const REPAIR: [IoCause; 4] = [
        IoCause::ParityWrite,
        IoCause::DegradedReconstruct,
        IoCause::HedgedRead,
        IoCause::ScrubRead,
    ];

    /// The causes that partition the data store's traffic (everything
    /// except the checksum sidecar channel).
    pub const DATA: [IoCause; 8] = [
        IoCause::Compulsory,
        IoCause::CapacityMiss,
        IoCause::PrefetchUseful,
        IoCause::PrefetchWasted,
        IoCause::ReplayRead,
        IoCause::WriteBack,
        IoCause::WriteRewrite,
        IoCause::ReplayWrite,
    ];

    /// Whether this cause accounts read-side traffic.
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(
            self,
            IoCause::Compulsory
                | IoCause::CapacityMiss
                | IoCause::PrefetchUseful
                | IoCause::PrefetchWasted
                | IoCause::ReplayRead
                | IoCause::DegradedReconstruct
                | IoCause::HedgedRead
                | IoCause::ScrubRead
        )
    }

    /// Whether this cause is repair-plane traffic (see
    /// [`IoCause::REPAIR`]).
    #[must_use]
    pub fn is_repair(self) -> bool {
        IoCause::REPAIR.contains(&self)
    }

    /// Stable lower-case label (used in tables, metrics, JSON).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            IoCause::Compulsory => "compulsory",
            IoCause::CapacityMiss => "capacity_miss",
            IoCause::PrefetchUseful => "prefetch_useful",
            IoCause::PrefetchWasted => "prefetch_wasted",
            IoCause::ReplayRead => "replay_read",
            IoCause::WriteBack => "write_back",
            IoCause::WriteRewrite => "write_rewrite",
            IoCause::ReplayWrite => "replay_write",
            IoCause::ParityWrite => "parity_write",
            IoCause::DegradedReconstruct => "degraded_reconstruct",
            IoCause::HedgedRead => "hedged_read",
            IoCause::ScrubRead => "scrub_read",
            IoCause::ChecksumOverhead => "checksum_overhead",
        }
    }
}

impl fmt::Display for IoCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What the cache knew when it pushed the tile out — attached to the
/// [`IoCause::CapacityMiss`] (or prefetched re-read) that pays for
/// the eviction later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictDetail {
    /// Absolute schedule step at which the region was evicted.
    pub evicted_at_step: u64,
    /// The Belady next-use annotation the entry carried at eviction
    /// (`None` = the cache saw no scheduled future use, e.g. a
    /// nest-barrier clear or the sync walk's displacement).
    pub next_use_at_eviction: Option<u64>,
}

/// One classified transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEvent {
    /// Array index (declaration order).
    pub array: u32,
    /// Why the transfer happened.
    pub cause: IoCause,
    /// I/O calls, in the runtime's run-splitting accounting.
    pub calls: u64,
    /// Elements moved.
    pub elems: u64,
    /// The tile region transferred.
    pub region: Region,
    /// Nest index the transfer served.
    pub nest: u32,
    /// Absolute schedule step (0 for setup/teardown traffic).
    pub step: u64,
    /// For re-reads: what the cache knew at the eviction being paid
    /// for.
    pub evict: Option<EvictDetail>,
}

/// Per-(array, cause) aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CauseTotal {
    /// Classified events.
    pub events: u64,
    /// I/O calls.
    pub calls: u64,
    /// Elements moved.
    pub elems: u64,
}

impl CauseTotal {
    /// Accumulates one event.
    pub fn add(&mut self, calls: u64, elems: u64) {
        self.events += 1;
        self.calls += calls;
        self.elems += elems;
    }

    /// Bytes moved.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.elems * crate::store::ELEM_BYTES
    }
}

/// The assembled ledger of one run: identity, per-array names, the
/// classified event stream, and the sidecar channels.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceLedger {
    /// Kernel label (bench identity; empty when unset).
    pub kernel: String,
    /// Program version label (`col`, `c-opt`, …; empty when unset).
    pub version: String,
    /// Executor that produced the events (`sync`, `pipelined`,
    /// `parallel`, `durable`, `durable-resume`).
    pub executor: String,
    /// Array names in declaration order.
    pub arrays: Vec<String>,
    /// The classified transfers, in recording order.
    pub events: Vec<LedgerEvent>,
    /// Checksum sidecar traffic per array: `(calls, elems)` — the
    /// [`IoCause::ChecksumOverhead`] channel.
    pub sidecar: BTreeMap<u32, (u64, u64)>,
    /// Repair-plane traffic per `(array, cause)`: `(calls, elems)` for
    /// the [`IoCause::REPAIR`] causes. Outside the conserved data
    /// partition, so a degraded run's data buckets stay identical to
    /// the healthy run's.
    pub repair: BTreeMap<(u32, IoCause), (u64, u64)>,
    /// Journal log bytes appended during the run (intent/commit
    /// records + pre-images), outside the cause partition.
    pub journal_bytes: u64,
}

impl ProvenanceLedger {
    /// Aggregates the event stream into per-(array, cause) totals.
    /// The checksum sidecar channel appears under
    /// [`IoCause::ChecksumOverhead`].
    #[must_use]
    pub fn totals(&self) -> BTreeMap<(u32, IoCause), CauseTotal> {
        let mut out: BTreeMap<(u32, IoCause), CauseTotal> = BTreeMap::new();
        for e in &self.events {
            out.entry((e.array, e.cause))
                .or_default()
                .add(e.calls, e.elems);
        }
        for (&a, &(calls, elems)) in &self.sidecar {
            out.entry((a, IoCause::ChecksumOverhead))
                .or_default()
                .add(calls, elems);
        }
        for (&(a, cause), &(calls, elems)) in &self.repair {
            out.entry((a, cause)).or_default().add(calls, elems);
        }
        out
    }

    /// Read-side and write-side `(calls, elems)` sums of the data
    /// causes for one array.
    #[must_use]
    pub fn data_sums(&self, array: u32) -> ((u64, u64), (u64, u64)) {
        let mut read = (0u64, 0u64);
        let mut write = (0u64, 0u64);
        for e in self.events.iter().filter(|e| e.array == array) {
            let side = if e.cause.is_read() {
                &mut read
            } else {
                &mut write
            };
            side.0 += e.calls;
            side.1 += e.elems;
        }
        (read, write)
    }

    /// The conservation law: per array, the data-cause buckets sum
    /// **exactly** to the analytic totals — calls and elements, read
    /// side and write side each. `analytic[i]` is array `i`'s
    /// compute-phase [`IoStats`] (e.g. an `ArrayProfile`'s).
    ///
    /// # Errors
    /// Returns a description of the first array whose buckets do not
    /// sum to its totals.
    pub fn check_conservation(&self, analytic: &[IoStats]) -> Result<(), String> {
        for (a, stats) in analytic.iter().enumerate() {
            let ((rc, re), (wc, we)) = self.data_sums(a as u32);
            let name = self
                .arrays
                .get(a)
                .map_or_else(|| format!("#{a}"), Clone::clone);
            if (rc, re) != (stats.read_calls, stats.read_elems) {
                return Err(format!(
                    "array {name}: read buckets ({rc} calls, {re} elems) != analytic ({} calls, {} elems)",
                    stats.read_calls, stats.read_elems
                ));
            }
            if (wc, we) != (stats.write_calls, stats.write_elems) {
                return Err(format!(
                    "array {name}: write buckets ({wc} calls, {we} elems) != analytic ({} calls, {} elems)",
                    stats.write_calls, stats.write_elems
                ));
            }
        }
        Ok(())
    }

    /// Total elements in buckets matching `cause` (data events for the
    /// partition causes, the sidecar channel for
    /// [`IoCause::ChecksumOverhead`], the repair channel for
    /// [`IoCause::REPAIR`] causes).
    #[must_use]
    pub fn cause_elems(&self, cause: IoCause) -> u64 {
        if cause == IoCause::ChecksumOverhead {
            return self.sidecar.values().map(|&(_, e)| e).sum();
        }
        if cause.is_repair() {
            return self
                .repair
                .iter()
                .filter(|&(&(_, c), _)| c == cause)
                .map(|(_, &(_, e))| e)
                .sum();
        }
        self.events
            .iter()
            .filter(|e| e.cause == cause)
            .map(|e| e.elems)
            .sum()
    }

    /// Total elements across all repair-plane causes.
    #[must_use]
    pub fn repair_elems(&self) -> u64 {
        self.repair.values().map(|&(_, e)| e).sum()
    }

    /// Total bytes in data-cause buckets matching `cause`.
    #[must_use]
    pub fn cause_bytes(&self, cause: IoCause) -> u64 {
        self.cause_elems(cause) * crate::store::ELEM_BYTES
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    ledger: ProvenanceLedger,
}

/// A cloneable, thread-safe handle every executor layer records
/// through. The recorder is deliberately context-free: callers stamp
/// the `(nest, step)` identity on each event, so parallel shards can
/// share one recorder without racing on ambient state.
#[derive(Debug, Clone, Default)]
pub struct LedgerRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl LedgerRecorder {
    /// A fresh, empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut ProvenanceLedger) -> R) -> R {
        f(&mut self.inner.lock().expect("ledger recorder poisoned").ledger)
    }

    /// Stamps the run identity (bench layer).
    pub fn set_run(&self, kernel: &str, version: &str) {
        self.with(|l| {
            l.kernel = kernel.to_string();
            l.version = version.to_string();
        });
    }

    /// Stamps the executor label (executor layer).
    pub fn set_executor(&self, executor: &str) {
        self.with(|l| l.executor = executor.to_string());
    }

    /// Registers an array name at declaration index `idx`.
    pub fn set_array(&self, idx: u32, name: &str) {
        self.with(|l| {
            let idx = idx as usize;
            if l.arrays.len() <= idx {
                l.arrays.resize(idx + 1, String::new());
            }
            l.arrays[idx] = name.to_string();
        });
    }

    /// Records one classified transfer.
    pub fn record(&self, event: LedgerEvent) {
        self.with(|l| l.events.push(event));
    }

    /// Adds checksum sidecar traffic for `array`.
    pub fn add_sidecar(&self, array: u32, calls: u64, elems: u64) {
        self.with(|l| {
            let e = l.sidecar.entry(array).or_insert((0, 0));
            e.0 += calls;
            e.1 += elems;
        });
    }

    /// Adds repair-plane traffic for `array` under one of the
    /// [`IoCause::REPAIR`] causes.
    ///
    /// # Panics
    /// Panics when `cause` is not a repair cause — repair traffic in a
    /// data bucket would break conservation.
    pub fn add_repair(&self, array: u32, cause: IoCause, calls: u64, elems: u64) {
        assert!(cause.is_repair(), "{cause} is not a repair cause");
        self.with(|l| {
            let e = l.repair.entry((array, cause)).or_insert((0, 0));
            e.0 += calls;
            e.1 += elems;
        });
    }

    /// Adds journal log bytes.
    pub fn add_journal_bytes(&self, bytes: u64) {
        self.with(|l| l.journal_bytes += bytes);
    }

    /// A copy of the ledger so far.
    #[must_use]
    pub fn snapshot(&self) -> ProvenanceLedger {
        self.with(|l| l.clone())
    }

    /// Takes the ledger, leaving the recorder empty (identity
    /// included).
    #[must_use]
    pub fn take(&self) -> ProvenanceLedger {
        self.with(std::mem::take)
    }
}

/// Per-executor-locality classification state: which regions have
/// been staged before (first touch vs. re-read), what the cache knew
/// when it evicted them, and how often each region has been written.
///
/// One tracker per serial walk — the sync executor keeps one, each
/// parallel shard keeps its own — so "first touch" means first touch
/// *on that locality*, matching how per-shard caches actually absorb
/// reuse.
#[derive(Debug, Default)]
pub struct TouchTracker {
    seen: BTreeSet<(u32, Region)>,
    evicted: BTreeMap<(u32, Region), EvictDetail>,
    writes: BTreeMap<(u32, Region), u64>,
}

impl TouchTracker {
    /// A fresh tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies a staging read of `(array, region)`:
    /// [`IoCause::Compulsory`] on first touch, else
    /// [`IoCause::CapacityMiss`] with the recorded eviction detail.
    /// Marks the region touched either way.
    pub fn classify_read(&mut self, array: u32, region: &Region) -> (IoCause, Option<EvictDetail>) {
        let key = (array, region.clone());
        if self.seen.insert(key.clone()) {
            (IoCause::Compulsory, None)
        } else {
            (IoCause::CapacityMiss, self.evicted.remove(&key))
        }
    }

    /// Marks `(array, region)` touched without classifying (a
    /// prefetched delivery consumed by a step — its cause is already
    /// [`IoCause::PrefetchUseful`]); returns the eviction detail when
    /// the delivery re-staged an evicted region.
    pub fn note_read(&mut self, array: u32, region: &Region) -> Option<EvictDetail> {
        let key = (array, region.clone());
        self.seen.insert(key.clone());
        self.evicted.remove(&key)
    }

    /// Classifies a write-back of `(array, region)`:
    /// [`IoCause::WriteBack`] the first time, [`IoCause::WriteRewrite`]
    /// after.
    pub fn classify_write(&mut self, array: u32, region: &Region) -> IoCause {
        let n = self.writes.entry((array, region.clone())).or_insert(0);
        *n += 1;
        if *n == 1 {
            IoCause::WriteBack
        } else {
            IoCause::WriteRewrite
        }
    }

    /// Records that the staged copy of `(array, region)` was pushed
    /// out at `step` with Belady annotation `next_use` — a later
    /// re-read becomes a [`IoCause::CapacityMiss`] carrying this
    /// detail.
    pub fn note_evicted(&mut self, array: u32, region: &Region, step: u64, next_use: Option<u64>) {
        self.evicted.insert(
            (array, region.clone()),
            EvictDetail {
                evicted_at_step: step,
                next_use_at_eviction: next_use,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(lo: i64, hi: i64) -> Region {
        Region::new(vec![lo], vec![hi])
    }

    fn event(array: u32, cause: IoCause, calls: u64, elems: u64) -> LedgerEvent {
        LedgerEvent {
            array,
            cause,
            calls,
            elems,
            region: region(1, elems as i64),
            nest: 0,
            step: 0,
            evict: None,
        }
    }

    #[test]
    fn tracker_classifies_first_touch_and_capacity_miss() {
        let mut t = TouchTracker::new();
        let r = region(1, 4);
        assert_eq!(t.classify_read(0, &r), (IoCause::Compulsory, None));
        // Re-read without a recorded eviction: still a capacity miss
        // (the staged copy was displaced), no detail.
        assert_eq!(t.classify_read(0, &r), (IoCause::CapacityMiss, None));
        t.note_evicted(0, &r, 7, Some(12));
        let (cause, detail) = t.classify_read(0, &r);
        assert_eq!(cause, IoCause::CapacityMiss);
        assert_eq!(
            detail,
            Some(EvictDetail {
                evicted_at_step: 7,
                next_use_at_eviction: Some(12)
            })
        );
        // A different array is its own first touch.
        assert_eq!(t.classify_read(1, &r), (IoCause::Compulsory, None));
    }

    #[test]
    fn tracker_classifies_rewrites() {
        let mut t = TouchTracker::new();
        let r = region(1, 8);
        assert_eq!(t.classify_write(0, &r), IoCause::WriteBack);
        assert_eq!(t.classify_write(0, &r), IoCause::WriteRewrite);
        assert_eq!(t.classify_write(0, &r), IoCause::WriteRewrite);
        assert_eq!(t.classify_write(1, &r), IoCause::WriteBack);
    }

    #[test]
    fn conservation_accepts_exact_partition_and_rejects_drift() {
        let rec = LedgerRecorder::new();
        rec.set_array(0, "U");
        rec.record(event(0, IoCause::Compulsory, 2, 16));
        rec.record(event(0, IoCause::CapacityMiss, 1, 8));
        rec.record(event(0, IoCause::WriteBack, 3, 24));
        let ledger = rec.snapshot();
        let good = IoStats {
            read_calls: 3,
            read_elems: 24,
            write_calls: 3,
            write_elems: 24,
            ..IoStats::default()
        };
        ledger.check_conservation(&[good]).expect("conserves");
        let mut bad = good;
        bad.read_elems += 1;
        let err = ledger.check_conservation(&[bad]).expect_err("drift");
        assert!(err.contains("U"), "{err}");
    }

    #[test]
    fn sidecar_stays_out_of_the_data_partition() {
        let rec = LedgerRecorder::new();
        rec.record(event(0, IoCause::Compulsory, 1, 4));
        rec.add_sidecar(0, 5, 40);
        let ledger = rec.snapshot();
        let stats = IoStats {
            read_calls: 1,
            read_elems: 4,
            ..IoStats::default()
        };
        ledger
            .check_conservation(&[stats])
            .expect("sidecar excluded");
        assert_eq!(ledger.cause_elems(IoCause::ChecksumOverhead), 40);
        let totals = ledger.totals();
        assert_eq!(
            totals[&(0, IoCause::ChecksumOverhead)],
            CauseTotal {
                events: 1,
                calls: 5,
                elems: 40
            }
        );
    }

    #[test]
    fn repair_channel_stays_out_of_the_data_partition() {
        let rec = LedgerRecorder::new();
        rec.record(event(0, IoCause::Compulsory, 1, 4));
        rec.add_repair(0, IoCause::ParityWrite, 2, 8);
        rec.add_repair(0, IoCause::DegradedReconstruct, 3, 12);
        rec.add_repair(1, IoCause::ScrubRead, 1, 16);
        let ledger = rec.snapshot();
        let stats = IoStats {
            read_calls: 1,
            read_elems: 4,
            ..IoStats::default()
        };
        ledger
            .check_conservation(&[stats, IoStats::default()])
            .expect("repair excluded from the partition");
        assert_eq!(ledger.cause_elems(IoCause::ParityWrite), 8);
        assert_eq!(ledger.cause_elems(IoCause::DegradedReconstruct), 12);
        assert_eq!(ledger.cause_elems(IoCause::ScrubRead), 16);
        assert_eq!(ledger.cause_elems(IoCause::HedgedRead), 0);
        assert_eq!(ledger.repair_elems(), 36);
        let totals = ledger.totals();
        assert_eq!(totals[&(0, IoCause::ParityWrite)].elems, 8);
        assert_eq!(totals[&(1, IoCause::ScrubRead)].calls, 1);
    }

    #[test]
    #[should_panic(expected = "not a repair cause")]
    fn repair_channel_rejects_data_causes() {
        LedgerRecorder::new().add_repair(0, IoCause::WriteBack, 1, 1);
    }

    #[test]
    fn repair_causes_are_disjoint_from_the_data_partition() {
        for cause in IoCause::REPAIR {
            assert!(cause.is_repair());
            assert!(
                !IoCause::DATA.contains(&cause),
                "{cause} must stay out of DATA"
            );
        }
        for cause in IoCause::DATA {
            assert!(!cause.is_repair());
        }
        assert_eq!(
            IoCause::ALL.len(),
            IoCause::DATA.len() + IoCause::REPAIR.len() + 1,
            "ALL = data partition + repair plane + checksum sidecar"
        );
    }

    #[test]
    fn recorder_is_shareable_and_takeable() {
        let rec = LedgerRecorder::new();
        let rec2 = rec.clone();
        rec.set_run("trans", "c-opt");
        rec2.set_executor("parallel");
        rec2.record(event(1, IoCause::PrefetchWasted, 1, 4));
        let taken = rec.take();
        assert_eq!(taken.kernel, "trans");
        assert_eq!(taken.executor, "parallel");
        assert_eq!(taken.events.len(), 1);
        assert!(rec2.snapshot().events.is_empty(), "take drained");
    }
}
