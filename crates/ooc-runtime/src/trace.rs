//! Measured I/O instrumentation: [`TracingStore`] observes every
//! `read_run`/`write_run` a [`Store`] receives and aggregates it into
//! [`MeasuredIo`].
//!
//! The paper's evaluation reasons about I/O *calls* analytically (run
//! counting over layouts). This module closes the loop: the runtime's
//! actual store traffic is measured — call counts, element volume,
//! seek distance between consecutive calls, and a run-length
//! histogram — so the analytic claims can be asserted against observed
//! behavior (cf. the measured-I/O methodology of Zhang & Yang,
//! *Optimizing I/O for Big Array Analytics*).

use crate::store::Store;
use std::io;
use std::sync::{Arc, Mutex};

/// Run-length histogram buckets; bucket `i` counts calls moving
/// `2^i ..= 2^(i+1)-1` elements, the last bucket absorbs the overflow.
/// Shared with `ooc_metrics` so measured histograms convert losslessly
/// into registry histograms.
pub const RUN_HIST_BUCKETS: usize = ooc_metrics::LOG2_BUCKETS;

/// Measured I/O counters of one store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasuredIo {
    /// Successful `read_run` calls.
    pub read_calls: u64,
    /// Successful `write_run` calls.
    pub write_calls: u64,
    /// Elements moved by reads.
    pub read_elems: u64,
    /// Elements moved by writes.
    pub write_elems: u64,
    /// Calls that failed in the backing store (fault injection,
    /// out-of-range); they move no data and enter no histogram.
    pub failed_calls: u64,
    /// Sum of absolute element-offset gaps between the end of one
    /// call and the start of the next — the total seek distance a
    /// disk arm would travel, in elements.
    pub seek_elems: u64,
    /// Calls that did not start where the previous call ended.
    pub seeks: u64,
    /// Histogram of per-call run lengths (powers of two).
    pub run_hist: [u64; RUN_HIST_BUCKETS],
}

impl Default for MeasuredIo {
    fn default() -> Self {
        MeasuredIo {
            read_calls: 0,
            write_calls: 0,
            read_elems: 0,
            write_elems: 0,
            failed_calls: 0,
            seek_elems: 0,
            seeks: 0,
            run_hist: [0; RUN_HIST_BUCKETS],
        }
    }
}

impl MeasuredIo {
    /// Total successful calls.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.read_calls + self.write_calls
    }

    /// Total elements moved.
    #[must_use]
    pub fn total_elems(&self) -> u64 {
        self.read_elems + self.write_elems
    }

    /// Mean elements per successful call (0 when idle).
    #[must_use]
    pub fn mean_run_len(&self) -> f64 {
        if self.total_calls() == 0 {
            0.0
        } else {
            self.total_elems() as f64 / self.total_calls() as f64
        }
    }

    /// Adds `other`'s counters into `self` (histograms included).
    pub fn merge(&mut self, other: &MeasuredIo) {
        self.read_calls += other.read_calls;
        self.write_calls += other.write_calls;
        self.read_elems += other.read_elems;
        self.write_elems += other.write_elems;
        self.failed_calls += other.failed_calls;
        self.seek_elems += other.seek_elems;
        self.seeks += other.seeks;
        for (a, b) in self.run_hist.iter_mut().zip(&other.run_hist) {
            *a += b;
        }
    }

    /// The histogram bucket of a run of `len` elements (the shared
    /// `ooc_metrics` log2 scheme).
    #[must_use]
    pub fn bucket_of(len: u64) -> usize {
        ooc_metrics::log2_bucket(len)
    }

    /// The measured run-length histogram as a registry
    /// [`Histogram`](ooc_metrics::Histogram) (same bucket scheme; the
    /// sum is the total elements moved).
    #[must_use]
    pub fn run_histogram(&self) -> ooc_metrics::Histogram {
        ooc_metrics::Histogram::from_counts(self.run_hist, self.total_elems())
    }

    /// Compact one-line rendering of the run-length histogram: each
    /// nonzero bucket as `[lo-hi]xCOUNT` (`[lo+]` for the overflow
    /// bucket), e.g. `[0-1]x3 [8-15]x4`. Empty string when idle.
    #[must_use]
    pub fn run_hist_compact(&self) -> String {
        let mut parts = Vec::new();
        for (i, &count) in self.run_hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let (lo, hi) = ooc_metrics::bucket_bounds(i);
            if hi == u64::MAX {
                parts.push(format!("[{lo}+]x{count}"));
            } else {
                parts.push(format!("[{lo}-{hi}]x{count}"));
            }
        }
        parts.join(" ")
    }

    fn record(&mut self, offset: u64, len: u64, is_write: bool, last_end: &mut Option<u64>) {
        if is_write {
            self.write_calls += 1;
            self.write_elems += len;
        } else {
            self.read_calls += 1;
            self.read_elems += len;
        }
        if let Some(end) = *last_end {
            let gap = end.abs_diff(offset);
            if gap > 0 {
                self.seeks += 1;
                self.seek_elems += gap;
            }
        }
        *last_end = Some(offset + len);
        self.run_hist[Self::bucket_of(len)] += 1;
    }
}

#[derive(Debug, Default)]
struct TraceState {
    io: MeasuredIo,
    last_end: Option<u64>,
}

/// A cheap shared handle onto a trace; clones observe the same
/// counters, so a caller can keep one while the [`TracingStore`] is
/// moved into an array.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Arc<Mutex<TraceState>>);

impl TraceHandle {
    /// A fresh, zeroed trace.
    #[must_use]
    pub fn new() -> Self {
        TraceHandle::default()
    }

    /// A copy of the counters at this instant.
    ///
    /// # Panics
    /// Panics if the trace mutex was poisoned.
    #[must_use]
    pub fn snapshot(&self) -> MeasuredIo {
        self.0.lock().expect("trace lock").io.clone()
    }

    /// Zeroes the counters (seek tracking restarts too).
    ///
    /// # Panics
    /// Panics if the trace mutex was poisoned.
    pub fn reset(&self) {
        let mut s = self.0.lock().expect("trace lock");
        *s = TraceState::default();
    }

    fn record(&self, offset: u64, len: u64, is_write: bool) {
        let mut s = self.0.lock().expect("trace lock");
        let TraceState { io, last_end } = &mut *s;
        io.record(offset, len, is_write, last_end);
    }

    fn record_failure(&self) {
        self.0.lock().expect("trace lock").io.failed_calls += 1;
        ooc_trace::instant("runtime", "io-fault", Vec::new());
    }
}

/// A [`Store`] wrapper recording every call into a [`TraceHandle`].
#[derive(Debug)]
pub struct TracingStore<S> {
    inner: S,
    trace: TraceHandle,
}

impl<S: Store> TracingStore<S> {
    /// Wraps `inner` with a fresh trace.
    #[must_use]
    pub fn new(inner: S) -> Self {
        TracingStore {
            inner,
            trace: TraceHandle::new(),
        }
    }

    /// Wraps `inner` recording into an existing shared `trace`.
    #[must_use]
    pub fn with_trace(inner: S, trace: TraceHandle) -> Self {
        TracingStore { inner, trace }
    }

    /// A shared handle onto this store's trace.
    #[must_use]
    pub fn trace(&self) -> TraceHandle {
        self.trace.clone()
    }

    /// The wrapped store.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, discarding the trace.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Store> Store for TracingStore<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_run(&self, offset: u64, buf: &mut [f64]) -> io::Result<()> {
        match self.inner.read_run(offset, buf) {
            Ok(()) => {
                self.trace.record(offset, buf.len() as u64, false);
                Ok(())
            }
            Err(e) => {
                self.trace.record_failure();
                Err(e)
            }
        }
    }

    fn write_run(&mut self, offset: u64, buf: &[f64]) -> io::Result<()> {
        match self.inner.write_run(offset, buf) {
            Ok(()) => {
                self.trace.record(offset, buf.len() as u64, true);
                Ok(())
            }
            Err(e) => {
                self.trace.record_failure();
                Err(e)
            }
        }
    }

    fn reset_metrics(&mut self) {
        self.trace.reset();
        self.inner.reset_metrics();
    }

    fn metrics(&self) -> Option<MeasuredIo> {
        Some(self.trace.snapshot())
    }

    fn access_log(&self) -> Option<Vec<crate::profile::AccessRecord>> {
        self.inner.access_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    #[test]
    fn records_calls_volume_and_seeks() {
        let mut s = TracingStore::new(MemStore::new(64));
        let h = s.trace();
        s.write_run(0, &[1.0; 8]).expect("w");
        s.write_run(8, &[2.0; 8]).expect("w"); // sequential: no seek
        s.write_run(32, &[3.0; 4]).expect("w"); // seek of 16
        let mut buf = [0.0; 8];
        s.read_run(0, &mut buf).expect("r"); // seek back of 36
        let m = h.snapshot();
        assert_eq!(m.write_calls, 3);
        assert_eq!(m.read_calls, 1);
        assert_eq!(m.write_elems, 20);
        assert_eq!(m.read_elems, 8);
        assert_eq!(m.seeks, 2);
        assert_eq!(m.seek_elems, 16 + 36);
        assert_eq!(m.total_calls(), 4);
        assert_eq!(m.mean_run_len(), 7.0);
    }

    #[test]
    fn run_histogram_buckets() {
        assert_eq!(MeasuredIo::bucket_of(0), 0);
        assert_eq!(MeasuredIo::bucket_of(1), 0);
        assert_eq!(MeasuredIo::bucket_of(2), 1);
        assert_eq!(MeasuredIo::bucket_of(3), 1);
        assert_eq!(MeasuredIo::bucket_of(8), 3);
        assert_eq!(MeasuredIo::bucket_of(u64::MAX), RUN_HIST_BUCKETS - 1);

        let mut s = TracingStore::new(MemStore::new(64));
        let h = s.trace();
        s.write_run(0, &[0.0; 8]).expect("w");
        s.write_run(8, &[0.0; 7]).expect("w");
        let m = h.snapshot();
        assert_eq!(m.run_hist[3], 1);
        assert_eq!(m.run_hist[2], 1);
    }

    #[test]
    fn run_hist_renders_compactly() {
        let mut m = MeasuredIo::default();
        assert_eq!(m.run_hist_compact(), "");
        m.run_hist[0] = 3;
        m.run_hist[3] = 4;
        m.run_hist[RUN_HIST_BUCKETS - 1] = 1;
        assert_eq!(m.run_hist_compact(), "[0-1]x3 [8-15]x4 [8388608+]x1");
    }

    #[test]
    fn run_histogram_converts_to_registry_histogram() {
        let mut s = TracingStore::new(MemStore::new(64));
        let h = s.trace();
        s.write_run(0, &[0.0; 8]).expect("w");
        s.write_run(8, &[0.0; 7]).expect("w");
        let m = h.snapshot();
        let hist = m.run_histogram();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 15);
        assert_eq!(hist.buckets[3], 1);
        assert_eq!(hist.buckets[2], 1);
    }

    #[test]
    fn failures_counted_separately() {
        let mut s = TracingStore::new(MemStore::new(4));
        let h = s.trace();
        assert!(s.write_run(3, &[0.0; 4]).is_err());
        let m = h.snapshot();
        assert_eq!(m.failed_calls, 1);
        assert_eq!(m.total_calls(), 0);
        assert_eq!(m.total_elems(), 0);
    }

    #[test]
    fn reset_through_store_trait() {
        let mut s = TracingStore::new(MemStore::new(8));
        let h = s.trace();
        s.write_run(0, &[1.0; 8]).expect("w");
        assert_eq!(h.snapshot().write_calls, 1);
        s.reset_metrics();
        assert_eq!(h.snapshot(), MeasuredIo::default());
        assert_eq!(s.metrics().expect("traced"), MeasuredIo::default());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MeasuredIo::default();
        let mut b = MeasuredIo {
            read_calls: 2,
            read_elems: 16,
            ..MeasuredIo::default()
        };
        b.run_hist[3] = 2;
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.read_calls, 4);
        assert_eq!(a.read_elems, 32);
        assert_eq!(a.run_hist[3], 4);
    }
}
