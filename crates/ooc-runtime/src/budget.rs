//! Memory budgeting for out-of-core execution.
//!
//! The paper fixes the in-core memory available to a computation at
//! **1/128 of the total out-of-core data size** and divides it evenly
//! among the arrays accessed by a nest. This module provides that
//! arithmetic plus a small allocator that asserts tile working sets
//! stay inside the budget during execution.

/// The memory budget of an out-of-core computation, in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    capacity: u64,
    in_use: u64,
}

/// Error returned when an allocation would exceed the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Elements requested.
    pub requested: u64,
    /// Elements available.
    pub available: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget exceeded: requested {} elements, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for BudgetExceeded {}

impl MemoryBudget {
    /// A budget of `capacity` elements.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        MemoryBudget {
            capacity,
            in_use: 0,
        }
    }

    /// The paper's rule: memory = `total_elements / fraction` (fraction
    /// 128 in the experiments).
    #[must_use]
    pub fn paper_fraction(total_elements: u64, fraction: u64) -> Self {
        MemoryBudget::new((total_elements / fraction).max(1))
    }

    /// Total capacity in elements.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Elements currently allocated.
    #[must_use]
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Elements still available.
    #[must_use]
    pub fn available(&self) -> u64 {
        self.capacity - self.in_use
    }

    /// Allocates `n` elements.
    ///
    /// # Errors
    /// Fails if the allocation exceeds capacity.
    pub fn alloc(&mut self, n: u64) -> Result<(), BudgetExceeded> {
        if n > self.available() {
            return Err(BudgetExceeded {
                requested: n,
                available: self.available(),
            });
        }
        self.in_use += n;
        Ok(())
    }

    /// Releases `n` elements.
    ///
    /// # Panics
    /// Panics on releasing more than is allocated (a runtime bug).
    pub fn free(&mut self, n: u64) {
        assert!(
            n <= self.in_use,
            "freeing {n} with only {} in use",
            self.in_use
        );
        self.in_use -= n;
    }

    /// Evenly splits the capacity across `arrays` concurrently resident
    /// tiles (the paper's per-nest division).
    #[must_use]
    pub fn per_array(&self, arrays: usize) -> u64 {
        if arrays == 0 {
            self.capacity
        } else {
            (self.capacity / arrays as u64).max(1)
        }
    }
}

/// Chooses the largest tile height `B` such that `arrays` tiles of
/// `B × row_len` elements fit in the budget; at least 1.
///
/// This is the tile-size rule for the paper's out-of-core tiling
/// (§3.3): the innermost loop is untiled (full `row_len` extent), the
/// tiled dimension gets `B` iterations.
#[must_use]
pub fn tile_span(budget: &MemoryBudget, arrays: usize, row_len: u64) -> u64 {
    let per = budget.per_array(arrays);
    (per / row_len.max(1)).max(1)
}

/// Chooses a square tile edge for traditional tiling: the largest `B`
/// with `arrays` tiles of `B × B` elements within budget; at least 1.
#[must_use]
pub fn square_tile_edge(budget: &MemoryBudget, arrays: usize) -> u64 {
    let per = budget.per_array(arrays);
    let mut b = (per as f64).sqrt() as u64;
    while b > 1 && b * b > per {
        b -= 1;
    }
    b.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fraction_rule() {
        // 3 arrays of 4096x4096 doubles, 1/128th.
        let total = 3u64 * 4096 * 4096;
        let b = MemoryBudget::paper_fraction(total, 128);
        assert_eq!(b.capacity(), total / 128);
    }

    #[test]
    fn alloc_free_cycle() {
        let mut b = MemoryBudget::new(100);
        b.alloc(60).expect("fits");
        assert_eq!(b.available(), 40);
        assert!(b.alloc(50).is_err());
        b.free(30);
        b.alloc(50).expect("fits now");
        assert_eq!(b.in_use(), 80);
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut b = MemoryBudget::new(10);
        b.free(1);
    }

    #[test]
    fn tile_span_rule() {
        // Budget 32 elements over 2 arrays, rows of 8: B = 2 (16 elements
        // per array tile) — exactly the Figure 3 setting.
        let b = MemoryBudget::new(32);
        assert_eq!(tile_span(&b, 2, 8), 2);
        // Tiny budgets still make progress.
        assert_eq!(tile_span(&MemoryBudget::new(1), 2, 8), 1);
    }

    #[test]
    fn square_tile_rule() {
        // Budget 32 over 2 arrays: per-array 16 -> 4x4 tiles (Figure 3(a)).
        let b = MemoryBudget::new(32);
        assert_eq!(square_tile_edge(&b, 2), 4);
        assert_eq!(square_tile_edge(&MemoryBudget::new(2), 2), 1);
    }

    #[test]
    fn per_array_split() {
        let b = MemoryBudget::new(100);
        assert_eq!(b.per_array(3), 33);
        assert_eq!(b.per_array(0), 100);
    }
}
