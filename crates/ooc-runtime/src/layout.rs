//! File layouts for out-of-core arrays.
//!
//! A file layout decides the linear order in which array elements are
//! stored on disk — and therefore how many I/O calls a rectangular
//! data tile costs. Layouts supported (paper Figure 2):
//!
//! * [`FileLayout::DimOrder`] — dimension-order layouts for any rank:
//!   row-major, column-major, and every permutation in between.
//! * [`FileLayout::Hyperplane2D`] — general 2-D hyperplane layouts
//!   `(g₁, g₂)`: elements with equal `g₁a₁ + g₂a₂` are stored
//!   consecutively (diagonal `(1,-1)`, anti-diagonal `(1,1)`, …).
//!   `(1,0)`/`(0,1)` coincide with row-/column-major and are handled
//!   by the exact dimension-order fast path.
//! * [`FileLayout::Blocked2D`] — blocked layouts (the optimizer does
//!   not select them, per the paper, but the h-opt hand-optimized
//!   versions use them for chunking).
//!
//! The central query is [`FileLayout::region_runs`]: the maximal
//! contiguous file runs covering a rectangular region. Each run is the
//! unit the PASSION-like runtime turns into I/O calls.

use ooc_linalg::gcd;

/// A rectangular region of an array: 1-based inclusive bounds per
/// dimension.
///
/// The `Ord` impl is lexicographic on `(lo, hi)` — meaningless
/// geometrically, but it lets regions key deterministic ordered maps
/// (the tile cache's eviction scan must break ties identically on
/// every run).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Region {
    /// Lower bounds (1-based, inclusive).
    pub lo: Vec<i64>,
    /// Upper bounds (inclusive).
    pub hi: Vec<i64>,
}

impl Region {
    /// Creates a region; panics if `lo` and `hi` lengths differ.
    #[must_use]
    pub fn new(lo: Vec<i64>, hi: Vec<i64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "region rank mismatch");
        Region { lo, hi }
    }

    /// Full-array region for the given dims.
    #[must_use]
    pub fn full(dims: &[i64]) -> Self {
        Region {
            lo: vec![1; dims.len()],
            hi: dims.to_vec(),
        }
    }

    /// The rank.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.lo.len()
    }

    /// Extent along dimension `d` (0 if empty).
    #[must_use]
    pub fn extent(&self, d: usize) -> i64 {
        (self.hi[d] - self.lo[d] + 1).max(0)
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> i64 {
        (0..self.rank()).map(|d| self.extent(d)).product()
    }

    /// `true` if the region contains no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the point lies inside.
    #[must_use]
    pub fn contains(&self, idx: &[i64]) -> bool {
        idx.len() == self.rank()
            && idx
                .iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(&x, (&l, &h))| l <= x && x <= h)
    }

    /// Whether two regions share at least one point. Regions of
    /// different rank never overlap (they index different arrays).
    /// The write-behind queue uses this to order a read after every
    /// queued write that could produce data the read must see.
    #[must_use]
    pub fn overlaps(&self, other: &Region) -> bool {
        self.rank() == other.rank()
            && !self.is_empty()
            && !other.is_empty()
            && (0..self.rank()).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// Intersection with array bounds `1..=dims[d]`.
    #[must_use]
    pub fn clamped(&self, dims: &[i64]) -> Region {
        Region {
            lo: self.lo.iter().map(|&l| l.max(1)).collect(),
            hi: self.hi.iter().zip(dims).map(|(&h, &n)| h.min(n)).collect(),
        }
    }
}

/// A contiguous run of elements in the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Element offset of the first element of the run within the file.
    pub start: u64,
    /// Number of consecutive elements.
    pub len: u64,
}

/// Aggregate I/O cost of accessing a region (without materializing
/// every run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunSummary {
    /// Number of maximal contiguous runs.
    pub runs: u64,
    /// Total elements covered.
    pub elements: u64,
    /// Element offset of the first touched byte (for stripe mapping).
    pub min_start: u64,
    /// One past the last touched element offset.
    pub max_end: u64,
}

/// The supported file layouts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FileLayout {
    /// Dimension-order layout: `perm` lists dimensions from outermost
    /// (slowest-varying) to innermost (fastest-varying, contiguous).
    /// For a 2-D array, `perm = [0, 1]` is row-major and `[1, 0]` is
    /// column-major.
    DimOrder(Vec<usize>),
    /// General 2-D hyperplane layout `(g₁, g₂)`: elements are ordered
    /// by hyperplane value `c = g₁a₁ + g₂a₂` ascending, then by `a₁`
    /// (then `a₂`) within a hyperplane.
    Hyperplane2D(i64, i64),
    /// 2-D blocked layout: `br × bc` blocks stored row-major by block,
    /// row-major inside each block.
    Blocked2D {
        /// Block height.
        br: i64,
        /// Block width.
        bc: i64,
    },
}

impl FileLayout {
    /// Row-major for the given rank.
    #[must_use]
    pub fn row_major(rank: usize) -> Self {
        FileLayout::DimOrder((0..rank).collect())
    }

    /// Column-major for the given rank (last dimension outermost).
    #[must_use]
    pub fn col_major(rank: usize) -> Self {
        FileLayout::DimOrder((0..rank).rev().collect())
    }

    /// The layout selected by a 2-D hyperplane vector, routed to the
    /// exact dimension-order representation when the hyperplane is
    /// axis-aligned: `(1,0) ⇒` row-major, `(0,1) ⇒` column-major.
    ///
    /// # Panics
    /// Panics on the zero vector.
    #[must_use]
    pub fn from_hyperplane(g: &[i64]) -> Self {
        assert_eq!(g.len(), 2, "hyperplane layouts are 2-D");
        let p = ooc_linalg::primitive(g);
        match (p[0], p[1]) {
            (0, 0) => panic!("zero hyperplane vector"),
            (1, 0) => FileLayout::row_major(2),
            (0, 1) => FileLayout::col_major(2),
            (g1, g2) => FileLayout::Hyperplane2D(g1, g2),
        }
    }

    /// The hyperplane vector describing this layout, when one exists.
    #[must_use]
    pub fn hyperplane(&self) -> Option<[i64; 2]> {
        match self {
            FileLayout::DimOrder(p) if p.as_slice() == [0, 1] => Some([1, 0]),
            FileLayout::DimOrder(p) if p.as_slice() == [1, 0] => Some([0, 1]),
            FileLayout::Hyperplane2D(g1, g2) => Some([*g1, *g2]),
            _ => None,
        }
    }

    /// Element offset of `idx` (1-based) in a file holding an array of
    /// extents `dims` under this layout.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds or ranks mismatch.
    #[must_use]
    pub fn offset_of(&self, dims: &[i64], idx: &[i64]) -> u64 {
        assert_eq!(dims.len(), idx.len());
        for (d, (&x, &n)) in idx.iter().zip(dims).enumerate() {
            assert!((1..=n).contains(&x), "index {x} out of 1..={n} in dim {d}");
        }
        match self {
            FileLayout::DimOrder(perm) => {
                assert_eq!(perm.len(), dims.len());
                let mut off: u64 = 0;
                for &d in perm {
                    off = off * dims[d] as u64 + (idx[d] - 1) as u64;
                }
                off
            }
            FileLayout::Hyperplane2D(g1, g2) => {
                let h = Hyperplanes::new(*g1, *g2, dims[0], dims[1]);
                h.offset_of(idx[0], idx[1])
            }
            FileLayout::Blocked2D { br, bc } => {
                let (n1, n2) = (dims[0], dims[1]);
                let (bi, bj) = ((idx[0] - 1) / br, (idx[1] - 1) / bc);
                // Elements before this block: full block-rows above plus
                // blocks to the left in this block-row. Edge blocks are
                // smaller; compute exact counts.
                let rows_above = (bi * br).min(n1);
                let elems_above = rows_above * n2;
                let block_h = ((bi + 1) * br).min(n1) - bi * br;
                let mut elems_left = 0;
                for b in 0..bj {
                    let w = ((b + 1) * bc).min(n2) - b * bc;
                    elems_left += block_h * w;
                }
                let block_w = ((bj + 1) * bc).min(n2) - bj * bc;
                let (ri, rj) = ((idx[0] - 1) % br, (idx[1] - 1) % bc);
                (elems_above + elems_left + ri * block_w + rj) as u64
            }
        }
    }

    /// The maximal contiguous runs of `region` (clamped to the array),
    /// in ascending file order. Exact for every layout.
    ///
    /// Intended for functional execution and tests; for paper-scale
    /// accounting use [`FileLayout::region_run_summary`].
    #[must_use]
    pub fn region_runs(&self, dims: &[i64], region: &Region) -> Vec<Run> {
        let region = region.clamped(dims);
        if region.is_empty() {
            return Vec::new();
        }
        // Generic exact computation: enumerate the region's element
        // offsets, sort, and coalesce. Region sizes in functional mode are
        // small; the summary path below never calls this.
        let mut offsets: Vec<u64> = Vec::with_capacity(usize::try_from(region.len()).unwrap());
        let mut idx = region.lo.clone();
        loop {
            offsets.push(self.offset_of(dims, &idx));
            // Odometer increment.
            let mut d = idx.len();
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] <= region.hi[d] {
                    break;
                }
                idx[d] = region.lo[d];
                if d == 0 {
                    // Wrapped the outermost dimension: done.
                    offsets.sort_unstable();
                    return coalesce(&offsets);
                }
            }
            if idx == region.lo {
                break;
            }
        }
        offsets.sort_unstable();
        coalesce(&offsets)
    }

    /// Aggregate run statistics for a region without enumeration —
    /// O(#runs) at worst, O(1) for dimension-order layouts. Exact for
    /// [`FileLayout::DimOrder`] and [`FileLayout::Blocked2D`]; for
    /// general hyperplane layouts it counts one run per intersected
    /// hyperplane (exact unless the region covers whole adjacent
    /// hyperplanes, where runs could merge — a second-order effect).
    #[must_use]
    pub fn region_run_summary(&self, dims: &[i64], region: &Region) -> RunSummary {
        let region = region.clamped(dims);
        if region.is_empty() {
            return RunSummary::default();
        }
        let elements = region.len() as u64;
        // A full-array access is one sequential sweep under any layout.
        if region == Region::full(dims) {
            return RunSummary {
                runs: 1,
                elements,
                min_start: 0,
                max_end: elements,
            };
        }
        match self {
            FileLayout::DimOrder(perm) => {
                // Innermost (fastest) dimensions that the region covers
                // fully merge into longer runs.
                let mut run_len: u64 = 1;
                for (pos, &d) in perm.iter().enumerate().rev() {
                    run_len *= region.extent(d) as u64;
                    if region.extent(d) != dims[d] || pos == 0 {
                        break;
                    }
                }
                let runs = elements / run_len;
                let min_start = self.offset_of(dims, &region.lo);
                let max_end = self.offset_of(dims, &region.hi) + 1;
                RunSummary {
                    runs,
                    elements,
                    min_start,
                    max_end,
                }
            }
            FileLayout::Hyperplane2D(g1, g2) => {
                let h = Hyperplanes::new(*g1, *g2, dims[0], dims[1]);
                h.region_summary(&region)
            }
            FileLayout::Blocked2D { br, bc } => {
                let (r1, r2) = (region.lo[0], region.hi[0]);
                let (c1, c2) = (region.lo[1], region.hi[1]);
                let mut runs = 0u64;
                let mut min_start = u64::MAX;
                let mut max_end = 0u64;
                let (b_lo, b_hi) = ((r1 - 1) / br, (r2 - 1) / br);
                let (d_lo, d_hi) = ((c1 - 1) / bc, (c2 - 1) / bc);
                for bi in b_lo..=b_hi {
                    for bj in d_lo..=d_hi {
                        // Intersection of the region with block (bi, bj).
                        let blk_r1 = (bi * br + 1).max(r1);
                        let blk_r2 = ((bi + 1) * br).min(dims[0]).min(r2);
                        let blk_c1 = (bj * bc + 1).max(c1);
                        let blk_c2 = ((bj + 1) * bc).min(dims[1]).min(c2);
                        if blk_r1 > blk_r2 || blk_c1 > blk_c2 {
                            continue;
                        }
                        let block_w = ((bj + 1) * bc).min(dims[1]) - bj * bc;
                        let rows = (blk_r2 - blk_r1 + 1) as u64;
                        let width = (blk_c2 - blk_c1 + 1) as u64;
                        // Row-major inside the block: full-width spans merge.
                        let r = if width == block_w as u64 { 1 } else { rows };
                        runs += r;
                        let start = self.offset_of(dims, &[blk_r1, blk_c1]);
                        let end = self.offset_of(dims, &[blk_r2, blk_c2]) + 1;
                        min_start = min_start.min(start);
                        max_end = max_end.max(end);
                    }
                }
                RunSummary {
                    runs,
                    elements,
                    min_start,
                    max_end,
                }
            }
        }
    }
}

/// Helper for general 2-D hyperplane layouts: enumerates realized
/// hyperplane values and cumulative element counts.
struct Hyperplanes {
    g1: i64,
    g2: i64,
    n1: i64,
    n2: i64,
}

impl Hyperplanes {
    fn new(g1: i64, g2: i64, n1: i64, n2: i64) -> Self {
        assert!(g1 != 0 || g2 != 0, "zero hyperplane");
        Hyperplanes { g1, g2, n1, n2 }
    }

    /// Number of elements on hyperplane `c` (within the full array).
    fn count_on(&self, c: i64) -> i64 {
        self.count_on_region(c, 1, self.n1, 1, self.n2)
    }

    /// Number of elements on hyperplane `c` within the rectangle.
    #[allow(clippy::similar_names)]
    fn count_on_region(&self, c: i64, r1: i64, r2: i64, c1: i64, c2: i64) -> i64 {
        let (g1, g2) = (self.g1, self.g2);
        if g2 == 0 {
            // a1 fixed: c = g1*a1.
            if c % g1 != 0 {
                return 0;
            }
            let a1 = c / g1;
            if (r1..=r2).contains(&a1) {
                return c2 - c1 + 1;
            }
            return 0;
        }
        // For each a1 in [r1, r2], a2 = (c - g1*a1) / g2 must be an
        // integer in [c1, c2]. The integrality condition is a congruence
        // g1*a1 ≡ c (mod g2); the range condition is an interval in a1.
        let mut count = 0i64;
        // Quick infeasibility screen: the congruence g1*a1 ≡ c (mod |g2|)
        // is solvable only when gcd(g1, g2) divides c.
        let m = g2.abs();
        if c.rem_euclid(gcd(g1, m)) != 0 {
            return 0;
        }
        // Interval of a1 with a2 in [c1, c2]:
        //   a2 = (c - g1*a1)/g2 in [c1, c2].
        // Work with rationals to get the a1 interval, then apply the
        // congruence stepping (solutions are spaced m/gcd(g1,m) apart).
        let (lo_f, hi_f) = {
            // c - g1*a1 in [g2*c1, g2*c2] (order depends on sign of g2)
            let (b1, b2) = if g2 > 0 {
                (g2 * c1, g2 * c2)
            } else {
                (g2 * c2, g2 * c1)
            };
            // b1 <= c - g1*a1 <= b2  =>  (c - b2) <= g1*a1 <= (c - b1)
            let (lo_num, hi_num) = (c - b2, c - b1);
            if g1 > 0 {
                (
                    (lo_num as f64 / g1 as f64).ceil() as i64,
                    (hi_num as f64 / g1 as f64).floor() as i64,
                )
            } else if g1 < 0 {
                (
                    (hi_num as f64 / g1 as f64).ceil() as i64,
                    (lo_num as f64 / g1 as f64).floor() as i64,
                )
            } else {
                // g1 == 0: a2 = c/g2 fixed; every a1 in [r1, r2] counts if
                // a2 in range.
                if c % g2 != 0 {
                    return 0;
                }
                let a2 = c / g2;
                if (c1..=c2).contains(&a2) {
                    return r2 - r1 + 1;
                }
                return 0;
            }
        };
        let lo = lo_f.max(r1);
        let hi = hi_f.min(r2);
        let mut a1 = lo;
        while a1 <= hi {
            let num = c - g1 * a1;
            if num % g2 == 0 {
                let a2 = num / g2;
                if (c1..=c2).contains(&a2) {
                    count += 1;
                    // Solutions are spaced gcd-periodically; continue the
                    // simple loop (n is bounded by the array extent).
                }
            }
            a1 += 1;
        }
        count
    }

    /// Realized hyperplane value range over the full array.
    fn c_range(&self) -> (i64, i64) {
        let corners = [
            self.g1 + self.g2,
            self.g1 + self.g2 * self.n2,
            self.g1 * self.n1 + self.g2,
            self.g1 * self.n1 + self.g2 * self.n2,
        ];
        (
            *corners.iter().min().expect("nonempty"),
            *corners.iter().max().expect("nonempty"),
        )
    }

    /// Offset of element (a1, a2): elements on smaller hyperplanes plus
    /// the rank within this hyperplane (ordered by a1, then a2).
    fn offset_of(&self, a1: i64, a2: i64) -> u64 {
        let c = self.g1 * a1 + self.g2 * a2;
        let (c_min, _) = self.c_range();
        let mut before = 0i64;
        for cc in c_min..c {
            before += self.count_on(cc);
        }
        // Rank within hyperplane: elements with smaller a1 (a2 determined),
        // or same a1 and smaller a2 (only when g2 == 0 can a1 repeat).
        let rank = if self.g2 == 0 {
            a2 - 1
        } else {
            self.count_on_region(c, 1, a1 - 1, 1, self.n2)
        };
        (before + rank) as u64
    }

    /// Run summary for a rectangular region: one run per intersected
    /// hyperplane (exact within-hyperplane contiguity; see module docs).
    fn region_summary(&self, region: &Region) -> RunSummary {
        let (r1, r2) = (region.lo[0], region.hi[0]);
        let (c1, c2) = (region.lo[1], region.hi[1]);
        let (c_min, c_max) = self.c_range();
        let mut runs = 0u64;
        let mut elements = 0u64;
        let mut min_start = u64::MAX;
        let mut max_end = 0u64;
        let mut cum_before = 0i64; // elements on hyperplanes < cc
        for cc in c_min..=c_max {
            let total_on = self.count_on(cc);
            if total_on == 0 {
                continue;
            }
            let in_region = self.count_on_region(cc, r1, r2, c1, c2);
            if in_region > 0 {
                runs += 1;
                elements += in_region as u64;
                // Start of this hyperplane's region segment: the rank of
                // the first region element, i.e. the number of hyperplane
                // elements ordered before it.
                let before_rows = if self.g2 == 0 {
                    c1 - 1
                } else {
                    // Find the smallest a1 in [r1, r2] whose a2 lands in
                    // [c1, c2]; everything with a smaller a1 precedes it.
                    let mut a1_first = r1;
                    while a1_first <= r2
                        && self.count_on_region(cc, a1_first, a1_first, c1, c2) == 0
                    {
                        a1_first += 1;
                    }
                    self.count_on_region(cc, 1, a1_first - 1, 1, self.n2)
                };
                let seg_start = (cum_before + before_rows) as u64;
                min_start = min_start.min(seg_start);
                max_end = max_end.max(seg_start + in_region as u64);
            }
            cum_before += total_on;
        }
        RunSummary {
            runs,
            elements,
            min_start: if runs == 0 { 0 } else { min_start },
            max_end,
        }
    }
}

/// Coalesces sorted element offsets into maximal contiguous runs.
fn coalesce(sorted: &[u64]) -> Vec<Run> {
    let mut out: Vec<Run> = Vec::new();
    for &off in sorted {
        match out.last_mut() {
            Some(run) if run.start + run.len == off => run.len += 1,
            _ => out.push(Run { start: off, len: 1 }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_offsets() {
        let l = FileLayout::row_major(2);
        let dims = [3, 4];
        assert_eq!(l.offset_of(&dims, &[1, 1]), 0);
        assert_eq!(l.offset_of(&dims, &[1, 4]), 3);
        assert_eq!(l.offset_of(&dims, &[2, 1]), 4);
        assert_eq!(l.offset_of(&dims, &[3, 4]), 11);
    }

    #[test]
    fn col_major_offsets() {
        let l = FileLayout::col_major(2);
        let dims = [3, 4];
        assert_eq!(l.offset_of(&dims, &[1, 1]), 0);
        assert_eq!(l.offset_of(&dims, &[3, 1]), 2);
        assert_eq!(l.offset_of(&dims, &[1, 2]), 3);
        assert_eq!(l.offset_of(&dims, &[3, 4]), 11);
    }

    #[test]
    fn three_d_dim_order() {
        // perm [2,0,1]: dim 2 outermost, dim 1 contiguous.
        let l = FileLayout::DimOrder(vec![2, 0, 1]);
        let dims = [2, 3, 4];
        assert_eq!(l.offset_of(&dims, &[1, 1, 1]), 0);
        assert_eq!(l.offset_of(&dims, &[1, 2, 1]), 1);
        assert_eq!(l.offset_of(&dims, &[2, 1, 1]), 3);
        assert_eq!(l.offset_of(&dims, &[1, 1, 2]), 6);
    }

    #[test]
    fn offsets_are_a_bijection() {
        let dims = [5, 6];
        for layout in [
            FileLayout::row_major(2),
            FileLayout::col_major(2),
            FileLayout::Hyperplane2D(1, 1),
            FileLayout::Hyperplane2D(1, -1),
            FileLayout::Hyperplane2D(2, 1),
            FileLayout::Hyperplane2D(7, 4),
            FileLayout::Blocked2D { br: 2, bc: 3 },
            FileLayout::Blocked2D { br: 3, bc: 4 },
        ] {
            let mut seen = [false; 30];
            for a1 in 1..=5 {
                for a2 in 1..=6 {
                    let off = layout.offset_of(&dims, &[a1, a2]) as usize;
                    assert!(off < 30, "{layout:?} offset {off} out of range");
                    assert!(!seen[off], "{layout:?} duplicate offset {off}");
                    seen[off] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "{layout:?} not surjective");
        }
    }

    #[test]
    fn diagonal_layout_order() {
        // (1, -1): anti-diagonals a1 - a2 = c ascending. The first
        // hyperplane of a 3x3 array is c = 1-3 = -2: element (1,3).
        let l = FileLayout::Hyperplane2D(1, -1);
        let dims = [3, 3];
        assert_eq!(l.offset_of(&dims, &[1, 3]), 0);
        // c = -1: (1,2), (2,3).
        assert_eq!(l.offset_of(&dims, &[1, 2]), 1);
        assert_eq!(l.offset_of(&dims, &[2, 3]), 2);
        // c = 0: (1,1), (2,2), (3,3).
        assert_eq!(l.offset_of(&dims, &[1, 1]), 3);
        assert_eq!(l.offset_of(&dims, &[3, 3]), 5);
    }

    #[test]
    fn paper_figure3_run_counts() {
        // Figure 3(a): a 4x4 tile of an 8x8 column-major array needs 4
        // I/O calls (one per column).
        let col = FileLayout::col_major(2);
        let dims = [8, 8];
        let tile = Region::new(vec![1, 1], vec![4, 4]);
        let s = col.region_run_summary(&dims, &tile);
        assert_eq!(s.runs, 4);
        assert_eq!(s.elements, 16);

        // Figure 3(b): a 2x8 tile (2 full rows) of a row-major array is
        // a single contiguous run of 16 elements (split into calls by the
        // max-transfer size at the PFS layer, e.g. 2 calls of 8).
        let row = FileLayout::row_major(2);
        let tile_b = Region::new(vec![1, 1], vec![2, 8]);
        let s = row.region_run_summary(&dims, &tile_b);
        assert_eq!(s.runs, 1);
        assert_eq!(s.elements, 16);

        // Same 2 full rows from the column-major file: 8 runs of 2.
        let s = col.region_run_summary(&dims, &tile_b);
        assert_eq!(s.runs, 8);
    }

    #[test]
    fn run_summary_matches_exact_runs() {
        let dims = [6, 7];
        let layouts = [
            FileLayout::row_major(2),
            FileLayout::col_major(2),
            FileLayout::Hyperplane2D(1, 1),
            FileLayout::Hyperplane2D(1, -1),
            FileLayout::Blocked2D { br: 2, bc: 3 },
        ];
        let regions = [
            Region::new(vec![1, 1], vec![6, 7]),
            Region::new(vec![2, 3], vec![4, 5]),
            Region::new(vec![1, 1], vec![1, 1]),
            Region::new(vec![3, 1], vec![5, 7]),
            Region::new(vec![1, 4], vec![6, 4]),
        ];
        for layout in &layouts {
            for region in &regions {
                let exact = layout.region_runs(&dims, region);
                let summary = layout.region_run_summary(&dims, region);
                let exact_elems: u64 = exact.iter().map(|r| r.len).sum();
                assert_eq!(
                    summary.elements, exact_elems,
                    "{layout:?} {region:?} element mismatch"
                );
                // Summary may over-count runs for hyperplane and blocked
                // layouts when adjacent hyperplanes/blocks merge; it must
                // never under-count.
                assert!(
                    summary.runs >= exact.len() as u64,
                    "{layout:?} {region:?}: summary {} < exact {}",
                    summary.runs,
                    exact.len()
                );
                if matches!(layout, FileLayout::DimOrder(_)) {
                    assert_eq!(
                        summary.runs,
                        exact.len() as u64,
                        "{layout:?} {region:?} must be exact"
                    );
                }
                if !exact.is_empty() {
                    assert_eq!(summary.min_start, exact[0].start);
                    let last = exact.last().expect("nonempty");
                    assert_eq!(summary.max_end, last.start + last.len);
                }
            }
        }
    }

    #[test]
    fn full_region_is_single_run_dim_order() {
        for layout in [FileLayout::row_major(2), FileLayout::col_major(2)] {
            let dims = [9, 5];
            let s = layout.region_run_summary(&dims, &Region::full(&dims));
            assert_eq!(s.runs, 1);
            assert_eq!(s.elements, 45);
            assert_eq!(s.min_start, 0);
            assert_eq!(s.max_end, 45);
        }
    }

    #[test]
    fn from_hyperplane_routes_axis_aligned() {
        assert_eq!(
            FileLayout::from_hyperplane(&[1, 0]),
            FileLayout::row_major(2)
        );
        assert_eq!(
            FileLayout::from_hyperplane(&[0, 1]),
            FileLayout::col_major(2)
        );
        assert_eq!(
            FileLayout::from_hyperplane(&[0, -3]),
            FileLayout::col_major(2)
        );
        assert_eq!(
            FileLayout::from_hyperplane(&[2, -2]),
            FileLayout::Hyperplane2D(1, -1)
        );
        assert_eq!(FileLayout::row_major(2).hyperplane(), Some([1, 0]));
        assert_eq!(FileLayout::col_major(2).hyperplane(), Some([0, 1]));
    }

    #[test]
    fn blocked_layout_block_run_merging() {
        // 4x4 array, 2x2 blocks: a full block is one run.
        let l = FileLayout::Blocked2D { br: 2, bc: 2 };
        let dims = [4, 4];
        let s = l.region_run_summary(&dims, &Region::new(vec![1, 1], vec![2, 2]));
        assert_eq!(s.runs, 1);
        assert_eq!(s.elements, 4);
        // A tile spanning 2x4 (two blocks side by side) = 2 runs.
        let s = l.region_run_summary(&dims, &Region::new(vec![1, 1], vec![2, 4]));
        assert_eq!(s.runs, 2);
        // A 4x2 tile (two stacked blocks) = 2 runs.
        let s = l.region_run_summary(&dims, &Region::new(vec![1, 1], vec![4, 2]));
        assert_eq!(s.runs, 2);
        // A misaligned 2x2 tile crossing 4 blocks = 4 runs... each block
        // contributes a 1x1 partial (1 run each).
        let s = l.region_run_summary(&dims, &Region::new(vec![2, 2], vec![3, 3]));
        assert_eq!(s.runs, 4);
    }

    #[test]
    fn clamping_and_empty_regions() {
        let l = FileLayout::row_major(2);
        let dims = [4, 4];
        let s = l.region_run_summary(&dims, &Region::new(vec![3, 3], vec![10, 10]));
        assert_eq!(s.elements, 4); // clamped to [3..4]x[3..4]
        let s = l.region_run_summary(&dims, &Region::new(vec![3, 3], vec![2, 10]));
        assert_eq!(s, RunSummary::default());
        assert!(Region::new(vec![5, 1], vec![4, 4]).is_empty());
    }

    #[test]
    fn region_basics() {
        let r = Region::new(vec![2, 3], vec![4, 7]);
        assert_eq!(r.extent(0), 3);
        assert_eq!(r.extent(1), 5);
        assert_eq!(r.len(), 15);
        assert!(r.contains(&[3, 5]));
        assert!(!r.contains(&[1, 5]));
        assert_eq!(Region::full(&[3, 3]).len(), 9);
    }

    #[test]
    fn region_overlap() {
        let a = Region::new(vec![1, 1], vec![4, 4]);
        assert!(a.overlaps(&Region::new(vec![4, 4], vec![8, 8])), "corner");
        assert!(a.overlaps(&a));
        assert!(!a.overlaps(&Region::new(vec![5, 1], vec![8, 4])), "apart");
        assert!(!a.overlaps(&Region::new(vec![2, 5], vec![3, 9])));
        // Empty and rank-mismatched regions overlap nothing.
        assert!(!a.overlaps(&Region::new(vec![3, 3], vec![2, 3])));
        assert!(!a.overlaps(&Region::new(vec![1], vec![4])));
        // Ordering is total and deterministic (map keys).
        let b = Region::new(vec![1, 1], vec![3, 9]);
        assert!(b < a);
    }
}
