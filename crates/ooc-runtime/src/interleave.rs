//! Array chunking and interleaving — the ingredients of the paper's
//! hand-optimized (`h-opt`) versions.
//!
//! When several same-shaped arrays are always accessed tile-by-tile
//! together (e.g. `U` and `V` in the running example), storing them
//! *interleaved* in one file lets a single I/O call fetch the
//! corresponding tile pieces of every member: the per-tile call count
//! drops by roughly the group size. The paper reports an extra ~8%
//! over the compiler-optimized versions from this (plus chunking —
//! storing data in tile-shaped blocks, which [`FileLayout::Blocked2D`]
//! models).
//!
//! [`FileLayout::Blocked2D`]: crate::layout::FileLayout::Blocked2D

use crate::array::{summary_cost, IoCost};
use crate::layout::{FileLayout, Region, RunSummary};
use crate::store::ELEM_BYTES;

/// A group of `members` same-shape arrays stored element-interleaved
/// under a common base layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterleavedGroup {
    /// Shared dimensions of every member.
    pub dims: Vec<i64>,
    /// The base layout ordering element *positions*; member values for
    /// one position are adjacent in the file.
    pub base: FileLayout,
    /// Number of interleaved arrays.
    pub members: usize,
}

impl InterleavedGroup {
    /// Creates a group.
    ///
    /// # Panics
    /// Panics on zero members.
    #[must_use]
    pub fn new(dims: &[i64], base: FileLayout, members: usize) -> Self {
        assert!(members > 0, "empty interleave group");
        InterleavedGroup {
            dims: dims.to_vec(),
            base,
            members,
        }
    }

    /// Total elements in the combined file.
    #[must_use]
    pub fn file_elements(&self) -> u64 {
        self.dims.iter().product::<i64>() as u64 * self.members as u64
    }

    /// File offset of member `m`'s element at `idx`.
    #[must_use]
    pub fn offset_of(&self, member: usize, idx: &[i64]) -> u64 {
        assert!(member < self.members);
        self.base.offset_of(&self.dims, idx) * self.members as u64 + member as u64
    }

    /// Run summary for reading the tile of **every** member over
    /// `region` in one pass: same run structure as the base layout,
    /// with each run `members`× longer. This is where interleaving
    /// wins: one call moves the group's whole tile slice.
    #[must_use]
    pub fn group_run_summary(&self, region: &Region) -> RunSummary {
        let s = self.base.region_run_summary(&self.dims, region);
        RunSummary {
            runs: s.runs,
            elements: s.elements * self.members as u64,
            min_start: s.min_start * self.members as u64,
            max_end: s.max_end * self.members as u64,
        }
    }

    /// I/O cost of a grouped tile access under a call-size cap.
    #[must_use]
    pub fn group_io_cost(&self, region: &Region, max_call_elems: u64) -> IoCost {
        summary_cost(self.group_run_summary(region), max_call_elems)
    }

    /// Run summary for reading only ONE member's tile: every element of
    /// the member is isolated by the interleaving stride, so each base
    /// *element* becomes its own run (the penalty interleaving pays when
    /// arrays are not accessed together).
    #[must_use]
    pub fn single_member_run_summary(&self, region: &Region) -> RunSummary {
        let s = self.base.region_run_summary(&self.dims, region);
        if self.members == 1 {
            return s;
        }
        RunSummary {
            runs: s.elements,
            elements: s.elements,
            min_start: s.min_start * self.members as u64,
            max_end: s.max_end * self.members as u64,
        }
    }
}

/// Convenience: bytes moved by an [`IoCost`].
#[must_use]
pub fn cost_bytes(c: &IoCost) -> u64 {
    c.elements * ELEM_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_interleave() {
        let g = InterleavedGroup::new(&[2, 2], FileLayout::row_major(2), 3);
        // Position of (1,1) is 0: members at 0,1,2; (1,2) position 1: 3,4,5.
        assert_eq!(g.offset_of(0, &[1, 1]), 0);
        assert_eq!(g.offset_of(2, &[1, 1]), 2);
        assert_eq!(g.offset_of(0, &[1, 2]), 3);
        assert_eq!(g.offset_of(1, &[2, 2]), 10);
        assert_eq!(g.file_elements(), 12);
    }

    #[test]
    fn group_read_keeps_run_count() {
        // Figure-3 style: 2 full rows of an 8x8 row-major pair. A single
        // run for the group covers both arrays' tiles.
        let g = InterleavedGroup::new(&[8, 8], FileLayout::row_major(2), 2);
        let region = Region::new(vec![1, 1], vec![2, 8]);
        let s = g.group_run_summary(&region);
        assert_eq!(s.runs, 1);
        assert_eq!(s.elements, 32); // both members
                                    // With max 8 elements/call: 4 calls fetch BOTH tiles — versus
                                    // 2 + 2 = 4 for separate files; the win appears when the fixed
                                    // per-run cost dominates (strided layouts).
        let c = g.group_io_cost(&region, 8);
        assert_eq!(c.calls, 4);
    }

    #[test]
    fn group_beats_separate_for_strided_tiles() {
        // Column-major base, 4x4 tile of an 8x8 array: 4 runs either way,
        // but the group's 4 runs carry 2 arrays' data: 4 calls vs 8.
        let g = InterleavedGroup::new(&[8, 8], FileLayout::col_major(2), 2);
        let region = Region::new(vec![1, 1], vec![4, 4]);
        let grouped = g.group_io_cost(&region, 1 << 20).calls;
        let single = FileLayout::col_major(2)
            .region_run_summary(&[8, 8], &region)
            .runs;
        assert_eq!(grouped, 4);
        assert_eq!(single * 2, 8);
    }

    #[test]
    fn single_member_pays_stride_penalty() {
        let g = InterleavedGroup::new(&[4, 4], FileLayout::row_major(2), 2);
        let region = Region::new(vec![1, 1], vec![1, 4]);
        let s = g.single_member_run_summary(&region);
        assert_eq!(s.runs, 4); // one run per element
        let g1 = InterleavedGroup::new(&[4, 4], FileLayout::row_major(2), 1);
        assert_eq!(g1.single_member_run_summary(&region).runs, 1);
    }

    #[test]
    #[should_panic(expected = "empty interleave group")]
    fn zero_members_rejected() {
        let _ = InterleavedGroup::new(&[2, 2], FileLayout::row_major(2), 0);
    }
}
