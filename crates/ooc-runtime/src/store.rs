//! Backing stores for out-of-core array files.
//!
//! The runtime reads and writes *runs* of `f64` elements at element
//! offsets. Two stores are provided:
//!
//! * [`FileStore`] — a real file on disk (what PASSION would use).
//! * [`MemStore`] — an in-memory byte vector with identical semantics,
//!   for fast deterministic tests and for simulation-mode executions
//!   that never touch data at all.

use crate::profile::AccessRecord;
use crate::trace::MeasuredIo;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

/// Size of one stored element in bytes (double precision, as in the
/// paper's experiments).
pub const ELEM_BYTES: u64 = 8;

/// A store of `f64` elements addressed by element offset.
pub trait Store {
    /// Number of elements the store holds.
    fn len(&self) -> u64;

    /// `true` if the store holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads `buf.len()` elements starting at element `offset`.
    ///
    /// # Errors
    /// Fails on I/O errors or out-of-range reads.
    fn read_run(&self, offset: u64, buf: &mut [f64]) -> io::Result<()>;

    /// Writes `buf.len()` elements starting at element `offset`.
    ///
    /// # Errors
    /// Fails on I/O errors or out-of-range writes.
    fn write_run(&mut self, offset: u64, buf: &[f64]) -> io::Result<()>;

    /// Zeroes any measurement this store collects (no-op for plain
    /// stores; [`TracingStore`](crate::trace::TracingStore) resets its
    /// trace). Wrappers forward to their inner store.
    fn reset_metrics(&mut self) {}

    /// Measured I/O collected so far, when this store (or a wrapped
    /// one) is instrumented.
    fn metrics(&self) -> Option<MeasuredIo> {
        None
    }

    /// The full `(offset, len, read/write)` call trace, when this
    /// store (or a wrapped one) is a
    /// [`ProfilingStore`](crate::profile::ProfilingStore). Wrappers
    /// forward to their inner store.
    fn access_log(&self) -> Option<Vec<AccessRecord>> {
        None
    }
}

impl<S: Store + ?Sized> Store for Box<S> {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_run(&self, offset: u64, buf: &mut [f64]) -> io::Result<()> {
        (**self).read_run(offset, buf)
    }

    fn write_run(&mut self, offset: u64, buf: &[f64]) -> io::Result<()> {
        (**self).write_run(offset, buf)
    }

    fn reset_metrics(&mut self) {
        (**self).reset_metrics();
    }

    fn metrics(&self) -> Option<MeasuredIo> {
        (**self).metrics()
    }

    fn access_log(&self) -> Option<Vec<AccessRecord>> {
        (**self).access_log()
    }
}

/// In-memory store.
#[derive(Debug, Clone)]
pub struct MemStore {
    data: Vec<f64>,
}

impl MemStore {
    /// Zero-filled store of `len` elements.
    #[must_use]
    pub fn new(len: u64) -> Self {
        MemStore {
            data: vec![0.0; usize::try_from(len).expect("store too large for memory")],
        }
    }

    /// Direct view of the contents (tests).
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

impl Store for MemStore {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn read_run(&self, offset: u64, buf: &mut [f64]) -> io::Result<()> {
        let start = usize::try_from(offset).map_err(|_| range_err())?;
        let end = start.checked_add(buf.len()).ok_or_else(range_err)?;
        let src = self.data.get(start..end).ok_or_else(range_err)?;
        buf.copy_from_slice(src);
        Ok(())
    }

    fn write_run(&mut self, offset: u64, buf: &[f64]) -> io::Result<()> {
        let start = usize::try_from(offset).map_err(|_| range_err())?;
        let end = start.checked_add(buf.len()).ok_or_else(range_err)?;
        let dst = self.data.get_mut(start..end).ok_or_else(range_err)?;
        dst.copy_from_slice(buf);
        Ok(())
    }
}

fn range_err() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, "run out of store range")
}

/// A real file store; elements are little-endian `f64`s.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    len: u64,
}

impl FileStore {
    /// Creates (truncating) a file sized for `len` elements.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn create(path: &Path, len: u64) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(len * ELEM_BYTES)?;
        Ok(FileStore { file, len })
    }

    /// Opens an existing file; its size must be a multiple of 8.
    ///
    /// # Errors
    /// Propagates filesystem errors; fails on odd-sized files.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let bytes = file.metadata()?.len();
        if bytes % ELEM_BYTES != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file size not a multiple of the element size",
            ));
        }
        Ok(FileStore {
            file,
            len: bytes / ELEM_BYTES,
        })
    }
}

impl Store for FileStore {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_run(&self, offset: u64, buf: &mut [f64]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        if offset + buf.len() as u64 > self.len {
            return Err(range_err());
        }
        let mut bytes = vec![0u8; buf.len() * ELEM_BYTES as usize];
        self.file.read_exact_at(&mut bytes, offset * ELEM_BYTES)?;
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            buf[i] = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Ok(())
    }

    fn write_run(&mut self, offset: u64, buf: &[f64]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        if offset + buf.len() as u64 > self.len {
            return Err(range_err());
        }
        let mut bytes = Vec::with_capacity(buf.len() * ELEM_BYTES as usize);
        for v in buf {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.file.write_all_at(&bytes, offset * ELEM_BYTES)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memstore_roundtrip() {
        let mut s = MemStore::new(10);
        s.write_run(2, &[1.0, 2.0, 3.0]).expect("write");
        let mut buf = [0.0; 5];
        s.read_run(0, &mut buf).expect("read");
        assert_eq!(buf, [0.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn memstore_bounds_checked() {
        let mut s = MemStore::new(4);
        assert!(s.write_run(3, &[1.0, 2.0]).is_err());
        let mut buf = [0.0; 2];
        assert!(s.read_run(3, &mut buf).is_err());
        assert!(s.read_run(2, &mut buf).is_ok());
    }

    #[test]
    fn filestore_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ooc-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("arr.dat");
        {
            let mut s = FileStore::create(&path, 16).expect("create");
            assert_eq!(s.len(), 16);
            s.write_run(5, &[3.25, -1.5]).expect("write");
            let mut buf = [0.0; 3];
            s.read_run(4, &mut buf).expect("read");
            assert_eq!(buf, [0.0, 3.25, -1.5]);
        }
        {
            let s = FileStore::open(&path).expect("open");
            assert_eq!(s.len(), 16);
            let mut buf = [0.0; 2];
            s.read_run(5, &mut buf).expect("read");
            assert_eq!(buf, [3.25, -1.5]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn filestore_bounds_checked() {
        let dir = std::env::temp_dir().join(format!("ooc-store-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("arr.dat");
        let mut s = FileStore::create(&path, 4).expect("create");
        assert!(s.write_run(3, &[1.0, 2.0]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
