//! # ooc-runtime
//!
//! A PASSION-style out-of-core runtime (cf. Thakur et al., *PASSION:
//! Optimized I/O for parallel applications*): out-of-core arrays live
//! in files under configurable [`FileLayout`]s, programs stage
//! rectangular data [`Tile`]s between file and memory, and every
//! transfer is accounted as the number of I/O **calls** it costs —
//! the quantity the ICPP'99 compiler optimizations minimize.
//!
//! * [`layout`] — dimension-order, general 2-D hyperplane, and blocked
//!   file layouts with exact contiguous-run accounting.
//! * [`store`] — real-file and in-memory backing stores.
//! * [`mod@array`] — [`OocArray`]: tile read/write with [`IoStats`].
//! * [`budget`] — the paper's 1/128 memory rule and tile sizing.
//! * [`interleave`] — chunking/interleaving used by the hand-optimized
//!   `h-opt` program versions.
//! * [`trace`] — [`TracingStore`]: measured per-store I/O (calls,
//!   volume, seek distance, run-length histogram).
//! * [`profile`] — [`ProfilingStore`]: the full access-pattern call
//!   trace, with seek-distance CDFs, sequential-run statistics, and
//!   ASCII file heatmaps.
//! * [`fault`] — [`FaultStore`]: deterministic seeded transient-fault
//!   injection, recovered by [`RetryPolicy`].
//! * [`shared`] — [`SharedStore`]: a cloneable `Arc<Mutex<…>>` handle
//!   that lets prefetch/write-behind threads share one store.
//! * [`testing`] — store factories and temp-dir plumbing for
//!   differential tests.

#![warn(missing_docs)]

pub mod array;
pub mod budget;
pub mod fault;
pub mod interleave;
pub mod layout;
pub mod profile;
pub mod shared;
pub mod store;
pub mod testing;
pub mod trace;

pub use array::{summary_cost, IoCost, IoStats, OocArray, RetryPolicy, RuntimeConfig, Tile};
pub use budget::{square_tile_edge, tile_span, BudgetExceeded, MemoryBudget};
pub use fault::{fault_plan, raw_fault, FaultConfig, FaultHandle, FaultStore};
pub use interleave::InterleavedGroup;
pub use layout::{FileLayout, Region, Run, RunSummary};
pub use profile::{
    heatmap, sequential_stats, AccessLog, AccessRecord, ProfilingStore, SeekCdf, SeqStats,
};
pub use shared::SharedStore;
pub use store::{FileStore, MemStore, Store, ELEM_BYTES};
pub use trace::{MeasuredIo, TraceHandle, TracingStore, RUN_HIST_BUCKETS};
