//! # ooc-runtime
//!
//! A PASSION-style out-of-core runtime (cf. Thakur et al., *PASSION:
//! Optimized I/O for parallel applications*): out-of-core arrays live
//! in files under configurable [`FileLayout`]s, programs stage
//! rectangular data [`Tile`]s between file and memory, and every
//! transfer is accounted as the number of I/O **calls** it costs —
//! the quantity the ICPP'99 compiler optimizations minimize.
//!
//! * [`layout`] — dimension-order, general 2-D hyperplane, and blocked
//!   file layouts with exact contiguous-run accounting.
//! * [`store`] — real-file and in-memory backing stores.
//! * [`mod@array`] — [`OocArray`]: tile read/write with [`IoStats`].
//! * [`budget`] — the paper's 1/128 memory rule and tile sizing.
//! * [`interleave`] — chunking/interleaving used by the hand-optimized
//!   `h-opt` program versions.
//! * [`trace`] — [`TracingStore`]: measured per-store I/O (calls,
//!   volume, seek distance, run-length histogram).
//! * [`profile`] — [`ProfilingStore`]: the full access-pattern call
//!   trace, with seek-distance CDFs, sequential-run statistics, and
//!   ASCII file heatmaps.
//! * [`fault`] — [`FaultStore`]: deterministic seeded transient-fault
//!   injection, recovered by [`RetryPolicy`], plus hard
//!   [`CrashMode`]s (`CrashAt`, torn writes) for crash-consistency
//!   tests.
//! * [`checksum`] — [`ChecksummedStore`]: per-chunk CRC64 sidecar;
//!   corrupt or torn data surfaces as a typed, non-transient error.
//! * [`journal`] — the write intent [`Journal`]: append-only
//!   intent/commit log with pre-images, torn-tail-tolerant scan, and
//!   idempotent [`rollback`].
//! * [`ledger`] — the I/O provenance ledger: every transfer
//!   classified by cause (compulsory, capacity miss, wasted prefetch,
//!   replay, …) in a partition that conserves exactly against the
//!   analytic and measured totals.
//! * [`shared`] — [`SharedStore`]: a cloneable `Arc<Mutex<…>>` handle
//!   that lets prefetch/write-behind threads share one store.
//! * [`striped`] — [`StripedStore`]: 64 KB stripes round-robined over
//!   K per-node stores behind bounded FIFO lanes ([`IoNodePool`]),
//!   with deterministic per-node traffic counters and timing
//!   histograms — measured multi-I/O-node contention. Optional
//!   degraded mode: rotating parity, dead-node reconstruction, hedged
//!   reads, and an online scrubber.
//! * [`parity`] — [`ParityLayout`]: the rotating-parity geometry and
//!   bitwise-XOR combine the degraded mode is built on.
//! * [`testing`] — store factories and temp-dir plumbing for
//!   differential tests.

#![warn(missing_docs)]

pub mod array;
pub mod budget;
pub mod checksum;
pub mod fault;
pub mod interleave;
pub mod journal;
pub mod layout;
pub mod ledger;
pub mod parity;
pub mod profile;
pub mod shared;
pub mod store;
pub mod striped;
pub mod testing;
pub mod trace;

pub use array::{summary_cost, IoCost, IoStats, OocArray, RetryPolicy, RuntimeConfig, Tile};
pub use budget::{square_tile_edge, tile_span, BudgetExceeded, MemoryBudget};
pub use checksum::{
    corrupt_error, crc64, crc64_f64s, is_corrupt, ChecksumHandle, ChecksummedStore, CorruptError,
};
pub use fault::{
    fault_plan, is_crashed, is_node_down, is_node_slow, node_down, node_down_error,
    node_slow_error, raw_fault, CrashMode, CrashedError, FaultConfig, FaultHandle, FaultStore,
    NodeDownError, NodeFaultConfig, NodeSlowError,
};
pub use interleave::InterleavedGroup;
pub use journal::{
    parse_journal, rollback, FileLog, Journal, JournalRecord, JournalScan, LogStore, MemLog,
    SharedJournal, UndoWriter, WriteIntent,
};
pub use layout::{FileLayout, Region, Run, RunSummary};
pub use ledger::{
    CauseTotal, EvictDetail, IoCause, LedgerEvent, LedgerRecorder, ProvenanceLedger, TouchTracker,
};
pub use parity::{xor_into, ParityLayout};
pub use profile::{
    heatmap, sequential_stats, AccessLog, AccessRecord, ProfilingStore, SeekCdf, SeqStats,
};
pub use shared::SharedStore;
pub use store::{FileStore, MemStore, Store, ELEM_BYTES};
pub use striped::{
    part_len, CallClass, DegradedMode, HedgeConfig, IoNodePool, NodeHealth, NodeStats, NodeTiming,
    OnlineScrubber, RepairCounter, RepairIo, ResilverReport, ScrubReport, ServiceModel,
    StripeConfig, StripedStore,
};
pub use trace::{MeasuredIo, TraceHandle, TracingStore, RUN_HIST_BUCKETS};
