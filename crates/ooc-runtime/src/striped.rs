//! Striped per-I/O-node storage: one logical [`Store`] split into
//! 64 KB stripes round-robined across K per-node part stores, each
//! fronted by a bounded FIFO request lane so contention is
//! *experienced* rather than priced.
//!
//! This is the measured counterpart of `pfs-sim`'s analytic PFS
//! model: `PfsConfig::node_of` assigns stripes to I/O nodes on paper,
//! [`StripedStore`] actually routes every element run through the
//! node that owns its stripe. A shared [`IoNodePool`] serializes the
//! calls that land on one node (strict ticket FIFO, bounded queue
//! admission, optional simulated service time) and counts two kinds
//! of per-node statistics:
//!
//! * **deterministic traffic** ([`NodeStats::io`], a [`MeasuredIo`])
//!   — call/element counts and segment run-length histograms. These
//!   are pure functions of the offset→stripe mapping, independent of
//!   thread interleaving, so tests and CI gates compare them exactly.
//!   Splitting a run at stripe boundaries does not depend on the node
//!   count, so per-node totals are *conserved*: summed over K nodes
//!   they equal the single-node totals.
//! * **timing** ([`NodeStats::timing`]) — queue-depth and wait-time
//!   histograms plus busy time. These depend on real scheduling and
//!   are reported as warn-only observability, never gated.

use crate::store::Store;
use crate::trace::MeasuredIo;
use ooc_metrics::Histogram;
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Simulated service time per call on one I/O node. With the default
/// (zero) model a lane only serializes concurrent callers; non-zero
/// values hold the lane for `call_ns + elems * elem_ns` nanoseconds
/// per call so speedup measurements see realistic node occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceModel {
    /// Fixed nanoseconds one call occupies the node.
    pub call_ns: u64,
    /// Additional nanoseconds per element transferred.
    pub elem_ns: u64,
}

impl ServiceModel {
    /// Service duration of one call moving `elems` elements.
    #[must_use]
    pub fn duration(&self, elems: u64) -> Duration {
        Duration::from_nanos(
            self.call_ns
                .saturating_add(self.elem_ns.saturating_mul(elems)),
        )
    }

    /// `true` when the model adds no simulated time.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.call_ns == 0 && self.elem_ns == 0
    }
}

/// Striping geometry plus lane behavior for an [`IoNodePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeConfig {
    /// Number of simulated I/O nodes (the paper's PFS: 64).
    pub nodes: usize,
    /// Stripe unit in *elements*. The default mirrors the Paragon's
    /// 64 KB stripes: 8192 eight-byte elements.
    pub stripe_elems: u64,
    /// Bounded FIFO depth per node: a caller blocks before enqueueing
    /// once this many requests are waiting or in service.
    pub queue_capacity: usize,
    /// Simulated per-call service time.
    pub service: ServiceModel,
}

impl Default for StripeConfig {
    fn default() -> Self {
        StripeConfig {
            nodes: 4,
            stripe_elems: 8192,
            queue_capacity: 64,
            service: ServiceModel::default(),
        }
    }
}

impl StripeConfig {
    /// The default geometry over `nodes` I/O nodes.
    #[must_use]
    pub fn with_nodes(nodes: usize) -> Self {
        StripeConfig {
            nodes,
            ..StripeConfig::default()
        }
    }
}

/// Timing-dependent observability for one node's lane. Values vary
/// with thread scheduling — report them, never gate on them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeTiming {
    /// Total nanoseconds callers waited for this lane.
    pub wait_ns: u64,
    /// Total nanoseconds the node spent servicing calls (including
    /// simulated service time).
    pub busy_ns: u64,
    /// High-water mark of requests waiting or in service.
    pub max_depth: u64,
    /// Distribution of queue depth observed at each arrival.
    pub depth_hist: Histogram,
    /// Distribution of per-call wait times in nanoseconds.
    pub wait_hist: Histogram,
}

/// Everything one I/O node counted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeStats {
    /// Deterministic traffic: per-segment calls, elements, and run
    /// lengths (pure function of the stripe mapping).
    pub io: MeasuredIo,
    /// Timing-dependent lane observability.
    pub timing: NodeTiming,
}

/// One node's FIFO lane: a ticket dispenser plus its statistics.
#[derive(Debug, Default)]
struct LaneState {
    next_ticket: u64,
    serving: u64,
    stats: NodeStats,
}

#[derive(Debug, Default)]
struct Lane {
    state: Mutex<LaneState>,
    grant: Condvar,
}

#[derive(Debug)]
struct PoolInner {
    cfg: StripeConfig,
    lanes: Vec<Lane>,
}

/// K per-node FIFO request lanes shared by every [`StripedStore`] of
/// a run. Cloning shares the pool (and its statistics), so all
/// arrays' traffic aggregates into one per-node picture — the
/// measured analogue of `pfs-sim`'s machine-wide I/O node model.
#[derive(Debug, Clone)]
pub struct IoNodePool {
    inner: Arc<PoolInner>,
}

impl IoNodePool {
    /// A pool of `cfg.nodes` idle lanes.
    ///
    /// # Panics
    /// Panics on zero nodes or a zero stripe unit.
    #[must_use]
    pub fn new(cfg: StripeConfig) -> Self {
        assert!(cfg.nodes > 0, "a pool needs at least one I/O node");
        assert!(cfg.stripe_elems > 0, "stripe unit must be positive");
        IoNodePool {
            inner: Arc::new(PoolInner {
                cfg,
                lanes: (0..cfg.nodes).map(|_| Lane::default()).collect(),
            }),
        }
    }

    /// The pool's configuration.
    #[must_use]
    pub fn config(&self) -> &StripeConfig {
        &self.inner.cfg
    }

    /// Number of I/O nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.inner.cfg.nodes
    }

    /// Runs one store call on `node`'s lane: waits for bounded FIFO
    /// admission and the lane grant, executes `op`, holds the lane
    /// for the simulated service time, and records the node's
    /// statistics (`failed_calls` on error).
    ///
    /// # Errors
    /// Propagates `op`'s error.
    pub fn execute<R>(
        &self,
        node: usize,
        is_read: bool,
        elems: u64,
        op: impl FnOnce() -> io::Result<R>,
    ) -> io::Result<R> {
        let lane = &self.inner.lanes[node];
        let capacity = self.inner.cfg.queue_capacity.max(1) as u64;
        let arrived = Instant::now();
        let ticket;
        {
            let mut st = lane.state.lock().expect("lane poisoned");
            // Queue-wait blame span: covers bounded admission plus the
            // FIFO grant wait, attributed to the *calling* lane.
            let _qwait = (ooc_trace::enabled()
                && (st.next_ticket - st.serving >= capacity || st.serving != st.next_ticket))
                .then(|| {
                    ooc_trace::span_with(
                        "striped",
                        "queue-wait",
                        vec![("node", (node as u64).into())],
                    )
                });
            while st.next_ticket - st.serving >= capacity {
                st = lane.grant.wait(st).expect("lane poisoned");
            }
            ticket = st.next_ticket;
            st.next_ticket += 1;
            let depth = st.next_ticket - st.serving;
            st.stats.timing.max_depth = st.stats.timing.max_depth.max(depth);
            st.stats.timing.depth_hist.observe(depth);
            while st.serving != ticket {
                st = lane.grant.wait(st).expect("lane poisoned");
            }
            let wait_ns = u64::try_from(arrived.elapsed().as_nanos()).unwrap_or(u64::MAX);
            st.stats.timing.wait_ns += wait_ns;
            st.stats.timing.wait_hist.observe(wait_ns);
        }
        let started = Instant::now();
        let result = op();
        let service = self.inner.cfg.service;
        if !service.is_zero() {
            std::thread::sleep(service.duration(elems));
        }
        let mut st = lane.state.lock().expect("lane poisoned");
        match &result {
            Ok(_) => {
                let io = &mut st.stats.io;
                if is_read {
                    io.read_calls += 1;
                    io.read_elems += elems;
                } else {
                    io.write_calls += 1;
                    io.write_elems += elems;
                }
                io.run_hist[MeasuredIo::bucket_of(elems)] += 1;
            }
            Err(_) => st.stats.io.failed_calls += 1,
        }
        st.stats.timing.busy_ns += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        st.serving += 1;
        lane.grant.notify_all();
        drop(st);
        result
    }

    /// A copy of every node's statistics, in node order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<NodeStats> {
        self.inner
            .lanes
            .iter()
            .map(|l| l.state.lock().expect("lane poisoned").stats.clone())
            .collect()
    }

    /// Per-node deterministic traffic summed into one [`MeasuredIo`].
    #[must_use]
    pub fn total_io(&self) -> MeasuredIo {
        let mut total = MeasuredIo::default();
        for s in self.snapshot() {
            total.merge(&s.io);
        }
        total
    }

    /// Zeroes every node's statistics. [`StripedStore`] forwards its
    /// `reset_metrics` here; since executors reset all arrays at one
    /// barrier (after seeding), the last reset leaves the pool clean
    /// for the compute phase.
    pub fn reset_stats(&self) {
        for lane in &self.inner.lanes {
            lane.state.lock().expect("lane poisoned").stats = NodeStats::default();
        }
    }
}

/// One contiguous piece of a run, entirely within one stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    node: usize,
    part_off: u64,
    buf_off: usize,
    len: u64,
}

/// A logical element store striped across K per-node part stores.
///
/// Element offset `o` lives in global stripe `g = o / stripe_elems`;
/// stripe `g` belongs to node `g % K` at local stripe `g / K`, so the
/// part-store offset is `(g / K) * stripe_elems + o % stripe_elems` —
/// exactly `pfs-sim`'s `PfsConfig::node_of` mapping, executed. Every
/// call is split at stripe boundaries and each piece is served under
/// its node's FIFO lane.
#[derive(Debug)]
pub struct StripedStore<S> {
    pool: IoNodePool,
    parts: Vec<S>,
    len: u64,
}

impl<S: Store> StripedStore<S> {
    /// Builds a striped store of `len` elements over the pool's node
    /// count, creating each part via `make_part(node, part_len)`.
    ///
    /// # Errors
    /// Propagates `make_part` failures; rejects parts of the wrong
    /// length.
    pub fn build(
        pool: &IoNodePool,
        len: u64,
        mut make_part: impl FnMut(usize, u64) -> io::Result<S>,
    ) -> io::Result<Self> {
        let nodes = pool.nodes();
        let mut parts = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let want = part_len(len, pool.config().stripe_elems, nodes, node);
            let part = make_part(node, want)?;
            if part.len() != want {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "striped part {node}: store holds {} elements, geometry needs {want}",
                        part.len()
                    ),
                ));
            }
            parts.push(part);
        }
        Ok(StripedStore {
            pool: pool.clone(),
            parts,
            len,
        })
    }

    /// The shared lane pool this store routes through.
    #[must_use]
    pub fn pool(&self) -> &IoNodePool {
        &self.pool
    }

    /// Splits `[offset, offset + len)` at stripe boundaries. The cut
    /// points depend only on the stripe unit — not the node count —
    /// which is what makes per-node call totals conserved across K.
    fn segments(&self, offset: u64, len: usize) -> Vec<Segment> {
        let stripe = self.pool.config().stripe_elems;
        let nodes = self.pool.nodes() as u64;
        let mut out = Vec::new();
        let mut off = offset;
        let mut remaining = len as u64;
        let mut buf_off = 0usize;
        while remaining > 0 {
            let g = off / stripe;
            let within = off % stripe;
            let take = (stripe - within).min(remaining);
            out.push(Segment {
                node: usize::try_from(g % nodes).expect("node index fits usize"),
                part_off: (g / nodes) * stripe + within,
                buf_off,
                len: take,
            });
            off += take;
            remaining -= take;
            buf_off += usize::try_from(take).expect("segment fits usize");
        }
        out
    }
}

/// Elements node `k` of `nodes` holds for a `len`-element store with
/// the given stripe unit (the last global stripe may be partial).
#[must_use]
pub fn part_len(len: u64, stripe_elems: u64, nodes: usize, k: usize) -> u64 {
    let nodes = nodes as u64;
    let k = k as u64;
    let full = len / stripe_elems; // complete stripes
    let tail = len % stripe_elems;
    // Complete stripes with index ≡ k (mod nodes).
    let mine = full / nodes + u64::from(full % nodes > k);
    let tail_mine = u64::from(tail > 0 && full % nodes == k) * tail;
    mine * stripe_elems + tail_mine
}

impl<S: Store> Store for StripedStore<S> {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_run(&self, offset: u64, buf: &mut [f64]) -> io::Result<()> {
        if offset + buf.len() as u64 > self.len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "run out of store range",
            ));
        }
        for seg in self.segments(offset, buf.len()) {
            let end = seg.buf_off + usize::try_from(seg.len).expect("segment fits usize");
            let dst = &mut buf[seg.buf_off..end];
            self.pool.execute(seg.node, true, seg.len, || {
                self.parts[seg.node].read_run(seg.part_off, dst)
            })?;
        }
        Ok(())
    }

    fn write_run(&mut self, offset: u64, buf: &[f64]) -> io::Result<()> {
        if offset + buf.len() as u64 > self.len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "run out of store range",
            ));
        }
        for seg in self.segments(offset, buf.len()) {
            let end = seg.buf_off + usize::try_from(seg.len).expect("segment fits usize");
            let src = &buf[seg.buf_off..end];
            let part = &mut self.parts[seg.node];
            self.pool.execute(seg.node, false, seg.len, || {
                part.write_run(seg.part_off, src)
            })?;
        }
        Ok(())
    }

    fn reset_metrics(&mut self) {
        for part in &mut self.parts {
            part.reset_metrics();
        }
        self.pool.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn pool(nodes: usize, stripe: u64) -> IoNodePool {
        IoNodePool::new(StripeConfig {
            nodes,
            stripe_elems: stripe,
            ..StripeConfig::default()
        })
    }

    fn striped(nodes: usize, stripe: u64, len: u64) -> StripedStore<MemStore> {
        StripedStore::build(&pool(nodes, stripe), len, |_, l| Ok(MemStore::new(l)))
            .expect("build striped store")
    }

    #[test]
    fn part_lengths_cover_the_store() {
        for (len, stripe, nodes) in [(100, 8, 3), (64, 8, 8), (7, 8, 2), (0, 4, 4), (33, 8, 4)] {
            let total: u64 = (0..nodes).map(|k| part_len(len, stripe, nodes, k)).sum();
            assert_eq!(total, len, "len {len} stripe {stripe} nodes {nodes}");
        }
    }

    #[test]
    fn roundtrip_across_stripe_boundaries() {
        let mut s = striped(3, 4, 40);
        let data: Vec<f64> = (0..37).map(|i| i as f64 + 0.5).collect();
        s.write_run(2, &data).expect("write spanning stripes");
        let mut buf = vec![0.0; 37];
        s.read_run(2, &mut buf).expect("read spanning stripes");
        assert_eq!(buf, data);
        // Single-element probes hit the right nodes too.
        let mut one = [0.0];
        s.read_run(13, &mut one).expect("probe");
        assert_eq!(one[0], 11.5);
    }

    #[test]
    fn matches_a_flat_store_bit_for_bit() {
        let mut flat = MemStore::new(100);
        let mut s = striped(4, 8, 100);
        let mut x = 1.0;
        for (off, len) in [(0u64, 100usize), (17, 31), (90, 10), (8, 8), (95, 5)] {
            let data: Vec<f64> = (0..len)
                .map(|i| {
                    x += 0.25 + i as f64;
                    x
                })
                .collect();
            flat.write_run(off, &data).expect("flat write");
            s.write_run(off, &data).expect("striped write");
        }
        let mut a = vec![0.0; 100];
        let mut b = vec![0.0; 100];
        flat.read_run(0, &mut a).expect("flat read");
        s.read_run(0, &mut b).expect("striped read");
        assert_eq!(a, b);
    }

    #[test]
    fn per_node_totals_are_conserved_across_node_counts() {
        let workload = |s: &mut StripedStore<MemStore>| {
            let data: Vec<f64> = (0..50).map(f64::from).collect();
            s.write_run(3, &data).expect("write");
            let mut buf = vec![0.0; 64];
            s.read_run(0, &mut buf).expect("read");
            s.write_run(60, &data[..4]).expect("tail write");
        };
        let mut one = striped(1, 8, 64);
        workload(&mut one);
        let single = one.pool().total_io();
        for nodes in [2, 3, 4, 8] {
            let mut s = striped(nodes, 8, 64);
            workload(&mut s);
            let total = s.pool().total_io();
            assert_eq!(total, single, "totals conserved at {nodes} nodes");
            let per_node: u64 = s.pool().snapshot().iter().map(|n| n.io.total_calls()).sum();
            assert_eq!(per_node, single.total_calls());
        }
    }

    #[test]
    fn stats_are_deterministic_and_resettable() {
        let run = || {
            let mut s = striped(2, 4, 32);
            s.write_run(0, &[1.0; 32]).expect("write");
            let mut buf = [0.0; 10];
            s.read_run(5, &mut buf).expect("read");
            s.pool()
                .snapshot()
                .iter()
                .map(|n| n.io.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "deterministic per-node traffic");

        let mut s = striped(2, 4, 32);
        s.write_run(0, &[1.0; 32]).expect("write");
        assert!(s.pool().total_io().total_calls() > 0);
        s.reset_metrics();
        assert_eq!(s.pool().total_io(), MeasuredIo::default());
    }

    #[test]
    fn lanes_serialize_concurrent_callers() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let p = IoNodePool::new(StripeConfig {
            nodes: 1,
            stripe_elems: 4,
            queue_capacity: 2,
            service: ServiceModel::default(),
        });
        let in_lane = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let p = p.clone();
                let in_lane = Arc::clone(&in_lane);
                scope.spawn(move || {
                    for _ in 0..50 {
                        p.execute(0, true, 4, || {
                            let now = in_lane.fetch_add(1, Ordering::SeqCst);
                            assert_eq!(now, 0, "lane admitted two callers at once");
                            std::thread::yield_now();
                            in_lane.fetch_sub(1, Ordering::SeqCst);
                            Ok(())
                        })
                        .expect("op");
                    }
                });
            }
        });
        let stats = p.snapshot();
        assert_eq!(stats[0].io.read_calls, 400);
        assert!(stats[0].timing.max_depth >= 1);
        assert!(stats[0].timing.depth_hist.count == 400);
    }

    #[test]
    fn failed_calls_are_counted_separately() {
        let mut s = striped(2, 4, 8);
        // In-range for the logical store but force a part error by
        // using the pool directly with a failing op.
        let err = s
            .pool()
            .execute(0, true, 1, || -> io::Result<()> {
                Err(io::Error::other("boom"))
            })
            .expect_err("op error propagates");
        assert_eq!(err.to_string(), "boom");
        assert_eq!(s.pool().snapshot()[0].io.failed_calls, 1);
        assert_eq!(s.pool().snapshot()[0].io.read_calls, 0);
        // The lane is still usable afterwards.
        s.write_run(0, &[1.0]).expect("write after failure");
    }

    #[test]
    fn service_model_duration() {
        let m = ServiceModel {
            call_ns: 1000,
            elem_ns: 10,
        };
        assert_eq!(m.duration(5), Duration::from_nanos(1050));
        assert!(!m.is_zero());
        assert!(ServiceModel::default().is_zero());
    }
}
