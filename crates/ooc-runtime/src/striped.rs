//! Striped per-I/O-node storage: one logical [`Store`] split into
//! 64 KB stripes round-robined across K per-node part stores, each
//! fronted by a bounded FIFO request lane so contention is
//! *experienced* rather than priced.
//!
//! This is the measured counterpart of `pfs-sim`'s analytic PFS
//! model: `PfsConfig::node_of` assigns stripes to I/O nodes on paper,
//! [`StripedStore`] actually routes every element run through the
//! node that owns its stripe. A shared [`IoNodePool`] serializes the
//! calls that land on one node (strict ticket FIFO, bounded queue
//! admission, optional simulated service time) and counts two kinds
//! of per-node statistics:
//!
//! * **deterministic traffic** ([`NodeStats::io`], a [`MeasuredIo`])
//!   — call/element counts and segment run-length histograms. These
//!   are pure functions of the offset→stripe mapping, independent of
//!   thread interleaving, so tests and CI gates compare them exactly.
//!   Splitting a run at stripe boundaries does not depend on the node
//!   count, so per-node totals are *conserved*: summed over K nodes
//!   they equal the single-node totals.
//! * **timing** ([`NodeStats::timing`]) — queue-depth and wait-time
//!   histograms plus busy time. These depend on real scheduling and
//!   are reported as warn-only observability, never gated.
//!
//! # Degraded mode
//!
//! With [`StripedStore::build_with_parity`] the store additionally
//! keeps a rotating parity lane (see [`ParityLayout`]): every group
//! of K−1 data stripes gets a full-stripe XOR parity chunk on the one
//! node holding none of the group's data. The pool then becomes a set
//! of **fault domains**:
//!
//! * nodes can die permanently ([`NodeFaultConfig::permanent_fail_at`]
//!   or [`IoNodePool::quarantine`]) — calls are rejected with a typed
//!   [`NodeDownError`](crate::NodeDownError) and reads reconstruct
//!   the lost chunk by XOR from its K−1 peers;
//! * lanes honor a queue-wait deadline
//!   ([`StripeConfig::queue_deadline_ns`]) — a lane that stops
//!   draining returns a typed
//!   [`NodeSlowError`](crate::NodeSlowError) instead of blocking
//!   forever;
//! * reads can be **hedged** ([`HedgeConfig`]): after a quantile-based
//!   wait the request is retired against the parity-derived peer set,
//!   masking gray stragglers;
//! * an [`OnlineScrubber`] walks parity groups in the background,
//!   verifying parity against data (CRC-corrupt chunks surface as
//!   typed errors from the checksum layer) and rewriting whichever
//!   side is stale; [`StripedStore::resilver`] rebuilds a replacement
//!   node from peers.
//!
//! All repair-plane traffic (parity RMW, reconstruction, hedges,
//! scrubbing) is counted **separately** from the data plane — in
//! [`NodeStats::repair`] per node and, when a
//! [`LedgerRecorder`] is attached, in the provenance ledger's repair
//! channel — so the data-plane conservation invariants above are
//! untouched by redundancy.

use crate::checksum::is_corrupt;
use crate::fault::{is_node_down, is_node_slow, node_down_error, node_slow_error, NodeFaultConfig};
use crate::ledger::{IoCause, LedgerRecorder};
use crate::parity::{xor_into, ParityLayout};
use crate::shared::SharedStore;
use crate::store::Store;
use crate::trace::MeasuredIo;
use ooc_metrics::Histogram;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Simulated service time per call on one I/O node. With the default
/// (zero) model a lane only serializes concurrent callers; non-zero
/// values hold the lane for `call_ns + elems * elem_ns` nanoseconds
/// per call so speedup measurements see realistic node occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceModel {
    /// Fixed nanoseconds one call occupies the node.
    pub call_ns: u64,
    /// Additional nanoseconds per element transferred.
    pub elem_ns: u64,
}

impl ServiceModel {
    /// Service duration of one call moving `elems` elements.
    #[must_use]
    pub fn duration(&self, elems: u64) -> Duration {
        Duration::from_nanos(
            self.call_ns
                .saturating_add(self.elem_ns.saturating_mul(elems)),
        )
    }

    /// `true` when the model adds no simulated time.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.call_ns == 0 && self.elem_ns == 0
    }
}

/// Hedged-read policy: a read waiting longer than
/// `max(min_ns, waitₚ · multiplier)` for its lane grant — where
/// `waitₚ` is the lane's observed wait-time quantile — gives up and
/// is retired against the parity-derived peer set instead. Only reads
/// hedge (a hedged write would race its abandoned twin); only stores
/// with a parity lane can hedge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Which wait-time quantile to base the deadline on, in ‰
    /// (950 = p95).
    pub quantile_per_mille: u32,
    /// Deadline multiplier over the quantile, in ‰ (3000 = 3×).
    pub multiplier_per_mille: u32,
    /// Floor in nanoseconds, so an idle lane's empty histogram does
    /// not hedge instantly.
    pub min_ns: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            quantile_per_mille: 950,
            multiplier_per_mille: 3000,
            min_ns: 200_000,
        }
    }
}

impl HedgeConfig {
    /// The hedge deadline for a lane with the given wait-time history.
    #[must_use]
    pub fn deadline_ns(&self, wait_hist: &Histogram) -> u64 {
        let q = f64::from(self.quantile_per_mille.min(1000)) / 1000.0;
        let scaled = wait_hist
            .quantile(q)
            .saturating_mul(u64::from(self.multiplier_per_mille))
            / 1000;
        scaled.max(self.min_ns)
    }
}

/// Striping geometry plus lane behavior for an [`IoNodePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeConfig {
    /// Number of simulated I/O nodes (the paper's PFS: 64).
    pub nodes: usize,
    /// Stripe unit in *elements*. The default mirrors the Paragon's
    /// 64 KB stripes: 8192 eight-byte elements.
    pub stripe_elems: u64,
    /// Bounded FIFO depth per node: a caller blocks before enqueueing
    /// once this many requests are waiting or in service.
    pub queue_capacity: usize,
    /// Simulated per-call service time.
    pub service: ServiceModel,
    /// Queue-wait deadline in nanoseconds: a caller that has not been
    /// granted the lane within this budget gets a typed
    /// [`NodeSlowError`](crate::NodeSlowError) instead of blocking
    /// indefinitely. `None` (the default) waits forever.
    pub queue_deadline_ns: Option<u64>,
    /// Hedged-read policy for stores with a parity lane. `None` (the
    /// default) never hedges.
    pub hedge: Option<HedgeConfig>,
}

impl Default for StripeConfig {
    fn default() -> Self {
        StripeConfig {
            nodes: 4,
            stripe_elems: 8192,
            queue_capacity: 64,
            service: ServiceModel::default(),
            queue_deadline_ns: None,
            hedge: None,
        }
    }
}

impl StripeConfig {
    /// The default geometry over `nodes` I/O nodes.
    #[must_use]
    pub fn with_nodes(nodes: usize) -> Self {
        StripeConfig {
            nodes,
            ..StripeConfig::default()
        }
    }
}

/// How a lane call should be accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallClass {
    /// Data-plane read: counted in [`NodeStats::io`].
    Read,
    /// Data-plane write: counted in [`NodeStats::io`].
    Write,
    /// Repair-plane traffic (parity RMW, reconstruction, hedges,
    /// scrubbing): counted in [`NodeStats::repair`] under `cause`,
    /// never in the conserved data-plane counters.
    Repair {
        /// Which repair activity this call belongs to (one of
        /// [`IoCause::REPAIR`]).
        cause: IoCause,
        /// Whether the call reads (vs. writes) the part store.
        is_read: bool,
    },
}

impl CallClass {
    /// A repair-plane read under `cause`.
    #[must_use]
    pub fn repair_read(cause: IoCause) -> Self {
        CallClass::Repair {
            cause,
            is_read: true,
        }
    }

    /// A repair-plane write under `cause`.
    #[must_use]
    pub fn repair_write(cause: IoCause) -> Self {
        CallClass::Repair {
            cause,
            is_read: false,
        }
    }
}

/// One I/O node's health as seen by its lane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum NodeHealth {
    /// Serving normally.
    #[default]
    Up,
    /// Alive but missed at least one caller's deadline (gray
    /// straggler). Still serves calls.
    Slow,
    /// Dead: every call is rejected with a typed
    /// [`NodeDownError`](crate::NodeDownError).
    Down,
}

/// Timing-dependent observability for one node's lane. Values vary
/// with thread scheduling — report them, never gate on them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeTiming {
    /// Total nanoseconds callers waited for this lane.
    pub wait_ns: u64,
    /// Total nanoseconds the node spent servicing calls (including
    /// simulated service time).
    pub busy_ns: u64,
    /// High-water mark of requests waiting or in service.
    pub max_depth: u64,
    /// Distribution of queue depth observed at each arrival.
    pub depth_hist: Histogram,
    /// Distribution of per-call wait times in nanoseconds.
    pub wait_hist: Histogram,
    /// Calls that gave up on the lane after missing their queue-wait
    /// or hedge deadline.
    pub timeouts: u64,
    /// Calls rejected because the node was down.
    pub down_rejections: u64,
}

/// Read/write call and element counts for one repair cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairCounter {
    /// Repair-plane read calls.
    pub read_calls: u64,
    /// Elements moved by repair reads.
    pub read_elems: u64,
    /// Repair-plane write calls.
    pub write_calls: u64,
    /// Elements moved by repair writes.
    pub write_elems: u64,
}

impl RepairCounter {
    fn add(&mut self, is_read: bool, elems: u64) {
        if is_read {
            self.read_calls += 1;
            self.read_elems += elems;
        } else {
            self.write_calls += 1;
            self.write_elems += elems;
        }
    }

    /// Total calls, reads plus writes.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.read_calls + self.write_calls
    }

    /// Total elements, reads plus writes.
    #[must_use]
    pub fn total_elems(&self) -> u64 {
        self.read_elems + self.write_elems
    }
}

/// Repair-plane traffic on one node, broken down by cause. Kept
/// strictly outside [`NodeStats::io`] so the data-plane conservation
/// invariants (per-node totals summing to the single-node totals) are
/// unaffected by redundancy overhead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairIo {
    /// Cause → counters.
    pub by_cause: BTreeMap<IoCause, RepairCounter>,
}

impl RepairIo {
    /// Adds one call of `elems` elements under `cause`.
    pub fn add(&mut self, cause: IoCause, is_read: bool, elems: u64) {
        self.by_cause.entry(cause).or_default().add(is_read, elems);
    }

    /// The counters for `cause` (zero if never seen).
    #[must_use]
    pub fn get(&self, cause: IoCause) -> RepairCounter {
        self.by_cause.get(&cause).copied().unwrap_or_default()
    }

    /// Total repair calls across causes.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.by_cause.values().map(RepairCounter::total_calls).sum()
    }

    /// Total repair elements across causes.
    #[must_use]
    pub fn total_elems(&self) -> u64 {
        self.by_cause.values().map(RepairCounter::total_elems).sum()
    }

    /// `true` when no repair traffic was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_cause.is_empty()
    }

    /// Folds `other`'s counters into this one.
    pub fn merge(&mut self, other: &RepairIo) {
        for (cause, c) in &other.by_cause {
            let e = self.by_cause.entry(*cause).or_default();
            e.read_calls += c.read_calls;
            e.read_elems += c.read_elems;
            e.write_calls += c.write_calls;
            e.write_elems += c.write_elems;
        }
    }
}

/// Everything one I/O node counted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeStats {
    /// Deterministic traffic: per-segment calls, elements, and run
    /// lengths (pure function of the stripe mapping).
    pub io: MeasuredIo,
    /// Timing-dependent lane observability.
    pub timing: NodeTiming,
    /// Repair-plane traffic (parity, reconstruction, hedges, scrub),
    /// outside the conserved data plane.
    pub repair: RepairIo,
}

/// One node's FIFO lane: a ticket dispenser plus its statistics.
#[derive(Debug, Default)]
struct LaneState {
    next_ticket: u64,
    serving: u64,
    /// Per-node arrival counter — the `call` index node faults key on.
    arrivals: u64,
    health: NodeHealth,
    /// Set after [`IoNodePool::revive`]: disables the injected
    /// `down_at` schedule for this (replaced) node.
    revived: bool,
    /// Tickets abandoned by deadline-expired callers; the completer
    /// skips them when advancing `serving`.
    cancelled: BTreeSet<u64>,
    stats: NodeStats,
}

#[derive(Debug, Default)]
struct Lane {
    state: Mutex<LaneState>,
    grant: Condvar,
}

#[derive(Debug)]
struct PoolInner {
    cfg: StripeConfig,
    faults: NodeFaultConfig,
    lanes: Vec<Lane>,
}

/// Remaining wait budget of a deadline-bounded lane caller.
enum Budget {
    Unlimited,
    Left(Duration),
    Expired,
}

fn remaining(deadline: Option<Duration>, arrived: Instant) -> Budget {
    match deadline {
        None => Budget::Unlimited,
        Some(d) => match d.checked_sub(arrived.elapsed()) {
            Some(left) if !left.is_zero() => Budget::Left(left),
            _ => Budget::Expired,
        },
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// K per-node FIFO request lanes shared by every [`StripedStore`] of
/// a run. Cloning shares the pool (and its statistics), so all
/// arrays' traffic aggregates into one per-node picture — the
/// measured analogue of `pfs-sim`'s machine-wide I/O node model.
#[derive(Debug, Clone)]
pub struct IoNodePool {
    inner: Arc<PoolInner>,
}

impl IoNodePool {
    /// A pool of `cfg.nodes` idle lanes with no injected node faults.
    ///
    /// # Panics
    /// Panics on zero nodes or a zero stripe unit.
    #[must_use]
    pub fn new(cfg: StripeConfig) -> Self {
        Self::with_faults(cfg, NodeFaultConfig::new())
    }

    /// A pool with an injected node-fault schedule: permanent deaths
    /// keyed to per-node arrival counters and per-call gray slowness.
    ///
    /// # Panics
    /// Panics on zero nodes or a zero stripe unit.
    #[must_use]
    pub fn with_faults(cfg: StripeConfig, faults: NodeFaultConfig) -> Self {
        assert!(cfg.nodes > 0, "a pool needs at least one I/O node");
        assert!(cfg.stripe_elems > 0, "stripe unit must be positive");
        IoNodePool {
            inner: Arc::new(PoolInner {
                cfg,
                faults,
                lanes: (0..cfg.nodes).map(|_| Lane::default()).collect(),
            }),
        }
    }

    /// The pool's configuration.
    #[must_use]
    pub fn config(&self) -> &StripeConfig {
        &self.inner.cfg
    }

    /// The injected node-fault schedule.
    #[must_use]
    pub fn faults(&self) -> &NodeFaultConfig {
        &self.inner.faults
    }

    /// Number of I/O nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.inner.cfg.nodes
    }

    /// `node`'s current health.
    #[must_use]
    pub fn health(&self, node: usize) -> NodeHealth {
        self.inner.lanes[node]
            .state
            .lock()
            .expect("lane poisoned")
            .health
    }

    /// Declares `node` dead: every subsequent call is rejected with a
    /// typed [`NodeDownError`](crate::NodeDownError) until
    /// [`revive`](Self::revive). Callers already granted the lane
    /// finish normally, so quarantine never wedges waiting tickets.
    pub fn quarantine(&self, node: usize) {
        let lane = &self.inner.lanes[node];
        let mut st = lane.state.lock().expect("lane poisoned");
        st.health = NodeHealth::Down;
        drop(st);
        lane.grant.notify_all();
    }

    /// Marks `node` healthy again after its stores were resilvered
    /// onto a replacement. Also disables the injected `down_at`
    /// schedule for this node — the replacement is a new device.
    pub fn revive(&self, node: usize) {
        let mut st = self.inner.lanes[node].state.lock().expect("lane poisoned");
        st.health = NodeHealth::Up;
        st.revived = true;
    }

    /// The hedge deadline for a read on `node`, from the configured
    /// [`HedgeConfig`] and the lane's observed wait-time histogram.
    /// `None` when hedging is not configured.
    #[must_use]
    pub fn hedge_deadline_ns(&self, node: usize) -> Option<u64> {
        let hedge = self.inner.cfg.hedge?;
        let st = self.inner.lanes[node].state.lock().expect("lane poisoned");
        Some(hedge.deadline_ns(&st.stats.timing.wait_hist))
    }

    /// Runs one store call on `node`'s lane under the pool-wide
    /// queue-wait deadline ([`StripeConfig::queue_deadline_ns`]).
    /// See [`execute_deadline`](Self::execute_deadline).
    ///
    /// # Errors
    /// Propagates `op`'s error, a typed dead-node rejection, or a
    /// typed deadline timeout.
    pub fn execute<R>(
        &self,
        node: usize,
        class: CallClass,
        elems: u64,
        op: impl FnOnce() -> io::Result<R>,
    ) -> io::Result<R> {
        self.execute_deadline(node, class, elems, self.inner.cfg.queue_deadline_ns, op)
    }

    /// Runs one store call on `node`'s lane: waits for bounded FIFO
    /// admission and the lane grant (up to `deadline_ns`, if given),
    /// executes `op`, holds the lane for the simulated service time
    /// (plus any injected gray slowness), and records the node's
    /// statistics under `class`.
    ///
    /// # Errors
    /// * a typed [`NodeDownError`](crate::NodeDownError) when the node
    ///   is dead (quarantined or at/past its injected death call) —
    ///   `op` never runs;
    /// * a typed [`NodeSlowError`](crate::NodeSlowError) when the lane
    ///   grant missed `deadline_ns` — the ticket is cancelled and `op`
    ///   never runs;
    /// * `op`'s own error otherwise.
    pub fn execute_deadline<R>(
        &self,
        node: usize,
        class: CallClass,
        elems: u64,
        deadline_ns: Option<u64>,
        op: impl FnOnce() -> io::Result<R>,
    ) -> io::Result<R> {
        let lane = &self.inner.lanes[node];
        let capacity = self.inner.cfg.queue_capacity.max(1) as u64;
        let arrived = Instant::now();
        let deadline = deadline_ns.map(Duration::from_nanos);
        let ticket;
        {
            let mut st = lane.state.lock().expect("lane poisoned");
            let call = st.arrivals;
            st.arrivals += 1;
            let injected_down = !st.revived
                && self
                    .inner
                    .faults
                    .down_at
                    .get(&node)
                    .is_some_and(|&at| call >= at);
            if st.health == NodeHealth::Down || injected_down {
                st.health = NodeHealth::Down;
                st.stats.timing.down_rejections += 1;
                return Err(node_down_error(node, call));
            }
            // Queue-wait blame span: covers bounded admission plus the
            // FIFO grant wait, attributed to the *calling* lane.
            let _qwait = (ooc_trace::enabled()
                && (st.next_ticket - st.serving >= capacity || st.serving != st.next_ticket))
                .then(|| {
                    ooc_trace::span_with(
                        "striped",
                        "queue-wait",
                        vec![("node", (node as u64).into())],
                    )
                });
            while st.next_ticket - st.serving >= capacity {
                match remaining(deadline, arrived) {
                    Budget::Unlimited => st = lane.grant.wait(st).expect("lane poisoned"),
                    Budget::Left(d) => {
                        st = lane.grant.wait_timeout(st, d).expect("lane poisoned").0;
                    }
                    Budget::Expired => return Err(Self::give_up(&mut st, node, arrived)),
                }
            }
            ticket = st.next_ticket;
            st.next_ticket += 1;
            let depth = st.next_ticket - st.serving;
            st.stats.timing.max_depth = st.stats.timing.max_depth.max(depth);
            st.stats.timing.depth_hist.observe(depth);
            while st.serving != ticket {
                match remaining(deadline, arrived) {
                    Budget::Unlimited => st = lane.grant.wait(st).expect("lane poisoned"),
                    Budget::Left(d) => {
                        st = lane.grant.wait_timeout(st, d).expect("lane poisoned").0;
                    }
                    Budget::Expired => {
                        // Cancellation is safe: serving != ticket here,
                        // so the completer has not granted us yet and
                        // will skip the abandoned ticket.
                        st.cancelled.insert(ticket);
                        return Err(Self::give_up(&mut st, node, arrived));
                    }
                }
            }
            let wait_ns = elapsed_ns(arrived);
            st.stats.timing.wait_ns += wait_ns;
            st.stats.timing.wait_hist.observe(wait_ns);
        }
        let started = Instant::now();
        let result = op();
        let service = self.inner.cfg.service;
        let slow_ns = self.inner.faults.slow_ns.get(&node).copied().unwrap_or(0);
        if !service.is_zero() || slow_ns > 0 {
            std::thread::sleep(service.duration(elems) + Duration::from_nanos(slow_ns));
        }
        let mut st = lane.state.lock().expect("lane poisoned");
        match &result {
            Ok(_) => match class {
                CallClass::Read => {
                    let io = &mut st.stats.io;
                    io.read_calls += 1;
                    io.read_elems += elems;
                    io.run_hist[MeasuredIo::bucket_of(elems)] += 1;
                }
                CallClass::Write => {
                    let io = &mut st.stats.io;
                    io.write_calls += 1;
                    io.write_elems += elems;
                    io.run_hist[MeasuredIo::bucket_of(elems)] += 1;
                }
                CallClass::Repair { cause, is_read } => {
                    st.stats.repair.add(cause, is_read, elems);
                }
            },
            Err(_) => st.stats.io.failed_calls += 1,
        }
        st.stats.timing.busy_ns += elapsed_ns(started);
        st.serving += 1;
        loop {
            let next = st.serving;
            if !st.cancelled.remove(&next) {
                break;
            }
            st.serving += 1;
        }
        lane.grant.notify_all();
        drop(st);
        result
    }

    /// Records a deadline miss on a locked lane and builds its error.
    fn give_up(st: &mut LaneState, node: usize, arrived: Instant) -> io::Error {
        st.stats.timing.timeouts += 1;
        if st.health == NodeHealth::Up {
            st.health = NodeHealth::Slow;
        }
        node_slow_error(node, elapsed_ns(arrived))
    }

    /// A copy of every node's statistics, in node order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<NodeStats> {
        self.inner
            .lanes
            .iter()
            .map(|l| l.state.lock().expect("lane poisoned").stats.clone())
            .collect()
    }

    /// Per-node deterministic traffic summed into one [`MeasuredIo`].
    #[must_use]
    pub fn total_io(&self) -> MeasuredIo {
        let mut total = MeasuredIo::default();
        for s in self.snapshot() {
            total.merge(&s.io);
        }
        total
    }

    /// Per-node repair-plane traffic summed into one [`RepairIo`].
    #[must_use]
    pub fn total_repair(&self) -> RepairIo {
        let mut total = RepairIo::default();
        for s in self.snapshot() {
            total.merge(&s.repair);
        }
        total
    }

    /// Zeroes every node's statistics. [`StripedStore`] forwards its
    /// `reset_metrics` here; since executors reset all arrays at one
    /// barrier (after seeding), the last reset leaves the pool clean
    /// for the compute phase. Health, arrival counters, and tickets
    /// are preserved — only statistics reset.
    pub fn reset_stats(&self) {
        for lane in &self.inner.lanes {
            lane.state.lock().expect("lane poisoned").stats = NodeStats::default();
        }
    }
}

/// One contiguous piece of a run, entirely within one stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    node: usize,
    /// Global stripe index.
    stripe: u64,
    /// Element offset within the stripe.
    within: u64,
    part_off: u64,
    buf_off: usize,
    len: u64,
}

/// How a parity-equipped store reacts when it *discovers* a fault
/// (a call failing with a dead-node or corrupt-data error). Known
/// dead nodes ([`NodeHealth::Down`]) are always read via
/// reconstruction in both modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DegradedMode {
    /// Reconstruct transparently: the caller never sees single-node
    /// faults.
    #[default]
    Auto,
    /// Surface the typed error on first discovery so an orchestrator
    /// can quarantine the node and re-run affected shards (the
    /// durable-recovery path); once the node is marked down,
    /// subsequent reads reconstruct.
    Manual,
}

/// The parity lane riding alongside a striped store's data parts.
#[derive(Debug)]
struct ParityState<S> {
    layout: ParityLayout,
    parts: Vec<S>,
}

/// A logical element store striped across K per-node part stores.
///
/// Element offset `o` lives in global stripe `g = o / stripe_elems`;
/// stripe `g` belongs to node `g % K` at local stripe `g / K`, so the
/// part-store offset is `(g / K) * stripe_elems + o % stripe_elems` —
/// exactly `pfs-sim`'s `PfsConfig::node_of` mapping, executed. Every
/// call is split at stripe boundaries and each piece is served under
/// its node's FIFO lane.
///
/// Built with [`build_with_parity`](Self::build_with_parity), the
/// store additionally maintains a rotating parity lane and survives
/// the loss of any single I/O node bit-exactly (see the module docs).
#[derive(Debug)]
pub struct StripedStore<S> {
    pool: IoNodePool,
    parts: Vec<S>,
    len: u64,
    parity: Option<ParityState<S>>,
    mode: DegradedMode,
    ledger: Option<(LedgerRecorder, u32)>,
}

/// What one scrub pass (or group) found and fixed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Parity groups visited.
    pub groups: u64,
    /// Groups whose parity verified bit-exactly against the data.
    pub clean: u64,
    /// Groups whose parity was readable but stale (rewritten when
    /// repairing).
    pub parity_mismatch: u64,
    /// Chunks (data or parity) whose CRC sidecar flagged corruption.
    pub corrupt_chunks: u64,
    /// Chunks rewritten from redundancy.
    pub repaired: u64,
    /// Chunks skipped because their node is down (redundancy already
    /// spent — nothing to verify against).
    pub skipped: u64,
    /// Corrupt chunks beyond single-fault repair (≥ 2 losses in one
    /// group).
    pub unrecoverable: u64,
    /// Elements read while scrubbing.
    pub read_elems: u64,
    /// Elements rewritten while repairing.
    pub written_elems: u64,
}

impl ScrubReport {
    /// Folds `other` into this report.
    pub fn absorb(&mut self, other: &ScrubReport) {
        self.groups += other.groups;
        self.clean += other.clean;
        self.parity_mismatch += other.parity_mismatch;
        self.corrupt_chunks += other.corrupt_chunks;
        self.repaired += other.repaired;
        self.skipped += other.skipped;
        self.unrecoverable += other.unrecoverable;
        self.read_elems += other.read_elems;
        self.written_elems += other.written_elems;
    }
}

/// What a [`StripedStore::resilver`] rebuilt onto the replacement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilverReport {
    /// Data stripes reconstructed from peers.
    pub data_stripes: u64,
    /// Parity chunks recomputed from group data.
    pub parity_chunks: u64,
    /// Elements written to the replacement part stores.
    pub elems_written: u64,
    /// Elements read from surviving peers to source the rebuild.
    pub source_elems_read: u64,
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn no_parity_error() -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        "store has no parity lane (built without build_with_parity)",
    )
}

fn double_fault_error(group: u64, node: usize) -> io::Error {
    io::Error::other(format!(
        "double fault: group {group} needs node {node}, which is also down"
    ))
}

impl<S: Store> StripedStore<S> {
    /// Builds a striped store of `len` elements over the pool's node
    /// count, creating each part via `make_part(node, part_len)`.
    ///
    /// # Errors
    /// Propagates `make_part` failures; rejects parts of the wrong
    /// length.
    pub fn build(
        pool: &IoNodePool,
        len: u64,
        mut make_part: impl FnMut(usize, u64) -> io::Result<S>,
    ) -> io::Result<Self> {
        let nodes = pool.nodes();
        let mut parts = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let want = part_len(len, pool.config().stripe_elems, nodes, node);
            let part = make_part(node, want)?;
            if part.len() != want {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "striped part {node}: store holds {} elements, geometry needs {want}",
                        part.len()
                    ),
                ));
            }
            parts.push(part);
        }
        Ok(StripedStore {
            pool: pool.clone(),
            parts,
            len,
            parity: None,
            mode: DegradedMode::default(),
            ledger: None,
        })
    }

    /// Builds a striped store with a rotating parity lane: data parts
    /// via `make_part(node, part_len)` as in [`build`](Self::build),
    /// plus one parity part per node via
    /// `make_parity(node, parity_part_len)` holding the XOR chunks of
    /// the groups whose parity rotates onto that node.
    ///
    /// # Errors
    /// Rejects pools with fewer than two nodes (no peer to hold
    /// parity); otherwise as [`build`](Self::build).
    pub fn build_with_parity(
        pool: &IoNodePool,
        len: u64,
        make_part: impl FnMut(usize, u64) -> io::Result<S>,
        mut make_parity: impl FnMut(usize, u64) -> io::Result<S>,
    ) -> io::Result<Self> {
        if pool.nodes() < 2 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "parity needs at least two I/O nodes",
            ));
        }
        let mut store = Self::build(pool, len, make_part)?;
        let layout = ParityLayout::new(pool.nodes(), pool.config().stripe_elems, len);
        let mut pparts = Vec::with_capacity(pool.nodes());
        for node in 0..pool.nodes() {
            let want = layout.parity_part_len(node);
            let part = make_parity(node, want)?;
            if part.len() != want {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "parity part {node}: store holds {} elements, geometry needs {want}",
                        part.len()
                    ),
                ));
            }
            pparts.push(part);
        }
        store.parity = Some(ParityState {
            layout,
            parts: pparts,
        });
        Ok(store)
    }

    /// Attaches a provenance-ledger recorder: all repair-plane
    /// traffic is booked to `array`'s repair channel.
    #[must_use]
    pub fn with_ledger(mut self, recorder: LedgerRecorder, array: u32) -> Self {
        self.ledger = Some((recorder, array));
        self
    }

    /// The shared lane pool this store routes through.
    #[must_use]
    pub fn pool(&self) -> &IoNodePool {
        &self.pool
    }

    /// Whether this store carries a parity lane.
    #[must_use]
    pub fn has_parity(&self) -> bool {
        self.parity.is_some()
    }

    /// Number of parity groups, when a parity lane exists.
    #[must_use]
    pub fn parity_groups(&self) -> Option<u64> {
        self.parity.as_ref().map(|p| p.layout.groups())
    }

    /// The parity geometry, when a parity lane exists.
    #[must_use]
    pub fn parity_layout(&self) -> Option<ParityLayout> {
        self.parity.as_ref().map(|p| p.layout)
    }

    /// How fault discovery is handled (see [`DegradedMode`]).
    #[must_use]
    pub fn degraded_mode(&self) -> DegradedMode {
        self.mode
    }

    /// Sets the fault-discovery policy.
    pub fn set_degraded_mode(&mut self, mode: DegradedMode) {
        self.mode = mode;
    }

    /// Books repair-plane traffic to the attached ledger, if any.
    fn book_repair(&self, cause: IoCause, calls: u64, elems: u64) {
        if calls == 0 && elems == 0 {
            return;
        }
        if let Some((rec, array)) = &self.ledger {
            rec.add_repair(*array, cause, calls, elems);
        }
    }

    /// Splits `[offset, offset + len)` at stripe boundaries. The cut
    /// points depend only on the stripe unit — not the node count —
    /// which is what makes per-node call totals conserved across K.
    fn segments(&self, offset: u64, len: usize) -> Vec<Segment> {
        let stripe = self.pool.config().stripe_elems;
        let nodes = self.pool.nodes() as u64;
        let mut out = Vec::new();
        let mut off = offset;
        let mut remaining = len as u64;
        let mut buf_off = 0usize;
        while remaining > 0 {
            let g = off / stripe;
            let within = off % stripe;
            let take = (stripe - within).min(remaining);
            out.push(Segment {
                node: usize::try_from(g % nodes).expect("node index fits usize"),
                stripe: g,
                within,
                part_off: (g / nodes) * stripe + within,
                buf_off,
                len: take,
            });
            off += take;
            remaining -= take;
            buf_off += usize::try_from(take).expect("segment fits usize");
        }
        out
    }

    /// Rebuilds `dst.len()` elements of data stripe `g`, starting
    /// `within` elements into the stripe, by XOR-ing the group's
    /// parity chunk with every *other* data stripe over the same
    /// range. Parity is XOR over stripe-aligned chunks, so the range
    /// restriction is element-wise exact. Returns the repair calls
    /// and elements spent.
    ///
    /// # Errors
    /// A double-fault error when the parity node (or a needed peer)
    /// is also down; any peer read error otherwise.
    fn reconstruct_range(
        &self,
        g: u64,
        within: u64,
        dst: &mut [f64],
        cause: IoCause,
    ) -> io::Result<(u64, u64)> {
        let par = self.parity.as_ref().ok_or_else(no_parity_error)?;
        let lay = par.layout;
        let j = lay.group_of(g);
        let pnode = lay.parity_node(j);
        if self.pool.health(pnode) == NodeHealth::Down {
            return Err(double_fault_error(j, pnode));
        }
        let span_name = if cause == IoCause::HedgedRead {
            "hedge-read"
        } else {
            "degraded-reconstruct"
        };
        let _span = ooc_trace::enabled().then(|| {
            ooc_trace::span_with(
                "striped",
                span_name,
                vec![
                    ("node", (lay.data_node(g) as u64).into()),
                    ("group", j.into()),
                ],
            )
        });
        let len = dst.len();
        let mut acc = vec![0.0; len];
        let poff = lay.parity_part_offset(j) + within;
        let mut calls = 0u64;
        let mut elems = 0u64;
        self.pool
            .execute(pnode, CallClass::repair_read(cause), len as u64, || {
                par.parts[pnode].read_run(poff, &mut acc)
            })?;
        calls += 1;
        elems += len as u64;
        for peer in lay.stripes_of_group(j) {
            if peer == g {
                continue;
            }
            let plen = lay.stripe_len(peer);
            if within >= plen {
                continue;
            }
            let take = (plen - within).min(len as u64);
            let node = lay.data_node(peer);
            if self.pool.health(node) == NodeHealth::Down {
                return Err(double_fault_error(j, node));
            }
            let mut buf = vec![0.0; usize::try_from(take).expect("chunk fits usize")];
            let off = lay.data_part_offset(peer) + within;
            self.pool
                .execute(node, CallClass::repair_read(cause), take, || {
                    self.parts[node].read_run(off, &mut buf)
                })?;
            xor_into(&mut acc, &buf);
            calls += 1;
            elems += take;
        }
        dst.copy_from_slice(&acc);
        self.book_repair(cause, calls, elems);
        Ok((calls, elems))
    }

    /// Serves one read segment, degrading through parity when the
    /// owning node is dead, slow past its hedge deadline, or (in
    /// [`DegradedMode::Auto`]) freshly discovered dead/corrupt.
    fn read_segment(&self, seg: Segment, dst: &mut [f64]) -> io::Result<()> {
        if self.parity.is_none() {
            return self.pool.execute(seg.node, CallClass::Read, seg.len, || {
                self.parts[seg.node].read_run(seg.part_off, dst)
            });
        }
        if self.pool.health(seg.node) == NodeHealth::Down {
            return self
                .reconstruct_range(seg.stripe, seg.within, dst, IoCause::DegradedReconstruct)
                .map(|_| ());
        }
        let deadline = self
            .pool
            .hedge_deadline_ns(seg.node)
            .or(self.pool.config().queue_deadline_ns);
        let direct =
            self.pool
                .execute_deadline(seg.node, CallClass::Read, seg.len, deadline, || {
                    self.parts[seg.node].read_run(seg.part_off, dst)
                });
        match direct {
            Ok(()) => Ok(()),
            Err(e) if is_node_slow(&e) => {
                // Hedge: retire the read against the peer set. Valid
                // even though the node is alive — parity stays
                // consistent for slow-but-healthy lanes.
                self.reconstruct_range(seg.stripe, seg.within, dst, IoCause::HedgedRead)
                    .map(|_| ())
            }
            Err(e) if self.mode == DegradedMode::Auto && (is_node_down(&e) || is_corrupt(&e)) => {
                self.reconstruct_range(seg.stripe, seg.within, dst, IoCause::DegradedReconstruct)
                    .map(|_| ())
            }
            Err(e) => Err(e),
        }
    }

    /// Recomputes and writes the parity range covering `seg`, taking
    /// `src` as stripe `seg.stripe`'s content and reading every other
    /// group stripe from disk. Used when the old data (or old parity)
    /// needed for the RMW delta is unavailable.
    fn rewrite_parity_from_group(&mut self, seg: Segment, src: &[f64]) -> io::Result<()> {
        let pool = self.pool.clone();
        let lay = self.parity.as_ref().ok_or_else(no_parity_error)?.layout;
        let j = lay.group_of(seg.stripe);
        let pnode = lay.parity_node(j);
        if pool.health(pnode) == NodeHealth::Down {
            return Err(double_fault_error(j, pnode));
        }
        let _span = ooc_trace::enabled().then(|| {
            ooc_trace::span_with(
                "striped",
                "parity-write",
                vec![("node", (pnode as u64).into()), ("group", j.into())],
            )
        });
        let len = src.len();
        let mut pchunk = vec![0.0; len];
        xor_into(&mut pchunk, src);
        let mut calls = 0u64;
        let mut elems = 0u64;
        for peer in lay.stripes_of_group(j) {
            if peer == seg.stripe {
                continue;
            }
            let plen = lay.stripe_len(peer);
            if seg.within >= plen {
                continue;
            }
            let take = (plen - seg.within).min(len as u64);
            let node = lay.data_node(peer);
            if pool.health(node) == NodeHealth::Down {
                return Err(double_fault_error(j, node));
            }
            let mut buf = vec![0.0; usize::try_from(take).expect("chunk fits usize")];
            let off = lay.data_part_offset(peer) + seg.within;
            pool.execute(
                node,
                CallClass::repair_read(IoCause::ParityWrite),
                take,
                || self.parts[node].read_run(off, &mut buf),
            )?;
            xor_into(&mut pchunk, &buf);
            calls += 1;
            elems += take;
        }
        let poff = lay.parity_part_offset(j) + seg.within;
        let ppart = &mut self.parity.as_mut().expect("parity lane").parts[pnode];
        pool.execute(
            pnode,
            CallClass::repair_write(IoCause::ParityWrite),
            seg.len,
            || ppart.write_run(poff, &pchunk),
        )?;
        calls += 1;
        elems += seg.len;
        self.book_repair(IoCause::ParityWrite, calls, elems);
        Ok(())
    }

    /// Writes `src` to a segment whose owning node is dead: the data
    /// chunk itself is unreachable, so the write lands entirely in
    /// parity — peers XOR src — and later reads reconstruct it.
    fn degraded_write_segment(&mut self, seg: Segment, src: &[f64]) -> io::Result<()> {
        self.rewrite_parity_from_group(seg, src)
    }

    /// Writes one segment with the parity lane kept consistent:
    /// read-modify-write of the parity delta (`old ⊕ new`), with the
    /// data write strictly *before* the parity update so a failed or
    /// torn data write leaves parity agreeing with the old data.
    fn write_segment_parity(&mut self, seg: Segment, src: &[f64]) -> io::Result<()> {
        let pool = self.pool.clone();
        if pool.health(seg.node) == NodeHealth::Down {
            return self.degraded_write_segment(seg, src);
        }
        let lay = self.parity.as_ref().ok_or_else(no_parity_error)?.layout;
        let len = src.len();
        let mut repair_calls = 0u64;
        let mut repair_elems = 0u64;
        // Old data, for the parity delta.
        let mut old = vec![0.0; len];
        let read_old = pool.execute(
            seg.node,
            CallClass::repair_read(IoCause::ParityWrite),
            seg.len,
            || self.parts[seg.node].read_run(seg.part_off, &mut old),
        );
        match read_old {
            Ok(()) => {
                repair_calls += 1;
                repair_elems += seg.len;
            }
            Err(e) if is_corrupt(&e) && self.mode == DegradedMode::Auto => {
                // Torn/corrupt pre-image: parity still agrees with the
                // clean old data, so reconstruct it from peers, then
                // proceed with the normal delta.
                self.reconstruct_range(
                    seg.stripe,
                    seg.within,
                    &mut old,
                    IoCause::DegradedReconstruct,
                )?;
            }
            Err(e) if is_node_down(&e) => {
                if self.mode == DegradedMode::Auto {
                    return self.degraded_write_segment(seg, src);
                }
                return Err(e);
            }
            Err(e) => return Err(e),
        }
        // New data, before parity: a failure here leaves parity
        // consistent with the old chunk.
        let write_new = pool.execute(seg.node, CallClass::Write, seg.len, || {
            self.parts[seg.node].write_run(seg.part_off, src)
        });
        if let Err(e) = write_new {
            if is_node_down(&e) && self.mode == DegradedMode::Auto {
                return self.degraded_write_segment(seg, src);
            }
            return Err(e);
        }
        // Parity RMW.
        let j = lay.group_of(seg.stripe);
        let pnode = lay.parity_node(j);
        if pool.health(pnode) == NodeHealth::Down {
            // Single-fault model: data is authoritative, parity for
            // this group is lost until the node is resilvered.
            self.book_repair(IoCause::ParityWrite, repair_calls, repair_elems);
            return Ok(());
        }
        let poff = lay.parity_part_offset(j) + seg.within;
        let mut pchunk = vec![0.0; len];
        let read_parity = {
            let ppart = &self.parity.as_ref().expect("parity lane").parts[pnode];
            pool.execute(
                pnode,
                CallClass::repair_read(IoCause::ParityWrite),
                seg.len,
                || ppart.read_run(poff, &mut pchunk),
            )
        };
        match read_parity {
            Ok(()) => {
                repair_calls += 1;
                repair_elems += seg.len;
            }
            Err(e) if is_corrupt(&e) => {
                // Stale/torn parity: recompute this range from the
                // whole group instead of applying a delta to garbage.
                self.book_repair(IoCause::ParityWrite, repair_calls, repair_elems);
                return self.rewrite_parity_from_group(seg, src);
            }
            Err(e) if is_node_down(&e) => {
                self.book_repair(IoCause::ParityWrite, repair_calls, repair_elems);
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        xor_into(&mut pchunk, &old);
        xor_into(&mut pchunk, src);
        let ppart = &mut self.parity.as_mut().expect("parity lane").parts[pnode];
        pool.execute(
            pnode,
            CallClass::repair_write(IoCause::ParityWrite),
            seg.len,
            || ppart.write_run(poff, &pchunk),
        )?;
        repair_calls += 1;
        repair_elems += seg.len;
        self.book_repair(IoCause::ParityWrite, repair_calls, repair_elems);
        Ok(())
    }

    /// Verifies (and with `repair`, fixes) one parity group: reads
    /// every live data chunk and the parity chunk, checks parity
    /// bit-exactly, rewrites stale parity, and rebuilds a single
    /// CRC-corrupt chunk from redundancy.
    ///
    /// # Errors
    /// Out-of-range group, missing parity lane, or an unexpected
    /// (non-corruption, non-dead-node) part error.
    pub fn scrub_group(&mut self, j: u64, repair: bool) -> io::Result<ScrubReport> {
        let pool = self.pool.clone();
        let lay = self.parity.as_ref().ok_or_else(no_parity_error)?.layout;
        if j >= lay.groups() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("parity group {j} out of range ({} groups)", lay.groups()),
            ));
        }
        let _span = ooc_trace::enabled()
            .then(|| ooc_trace::span_with("striped", "scrub", vec![("group", j.into())]));
        let mut rep = ScrubReport {
            groups: 1,
            ..ScrubReport::default()
        };
        let stripe = usize::try_from(lay.stripe_elems).expect("stripe fits usize");
        let pnode = lay.parity_node(j);
        let mut scrub_calls = 0u64;
        let mut scrub_elems = 0u64;
        let mut chunks: Vec<Option<Vec<f64>>> = Vec::new();
        let mut corrupt: Vec<u64> = Vec::new();
        let mut dead = 0u64;
        for g in lay.stripes_of_group(j) {
            let node = lay.data_node(g);
            if pool.health(node) == NodeHealth::Down {
                rep.skipped += 1;
                dead += 1;
                chunks.push(None);
                continue;
            }
            let glen = usize::try_from(lay.stripe_len(g)).expect("stripe fits usize");
            let mut buf = vec![0.0; glen];
            let off = lay.data_part_offset(g);
            let r = pool.execute(
                node,
                CallClass::repair_read(IoCause::ScrubRead),
                glen as u64,
                || self.parts[node].read_run(off, &mut buf),
            );
            match r {
                Ok(()) => {
                    scrub_calls += 1;
                    scrub_elems += glen as u64;
                    rep.read_elems += glen as u64;
                    chunks.push(Some(buf));
                }
                Err(e) if is_corrupt(&e) => {
                    rep.corrupt_chunks += 1;
                    corrupt.push(g);
                    chunks.push(None);
                }
                Err(e) if is_node_down(&e) => {
                    rep.skipped += 1;
                    dead += 1;
                    chunks.push(None);
                }
                Err(e) => return Err(e),
            }
        }
        let mut parity_chunk: Option<Vec<f64>> = None;
        let mut parity_corrupt = false;
        if pool.health(pnode) == NodeHealth::Down {
            rep.skipped += 1;
            dead += 1;
        } else {
            let mut buf = vec![0.0; stripe];
            let poff = lay.parity_part_offset(j);
            let r = {
                let ppart = &self.parity.as_ref().expect("parity lane").parts[pnode];
                pool.execute(
                    pnode,
                    CallClass::repair_read(IoCause::ScrubRead),
                    stripe as u64,
                    || ppart.read_run(poff, &mut buf),
                )
            };
            match r {
                Ok(()) => {
                    scrub_calls += 1;
                    scrub_elems += stripe as u64;
                    rep.read_elems += stripe as u64;
                    parity_chunk = Some(buf);
                }
                Err(e) if is_corrupt(&e) => {
                    rep.corrupt_chunks += 1;
                    parity_corrupt = true;
                }
                Err(e) if is_node_down(&e) => {
                    rep.skipped += 1;
                    dead += 1;
                }
                Err(e) => return Err(e),
            }
        }
        self.book_repair(IoCause::ScrubRead, scrub_calls, scrub_elems);
        if dead > 0 {
            // Degraded group: redundancy already spent covering the
            // dead node; nothing to verify against until resilvered.
            return Ok(rep);
        }
        let total_corrupt = corrupt.len() as u64 + u64::from(parity_corrupt);
        if total_corrupt > 1 {
            rep.unrecoverable += total_corrupt;
            return Ok(rep);
        }
        // XOR of every readable data chunk, zero-padded to the unit.
        let mut acc = vec![0.0; stripe];
        for c in chunks.iter().flatten() {
            xor_into(&mut acc, c);
        }
        let parity_stale = !parity_corrupt
            && corrupt.is_empty()
            && parity_chunk.as_ref().is_some_and(|p| !bits_equal(p, &acc));
        if parity_corrupt || parity_stale {
            if parity_stale {
                rep.parity_mismatch += 1;
            }
            if repair {
                let poff = lay.parity_part_offset(j);
                let ppart = &mut self.parity.as_mut().expect("parity lane").parts[pnode];
                pool.execute(
                    pnode,
                    CallClass::repair_write(IoCause::ParityWrite),
                    stripe as u64,
                    || ppart.write_run(poff, &acc),
                )?;
                rep.repaired += 1;
                rep.written_elems += stripe as u64;
                self.book_repair(IoCause::ParityWrite, 1, stripe as u64);
            }
            return Ok(rep);
        }
        if let (&[g], Some(p)) = (corrupt.as_slice(), parity_chunk.as_ref()) {
            // Exactly one CRC-corrupt data chunk: peers ⊕ parity
            // restores it; the write refreshes the CRC sidecar too.
            xor_into(&mut acc, p);
            if repair {
                let glen = usize::try_from(lay.stripe_len(g)).expect("stripe fits usize");
                let node = lay.data_node(g);
                let off = lay.data_part_offset(g);
                let rebuilt = &acc[..glen];
                let parts = &mut self.parts;
                pool.execute(
                    node,
                    CallClass::repair_write(IoCause::DegradedReconstruct),
                    glen as u64,
                    || parts[node].write_run(off, rebuilt),
                )?;
                rep.repaired += 1;
                rep.written_elems += glen as u64;
                self.book_repair(IoCause::DegradedReconstruct, 1, glen as u64);
            }
            return Ok(rep);
        }
        rep.clean += 1;
        Ok(rep)
    }

    /// Scrubs every parity group once. See
    /// [`scrub_group`](Self::scrub_group).
    ///
    /// # Errors
    /// As [`scrub_group`](Self::scrub_group).
    pub fn scrub(&mut self, repair: bool) -> io::Result<ScrubReport> {
        let groups = self.parity_groups().ok_or_else(no_parity_error)?;
        let mut total = ScrubReport::default();
        for j in 0..groups {
            total.absorb(&self.scrub_group(j, repair)?);
        }
        Ok(total)
    }

    /// Rebuilds dead node `node`'s data and parity parts onto fresh
    /// replacement stores (`make_data(part_len)` /
    /// `make_parity(parity_part_len)`), reconstructing every data
    /// stripe from its peers and recomputing every parity chunk from
    /// its group. Replacement writes bypass the (dead) lane.
    ///
    /// Does **not** revive the node in the pool: other arrays sharing
    /// the pool may still need resilvering. Call
    /// [`IoNodePool::revive`] once every array is rebuilt.
    ///
    /// # Errors
    /// Missing parity lane, wrong-length replacement parts, or peer
    /// read failures (double faults).
    pub fn resilver(
        &mut self,
        node: usize,
        make_data: impl FnOnce(u64) -> io::Result<S>,
        make_parity: impl FnOnce(u64) -> io::Result<S>,
    ) -> io::Result<ResilverReport> {
        let pool = self.pool.clone();
        let lay = self.parity.as_ref().ok_or_else(no_parity_error)?.layout;
        let _span = ooc_trace::enabled().then(|| {
            ooc_trace::span_with("striped", "resilver", vec![("node", (node as u64).into())])
        });
        let dlen = part_len(self.len, lay.stripe_elems, lay.nodes, node);
        let plen = lay.parity_part_len(node);
        let mut new_data = make_data(dlen)?;
        if new_data.len() != dlen {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "replacement data part {node}: store holds {} elements, geometry needs {dlen}",
                    new_data.len()
                ),
            ));
        }
        let mut new_parity = make_parity(plen)?;
        if new_parity.len() != plen {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "replacement parity part {node}: store holds {} elements, geometry needs {plen}",
                    new_parity.len()
                ),
            ));
        }
        let mut rep = ResilverReport::default();
        for g in 0..lay.data_stripes() {
            if lay.data_node(g) != node {
                continue;
            }
            let glen = usize::try_from(lay.stripe_len(g)).expect("stripe fits usize");
            let mut buf = vec![0.0; glen];
            let (_, elems) =
                self.reconstruct_range(g, 0, &mut buf, IoCause::DegradedReconstruct)?;
            rep.source_elems_read += elems;
            new_data.write_run(lay.data_part_offset(g), &buf)?;
            rep.data_stripes += 1;
            rep.elems_written += glen as u64;
        }
        let stripe = usize::try_from(lay.stripe_elems).expect("stripe fits usize");
        for j in 0..lay.groups() {
            if lay.parity_node(j) != node {
                continue;
            }
            let mut acc = vec![0.0; stripe];
            let mut elems = 0u64;
            for g in lay.stripes_of_group(j) {
                let dnode = lay.data_node(g);
                if pool.health(dnode) == NodeHealth::Down {
                    return Err(double_fault_error(j, dnode));
                }
                let glen = usize::try_from(lay.stripe_len(g)).expect("stripe fits usize");
                let mut buf = vec![0.0; glen];
                let off = lay.data_part_offset(g);
                pool.execute(
                    dnode,
                    CallClass::repair_read(IoCause::DegradedReconstruct),
                    glen as u64,
                    || self.parts[dnode].read_run(off, &mut buf),
                )?;
                elems += glen as u64;
                xor_into(&mut acc, &buf);
            }
            new_parity.write_run(lay.parity_part_offset(j), &acc)?;
            rep.parity_chunks += 1;
            rep.elems_written += stripe as u64;
            rep.source_elems_read += elems;
            self.book_repair(
                IoCause::DegradedReconstruct,
                lay.stripes_of_group(j).count() as u64,
                elems,
            );
        }
        self.parts[node] = new_data;
        self.parity.as_mut().expect("parity lane").parts[node] = new_parity;
        // The off-lane replacement writes, booked as repair traffic.
        self.book_repair(
            IoCause::DegradedReconstruct,
            rep.data_stripes + rep.parity_chunks,
            rep.elems_written,
        );
        Ok(rep)
    }
}

/// A background scrubber thread walking a shared striped store's
/// parity groups (lock taken per group, so foreground I/O interleaves
/// freely), optionally repairing what it finds.
#[derive(Debug)]
pub struct OnlineScrubber {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<io::Result<ScrubReport>>,
}

impl OnlineScrubber {
    /// Starts scrubbing `store` in a background thread: `passes` full
    /// walks over all parity groups (0 = until stopped), pausing
    /// `pace` between groups, repairing when `repair` is set.
    #[must_use]
    pub fn start<S: Store + Send + 'static>(
        store: SharedStore<StripedStore<S>>,
        repair: bool,
        pace: Duration,
        passes: u64,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let Some(groups) = store.with_inner(|s| s.parity_groups()) else {
                return Err(no_parity_error());
            };
            let mut total = ScrubReport::default();
            let mut pass = 0u64;
            'walk: while !flag.load(Ordering::Relaxed) && (passes == 0 || pass < passes) {
                for j in 0..groups {
                    if flag.load(Ordering::Relaxed) {
                        break 'walk;
                    }
                    let rep = store.with_inner(|s| s.scrub_group(j, repair))?;
                    total.absorb(&rep);
                    if !pace.is_zero() {
                        std::thread::sleep(pace);
                    }
                }
                pass += 1;
            }
            Ok(total)
        });
        OnlineScrubber { stop, handle }
    }

    /// Signals the walker to stop and joins it, returning the
    /// accumulated report.
    ///
    /// # Errors
    /// A scrub error from the thread, or a generic error if it
    /// panicked.
    pub fn stop(self) -> io::Result<ScrubReport> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .join()
            .map_err(|_| io::Error::other("scrubber thread panicked"))?
    }
}

/// Elements node `k` of `nodes` holds for a `len`-element store with
/// the given stripe unit (the last global stripe may be partial).
#[must_use]
pub fn part_len(len: u64, stripe_elems: u64, nodes: usize, k: usize) -> u64 {
    let nodes = nodes as u64;
    let k = k as u64;
    let full = len / stripe_elems; // complete stripes
    let tail = len % stripe_elems;
    // Complete stripes with index ≡ k (mod nodes).
    let mine = full / nodes + u64::from(full % nodes > k);
    let tail_mine = u64::from(tail > 0 && full % nodes == k) * tail;
    mine * stripe_elems + tail_mine
}

impl<S: Store> Store for StripedStore<S> {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_run(&self, offset: u64, buf: &mut [f64]) -> io::Result<()> {
        if offset + buf.len() as u64 > self.len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "run out of store range",
            ));
        }
        for seg in self.segments(offset, buf.len()) {
            let end = seg.buf_off + usize::try_from(seg.len).expect("segment fits usize");
            let dst = &mut buf[seg.buf_off..end];
            self.read_segment(seg, dst)?;
        }
        Ok(())
    }

    fn write_run(&mut self, offset: u64, buf: &[f64]) -> io::Result<()> {
        if offset + buf.len() as u64 > self.len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "run out of store range",
            ));
        }
        for seg in self.segments(offset, buf.len()) {
            let end = seg.buf_off + usize::try_from(seg.len).expect("segment fits usize");
            let src = &buf[seg.buf_off..end];
            if self.parity.is_some() {
                self.write_segment_parity(seg, src)?;
            } else {
                let part = &mut self.parts[seg.node];
                self.pool.execute(seg.node, CallClass::Write, seg.len, || {
                    part.write_run(seg.part_off, src)
                })?;
            }
        }
        Ok(())
    }

    fn reset_metrics(&mut self) {
        for part in &mut self.parts {
            part.reset_metrics();
        }
        if let Some(par) = &mut self.parity {
            for part in &mut par.parts {
                part.reset_metrics();
            }
        }
        self.pool.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn pool(nodes: usize, stripe: u64) -> IoNodePool {
        IoNodePool::new(StripeConfig {
            nodes,
            stripe_elems: stripe,
            ..StripeConfig::default()
        })
    }

    fn striped(nodes: usize, stripe: u64, len: u64) -> StripedStore<MemStore> {
        StripedStore::build(&pool(nodes, stripe), len, |_, l| Ok(MemStore::new(l)))
            .expect("build striped store")
    }

    fn striped_parity(p: &IoNodePool, len: u64) -> StripedStore<MemStore> {
        StripedStore::build_with_parity(
            p,
            len,
            |_, l| Ok(MemStore::new(l)),
            |_, l| Ok(MemStore::new(l)),
        )
        .expect("build parity striped store")
    }

    #[test]
    fn part_lengths_cover_the_store() {
        for (len, stripe, nodes) in [(100, 8, 3), (64, 8, 8), (7, 8, 2), (0, 4, 4), (33, 8, 4)] {
            let total: u64 = (0..nodes).map(|k| part_len(len, stripe, nodes, k)).sum();
            assert_eq!(total, len, "len {len} stripe {stripe} nodes {nodes}");
        }
    }

    #[test]
    fn roundtrip_across_stripe_boundaries() {
        let mut s = striped(3, 4, 40);
        let data: Vec<f64> = (0..37).map(|i| i as f64 + 0.5).collect();
        s.write_run(2, &data).expect("write spanning stripes");
        let mut buf = vec![0.0; 37];
        s.read_run(2, &mut buf).expect("read spanning stripes");
        assert_eq!(buf, data);
        // Single-element probes hit the right nodes too.
        let mut one = [0.0];
        s.read_run(13, &mut one).expect("probe");
        assert_eq!(one[0], 11.5);
    }

    #[test]
    fn matches_a_flat_store_bit_for_bit() {
        let mut flat = MemStore::new(100);
        let mut s = striped(4, 8, 100);
        let mut x = 1.0;
        for (off, len) in [(0u64, 100usize), (17, 31), (90, 10), (8, 8), (95, 5)] {
            let data: Vec<f64> = (0..len)
                .map(|i| {
                    x += 0.25 + i as f64;
                    x
                })
                .collect();
            flat.write_run(off, &data).expect("flat write");
            s.write_run(off, &data).expect("striped write");
        }
        let mut a = vec![0.0; 100];
        let mut b = vec![0.0; 100];
        flat.read_run(0, &mut a).expect("flat read");
        s.read_run(0, &mut b).expect("striped read");
        assert_eq!(a, b);
    }

    #[test]
    fn per_node_totals_are_conserved_across_node_counts() {
        let workload = |s: &mut StripedStore<MemStore>| {
            let data: Vec<f64> = (0..50).map(f64::from).collect();
            s.write_run(3, &data).expect("write");
            let mut buf = vec![0.0; 64];
            s.read_run(0, &mut buf).expect("read");
            s.write_run(60, &data[..4]).expect("tail write");
        };
        let mut one = striped(1, 8, 64);
        workload(&mut one);
        let single = one.pool().total_io();
        for nodes in [2, 3, 4, 8] {
            let mut s = striped(nodes, 8, 64);
            workload(&mut s);
            let total = s.pool().total_io();
            assert_eq!(total, single, "totals conserved at {nodes} nodes");
            let per_node: u64 = s.pool().snapshot().iter().map(|n| n.io.total_calls()).sum();
            assert_eq!(per_node, single.total_calls());
        }
    }

    #[test]
    fn stats_are_deterministic_and_resettable() {
        let run = || {
            let mut s = striped(2, 4, 32);
            s.write_run(0, &[1.0; 32]).expect("write");
            let mut buf = [0.0; 10];
            s.read_run(5, &mut buf).expect("read");
            s.pool()
                .snapshot()
                .iter()
                .map(|n| n.io.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "deterministic per-node traffic");

        let mut s = striped(2, 4, 32);
        s.write_run(0, &[1.0; 32]).expect("write");
        assert!(s.pool().total_io().total_calls() > 0);
        s.reset_metrics();
        assert_eq!(s.pool().total_io(), MeasuredIo::default());
    }

    #[test]
    fn lanes_serialize_concurrent_callers() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let p = IoNodePool::new(StripeConfig {
            nodes: 1,
            stripe_elems: 4,
            queue_capacity: 2,
            ..StripeConfig::default()
        });
        let in_lane = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let p = p.clone();
                let in_lane = Arc::clone(&in_lane);
                scope.spawn(move || {
                    for _ in 0..50 {
                        p.execute(0, CallClass::Read, 4, || {
                            let now = in_lane.fetch_add(1, Ordering::SeqCst);
                            assert_eq!(now, 0, "lane admitted two callers at once");
                            std::thread::yield_now();
                            in_lane.fetch_sub(1, Ordering::SeqCst);
                            Ok(())
                        })
                        .expect("op");
                    }
                });
            }
        });
        let stats = p.snapshot();
        assert_eq!(stats[0].io.read_calls, 400);
        assert!(stats[0].timing.max_depth >= 1);
        assert!(stats[0].timing.depth_hist.count == 400);
    }

    #[test]
    fn failed_calls_are_counted_separately() {
        let mut s = striped(2, 4, 8);
        // In-range for the logical store but force a part error by
        // using the pool directly with a failing op.
        let err = s
            .pool()
            .execute(0, CallClass::Read, 1, || -> io::Result<()> {
                Err(io::Error::other("boom"))
            })
            .expect_err("op error propagates");
        assert_eq!(err.to_string(), "boom");
        assert_eq!(s.pool().snapshot()[0].io.failed_calls, 1);
        assert_eq!(s.pool().snapshot()[0].io.read_calls, 0);
        // The lane is still usable afterwards.
        s.write_run(0, &[1.0]).expect("write after failure");
    }

    #[test]
    fn service_model_duration() {
        let m = ServiceModel {
            call_ns: 1000,
            elem_ns: 10,
        };
        assert_eq!(m.duration(5), Duration::from_nanos(1050));
        assert!(!m.is_zero());
        assert!(ServiceModel::default().is_zero());
    }

    /// XOR of every data chunk of every group equals the parity chunk.
    fn assert_parity_consistent(s: &StripedStore<MemStore>) {
        let lay = s.parity_layout().expect("parity layout");
        let stripe = usize::try_from(lay.stripe_elems).expect("stripe");
        for j in 0..lay.groups() {
            let mut acc = vec![0.0; stripe];
            for g in lay.stripes_of_group(j) {
                let glen = usize::try_from(lay.stripe_len(g)).expect("stripe");
                let mut buf = vec![0.0; glen];
                s.parts[lay.data_node(g)]
                    .read_run(lay.data_part_offset(g), &mut buf)
                    .expect("data chunk");
                xor_into(&mut acc, &buf);
            }
            let pnode = lay.parity_node(j);
            let mut p = vec![0.0; stripe];
            s.parity.as_ref().expect("parity").parts[pnode]
                .read_run(lay.parity_part_offset(j), &mut p)
                .expect("parity chunk");
            assert!(bits_equal(&acc, &p), "group {j} parity consistent");
        }
    }

    #[test]
    fn parity_store_matches_flat_and_keeps_parity_consistent() {
        let p = pool(4, 8);
        let mut flat = MemStore::new(100);
        let mut s = striped_parity(&p, 100);
        let mut x = 1.0;
        for (off, len) in [(0u64, 100usize), (17, 31), (90, 10), (8, 8), (95, 5)] {
            let data: Vec<f64> = (0..len)
                .map(|i| {
                    x += 0.25 + i as f64;
                    x
                })
                .collect();
            flat.write_run(off, &data).expect("flat write");
            s.write_run(off, &data).expect("parity-striped write");
        }
        let mut a = vec![0.0; 100];
        let mut b = vec![0.0; 100];
        flat.read_run(0, &mut a).expect("flat read");
        s.read_run(0, &mut b).expect("striped read");
        assert_eq!(a, b);
        assert_parity_consistent(&s);
        // Parity traffic is accounted on the repair plane only.
        let repair = p.total_repair();
        assert!(repair.get(IoCause::ParityWrite).write_calls > 0);
        assert_eq!(repair.get(IoCause::DegradedReconstruct).total_calls(), 0);
    }

    #[test]
    fn degraded_read_reconstructs_bit_equal_for_every_dead_node() {
        let p = pool(4, 8);
        let mut s = striped_parity(&p, 100);
        let data: Vec<f64> = (0..100).map(|i| f64::from(i) * 1.5 - 20.0).collect();
        s.write_run(0, &data).expect("healthy write");
        for dead in 0..4 {
            let before = p.snapshot()[dead].io.clone();
            p.quarantine(dead);
            assert_eq!(p.health(dead), NodeHealth::Down);
            let mut buf = vec![0.0; 100];
            s.read_run(0, &mut buf).expect("degraded read");
            assert!(bits_equal(&buf, &data), "node {dead} dead: bit-equal");
            // Reconstruction is repair traffic; the dead node's
            // data-plane counters do not move.
            assert_eq!(p.snapshot()[dead].io, before, "node {dead} io frozen");
            assert!(
                p.total_repair()
                    .get(IoCause::DegradedReconstruct)
                    .read_calls
                    > 0
            );
            p.revive(dead);
        }
    }

    #[test]
    fn degraded_write_lands_in_parity_and_reads_back() {
        let p = pool(3, 4);
        let mut s = striped_parity(&p, 36);
        let first: Vec<f64> = (0..36).map(f64::from).collect();
        s.write_run(0, &first).expect("healthy write");
        p.quarantine(1);
        let second: Vec<f64> = (0..36).map(|i| f64::from(i) * -2.5).collect();
        s.write_run(0, &second).expect("degraded write");
        let mut buf = vec![0.0; 36];
        s.read_run(0, &mut buf).expect("degraded read");
        assert!(bits_equal(&buf, &second), "degraded write round-trips");
        // The dead node's part never saw the new data.
        let lay = s.parity_layout().expect("layout");
        let mut stale = vec![0.0; 4];
        s.parts[1].read_run(0, &mut stale).expect("stale chunk");
        let g = (0..lay.data_stripes())
            .find(|&g| lay.data_node(g) == 1)
            .expect("stripe on node 1");
        assert!(
            bits_equal(&stale, &first[(g * 4) as usize..(g * 4 + 4) as usize]),
            "dead part still holds pre-kill bits"
        );
    }

    #[test]
    fn resilver_rebuilds_a_replacement_node() {
        let p = pool(4, 8);
        let mut s = striped_parity(&p, 100);
        let data: Vec<f64> = (0..100).map(|i| f64::from(i).sqrt()).collect();
        s.write_run(0, &data).expect("healthy write");
        p.quarantine(2);
        let patch: Vec<f64> = (0..20).map(|i| f64::from(i) + 0.125).collect();
        s.write_run(10, &patch).expect("degraded write");
        let mut want = data.clone();
        want[10..30].copy_from_slice(&patch);

        let rep = s
            .resilver(2, |l| Ok(MemStore::new(l)), |l| Ok(MemStore::new(l)))
            .expect("resilver");
        assert!(rep.data_stripes > 0);
        assert!(rep.parity_chunks > 0);
        assert!(rep.elems_written > 0);
        p.revive(2);
        assert_eq!(p.health(2), NodeHealth::Up);

        let mut buf = vec![0.0; 100];
        s.read_run(0, &mut buf).expect("post-resilver read");
        assert!(bits_equal(&buf, &want), "resilvered store bit-equal");
        assert_parity_consistent(&s);
        // The revived lane serves data-plane reads again.
        let before = p.snapshot()[2].io.read_calls;
        let mut probe = vec![0.0; 100];
        s.read_run(0, &mut probe).expect("probe");
        assert!(
            p.snapshot()[2].io.read_calls > before,
            "lane back in service"
        );
    }

    #[test]
    fn injected_permanent_failure_is_typed_sticky_and_counted() {
        let p = IoNodePool::with_faults(
            StripeConfig {
                nodes: 2,
                stripe_elems: 4,
                ..StripeConfig::default()
            },
            NodeFaultConfig::new().permanent_fail_at(1, 2),
        );
        for _ in 0..2 {
            p.execute(1, CallClass::Read, 1, || Ok(()))
                .expect("pre-death call");
        }
        let e = p
            .execute(1, CallClass::Read, 1, || Ok(()))
            .expect_err("death at call 2");
        assert!(is_node_down(&e));
        assert_eq!(crate::fault::node_down(&e).expect("payload").node, 1);
        assert_eq!(p.health(1), NodeHealth::Down);
        // Sticky: later calls are rejected without running the op.
        let e2 = p
            .execute(1, CallClass::Read, 1, || -> io::Result<()> {
                panic!("op must not run")
            })
            .expect_err("still dead");
        assert!(is_node_down(&e2));
        assert_eq!(p.snapshot()[1].timing.down_rejections, 2);
        // The other node is unaffected.
        p.execute(0, CallClass::Read, 1, || Ok(()))
            .expect("peer alive");
        // Revive disables the injected schedule (replacement device).
        p.revive(1);
        p.execute(1, CallClass::Read, 1, || Ok(()))
            .expect("revived");
    }

    #[test]
    fn queue_deadline_returns_typed_timeout() {
        let p = IoNodePool::with_faults(
            StripeConfig {
                nodes: 1,
                stripe_elems: 4,
                queue_deadline_ns: Some(2_000_000), // 2 ms
                ..StripeConfig::default()
            },
            NodeFaultConfig::new().slow_node(0, 60_000_000), // 60 ms service
        );
        let entered = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let bg = p.clone();
            let flag = Arc::clone(&entered);
            scope.spawn(move || {
                bg.execute_deadline(0, CallClass::Read, 1, None, || {
                    flag.store(true, Ordering::SeqCst);
                    Ok(())
                })
                .expect("background call");
            });
            while !entered.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // The lane is now held for ~60 ms; our 2 ms budget expires.
            let e = p
                .execute(0, CallClass::Read, 1, || Ok(()))
                .expect_err("deadline miss");
            assert!(is_node_slow(&e), "typed slow error, got {e}");
        });
        assert_eq!(p.snapshot()[0].timing.timeouts, 1);
        assert_eq!(p.health(0), NodeHealth::Slow);
        // The lane still drains: a patient call succeeds.
        p.execute_deadline(0, CallClass::Read, 1, None, || Ok(()))
            .expect("lane drains after timeout");
    }

    #[test]
    fn hedged_read_reconstructs_past_a_straggler() {
        let p = IoNodePool::with_faults(
            StripeConfig {
                nodes: 3,
                stripe_elems: 4,
                hedge: Some(HedgeConfig {
                    min_ns: 1_000_000, // 1 ms floor, empty history
                    ..HedgeConfig::default()
                }),
                ..StripeConfig::default()
            },
            NodeFaultConfig::new().slow_node(0, 60_000_000),
        );
        let mut s = striped_parity(&p, 24);
        let data: Vec<f64> = (0..24).map(|i| f64::from(i) * 0.5).collect();
        // Seed without tripping hedges: write path never hedges, and
        // node 0's injected slowness only delays it.
        s.write_run(0, &data).expect("write");
        let entered = Arc::new(AtomicBool::new(false));
        let shared = SharedStore::new(s);
        std::thread::scope(|scope| {
            let bg = p.clone();
            let flag = Arc::clone(&entered);
            scope.spawn(move || {
                bg.execute_deadline(0, CallClass::Read, 1, None, || {
                    flag.store(true, Ordering::SeqCst);
                    Ok(())
                })
                .expect("straggling call");
            });
            while !entered.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // Node 0 is busy for ~60 ms; the hedge fires after ~1 ms
            // and retires stripe 0 against nodes 1 + parity.
            let mut buf = vec![0.0; 4];
            shared
                .with_inner(|s| s.read_run(0, &mut buf))
                .expect("hedged read");
            assert!(bits_equal(&buf, &data[..4]), "hedged read bit-equal");
        });
        let repair = p.total_repair();
        assert!(
            repair.get(IoCause::HedgedRead).read_calls > 0,
            "hedge accounted"
        );
        assert_eq!(p.snapshot()[0].timing.timeouts, 1);
    }

    #[test]
    fn manual_mode_surfaces_discovery_then_reconstructs_known_dead() {
        let p = IoNodePool::with_faults(
            StripeConfig {
                nodes: 4,
                stripe_elems: 8,
                ..StripeConfig::default()
            },
            NodeFaultConfig::new().permanent_fail_at(1, u64::MAX),
        );
        let mut s = striped_parity(&p, 100);
        s.set_degraded_mode(DegradedMode::Manual);
        assert_eq!(s.degraded_mode(), DegradedMode::Manual);
        let data: Vec<f64> = (0..100).map(|i| f64::from(i) + 0.75).collect();
        s.write_run(0, &data).expect("healthy write");
        // Kill node 1 *after* seeding (schedule said never, we say now).
        p.quarantine(1);
        // Known-dead reconstruction works even in Manual mode...
        let mut buf = vec![0.0; 100];
        s.read_run(0, &mut buf).expect("known-dead read");
        assert!(bits_equal(&buf, &data));
        // ...but a *fresh* discovery surfaces the typed error: new pool
        // where the node dies at its first arrival after seeding. The
        // seed's arrival count on node 1 comes from a fault-free twin
        // (arrivals = data + repair calls, all deterministic).
        let twin = p.snapshot()[1].clone();
        let seed_arrivals = twin.io.total_calls() + twin.repair.total_calls();
        let p2 = IoNodePool::with_faults(
            StripeConfig {
                nodes: 4,
                stripe_elems: 8,
                ..StripeConfig::default()
            },
            NodeFaultConfig::new().permanent_fail_at(1, seed_arrivals),
        );
        let mut s2 = striped_parity(&p2, 100);
        s2.set_degraded_mode(DegradedMode::Manual);
        s2.write_run(0, &data).expect("seed within fault budget");
        let e = s2.read_run(0, &mut buf).expect_err("discovery surfaces");
        assert!(is_node_down(&e), "typed NodeDown, got {e}");
        // After discovery the node is marked down; reads degrade.
        assert_eq!(p2.health(1), NodeHealth::Down);
        s2.read_run(0, &mut buf)
            .expect("degraded read after discovery");
        assert!(bits_equal(&buf, &data));
    }

    #[test]
    fn scrub_verifies_detects_and_repairs() {
        let p = pool(3, 4);
        let mut s = striped_parity(&p, 36);
        let data: Vec<f64> = (0..36).map(|i| f64::from(i) * 3.25).collect();
        s.write_run(0, &data).expect("write");
        let clean = s.scrub(false).expect("clean scrub");
        assert_eq!(clean.groups, s.parity_groups().expect("groups"));
        assert_eq!(clean.clean, clean.groups);
        assert_eq!(clean.parity_mismatch, 0);
        assert_eq!(clean.repaired, 0);
        assert!(clean.read_elems > 0);

        // Stale parity: overwrite group 0's parity chunk behind the
        // store's back.
        let lay = s.parity_layout().expect("layout");
        let pnode = lay.parity_node(0);
        s.parity.as_mut().expect("parity").parts[pnode]
            .write_run(lay.parity_part_offset(0), &[9.0, 9.0, 9.0, 9.0])
            .expect("corrupt parity");
        let found = s.scrub(false).expect("detect scrub");
        assert_eq!(found.parity_mismatch, 1);
        assert_eq!(found.repaired, 0, "verify-only leaves it stale");
        let fixed = s.scrub(true).expect("repair scrub");
        assert_eq!(fixed.parity_mismatch, 1);
        assert_eq!(fixed.repaired, 1);
        assert!(fixed.written_elems > 0);
        assert_parity_consistent(&s);
        // Redundancy is whole again: degraded reads are bit-equal.
        p.quarantine(lay.data_node(0));
        let mut buf = vec![0.0; 36];
        s.read_run(0, &mut buf).expect("degraded read");
        assert!(bits_equal(&buf, &data));
        // Scrub skips degraded groups rather than "repairing" them.
        p.quarantine(lay.data_node(0));
        let degraded = s.scrub(true).expect("degraded scrub");
        assert!(degraded.skipped > 0);
        assert_eq!(degraded.unrecoverable, 0);
    }

    #[test]
    fn online_scrubber_walks_in_the_background() {
        let p = pool(3, 4);
        let mut s = striped_parity(&p, 48);
        let data: Vec<f64> = (0..48).map(|i| f64::from(i) - 7.5).collect();
        s.write_run(0, &data).expect("write");
        let shared = SharedStore::new(s);
        let scrubber = OnlineScrubber::start(shared.clone(), true, Duration::ZERO, 2);
        // Foreground I/O interleaves with the walker.
        for _ in 0..20 {
            let mut buf = vec![0.0; 48];
            shared
                .with_inner(|s| s.read_run(0, &mut buf))
                .expect("read");
            assert!(bits_equal(&buf, &data));
        }
        let rep = scrubber.stop().expect("scrubber result");
        assert!(rep.groups > 0, "walker visited groups");
        assert_eq!(rep.unrecoverable, 0);
        assert!(p.total_repair().get(IoCause::ScrubRead).read_calls > 0);
    }

    #[test]
    fn ledger_books_repair_traffic_outside_the_data_partition() {
        let rec = LedgerRecorder::new();
        let p = pool(4, 8);
        let mut s = striped_parity(&p, 64).with_ledger(rec.clone(), 3);
        let data: Vec<f64> = (0..64).map(f64::from).collect();
        s.write_run(0, &data).expect("write");
        p.quarantine(0);
        let mut buf = vec![0.0; 64];
        s.read_run(0, &mut buf).expect("degraded read");
        let ledger = rec.snapshot();
        assert!(ledger.events.is_empty(), "repair never lands in events");
        assert!(
            ledger
                .repair
                .get(&(3, IoCause::ParityWrite))
                .is_some_and(|&(c, e)| c > 0 && e > 0),
            "parity RMW booked"
        );
        assert!(
            ledger
                .repair
                .get(&(3, IoCause::DegradedReconstruct))
                .is_some_and(|&(c, e)| c > 0 && e > 0),
            "reconstruction booked"
        );
        ledger
            .check_conservation(&[])
            .expect("conservation holds with repair outside the partition");
    }

    #[test]
    fn build_with_parity_needs_two_nodes() {
        let p = pool(1, 8);
        let e = StripedStore::build_with_parity(
            &p,
            16,
            |_, l| Ok(MemStore::new(l)),
            |_, l| Ok(MemStore::new(l)),
        )
        .expect_err("one node cannot hold parity");
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
    }
}
