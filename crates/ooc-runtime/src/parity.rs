//! Rotating-parity geometry for the striped store: RAID-5-style
//! single-fault redundancy over the *unchanged* stripe→node mapping.
//!
//! [`StripedStore`](crate::StripedStore) assigns data stripe `g` to
//! node `g % K`. A parity **group** is `K-1` consecutive data stripes
//! `[j*(K-1), (j+1)*(K-1))`; because `K-1` consecutive stripe indices
//! occupy `K-1` *distinct* consecutive nodes mod `K`, every group
//! misses exactly one node — `K-1-(j % K)` — and that is where its
//! parity chunk lives. The parity placement therefore rotates across
//! nodes with period `K` without touching the data layout, so all
//! existing traffic accounting (which is a pure function of the data
//! mapping) is unchanged when parity is off, and the parity lane rides
//! alongside as separate per-node part stores.
//!
//! Parity is bitwise XOR over the IEEE-754 bit patterns of the `f64`
//! elements ([`xor_into`]) — copy-only, never float arithmetic — so a
//! reconstructed chunk is **bit-equal** to the lost one, including
//! NaN payloads and signed zeros. Tail data chunks shorter than the
//! stripe unit are implicitly zero-padded (XOR with zero bits is the
//! identity), so every parity chunk is a full stripe long.

/// The parity geometry of one striped store: node count, stripe unit,
/// and logical length. All methods are pure functions of these three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityLayout {
    /// I/O node count `K` (must be ≥ 2; `K = 2` degenerates to
    /// mirroring).
    pub nodes: usize,
    /// Stripe unit in elements.
    pub stripe_elems: u64,
    /// Logical store length in elements.
    pub len: u64,
}

impl ParityLayout {
    /// A layout over `nodes` nodes.
    ///
    /// # Panics
    /// Panics on fewer than two nodes (no peer to hold parity) or a
    /// zero stripe unit.
    #[must_use]
    pub fn new(nodes: usize, stripe_elems: u64, len: u64) -> Self {
        assert!(nodes >= 2, "parity needs at least two I/O nodes");
        assert!(stripe_elems > 0, "stripe unit must be positive");
        ParityLayout {
            nodes,
            stripe_elems,
            len,
        }
    }

    /// Data stripes per parity group (`K-1`).
    #[must_use]
    pub fn group_width(&self) -> u64 {
        self.nodes as u64 - 1
    }

    /// Number of data stripes (the last may be partial).
    #[must_use]
    pub fn data_stripes(&self) -> u64 {
        self.len.div_ceil(self.stripe_elems)
    }

    /// Number of parity groups.
    #[must_use]
    pub fn groups(&self) -> u64 {
        self.data_stripes().div_ceil(self.group_width())
    }

    /// The parity group of data stripe `g`.
    #[must_use]
    pub fn group_of(&self, g: u64) -> u64 {
        g / self.group_width()
    }

    /// The data stripes of group `j` (clamped at the store tail).
    #[must_use]
    pub fn stripes_of_group(&self, j: u64) -> std::ops::Range<u64> {
        let lo = j * self.group_width();
        let hi = ((j + 1) * self.group_width()).min(self.data_stripes());
        lo..hi
    }

    /// The node holding group `j`'s parity chunk: the one node of
    /// `0..K` that holds none of the group's data stripes.
    #[must_use]
    pub fn parity_node(&self, j: u64) -> usize {
        let k = self.nodes as u64;
        usize::try_from(k - 1 - (j % k)).expect("node index fits usize")
    }

    /// Element offset of group `j`'s parity chunk inside its node's
    /// parity part store. Groups land on a node in increasing order
    /// with period `K`, so group `j` is that node's `j / K`-th chunk.
    #[must_use]
    pub fn parity_part_offset(&self, j: u64) -> u64 {
        (j / self.nodes as u64) * self.stripe_elems
    }

    /// Length of node `m`'s parity part store: one full stripe per
    /// group whose parity lands there.
    #[must_use]
    pub fn parity_part_len(&self, m: usize) -> u64 {
        let k = self.nodes as u64;
        let g = self.groups();
        // parity_node(j) == m  ⇔  j % K == K-1-m.
        let residue = k - 1 - m as u64;
        let count = g / k + u64::from(g % k > residue);
        count * self.stripe_elems
    }

    /// The node holding data stripe `g` (the store's data mapping).
    #[must_use]
    pub fn data_node(&self, g: u64) -> usize {
        usize::try_from(g % self.nodes as u64).expect("node index fits usize")
    }

    /// Element offset of data stripe `g` inside its node's data part.
    #[must_use]
    pub fn data_part_offset(&self, g: u64) -> u64 {
        (g / self.nodes as u64) * self.stripe_elems
    }

    /// Valid length of data stripe `g` (shorter at the store tail).
    #[must_use]
    pub fn stripe_len(&self, g: u64) -> u64 {
        self.stripe_elems.min(self.len - g * self.stripe_elems)
    }
}

/// XORs `src`'s IEEE-754 bit patterns into `acc` element-wise. `src`
/// may be shorter than `acc` (a tail chunk): missing elements are
/// zero bits, i.e. left as-is.
///
/// # Panics
/// Panics when `src` is longer than `acc`.
pub fn xor_into(acc: &mut [f64], src: &[f64]) {
    assert!(src.len() <= acc.len(), "xor source longer than accumulator");
    for (a, s) in acc.iter_mut().zip(src) {
        *a = f64::from_bits(a.to_bits() ^ s.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_node_is_disjoint_from_the_groups_data_nodes() {
        for nodes in 2..=9usize {
            let lay = ParityLayout::new(nodes, 4, 4 * 40 * nodes as u64);
            for j in 0..lay.groups() {
                let p = lay.parity_node(j);
                let data: Vec<usize> = lay.stripes_of_group(j).map(|g| lay.data_node(g)).collect();
                assert!(
                    !data.contains(&p),
                    "K={nodes} group {j}: parity node {p} collides with data nodes {data:?}"
                );
                // The group's data stripes sit on K-1 distinct nodes.
                let mut uniq = data.clone();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), data.len(), "K={nodes} group {j}");
            }
        }
    }

    #[test]
    fn parity_rotates_across_nodes() {
        let lay = ParityLayout::new(4, 8, 8 * 24);
        let nodes: Vec<usize> = (0..8).map(|j| lay.parity_node(j)).collect();
        assert_eq!(nodes, vec![3, 2, 1, 0, 3, 2, 1, 0]);
    }

    #[test]
    fn parity_part_lengths_cover_every_group_once() {
        for (nodes, stripe, len) in [(4usize, 8u64, 100u64), (3, 4, 50), (2, 8, 64), (5, 3, 31)] {
            let lay = ParityLayout::new(nodes, stripe, len);
            let total: u64 = (0..nodes).map(|m| lay.parity_part_len(m)).sum();
            assert_eq!(
                total,
                lay.groups() * stripe,
                "K={nodes} stripe={stripe} len={len}"
            );
            // Offsets within each node are dense and in group order.
            for m in 0..nodes {
                let mine: Vec<u64> = (0..lay.groups())
                    .filter(|&j| lay.parity_node(j) == m)
                    .map(|j| lay.parity_part_offset(j))
                    .collect();
                let expect: Vec<u64> = (0..mine.len() as u64).map(|i| i * stripe).collect();
                assert_eq!(mine, expect, "node {m} parity chunks dense");
            }
        }
    }

    #[test]
    fn xor_reconstructs_any_single_chunk() {
        // Three data chunks of differing lengths plus parity: dropping
        // any one chunk and XOR-ing the rest restores it bit-exactly.
        let chunks: Vec<Vec<f64>> = vec![
            vec![1.5, -0.0, f64::NAN, 7.25],
            vec![2.0_f64.powi(60), 3.0, -9.75],
            vec![0.0, f64::INFINITY],
        ];
        let stripe = 4usize;
        let mut parity = vec![0.0; stripe];
        for c in &chunks {
            xor_into(&mut parity, c);
        }
        for lost in 0..chunks.len() {
            let mut rebuilt = vec![0.0; stripe];
            xor_into(&mut rebuilt, &parity);
            for (i, c) in chunks.iter().enumerate() {
                if i != lost {
                    xor_into(&mut rebuilt, c);
                }
            }
            let want = &chunks[lost];
            for (a, b) in rebuilt[..want.len()].iter().zip(want) {
                assert_eq!(a.to_bits(), b.to_bits(), "chunk {lost} reconstructs");
            }
            // Padding beyond the lost chunk's length is all zero bits.
            for a in &rebuilt[want.len()..] {
                assert_eq!(a.to_bits(), 0);
            }
        }
    }

    #[test]
    fn stripe_len_handles_the_tail() {
        let lay = ParityLayout::new(4, 8, 20);
        assert_eq!(lay.data_stripes(), 3);
        assert_eq!(lay.stripe_len(0), 8);
        assert_eq!(lay.stripe_len(1), 8);
        assert_eq!(lay.stripe_len(2), 4);
        assert_eq!(lay.groups(), 1);
        assert_eq!(lay.stripes_of_group(0), 0..3);
    }
}
