//! The write intent journal: an append-only undo log that makes tile
//! write-back crash-consistent.
//!
//! Protocol (write-ahead + undo):
//!
//! 1. **Intent** — before a tile region is written back, append
//!    `{seq, array, region, checksum-of-new-data, pre-image}`. The
//!    pre-image is the region's contents as of the last checkpoint
//!    (captured for free when the executor staged the tile), so
//!    rolling an intent back restores checkpoint state exactly.
//! 2. Perform the store write.
//! 3. **Commit** — append `{seq}`.
//!
//! A crash at any point leaves a log whose *torn tail* (a partial
//! final record) is tolerated by [`parse_journal`]; recovery applies
//! pre-images of post-checkpoint intents in reverse sequence order
//! ([`rollback`]), which is idempotent — replaying the scan twice
//! lands in the same state, the property `journal_proptests.rs`
//! drives at random.
//!
//! Records are text lines with `f64` values serialized as their
//! 16-hex-digit bit patterns, so every value (NaN payloads included)
//! round-trips exactly.

use crate::checksum::crc64_f64s;
use crate::layout::Region;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Byte-level backing of a journal or manifest: append-only writes
/// plus a full scan. Implementations decide persistence (memory for
/// tests, a file for real runs).
pub trait LogStore: Send {
    /// Appends `bytes` at the end of the log.
    ///
    /// # Errors
    /// Propagates I/O errors.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Reads the whole log.
    ///
    /// # Errors
    /// Propagates I/O errors.
    fn read_all(&self) -> io::Result<Vec<u8>>;

    /// Empties the log.
    ///
    /// # Errors
    /// Propagates I/O errors.
    fn truncate(&mut self) -> io::Result<()>;

    /// Shortens the log to its first `len` bytes — how recovery drops
    /// a torn tail before appending new records (otherwise the first
    /// new append would merge with the partial, newline-less final
    /// record into one unparseable line).
    ///
    /// # Errors
    /// Propagates I/O errors.
    fn truncate_to(&mut self, len: u64) -> io::Result<()>;
}

/// An in-memory [`LogStore`]; clones share the same bytes, so a
/// handle kept outside a simulated crash still sees everything the
/// dead run appended.
#[derive(Debug, Clone, Default)]
pub struct MemLog(Arc<Mutex<Vec<u8>>>);

impl MemLog {
    /// An empty shared log.
    #[must_use]
    pub fn new() -> Self {
        MemLog::default()
    }

    /// A copy of the current contents.
    ///
    /// # Panics
    /// Panics if the log mutex was poisoned.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        self.0.lock().expect("log lock").clone()
    }

    /// Replaces the contents (test plumbing: crash-point prefixes).
    ///
    /// # Panics
    /// Panics if the log mutex was poisoned.
    pub fn replace(&self, bytes: Vec<u8>) {
        *self.0.lock().expect("log lock") = bytes;
    }
}

impl LogStore for MemLog {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.lock().expect("log lock").extend_from_slice(bytes);
        Ok(())
    }

    fn read_all(&self) -> io::Result<Vec<u8>> {
        Ok(self.snapshot())
    }

    fn truncate(&mut self) -> io::Result<()> {
        self.0.lock().expect("log lock").clear();
        Ok(())
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.0
            .lock()
            .expect("log lock")
            .truncate(usize::try_from(len).unwrap_or(usize::MAX));
        Ok(())
    }
}

/// A file-backed [`LogStore`] at a fixed path; a missing file reads
/// as an empty log.
///
/// By default appends reach the OS page cache but are **not** fsynced:
/// records survive a process crash (the scope the fault matrix tests)
/// but not a kernel panic or power loss. [`FileLog::synced`] adds a
/// `sync_all` per append for callers that need the log itself on
/// physical media — note full power-loss consistency would also
/// require syncing the data files before each checkpoint record.
#[derive(Debug, Clone)]
pub struct FileLog {
    path: PathBuf,
    sync: bool,
}

impl FileLog {
    /// A log at `path` (created on first append), durable across
    /// process crashes only.
    #[must_use]
    pub fn new(path: &Path) -> Self {
        FileLog {
            path: path.to_path_buf(),
            sync: false,
        }
    }

    /// A log at `path` that fsyncs every append.
    #[must_use]
    pub fn synced(path: &Path) -> Self {
        FileLog {
            path: path.to_path_buf(),
            sync: true,
        }
    }
}

impl LogStore for FileLog {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        f.write_all(bytes)?;
        if self.sync {
            f.sync_all()
        } else {
            f.flush()
        }
    }

    fn read_all(&self) -> io::Result<Vec<u8>> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn truncate(&mut self) -> io::Result<()> {
        std::fs::write(&self.path, b"")
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        match std::fs::OpenOptions::new().write(true).open(&self.path) {
            Ok(f) => {
                f.set_len(len)?;
                if self.sync {
                    f.sync_all()?;
                }
                Ok(())
            }
            // A missing log is already an empty prefix.
            Err(e) if e.kind() == io::ErrorKind::NotFound && len == 0 => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// One write intent: the region about to be written, the checksum of
/// the *new* data (for post-crash verification), and the pre-image
/// that undoes it.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteIntent {
    /// Journal sequence number (unique, ascending).
    pub seq: u64,
    /// Array index the write targets.
    pub array: u32,
    /// Region being written.
    pub region: Region,
    /// CRC64 of the new data's bit patterns ([`crc64_f64s`]).
    pub checksum: u64,
    /// The region's prior contents (undo data).
    pub pre: Vec<f64>,
}

/// A parsed journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A write intent.
    Intent(WriteIntent),
    /// A commit of the intent with this sequence number.
    Commit(u64),
}

/// The writer side of the journal.
pub struct Journal {
    log: Box<dyn LogStore>,
    next_seq: u64,
    intents: u64,
    commits: u64,
}

impl Journal {
    /// A journal appending to `log`, numbering intents from 0.
    #[must_use]
    pub fn new(log: Box<dyn LogStore>) -> Self {
        Journal {
            log,
            next_seq: 0,
            intents: 0,
            commits: 0,
        }
    }

    /// Resumes appending to an existing log, numbering intents from
    /// `next_seq` (a prior scan's [`JournalScan::next_seq`]).
    #[must_use]
    pub fn resume(log: Box<dyn LogStore>, next_seq: u64) -> Self {
        Journal {
            log,
            next_seq,
            intents: 0,
            commits: 0,
        }
    }

    /// Appends a write intent for `region` of `array`, returning its
    /// sequence number. `new_data` is checksummed; `pre` is stored as
    /// the undo image.
    ///
    /// # Errors
    /// Propagates log I/O errors.
    pub fn intent(
        &mut self,
        array: u32,
        region: &Region,
        new_data: &[f64],
        pre: &[f64],
    ) -> io::Result<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut line = format!(
            "I {seq} {array} {:016x} {} {} {}",
            crc64_f64s(new_data),
            join_coords(&region.lo),
            join_coords(&region.hi),
            pre.len(),
        );
        if pre.is_empty() {
            line.push_str(" -");
        } else {
            line.push(' ');
            for (i, v) in pre.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("{:016x}", v.to_bits()));
            }
        }
        line.push('\n');
        self.log.append(line.as_bytes())?;
        self.intents += 1;
        Ok(seq)
    }

    /// Appends a commit record for `seq`.
    ///
    /// # Errors
    /// Propagates log I/O errors.
    pub fn commit(&mut self, seq: u64) -> io::Result<()> {
        self.log.append(format!("C {seq}\n").as_bytes())?;
        self.commits += 1;
        Ok(())
    }

    /// The sequence number the next intent will get — the journal
    /// *watermark* checkpoint manifests record.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Intents appended by this writer (not counting a resumed past).
    #[must_use]
    pub fn intents_written(&self) -> u64 {
        self.intents
    }

    /// Commits appended by this writer.
    #[must_use]
    pub fn commits_written(&self) -> u64 {
        self.commits
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("next_seq", &self.next_seq)
            .field("intents", &self.intents)
            .field("commits", &self.commits)
            .finish_non_exhaustive()
    }
}

/// A thread-safe shared handle onto one [`Journal`] — the write path
/// and the write-behind durability fence both append through this.
#[derive(Debug, Clone)]
pub struct SharedJournal(Arc<Mutex<Journal>>);

impl SharedJournal {
    /// Wraps `journal` for shared use.
    #[must_use]
    pub fn new(journal: Journal) -> Self {
        SharedJournal(Arc::new(Mutex::new(journal)))
    }

    /// See [`Journal::intent`].
    ///
    /// # Errors
    /// Propagates log I/O errors.
    ///
    /// # Panics
    /// Panics if the journal mutex was poisoned.
    pub fn intent(
        &self,
        array: u32,
        region: &Region,
        new_data: &[f64],
        pre: &[f64],
    ) -> io::Result<u64> {
        self.0
            .lock()
            .expect("journal lock")
            .intent(array, region, new_data, pre)
    }

    /// See [`Journal::commit`].
    ///
    /// # Errors
    /// Propagates log I/O errors.
    ///
    /// # Panics
    /// Panics if the journal mutex was poisoned.
    pub fn commit(&self, seq: u64) -> io::Result<()> {
        self.0.lock().expect("journal lock").commit(seq)
    }

    /// See [`Journal::next_seq`].
    ///
    /// # Panics
    /// Panics if the journal mutex was poisoned.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.0.lock().expect("journal lock").next_seq()
    }

    /// `(intents, commits)` appended through this journal writer.
    ///
    /// # Panics
    /// Panics if the journal mutex was poisoned.
    #[must_use]
    pub fn written(&self) -> (u64, u64) {
        let j = self.0.lock().expect("journal lock");
        (j.intents_written(), j.commits_written())
    }
}

fn join_coords(cs: &[i64]) -> String {
    cs.iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(";")
}

fn parse_coords(s: &str) -> Option<Vec<i64>> {
    s.split(';').map(|c| c.parse().ok()).collect()
}

fn parse_line(line: &str) -> Option<JournalRecord> {
    let mut f = line.split_ascii_whitespace();
    match f.next()? {
        "C" => {
            let seq = f.next()?.parse().ok()?;
            if f.next().is_some() {
                return None;
            }
            Some(JournalRecord::Commit(seq))
        }
        "I" => {
            let seq = f.next()?.parse().ok()?;
            let array = f.next()?.parse().ok()?;
            let checksum = u64::from_str_radix(f.next()?, 16).ok()?;
            let lo = parse_coords(f.next()?)?;
            let hi = parse_coords(f.next()?)?;
            if lo.len() != hi.len() {
                return None;
            }
            let n: usize = f.next()?.parse().ok()?;
            let pre_field = f.next()?;
            let pre: Vec<f64> = if pre_field == "-" {
                Vec::new()
            } else {
                pre_field
                    .split(',')
                    .map(|h| u64::from_str_radix(h, 16).ok().map(f64::from_bits))
                    .collect::<Option<Vec<f64>>>()?
            };
            if pre.len() != n || f.next().is_some() {
                return None;
            }
            Some(JournalRecord::Intent(WriteIntent {
                seq,
                array,
                region: Region::new(lo, hi),
                checksum,
                pre,
            }))
        }
        _ => None,
    }
}

/// Result of scanning a (possibly crash-torn) journal.
#[derive(Debug, Clone, Default)]
pub struct JournalScan {
    /// Records in log order.
    pub records: Vec<JournalRecord>,
    /// Whether a torn tail (partial final record) was dropped.
    pub torn_tail: bool,
    /// One past the highest intent sequence seen — what
    /// [`Journal::resume`] should continue from.
    pub next_seq: u64,
    /// Byte length of the parsed-valid prefix. When `torn_tail` is
    /// set, recovery must [`LogStore::truncate_to`] this length before
    /// appending, or the first new record merges with the partial tail
    /// into one unparseable line.
    pub valid_len: u64,
}

impl JournalScan {
    /// Sequence numbers with a commit record.
    #[must_use]
    pub fn committed_seqs(&self) -> BTreeSet<u64> {
        self.records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Commit(s) => Some(*s),
                JournalRecord::Intent(_) => None,
            })
            .collect()
    }

    /// All intents in log order.
    #[must_use]
    pub fn intents(&self) -> Vec<&WriteIntent> {
        self.records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Intent(w) => Some(w),
                JournalRecord::Commit(_) => None,
            })
            .collect()
    }

    /// Intents without a commit record — in-flight at the crash.
    #[must_use]
    pub fn uncommitted(&self) -> Vec<&WriteIntent> {
        let committed = self.committed_seqs();
        self.intents()
            .into_iter()
            .filter(|w| !committed.contains(&w.seq))
            .collect()
    }

    /// Intents at or past the checkpoint watermark `seq` (everything
    /// a checkpoint-rollback recovery must undo, committed or not).
    #[must_use]
    pub fn intents_after(&self, watermark: u64) -> Vec<&WriteIntent> {
        self.intents()
            .into_iter()
            .filter(|w| w.seq >= watermark)
            .collect()
    }

    /// The last *committed* intent per exact region, keyed by
    /// `(array, region)` — the data recovery trusts (and verifies by
    /// checksum in the property tests).
    #[must_use]
    pub fn latest_committed(&self) -> BTreeMap<(u32, Region), &WriteIntent> {
        let committed = self.committed_seqs();
        let mut out: BTreeMap<(u32, Region), &WriteIntent> = BTreeMap::new();
        for w in self.intents() {
            if committed.contains(&w.seq) {
                out.insert((w.array, w.region.clone()), w);
            }
        }
        out
    }
}

/// Parses a journal byte stream, tolerating a torn tail: the first
/// unparseable or unterminated line and everything after it is
/// dropped (a crash mid-append cannot corrupt earlier records in an
/// append-only log).
#[must_use]
pub fn parse_journal(bytes: &[u8]) -> JournalScan {
    let mut scan = JournalScan::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            scan.torn_tail = true;
            break;
        };
        let line = &bytes[pos..pos + nl];
        pos += nl + 1;
        let parsed = std::str::from_utf8(line).ok().and_then(parse_line);
        match parsed {
            Some(r) => {
                if let JournalRecord::Intent(w) = &r {
                    scan.next_seq = scan.next_seq.max(w.seq + 1);
                }
                scan.records.push(r);
                scan.valid_len = pos as u64;
            }
            None => {
                scan.torn_tail = true;
                break;
            }
        }
    }
    scan
}

/// The write path [`rollback`] drives: `(array, region, pre-image)`.
pub type UndoWriter<'a> = dyn FnMut(u32, &Region, &[f64]) -> io::Result<()> + 'a;

/// Applies `intents` in reverse sequence order through `write`,
/// restoring each pre-image — the undo pass of recovery. Returns the
/// number of tiles rolled back. Idempotent: pre-images are absolute
/// contents, so replaying the same rollback lands in the same state.
///
/// # Errors
/// Propagates `write` errors.
pub fn rollback(intents: &[&WriteIntent], write: &mut UndoWriter<'_>) -> io::Result<u64> {
    let mut ordered: Vec<&WriteIntent> = intents.to_vec();
    ordered.sort_by_key(|w| std::cmp::Reverse(w.seq));
    let mut n = 0u64;
    for w in ordered {
        write(w.array, &w.region, &w.pre)?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(lo: i64, hi: i64) -> Region {
        Region::new(vec![lo], vec![hi])
    }

    #[test]
    fn roundtrip_including_weird_floats() {
        let log = MemLog::new();
        let mut j = Journal::new(Box::new(log.clone()));
        let pre = vec![f64::NAN, -0.0, f64::INFINITY, 1.5e-300];
        let s0 = j
            .intent(3, &region(5, 8), &[1.0, 2.0, 3.0, 4.0], &pre)
            .expect("intent");
        j.commit(s0).expect("commit");
        let s1 = j
            .intent(1, &region(1, 2), &[9.0, 9.5], &[0.25, 0.5])
            .expect("intent");
        assert_eq!((s0, s1), (0, 1));

        let scan = parse_journal(&log.snapshot());
        assert!(!scan.torn_tail);
        assert_eq!(scan.next_seq, 2);
        assert_eq!(scan.records.len(), 3);
        let intents = scan.intents();
        assert_eq!(intents[0].checksum, crc64_f64s(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(
            intents[0].pre[0].to_bits(),
            pre[0].to_bits(),
            "NaN payload survives"
        );
        assert_eq!(
            intents[0].pre[1].to_bits(),
            (-0.0f64).to_bits(),
            "-0.0 survives"
        );
        let un = scan.uncommitted();
        assert_eq!(un.len(), 1);
        assert_eq!(un[0].seq, 1);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let log = MemLog::new();
        let mut j = Journal::new(Box::new(log.clone()));
        let s = j
            .intent(0, &region(1, 4), &[1.0; 4], &[0.0; 4])
            .expect("intent");
        j.commit(s).expect("commit");
        let full = log.snapshot();
        // Every proper prefix of the log parses, with the partial
        // final record dropped.
        for cut in 0..full.len() {
            let scan = parse_journal(&full[..cut]);
            assert!(scan.records.len() <= 2);
            if cut < full.len() {
                // Only complete records are kept; the count is a
                // function of how many newlines survived.
                let newlines = full[..cut].iter().filter(|&&b| b == b'\n').count();
                assert!(scan.records.len() <= newlines + 1);
            }
        }
        let whole = parse_journal(&full);
        assert!(!whole.torn_tail);
        assert_eq!(whole.records.len(), 2);
    }

    #[test]
    fn rollback_restores_pre_images_in_reverse() {
        // Two intents touching the same region: rollback must end on
        // the *older* pre-image (reverse order).
        let a = WriteIntent {
            seq: 0,
            array: 0,
            region: region(1, 2),
            checksum: 0,
            pre: vec![10.0, 11.0],
        };
        let b = WriteIntent {
            seq: 1,
            array: 0,
            region: region(1, 2),
            checksum: 0,
            pre: vec![20.0, 21.0],
        };
        let mut state = vec![99.0, 99.0];
        let n = rollback(&[&a, &b], &mut |_, _, pre| {
            state.copy_from_slice(pre);
            Ok(())
        })
        .expect("rollback");
        assert_eq!(n, 2);
        assert_eq!(state, vec![10.0, 11.0], "oldest pre-image wins");
    }

    #[test]
    fn truncating_torn_tail_keeps_later_appends_parseable() {
        let log = MemLog::new();
        let mut j = Journal::new(Box::new(log.clone()));
        let s = j
            .intent(0, &region(1, 4), &[1.0; 4], &[0.0; 4])
            .expect("intent");
        j.commit(s).expect("commit");
        // A crash mid-append leaves a partial, newline-less record.
        log.clone().append(b"I 1 0 dead").expect("torn tail");
        let scan = parse_journal(&log.snapshot());
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 2);

        // Without truncation, the next append would merge with the
        // torn tail and the merged line would poison the log. After
        // truncate_to(valid_len) the journal stays fully parseable.
        log.clone().truncate_to(scan.valid_len).expect("truncate");
        let mut resumed = Journal::resume(Box::new(log.clone()), scan.next_seq);
        let s2 = resumed
            .intent(0, &region(5, 8), &[2.0; 4], &[1.0; 4])
            .expect("intent after recovery");
        resumed.commit(s2).expect("commit after recovery");
        let rescan = parse_journal(&log.snapshot());
        assert!(!rescan.torn_tail, "truncated log reparses clean");
        assert_eq!(rescan.records.len(), 4);
        assert_eq!(rescan.next_seq, 2);
    }

    #[test]
    fn valid_len_covers_exactly_the_parsed_records() {
        let log = MemLog::new();
        let mut j = Journal::new(Box::new(log.clone()));
        let s = j
            .intent(2, &region(0, 3), &[1.0; 4], &[0.5; 4])
            .expect("intent");
        j.commit(s).expect("commit");
        let full = log.snapshot();
        let whole = parse_journal(&full);
        assert!(!whole.torn_tail);
        assert_eq!(whole.valid_len, full.len() as u64);
        for cut in 0..full.len() {
            let scan = parse_journal(&full[..cut]);
            // The valid prefix reparses to the same records, torn-free.
            let len = usize::try_from(scan.valid_len).expect("len");
            assert!(len <= cut);
            let again = parse_journal(&full[..len]);
            assert!(!again.torn_tail);
            assert_eq!(again.records, scan.records);
        }
        // A complete but garbage line invalidates itself and the tail.
        log.clone().append(b"garbage\nC 0\n").expect("append");
        let scan = parse_journal(&log.snapshot());
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_len, full.len() as u64);
        assert_eq!(scan.records.len(), 2);
    }

    #[test]
    fn file_log_truncate_to_and_synced_append() {
        let dir = crate::testing::TempDir::new("journal-truncto").expect("tmp");
        let path = dir.path().join("j.log");
        let mut log = FileLog::synced(&path);
        log.truncate_to(0).expect("missing file, empty prefix ok");
        log.append(b"C 0\nC 1\npartial").expect("append");
        let scan = parse_journal(&log.read_all().expect("read"));
        assert!(scan.torn_tail);
        log.truncate_to(scan.valid_len).expect("truncate");
        log.append(b"C 2\n").expect("append after truncate");
        let rescan = parse_journal(&log.read_all().expect("read"));
        assert!(!rescan.torn_tail);
        assert_eq!(rescan.records.len(), 3);
    }

    #[test]
    fn file_log_appends_and_scans() {
        let dir = crate::testing::TempDir::new("journal-filelog").expect("tmp");
        let mut log = FileLog::new(&dir.path().join("j.log"));
        assert!(log.read_all().expect("missing reads empty").is_empty());
        log.append(b"C 0\n").expect("append");
        log.append(b"C 1\n").expect("append");
        let scan = parse_journal(&log.read_all().expect("read"));
        assert_eq!(scan.records.len(), 2);
        log.truncate().expect("truncate");
        assert!(log.read_all().expect("read").is_empty());
    }

    #[test]
    fn shared_journal_is_thread_safe() {
        let log = MemLog::new();
        let j = SharedJournal::new(Journal::new(Box::new(log.clone())));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let j = j.clone();
                scope.spawn(move || {
                    for _ in 0..16 {
                        let s = j.intent(t, &region(1, 1), &[1.0], &[0.0]).expect("intent");
                        j.commit(s).expect("commit");
                    }
                });
            }
        });
        let scan = parse_journal(&log.snapshot());
        assert_eq!(scan.intents().len(), 64);
        assert_eq!(scan.committed_seqs().len(), 64);
        assert!(scan.uncommitted().is_empty());
        // Sequence numbers unique and dense.
        let seqs: BTreeSet<u64> = scan.intents().iter().map(|w| w.seq).collect();
        assert_eq!(seqs.len(), 64);
        assert_eq!(j.next_seq(), 64);
    }
}
