//! I/O access-pattern profiling: the full call trace, not just
//! aggregate counters.
//!
//! Where [`TracingStore`](crate::trace::TracingStore) aggregates store
//! traffic into [`MeasuredIo`] counters,
//! [`ProfilingStore`] keeps every `(offset, len, read/write)` call in
//! order. From that trace this module derives the *shape* questions
//! the paper's evaluation turns on — is the traffic a few long
//! sequential runs or many seeky fragments? — as:
//!
//! * seek-distance distributions ([`SeekCdf`]: quantiles over the
//!   element gaps between consecutive calls),
//! * sequential-run statistics ([`SeqStats`]: maximal bursts of
//!   gap-free calls, their lengths, the sequential-call fraction),
//! * an ASCII file heatmap ([`heatmap`]: touch density across the
//!   file, rendered for terminals).
//!
//! A priced simulated-time view of the same trace lives in
//! `pfs_sim::pricing` (the cost model owns the constants); `inspect
//! --profile` glues the two together.

use crate::store::Store;
use crate::trace::MeasuredIo;
use std::io;
use std::sync::{Arc, Mutex, PoisonError};

/// One successful store call, in trace order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// Element offset of the call.
    pub offset: u64,
    /// Elements moved.
    pub len: u64,
    /// Write (`true`) or read (`false`).
    pub write: bool,
}

impl AccessRecord {
    /// One past the last element the call touches.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// A cheap shared handle onto an access log; clones observe the same
/// record list, so a caller can keep one while the [`ProfilingStore`]
/// is moved into an array.
#[derive(Debug, Clone, Default)]
pub struct AccessLog(Arc<Mutex<Vec<AccessRecord>>>);

impl AccessLog {
    /// A fresh, empty log.
    #[must_use]
    pub fn new() -> Self {
        AccessLog::default()
    }

    fn push(&self, rec: AccessRecord) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(rec);
    }

    /// A copy of every record so far, in call order.
    #[must_use]
    pub fn records(&self) -> Vec<AccessRecord> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Number of recorded calls.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards every record.
    pub fn clear(&self) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

/// A [`Store`] wrapper recording every *successful* call into an
/// [`AccessLog`] (failed calls move no data; the aggregate
/// [`MeasuredIo`] counts them separately).
#[derive(Debug)]
pub struct ProfilingStore<S> {
    inner: S,
    log: AccessLog,
}

impl<S: Store> ProfilingStore<S> {
    /// Wraps `inner` with a fresh log.
    #[must_use]
    pub fn new(inner: S) -> Self {
        ProfilingStore {
            inner,
            log: AccessLog::new(),
        }
    }

    /// Wraps `inner` recording into an existing shared `log`.
    #[must_use]
    pub fn with_log(inner: S, log: AccessLog) -> Self {
        ProfilingStore { inner, log }
    }

    /// A shared handle onto this store's log.
    #[must_use]
    pub fn log(&self) -> AccessLog {
        self.log.clone()
    }

    /// The wrapped store.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, discarding the log handle.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Store> Store for ProfilingStore<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_run(&self, offset: u64, buf: &mut [f64]) -> io::Result<()> {
        self.inner.read_run(offset, buf)?;
        self.log.push(AccessRecord {
            offset,
            len: buf.len() as u64,
            write: false,
        });
        Ok(())
    }

    fn write_run(&mut self, offset: u64, buf: &[f64]) -> io::Result<()> {
        self.inner.write_run(offset, buf)?;
        self.log.push(AccessRecord {
            offset,
            len: buf.len() as u64,
            write: true,
        });
        Ok(())
    }

    fn reset_metrics(&mut self) {
        self.log.clear();
        self.inner.reset_metrics();
    }

    fn metrics(&self) -> Option<MeasuredIo> {
        self.inner.metrics()
    }

    fn access_log(&self) -> Option<Vec<AccessRecord>> {
        Some(self.log.records())
    }
}

/// The seek-distance distribution of a call trace: the nonzero element
/// gaps between where one call ends and the next begins, sorted.
#[derive(Debug, Clone, Default)]
pub struct SeekCdf {
    /// Sorted nonzero seek distances, one per non-sequential call
    /// transition.
    pub distances: Vec<u64>,
}

impl SeekCdf {
    /// Builds the distribution from a call trace.
    #[must_use]
    pub fn from_records(records: &[AccessRecord]) -> Self {
        let mut distances: Vec<u64> = records
            .windows(2)
            .filter_map(|w| {
                let gap = w[0].end().abs_diff(w[1].offset);
                (gap > 0).then_some(gap)
            })
            .collect();
        distances.sort_unstable();
        SeekCdf { distances }
    }

    /// Number of seeks (non-sequential transitions).
    #[must_use]
    pub fn seeks(&self) -> u64 {
        self.distances.len() as u64
    }

    /// Total seek distance in elements.
    #[must_use]
    pub fn total_elems(&self) -> u64 {
        self.distances.iter().sum()
    }

    /// The `q`-quantile seek distance (nearest-rank; `q` clamped to
    /// `[0, 1]`). Zero when there are no seeks.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.distances.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank =
            ((q * self.distances.len() as f64).ceil() as usize).clamp(1, self.distances.len());
        self.distances[rank - 1]
    }

    /// The largest seek (0 when none).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.distances.last().copied().unwrap_or(0)
    }
}

/// Sequential-run statistics of a call trace: maximal bursts of calls
/// where each call starts exactly where the previous one ended.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SeqStats {
    /// Total calls in the trace.
    pub calls: u64,
    /// Total elements moved.
    pub elems: u64,
    /// Number of maximal sequential bursts (a lone call is a burst of
    /// one).
    pub bursts: u64,
    /// Fraction of call *transitions* that were sequential (gap 0);
    /// 1.0 for a fully streaming trace, 0.0 when every call seeks.
    pub seq_frac: f64,
    /// Mean burst length in elements.
    pub mean_burst_elems: f64,
    /// Longest burst in elements.
    pub longest_burst_elems: u64,
}

/// Computes [`SeqStats`] over a call trace.
#[must_use]
pub fn sequential_stats(records: &[AccessRecord]) -> SeqStats {
    if records.is_empty() {
        return SeqStats::default();
    }
    let calls = records.len() as u64;
    let elems: u64 = records.iter().map(|r| r.len).sum();
    let mut bursts = 0u64;
    let mut longest = 0u64;
    let mut current = 0u64;
    let mut seq_transitions = 0u64;
    let mut prev_end: Option<u64> = None;
    for r in records {
        match prev_end {
            Some(end) if end == r.offset => {
                seq_transitions += 1;
                current += r.len;
            }
            _ => {
                if current > 0 {
                    bursts += 1;
                    longest = longest.max(current);
                }
                current = r.len;
            }
        }
        prev_end = Some(r.end());
    }
    bursts += 1;
    longest = longest.max(current);
    let transitions = calls - 1;
    SeqStats {
        calls,
        elems,
        bursts,
        seq_frac: if transitions == 0 {
            1.0
        } else {
            seq_transitions as f64 / transitions as f64
        },
        mean_burst_elems: elems as f64 / bursts as f64,
        longest_burst_elems: longest,
    }
}

/// Density ramp used by [`heatmap`], coldest to hottest.
const HEAT_RAMP: &[u8] = b" .:-=+*#%@";

/// Renders the touch density of a call trace across a file of
/// `file_len` elements as one ASCII line of `bins` characters: each
/// bin's character scales with how many element-touches landed in it
/// (`' '` untouched → `'@'` hottest, scaled to the hottest bin).
#[must_use]
pub fn heatmap(records: &[AccessRecord], file_len: u64, bins: usize) -> String {
    if file_len == 0 || bins == 0 {
        return String::new();
    }
    let mut weight = vec![0.0f64; bins];
    let scale = bins as f64 / file_len as f64;
    for r in records {
        let start = r.offset.min(file_len) as f64 * scale;
        let end = r.end().min(file_len) as f64 * scale;
        let (lo, hi) = (start.floor() as usize, end.ceil() as usize);
        for (b, w) in weight
            .iter_mut()
            .enumerate()
            .take(hi.min(bins))
            .skip(lo.min(bins))
        {
            let bin_lo = b as f64;
            let bin_hi = bin_lo + 1.0;
            let overlap = (end.min(bin_hi) - start.max(bin_lo)).max(0.0);
            *w += overlap;
        }
    }
    let max = weight.iter().fold(0.0f64, |a, &b| a.max(b));
    weight
        .iter()
        .map(|&w| {
            if w <= 0.0 || max <= 0.0 {
                ' '
            } else {
                let idx = ((w / max) * (HEAT_RAMP.len() - 1) as f64).round() as usize;
                // Touched bins never render as blank.
                HEAT_RAMP[idx.max(1)] as char
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn rec(offset: u64, len: u64) -> AccessRecord {
        AccessRecord {
            offset,
            len,
            write: false,
        }
    }

    #[test]
    fn profiling_store_records_call_trace_in_order() {
        let mut s = ProfilingStore::new(MemStore::new(64));
        let log = s.log();
        s.write_run(0, &[1.0; 8]).expect("w");
        let mut buf = [0.0; 4];
        s.read_run(32, &mut buf).expect("r");
        assert_eq!(
            log.records(),
            vec![
                AccessRecord {
                    offset: 0,
                    len: 8,
                    write: true
                },
                AccessRecord {
                    offset: 32,
                    len: 4,
                    write: false
                },
            ]
        );
        assert_eq!(s.access_log().expect("profiled").len(), 2);
    }

    #[test]
    fn failed_calls_not_logged_and_reset_clears() {
        let mut s = ProfilingStore::new(MemStore::new(4));
        let log = s.log();
        assert!(s.write_run(3, &[0.0; 4]).is_err());
        assert!(log.is_empty());
        s.write_run(0, &[0.0; 2]).expect("w");
        assert_eq!(log.len(), 1);
        s.reset_metrics();
        assert!(log.is_empty());
    }

    #[test]
    fn profiling_forwards_inner_metrics() {
        use crate::trace::TracingStore;
        let mut s = ProfilingStore::new(TracingStore::new(MemStore::new(16)));
        s.write_run(0, &[0.0; 8]).expect("w");
        let m = s.metrics().expect("inner traced");
        assert_eq!(m.write_calls, 1);
        assert_eq!(m.write_elems, 8);
    }

    #[test]
    fn seek_cdf_quantiles() {
        // Calls at 0..8, 8..16 (sequential), 100..108 (seek 84),
        // 4..8 (seek 104 back).
        let records = [rec(0, 8), rec(8, 8), rec(100, 8), rec(4, 4)];
        let cdf = SeekCdf::from_records(&records);
        assert_eq!(cdf.seeks(), 2);
        assert_eq!(cdf.total_elems(), 84 + 104);
        assert_eq!(cdf.quantile(0.5), 84);
        assert_eq!(cdf.quantile(1.0), 104);
        assert_eq!(cdf.max(), 104);
        assert_eq!(SeekCdf::from_records(&[]).quantile(0.5), 0);
    }

    #[test]
    fn sequential_stats_bursts() {
        // Two bursts: [0..8)+[8..16) = 16 elems, then [100..104) = 4.
        let records = [rec(0, 8), rec(8, 8), rec(100, 4)];
        let s = sequential_stats(&records);
        assert_eq!(s.calls, 3);
        assert_eq!(s.elems, 20);
        assert_eq!(s.bursts, 2);
        assert_eq!(s.longest_burst_elems, 16);
        assert!((s.seq_frac - 0.5).abs() < 1e-12);
        assert!((s.mean_burst_elems - 10.0).abs() < 1e-12);

        let lone = sequential_stats(&[rec(0, 4)]);
        assert_eq!(lone.bursts, 1);
        assert_eq!(lone.seq_frac, 1.0);
        assert_eq!(sequential_stats(&[]), SeqStats::default());
    }

    #[test]
    fn heatmap_shows_touched_regions() {
        // Touch the first half of a 64-element file.
        let map = heatmap(&[rec(0, 32)], 64, 8);
        assert_eq!(map.len(), 8);
        assert!(map[..4].chars().all(|c| c == '@'), "{map:?}");
        assert!(map[4..].chars().all(|c| c == ' '), "{map:?}");
        // Hot spot beats single touch.
        let records = [rec(0, 8), rec(0, 8), rec(0, 8), rec(56, 8)];
        let map = heatmap(&records, 64, 8);
        assert_eq!(map.chars().next(), Some('@'));
        let last = map.chars().last().expect("bin");
        assert!(last != ' ' && last != '@', "{map:?}");
        assert_eq!(heatmap(&[], 0, 8), "");
    }
}
