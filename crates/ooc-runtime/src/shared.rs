//! Concurrent store sharing: [`SharedStore`] puts any [`Store`]
//! behind an `Arc<Mutex<…>>` so several threads — the main executor,
//! prefetch workers, a write-behind thread — can issue calls against
//! the *same* backing file or memory buffer.
//!
//! The [`Store`] trait takes `&mut self` for writes, which is the
//! right shape for exclusive single-threaded ownership but rules out
//! sharing. `SharedStore` restores sharing by interior mutability:
//! every call locks, issues, and unlocks, so call-level atomicity is
//! preserved (a run is never observed half-written) while the
//! *ordering* of calls across threads is whatever the callers
//! establish — the tile pipeline orders conflicting accesses with
//! write-behind flush barriers.
//!
//! Instrumentation composes unchanged: wrap the instrumented stack
//! (`TracingStore`, `FaultStore`, …) in the `SharedStore`, and every
//! clone's traffic lands in the same shared counters.

use crate::profile::AccessRecord;
use crate::store::Store;
use crate::trace::MeasuredIo;
use std::io;
use std::sync::{Arc, Mutex, PoisonError};

/// A cloneable, thread-safe handle onto a single underlying [`Store`].
///
/// All clones address the same store; each call takes the shared lock
/// for its duration. `SharedStore<S>` is `Send + Sync` whenever `S`
/// is `Send` (the compile-time assertion tests pin this down).
#[derive(Debug, Default)]
pub struct SharedStore<S>(Arc<Mutex<S>>);

impl<S> Clone for SharedStore<S> {
    fn clone(&self) -> Self {
        SharedStore(Arc::clone(&self.0))
    }
}

impl<S: Store> SharedStore<S> {
    /// Wraps `inner` for sharing.
    #[must_use]
    pub fn new(inner: S) -> Self {
        SharedStore(Arc::new(Mutex::new(inner)))
    }

    /// Runs `f` with the lock held — for metrics snapshots or test
    /// inspection of the wrapped store. A panicking peer cannot brick
    /// the store: lock poisoning is ignored (calls are run-atomic, so
    /// the inner store stays consistent call to call).
    pub fn with_inner<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Unwraps the store when this is the last handle.
    ///
    /// # Errors
    /// Returns `self` unchanged while other clones are alive.
    pub fn try_unwrap(self) -> Result<S, SharedStore<S>> {
        Arc::try_unwrap(self.0)
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .map_err(SharedStore)
    }
}

impl<S: Store> Store for SharedStore<S> {
    fn len(&self) -> u64 {
        self.with_inner(|s| s.len())
    }

    fn read_run(&self, offset: u64, buf: &mut [f64]) -> io::Result<()> {
        self.with_inner(|s| s.read_run(offset, buf))
    }

    fn write_run(&mut self, offset: u64, buf: &[f64]) -> io::Result<()> {
        self.with_inner(|s| s.write_run(offset, buf))
    }

    fn reset_metrics(&mut self) {
        self.with_inner(Store::reset_metrics);
    }

    fn metrics(&self) -> Option<MeasuredIo> {
        self.with_inner(|s| s.metrics())
    }

    fn access_log(&self) -> Option<Vec<AccessRecord>> {
        self.with_inner(|s| s.access_log())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use crate::trace::TracingStore;

    #[test]
    fn clones_address_the_same_store() {
        let a = SharedStore::new(MemStore::new(8));
        let mut b = a.clone();
        b.write_run(2, &[5.0, 6.0]).expect("write via clone");
        let mut buf = [0.0; 2];
        a.read_run(2, &mut buf).expect("read via original");
        assert_eq!(buf, [5.0, 6.0]);
    }

    #[test]
    fn instrumentation_is_shared_across_clones() {
        let a = SharedStore::new(TracingStore::new(MemStore::new(8)));
        let mut b = a.clone();
        b.write_run(0, &[1.0; 4]).expect("w");
        let mut buf = [0.0; 4];
        a.read_run(0, &mut buf).expect("r");
        let m = a.metrics().expect("traced");
        assert_eq!(m.write_calls, 1);
        assert_eq!(m.read_calls, 1);
        b.reset_metrics();
        assert_eq!(a.metrics().expect("traced"), MeasuredIo::default());
    }

    #[test]
    fn concurrent_writers_land_every_run() {
        let store = SharedStore::new(MemStore::new(64));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let mut s = store.clone();
                scope.spawn(move || {
                    for i in 0..16u64 {
                        if i % 4 == t {
                            s.write_run(i * 4, &[t as f64 + 1.0; 4]).expect("write");
                        }
                    }
                });
            }
        });
        let mut buf = [0.0; 64];
        store.read_run(0, &mut buf).expect("read");
        for (i, chunk) in buf.chunks(4).enumerate() {
            let owner = (i % 4) as f64 + 1.0;
            assert_eq!(chunk, [owner; 4], "run {i}");
        }
    }

    #[test]
    fn try_unwrap_needs_sole_ownership() {
        let a = SharedStore::new(MemStore::new(4));
        let b = a.clone();
        let a = a.try_unwrap().expect_err("clone alive");
        drop(b);
        let inner = a.try_unwrap().expect("sole owner");
        assert_eq!(inner.len(), 4);
    }
}
