//! Tile-region integrity: [`ChecksummedStore`] pairs a data store
//! with a CRC64 *sidecar* store and verifies every read against
//! per-chunk checksums, so corrupt or torn data surfaces as a typed
//! **corrupt** error ([`CorruptError`], [`is_corrupt`]) instead of
//! silently wrong values.
//!
//! The store is divided into fixed-size element chunks; element `i`
//! of the sidecar holds the CRC64 of chunk `i`'s raw bytes,
//! bit-stored as an `f64` so the sidecar is itself an ordinary
//! [`Store`] (in memory, in a file, shared — whatever matches the
//! data store's persistence). A write lands in the data store
//! *first* and only then refreshes the covering chunk checksums:
//! a crash between the two steps leaves a detectable mismatch, which
//! is exactly the property the recovery layer's torn-write detection
//! relies on.
//!
//! Corrupt errors use [`io::ErrorKind::InvalidData`], which the
//! runtime's [`RetryPolicy`](crate::array::RetryPolicy) classifies as
//! non-transient — a corrupt read is never retried, it must be
//! handled (rolled back) by the recovery layer.

use crate::store::Store;
use crate::trace::MeasuredIo;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// CRC-64/XZ (ECMA-182 polynomial, reflected), table-driven.
const POLY: u64 = 0xC96C_5795_D787_0F42;

const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u64; 256] = build_table();

/// CRC64 (CRC-64/XZ) of a byte slice.
#[must_use]
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = TABLE[((crc ^ u64::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// CRC64 of a run of `f64`s, hashing each value's little-endian bit
/// pattern — bit-exact, NaN-payload-preserving, allocation-free.
#[must_use]
pub fn crc64_f64s(values: &[f64]) -> u64 {
    let mut crc = !0u64;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            crc = TABLE[((crc ^ u64::from(b)) & 0xFF) as usize] ^ (crc >> 8);
        }
    }
    !crc
}

/// Typed payload of a corrupt-read error: which chunk failed
/// verification and the checksums that disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptError {
    /// Index of the failing chunk.
    pub chunk: u64,
    /// First element offset of the chunk.
    pub offset: u64,
    /// Chunk length in elements.
    pub len: u64,
    /// Checksum the sidecar recorded.
    pub expected: u64,
    /// Checksum of the data actually read.
    pub actual: u64,
}

impl std::fmt::Display for CorruptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrupt chunk {} (elems {}..{}): sidecar crc {:016x}, data crc {:016x}",
            self.chunk,
            self.offset,
            self.offset + self.len,
            self.expected,
            self.actual
        )
    }
}

impl std::error::Error for CorruptError {}

/// Wraps a [`CorruptError`] as a non-transient [`io::Error`].
#[must_use]
pub fn corrupt_error(detail: CorruptError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// Whether `e` is a checksum-verification failure from a
/// [`ChecksummedStore`] (as opposed to a transient or crash fault).
#[must_use]
pub fn is_corrupt(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<CorruptError>())
}

#[derive(Debug, Default)]
struct ChecksumCounters {
    verified_chunks: AtomicU64,
    corrupt_reads: AtomicU64,
    chunk_updates: AtomicU64,
}

/// A cheap shared handle onto a [`ChecksummedStore`]'s verification
/// counters, usable after the store moved into an array.
#[derive(Debug, Clone)]
pub struct ChecksumHandle(Arc<ChecksumCounters>);

impl ChecksumHandle {
    /// Chunks verified successfully so far.
    #[must_use]
    pub fn verified_chunks(&self) -> u64 {
        self.0.verified_chunks.load(Ordering::Relaxed)
    }

    /// Reads that failed verification (each counts once).
    #[must_use]
    pub fn corrupt_reads(&self) -> u64 {
        self.0.corrupt_reads.load(Ordering::Relaxed)
    }

    /// Chunk checksums recomputed by writes.
    #[must_use]
    pub fn chunk_updates(&self) -> u64 {
        self.0.chunk_updates.load(Ordering::Relaxed)
    }

    /// Sidecar traffic implied by the counters, as `(calls, elems)`:
    /// every chunk verification (clean or corrupt) reads one checksum
    /// element, every chunk update writes one back. This is the
    /// provenance ledger's `ChecksumOverhead` channel — integrity
    /// traffic that never appears in the data store's own metrics
    /// (see [`ChecksummedStore::metrics`], which forwards the data
    /// store only).
    #[must_use]
    pub fn sidecar_io(&self) -> (u64, u64) {
        let n = self.verified_chunks() + self.corrupt_reads() + self.chunk_updates();
        (n, n)
    }
}

/// A [`Store`] wrapper verifying every read against a per-chunk CRC64
/// sidecar and refreshing the sidecar after every write. See the
/// module docs for the torn-write detection argument.
#[derive(Debug)]
pub struct ChecksummedStore<S, C> {
    data: S,
    sidecar: C,
    chunk_elems: u64,
    counters: Arc<ChecksumCounters>,
}

impl<S: Store, C: Store> ChecksummedStore<S, C> {
    /// Attaches `sidecar` to `data` with `chunk_elems`-element chunks,
    /// trusting the sidecar's current contents (use [`Self::rebuild`]
    /// to recompute them from the data).
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidInput`] when `chunk_elems` is zero or
    /// the sidecar is too small to cover the data store.
    pub fn attach(data: S, sidecar: C, chunk_elems: u64) -> io::Result<Self> {
        if chunk_elems == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "chunk_elems must be positive",
            ));
        }
        let chunks = data.len().div_ceil(chunk_elems);
        if sidecar.len() < chunks {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "sidecar holds {} checksums, {} chunks needed",
                    sidecar.len(),
                    chunks
                ),
            ));
        }
        Ok(ChecksummedStore {
            data,
            sidecar,
            chunk_elems,
            counters: Arc::new(ChecksumCounters::default()),
        })
    }

    /// Sidecar elements needed to cover `data_len` elements at
    /// `chunk_elems`-element granularity.
    #[must_use]
    pub fn sidecar_len(data_len: u64, chunk_elems: u64) -> u64 {
        data_len.div_ceil(chunk_elems.max(1)).max(1)
    }

    /// A shared handle onto the verification counters.
    #[must_use]
    pub fn handle(&self) -> ChecksumHandle {
        ChecksumHandle(Arc::clone(&self.counters))
    }

    /// The wrapped data store.
    #[must_use]
    pub fn data(&self) -> &S {
        &self.data
    }

    /// Unwraps into `(data, sidecar)`.
    #[must_use]
    pub fn into_inner(self) -> (S, C) {
        (self.data, self.sidecar)
    }

    fn chunks(&self) -> u64 {
        self.data.len().div_ceil(self.chunk_elems)
    }

    /// `(first element, length)` of chunk `i`, clamped to the store.
    fn chunk_span(&self, i: u64) -> (u64, usize) {
        let start = i * self.chunk_elems;
        let len = self.chunk_elems.min(self.data.len() - start);
        (start, usize::try_from(len).expect("chunk length"))
    }

    /// Recomputes every chunk checksum from the data store.
    ///
    /// # Errors
    /// Propagates data / sidecar I/O errors.
    pub fn rebuild(&mut self) -> io::Result<()> {
        let chunks = self.chunks();
        let mut crcs = Vec::with_capacity(usize::try_from(chunks).expect("chunk count"));
        let mut scratch = vec![0.0f64; usize::try_from(self.chunk_elems).expect("chunk size")];
        for i in 0..chunks {
            let (start, len) = self.chunk_span(i);
            self.data.read_run(start, &mut scratch[..len])?;
            crcs.push(f64::from_bits(crc64_f64s(&scratch[..len])));
        }
        if !crcs.is_empty() {
            self.sidecar.write_run(0, &crcs)?;
        }
        Ok(())
    }

    /// Verifies every chunk, returning the number checked.
    ///
    /// # Errors
    /// The first corrupt chunk (see [`is_corrupt`]); data / sidecar
    /// I/O errors.
    pub fn verify(&self) -> io::Result<u64> {
        let chunks = self.chunks();
        let mut scratch = vec![0.0f64; usize::try_from(self.chunk_elems).expect("chunk size")];
        for i in 0..chunks {
            self.verify_chunk(i, &mut scratch)?;
        }
        Ok(chunks)
    }

    /// Reads chunk `i` into `scratch[..len]` and checks it against the
    /// sidecar, returning the verified slice length.
    fn verify_chunk(&self, i: u64, scratch: &mut [f64]) -> io::Result<usize> {
        let (start, len) = self.chunk_span(i);
        self.data.read_run(start, &mut scratch[..len])?;
        let mut recorded = [0.0f64];
        self.sidecar.read_run(i, &mut recorded)?;
        let expected = recorded[0].to_bits();
        let actual = crc64_f64s(&scratch[..len]);
        if actual != expected {
            self.counters.corrupt_reads.fetch_add(1, Ordering::Relaxed);
            return Err(corrupt_error(CorruptError {
                chunk: i,
                offset: start,
                len: len as u64,
                expected,
                actual,
            }));
        }
        self.counters
            .verified_chunks
            .fetch_add(1, Ordering::Relaxed);
        Ok(len)
    }

    fn in_range(&self, offset: u64, len: usize) -> bool {
        offset
            .checked_add(len as u64)
            .is_some_and(|end| end <= self.data.len())
    }
}

impl<S: Store, C: Store> Store for ChecksummedStore<S, C> {
    fn len(&self) -> u64 {
        self.data.len()
    }

    fn read_run(&self, offset: u64, buf: &mut [f64]) -> io::Result<()> {
        if buf.is_empty() || !self.in_range(offset, buf.len()) {
            // Delegate degenerate and out-of-range calls so error
            // semantics match the wrapped store exactly.
            return self.data.read_run(offset, buf);
        }
        let first = offset / self.chunk_elems;
        let last = (offset + buf.len() as u64 - 1) / self.chunk_elems;
        let mut scratch = vec![0.0f64; usize::try_from(self.chunk_elems).expect("chunk size")];
        for i in first..=last {
            let len = self.verify_chunk(i, &mut scratch)?;
            let (start, _) = self.chunk_span(i);
            // Copy the verified chunk's overlap with the request.
            let lo = offset.max(start);
            let hi = (offset + buf.len() as u64).min(start + len as u64);
            let src = usize::try_from(lo - start).expect("offset");
            let dst = usize::try_from(lo - offset).expect("offset");
            let n = usize::try_from(hi - lo).expect("length");
            buf[dst..dst + n].copy_from_slice(&scratch[src..src + n]);
        }
        Ok(())
    }

    fn write_run(&mut self, offset: u64, buf: &[f64]) -> io::Result<()> {
        if buf.is_empty() || !self.in_range(offset, buf.len()) {
            return self.data.write_run(offset, buf);
        }
        // Data first, checksums second: a crash in between leaves a
        // *detectable* stale checksum, never a silently-trusted one.
        self.data.write_run(offset, buf)?;
        let first = offset / self.chunk_elems;
        let last = (offset + buf.len() as u64 - 1) / self.chunk_elems;
        let mut scratch = vec![0.0f64; usize::try_from(self.chunk_elems).expect("chunk size")];
        let mut crcs = Vec::with_capacity(usize::try_from(last - first + 1).expect("chunks"));
        for i in first..=last {
            let (start, len) = self.chunk_span(i);
            self.data.read_run(start, &mut scratch[..len])?;
            crcs.push(f64::from_bits(crc64_f64s(&scratch[..len])));
        }
        self.sidecar.write_run(first, &crcs)?;
        self.counters
            .chunk_updates
            .fetch_add(crcs.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn reset_metrics(&mut self) {
        self.data.reset_metrics();
        self.sidecar.reset_metrics();
        // The verification counters scope to the same window as the
        // I/O metrics, so post-seed resets leave both channels
        // covering exactly the compute phase.
        self.counters.verified_chunks.store(0, Ordering::Relaxed);
        self.counters.corrupt_reads.store(0, Ordering::Relaxed);
        self.counters.chunk_updates.store(0, Ordering::Relaxed);
    }

    fn metrics(&self) -> Option<MeasuredIo> {
        self.data.metrics()
    }

    fn access_log(&self) -> Option<Vec<crate::profile::AccessRecord>> {
        self.data.access_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedStore;
    use crate::store::MemStore;

    fn checksummed(
        len: u64,
        chunk: u64,
    ) -> (
        ChecksummedStore<SharedStore<MemStore>, MemStore>,
        SharedStore<MemStore>,
    ) {
        let data = SharedStore::new(MemStore::new(len));
        let raw = data.clone();
        let sidecar = MemStore::new(ChecksummedStore::<MemStore, MemStore>::sidecar_len(
            len, chunk,
        ));
        let mut cs = ChecksummedStore::attach(data, sidecar, chunk).expect("attach");
        cs.rebuild().expect("rebuild");
        (cs, raw)
    }

    #[test]
    fn crc64_known_answer() {
        // The CRC-64/XZ check value.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn crc64_f64s_matches_byte_stream() {
        let vals = [1.5f64, -2.25, f64::NAN, 0.0];
        let bytes: Vec<u8> = vals
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect();
        assert_eq!(crc64_f64s(&vals), crc64(&bytes));
    }

    #[test]
    fn roundtrip_verifies_clean() {
        let (mut cs, _) = checksummed(20, 8);
        // Offsets 5..=10 straddle the chunk-0/chunk-1 boundary.
        cs.write_run(5, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
            .expect("write");
        let mut buf = [0.0; 6];
        cs.read_run(5, &mut buf).expect("read");
        assert_eq!(buf, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(cs.verify().expect("verify"), 3);
        assert_eq!(cs.handle().corrupt_reads(), 0);
        assert!(cs.handle().chunk_updates() >= 2, "write spans two chunks");
    }

    #[test]
    fn detects_corruption_behind_the_wrapper() {
        let (mut cs, raw) = checksummed(16, 4);
        cs.write_run(0, &[7.0; 16]).expect("write");
        // Corrupt the underlying data without updating the sidecar —
        // exactly what a torn write leaves behind.
        let mut raw = raw;
        raw.write_run(5, &[999.0]).expect("raw poke");
        let mut buf = [0.0; 4];
        let err = cs.read_run(4, &mut buf).expect_err("detects");
        assert!(is_corrupt(&err), "typed corrupt error: {err}");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(cs.handle().corrupt_reads(), 1);
        // Untouched chunks still verify.
        cs.read_run(0, &mut buf).expect("chunk 0 clean");
        // Rewriting the damaged region heals the checksum.
        cs.write_run(4, &[7.0; 4]).expect("heal");
        cs.read_run(4, &mut buf).expect("verified again");
        assert_eq!(buf, [7.0; 4]);
    }

    #[test]
    fn corrupt_errors_are_not_transient() {
        let policy = crate::array::RetryPolicy::default();
        let corrupt = corrupt_error(CorruptError {
            chunk: 0,
            offset: 0,
            len: 4,
            expected: 1,
            actual: 2,
        });
        assert!(!crate::array::RetryPolicy::is_transient(&corrupt));
        assert!(policy.max_attempts > 1, "policy does retry transients");
    }

    #[test]
    fn attach_validates_geometry() {
        let err = ChecksummedStore::attach(MemStore::new(16), MemStore::new(1), 4)
            .map(|_| ())
            .expect_err("sidecar too small");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = ChecksummedStore::attach(MemStore::new(16), MemStore::new(16), 0)
            .map(|_| ())
            .expect_err("zero chunk");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn out_of_range_matches_inner_store() {
        let (cs, _) = checksummed(8, 4);
        let mut buf = [0.0; 4];
        let err = cs.read_run(6, &mut buf).expect_err("out of range");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
