//! Property tests of the write intent journal: for arbitrary op
//! sequences and arbitrary crash points (byte-level journal
//! truncation), checkpoint rollback restores exactly the
//! before-the-watermark state, replaying a rollback is idempotent,
//! and the committed records recovery trusts verify by checksum.
//!
//! The model is one array split into non-overlapping blocks; each op
//! follows the executor's protocol — append intent (with pre-image),
//! write data, optionally commit.

use ooc_runtime::{crc64_f64s, parse_journal, rollback, Journal, MemLog, MemStore, Region, Store};
use proptest::prelude::*;

const BLOCKS: u64 = 6;
const BLOCK: u64 = 4;
const ELEMS: u64 = BLOCKS * BLOCK;

fn block_region(b: u64) -> Region {
    let lo = i64::try_from(b * BLOCK).expect("offset");
    Region::new(
        vec![lo],
        vec![lo + i64::try_from(BLOCK).expect("block") - 1],
    )
}

fn op_values(i: usize, salt: i64) -> Vec<f64> {
    (0..BLOCK)
        .map(|j| salt as f64 + i as f64 * 0.25 + j as f64 * 0.0625)
        .collect()
}

fn initial_contents() -> Vec<f64> {
    (0..ELEMS).map(|e| e as f64 * 0.5 + 1.0).collect()
}

fn fresh_store() -> MemStore {
    let mut s = MemStore::new(ELEMS);
    s.write_run(0, &initial_contents()).expect("seed");
    s
}

fn contents(s: &dyn Store) -> Vec<f64> {
    let mut buf = vec![0.0; usize::try_from(ELEMS).expect("size")];
    s.read_run(0, &mut buf).expect("full read");
    buf
}

/// The model's ground truth: initial contents with the writes of
/// `ops[..n]` applied.
fn reference_after(ops: &[(u64, i64, u8)], n: usize) -> Vec<f64> {
    let mut v = initial_contents();
    for (i, &(block, salt, _)) in ops.iter().take(n).enumerate() {
        let at = usize::try_from(block * BLOCK).expect("offset");
        v[at..at + usize::try_from(BLOCK).expect("block")].copy_from_slice(&op_values(i, salt));
    }
    v
}

/// Runs the full op sequence through the intent → write → commit
/// protocol. Returns the journal log and, per op, the journal byte
/// length once that op's records were fully appended.
fn run_ops(store: &mut MemStore, ops: &[(u64, i64, u8)]) -> (MemLog, Vec<usize>) {
    let log = MemLog::new();
    let mut journal = Journal::new(Box::new(log.clone()));
    let mut marks = Vec::with_capacity(ops.len());
    for (i, &(block, salt, commit)) in ops.iter().enumerate() {
        let region = block_region(block);
        let vals = op_values(i, salt);
        let mut pre = vec![0.0; usize::try_from(BLOCK).expect("block")];
        store.read_run(block * BLOCK, &mut pre).expect("pre-image");
        let seq = journal.intent(0, &region, &vals, &pre).expect("intent");
        assert_eq!(seq, i as u64, "sequence numbers are dense and ordered");
        store.write_run(block * BLOCK, &vals).expect("data write");
        if commit != 0 {
            journal.commit(seq).expect("commit");
        }
        marks.push(log.snapshot().len());
    }
    (log, marks)
}

/// The recovery write path: pre-images land back in the store.
fn undo_into(store: &mut MemStore) -> impl FnMut(u32, &Region, &[f64]) -> std::io::Result<()> + '_ {
    |_, region, pre| {
        let at = u64::try_from(region.lo[0]).expect("offset");
        store.write_run(at, pre)
    }
}

/// `(block, salt, commit-flag)` triples; the flag is a `0..2` integer
/// because the vendored proptest subset has no bool strategy.
fn ops_strategy() -> impl Strategy<Value = Vec<(u64, i64, u8)>> {
    proptest::collection::vec((0u64..BLOCKS, -64i64..64, 0u8..2), 1..24)
}

proptest! {
    /// Checkpoint rollback: undoing every intent at or past watermark
    /// `w` restores exactly the state after the first `w` ops, and
    /// replaying the same rollback is a no-op (pre-images are
    /// absolute, not deltas).
    #[test]
    fn rollback_restores_any_watermark_and_is_idempotent(
        ops in ops_strategy(),
        w_raw in 0usize..64,
    ) {
        let mut store = fresh_store();
        let (log, _) = run_ops(&mut store, &ops);
        let scan = parse_journal(&log.snapshot());
        prop_assert!(!scan.torn_tail);
        prop_assert_eq!(scan.next_seq, ops.len() as u64);

        let w = w_raw % (ops.len() + 1);
        let undone = rollback(&scan.intents_after(w as u64), &mut undo_into(&mut store))
            .expect("rollback");
        prop_assert_eq!(undone, (ops.len() - w) as u64);
        let recovered = contents(&store);
        prop_assert_eq!(&recovered, &reference_after(&ops, w));

        let again = rollback(&scan.intents_after(w as u64), &mut undo_into(&mut store))
            .expect("second rollback");
        prop_assert_eq!(again, undone);
        prop_assert_eq!(&contents(&store), &recovered);
    }

    /// Crash anywhere: truncate the journal at an arbitrary *byte*
    /// (mid-record tails must parse as torn, never as garbage), build
    /// the store state such a crash can leave — every fully-journaled
    /// write landed except possibly the last, which may be absent,
    /// torn, or complete — and recover. The result is exactly the
    /// state at the watermark, for every watermark the surviving
    /// journal prefix covers.
    #[test]
    fn any_crash_point_prefix_recovers_consistent(
        ops in ops_strategy(),
        cut_pm in 0u64..1001,
        last_landed in 0u8..3,
        w_raw in 0usize..64,
    ) {
        let mut full_store = fresh_store();
        let (log, _) = run_ops(&mut full_store, &ops);
        let bytes = log.snapshot();
        let cut = usize::try_from(bytes.len() as u64 * cut_pm / 1000).expect("cut");
        let scan = parse_journal(&bytes[..cut.min(bytes.len())]);
        let m = scan.intents().len();
        prop_assert!(m <= ops.len());

        // The crashed store: ops before the last surviving intent all
        // wrote (the protocol appends op k+1's intent only after op
        // k's data write returned); the last surviving intent's write
        // may not have happened, may be torn, or may have completed.
        let mut store = fresh_store();
        let landed = match last_landed {
            0 => m.saturating_sub(1),
            _ => m,
        };
        for (i, &(block, salt, _)) in ops.iter().take(landed).enumerate() {
            let mut vals = op_values(i, salt);
            if last_landed == 1 && i + 1 == landed {
                vals.truncate(vals.len() / 2); // torn prefix of the dying write
            }
            store.write_run(block * BLOCK, &vals).expect("crashed write");
        }

        // Any checkpoint watermark the surviving journal covers: the
        // manifest only records a watermark after the journal records
        // behind it are durable, so w <= m always holds in the system —
        // and a checkpoint never covers an op whose data write did not
        // complete (checkpoints follow the flush), so if the last
        // surviving write is absent or torn the watermark sits below it.
        let cover = if last_landed == 2 { m } else { m.saturating_sub(1) };
        let w = w_raw % (cover + 1);
        rollback(&scan.intents_after(w as u64), &mut undo_into(&mut store)).expect("rollback");
        prop_assert_eq!(&contents(&store), &reference_after(&ops, w));
    }

    /// Resume discipline: whatever byte the crash tore the journal at,
    /// truncating to the scan's valid prefix and then appending new
    /// records keeps the log fully parseable — no surviving record is
    /// lost and nothing merges into the torn tail. (This is the
    /// invariant a *second* crash recovery depends on.)
    #[test]
    fn truncated_valid_prefix_accepts_appends_cleanly(
        ops in ops_strategy(),
        cut_pm in 0u64..1001,
    ) {
        let mut store = fresh_store();
        let (log, _) = run_ops(&mut store, &ops);
        let bytes = log.snapshot();
        let cut = usize::try_from(bytes.len() as u64 * cut_pm / 1000).expect("cut");
        let torn = &bytes[..cut.min(bytes.len())];
        let scan = parse_journal(torn);
        log.replace(torn.to_vec());

        let mut resumed_log: Box<dyn ooc_runtime::LogStore> = Box::new(log.clone());
        resumed_log.truncate_to(scan.valid_len).expect("truncate");
        let mut journal = Journal::resume(resumed_log, scan.next_seq);
        let region = block_region(0);
        let vals = op_values(0, 1);
        let seq = journal.intent(0, &region, &vals, &vals).expect("intent");
        prop_assert_eq!(seq, scan.next_seq, "resume continues the sequence");
        journal.commit(seq).expect("commit");

        let rescan = parse_journal(&log.snapshot());
        prop_assert!(!rescan.torn_tail, "resumed log must reparse clean");
        prop_assert_eq!(rescan.records.len(), scan.records.len() + 2);
        prop_assert_eq!(&rescan.records[..scan.records.len()], &scan.records[..]);
        prop_assert!(rescan.intents().iter().any(|w| w.seq == seq));
    }

    /// The uncommitted-rollback flavor (what the pipelined executor's
    /// fence enables): undoing only uncommitted intents leaves every
    /// block at its latest *committed* write, whose stored checksum
    /// must match the block's recovered bits.
    #[test]
    fn latest_committed_checksums_verify_after_uncommitted_rollback(
        ops_raw in ops_strategy(),
    ) {
        // Crash discipline: per block, once an intent is uncommitted
        // every later intent on that block is too — a crash leaves an
        // in-flight *suffix*, it cannot lose a commit and then commit
        // a later write to the same region.
        let mut ops = ops_raw;
        let mut dead = [false; BLOCKS as usize];
        for op in &mut ops {
            let b = usize::try_from(op.0).expect("block");
            if op.2 == 0 {
                dead[b] = true;
            }
            if dead[b] {
                op.2 = 0;
            }
        }
        let mut store = fresh_store();
        let (log, _) = run_ops(&mut store, &ops);
        let scan = parse_journal(&log.snapshot());
        rollback(&scan.uncommitted(), &mut undo_into(&mut store)).expect("rollback");

        let latest = scan.latest_committed();
        for ((_, region), intent) in &latest {
            let at = u64::try_from(region.lo[0]).expect("offset");
            let mut buf = vec![0.0; usize::try_from(BLOCK).expect("block")];
            store.read_run(at, &mut buf).expect("read block");
            prop_assert_eq!(
                crc64_f64s(&buf),
                intent.checksum,
                "block at {} does not match its committed checksum",
                at
            );
        }
        // Blocks never committed must be back at their initial state.
        let recovered = contents(&store);
        let init = initial_contents();
        for b in 0..BLOCKS {
            let key = (0u32, block_region(b));
            if !latest.contains_key(&key) {
                let at = usize::try_from(b * BLOCK).expect("offset");
                let end = at + usize::try_from(BLOCK).expect("block");
                prop_assert_eq!(&recovered[at..end], &init[at..end]);
            }
        }
    }
}
