//! Property tests of the parity-striped store: arbitrary write
//! sequences must stay bit-identical to a flat [`MemStore`] oracle,
//! parity must verify clean after any sequence of read-modify-write
//! updates, every single-node kill must reconstruct bit-exactly
//! through the remaining peers ⊕ parity, and torn-write corpses
//! (data scribbled under a stale CRC sidecar) must be detected by the
//! checksum layer and rebuilt from redundancy.

use ooc_runtime::striped::part_len;
use ooc_runtime::{
    ChecksummedStore, IoCause, IoNodePool, MemStore, SharedStore, Store, StripeConfig, StripedStore,
};
use proptest::prelude::*;

/// A data part whose CRC sidecar can go stale out-of-band: the
/// retained [`SharedStore`] handle writes straight to the underlying
/// bytes, modelling a torn write that died before the sidecar update.
type CrcPart = ChecksummedStore<SharedStore<MemStore>, MemStore>;

fn pool(nodes: usize, stripe: u64) -> IoNodePool {
    IoNodePool::new(StripeConfig {
        nodes,
        stripe_elems: stripe,
        ..StripeConfig::default()
    })
}

fn parity_store(p: &IoNodePool, len: u64) -> StripedStore<MemStore> {
    StripedStore::build_with_parity(
        p,
        len,
        |_, l| Ok(MemStore::new(l)),
        |_, l| Ok(MemStore::new(l)),
    )
    .expect("build parity striped store")
}

/// Reads a store's full contents as raw bit patterns, so the
/// comparison is exact even where `f64` equality is loose (±0.0).
fn bits(s: &dyn Store, n: u64) -> Vec<u64> {
    let mut buf = vec![0.0; usize::try_from(n).expect("size")];
    s.read_run(0, &mut buf).expect("full read");
    buf.iter().map(|v| v.to_bits()).collect()
}

/// Applies one generated write to both the oracle and the striped
/// store, clamped in range so every op lands.
fn apply_write(
    oracle: &mut MemStore,
    striped: &mut dyn Store,
    n: u64,
    i: usize,
    op: (u64, usize, i64),
) {
    let (offset, len, salt) = op;
    let off = offset % n;
    let len = (len as u64).clamp(1, n - off) as usize;
    let buf: Vec<f64> = (0..len)
        .map(|j| (salt as f64) + (i as f64) * 0.5 + (j as f64) * 0.125)
        .collect();
    oracle.write_run(off, &buf).expect("oracle write");
    striped.write_run(off, &buf).expect("striped write");
}

proptest! {
    /// The parity round-trip property: after any sequence of
    /// read-modify-write updates, (a) the striped contents match a
    /// flat oracle bit-for-bit, (b) a verify-only scrub finds every
    /// group's parity bit-exact, and (c) with each node killed in
    /// turn, the full contents still read back bit-equal through
    /// peers ⊕ parity reconstruction.
    #[test]
    fn parity_survives_any_single_node_kill(
        n in 24u64..96,
        nodes in 2usize..5,
        stripe in 1u64..6,
        ops in proptest::collection::vec((0u64..96, 1usize..12, -512i64..512), 1..24),
    ) {
        let p = pool(nodes, stripe);
        let mut oracle = MemStore::new(n);
        let mut s = parity_store(&p, n);
        for (i, &op) in ops.iter().enumerate() {
            apply_write(&mut oracle, &mut s, n, i, op);
        }
        let golden = bits(&oracle, n);
        prop_assert_eq!(&bits(&s, n), &golden, "healthy contents diverge");

        let rep = s.scrub(false).expect("verify-only scrub");
        prop_assert_eq!(rep.clean, rep.groups, "parity stale after RMW writes");
        prop_assert_eq!(rep.parity_mismatch, 0);
        prop_assert_eq!(rep.corrupt_chunks, 0);
        prop_assert_eq!(rep.unrecoverable, 0);

        for k in 0..nodes {
            s.pool().quarantine(k);
            prop_assert_eq!(
                &bits(&s, n), &golden,
                "contents diverge with node {} down", k
            );
            s.pool().revive(k);
        }
        // Reconstruction for a node that holds data must have gone
        // through the repair plane, never the data plane.
        let repair = s.pool().total_repair();
        prop_assert!(repair.get(IoCause::DegradedReconstruct).read_calls > 0);
        prop_assert_eq!(&bits(&s, n), &golden, "contents diverge after revival");
    }

    /// Degraded writes: a node killed mid-sequence absorbs the rest
    /// of the workload into parity (peers ⊕ new data), and the full
    /// contents — including chunks written *after* the kill to the
    /// dead node — still read back bit-equal to the oracle.
    #[test]
    fn writes_land_while_a_node_is_down(
        n in 24u64..96,
        nodes in 2usize..5,
        stripe in 1u64..6,
        ops in proptest::collection::vec((0u64..96, 1usize..12, -512i64..512), 2..24),
        kill_at in 0usize..24,
        victim_sel in 0usize..8,
    ) {
        let p = pool(nodes, stripe);
        let victim = victim_sel % nodes;
        let mut oracle = MemStore::new(n);
        let mut s = parity_store(&p, n);
        let kill_at = kill_at % ops.len();
        for (i, &op) in ops.iter().enumerate() {
            if i == kill_at {
                s.pool().quarantine(victim);
            }
            apply_write(&mut oracle, &mut s, n, i, op);
        }
        prop_assert_eq!(&bits(&s, n), &bits(&oracle, n), "degraded contents diverge");
        // Scrubbing a degraded medium spends no redundancy: groups
        // touching the dead node are skipped, nothing is declared
        // corrupt or unrecoverable.
        let rep = s.scrub(false).expect("degraded scrub");
        prop_assert_eq!(rep.corrupt_chunks, 0);
        prop_assert_eq!(rep.unrecoverable, 0);
        prop_assert_eq!(rep.clean + rep.skipped + rep.parity_mismatch, rep.groups);
    }

    /// Torn-write corpses: scribbling on a part's raw bytes without
    /// updating the CRC sidecar (a write that died between the data
    /// and checksum steps) is detected on read and reconstructed
    /// transparently, a repairing scrub rewrites the chunk from
    /// peers ⊕ parity, and afterwards the medium verifies fully clean.
    #[test]
    fn torn_writes_are_detected_by_crc_and_reconstructed(
        n in 24u64..96,
        nodes in 2usize..5,
        stripe in 1u64..6,
        ops in proptest::collection::vec((0u64..96, 1usize..12, -512i64..512), 1..24),
        victim_sel in 0usize..8,
        elem_sel in 0u64..4096,
    ) {
        let p = pool(nodes, stripe);
        let mut inners: Vec<SharedStore<MemStore>> = Vec::new();
        let mut s = StripedStore::build_with_parity(
            &p,
            n,
            |_, l| {
                let inner = SharedStore::new(MemStore::new(l));
                inners.push(inner.clone());
                // One CRC chunk per stripe, so a torn element corrupts
                // exactly one parity group's chunk.
                let mut part =
                    CrcPart::attach(inner, MemStore::new(CrcPart::sidecar_len(l, stripe)), stripe)?;
                part.rebuild()?;
                Ok(part)
            },
            |_, l| {
                let mut part = CrcPart::attach(
                    SharedStore::new(MemStore::new(l)),
                    MemStore::new(CrcPart::sidecar_len(l, stripe)),
                    stripe,
                )?;
                part.rebuild()?;
                Ok(part)
            },
        )
        .expect("build CRC parity striped store");
        let mut oracle = MemStore::new(n);
        for (i, &op) in ops.iter().enumerate() {
            apply_write(&mut oracle, &mut s, n, i, op);
        }
        let golden = bits(&oracle, n);

        // Tear one element on the victim node, under the sidecar.
        let victim = victim_sel % nodes;
        let plen = part_len(n, stripe, nodes, victim);
        prop_assert!(plen > 0, "every node holds data at these sizes");
        let idx = elem_sel % plen;
        let inner = &mut inners[victim];
        let mut old = [0.0];
        inner.read_run(idx, &mut old).expect("raw read");
        let torn = f64::from_bits(old[0].to_bits() ^ 0x8000_0000_0000_0001);
        inner.write_run(idx, &[torn]).expect("raw scribble");

        // Reads detect the stale CRC and reconstruct through parity.
        prop_assert_eq!(&bits(&s, n), &golden, "torn chunk leaked through a read");
        prop_assert!(s.pool().total_repair().get(IoCause::DegradedReconstruct).read_calls > 0);

        // A repairing scrub finds exactly the torn chunk and rebuilds
        // it (refreshing its CRC sidecar); a second verify-only pass
        // is then fully clean.
        let rep = s.scrub(true).expect("repairing scrub");
        prop_assert_eq!(rep.corrupt_chunks, 1, "CRC missed the torn chunk");
        prop_assert_eq!(rep.repaired, 1);
        prop_assert_eq!(rep.unrecoverable, 0);
        let rep = s.scrub(false).expect("verify-only re-scrub");
        prop_assert_eq!(rep.clean, rep.groups, "medium not clean after repair");
        prop_assert_eq!(rep.corrupt_chunks, 0);
        prop_assert_eq!(rep.unrecoverable, 0);
        prop_assert_eq!(&bits(&s, n), &golden, "contents diverge after repair");
    }
}
