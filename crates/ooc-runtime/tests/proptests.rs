//! Property-based tests of the out-of-core runtime: layouts are
//! bijections, run accounting matches brute force, and tile I/O is
//! lossless under every layout.

use ooc_runtime::{FileLayout, MemStore, OocArray, Region, RuntimeConfig};
use proptest::prelude::*;

fn layout_strategy() -> impl Strategy<Value = FileLayout> {
    prop_oneof![
        Just(FileLayout::row_major(2)),
        Just(FileLayout::col_major(2)),
        Just(FileLayout::Hyperplane2D(1, 1)),
        Just(FileLayout::Hyperplane2D(1, -1)),
        Just(FileLayout::Hyperplane2D(2, 1)),
        Just(FileLayout::Hyperplane2D(3, -2)),
        (1i64..4, 1i64..4).prop_map(|(br, bc)| FileLayout::Blocked2D { br, bc }),
    ]
}

fn dims_strategy() -> impl Strategy<Value = [i64; 2]> {
    (2i64..9, 2i64..9).prop_map(|(a, b)| [a, b])
}

fn region_in(dims: [i64; 2]) -> impl Strategy<Value = Region> {
    (1..=dims[0], 1..=dims[1]).prop_flat_map(move |(l0, l1)| {
        (l0..=dims[0], l1..=dims[1])
            .prop_map(move |(h0, h1)| Region::new(vec![l0, l1], vec![h0, h1]))
    })
}

proptest! {
    /// Every layout's offset function is a bijection onto 0..len.
    #[test]
    fn offsets_are_bijective(layout in layout_strategy(), dims in dims_strategy()) {
        let len = (dims[0] * dims[1]) as usize;
        let mut seen = vec![false; len];
        for a1 in 1..=dims[0] {
            for a2 in 1..=dims[1] {
                let off = layout.offset_of(&dims, &[a1, a2]) as usize;
                prop_assert!(off < len, "{layout:?}: offset {off} >= {len}");
                prop_assert!(!seen[off], "{layout:?}: duplicate offset {off}");
                seen[off] = true;
            }
        }
    }

    /// The fast run summary never under-counts the exact runs and
    /// agrees on element totals; for dimension-order layouts it is
    /// exact.
    #[test]
    fn summary_matches_exact_runs(
        layout in layout_strategy(),
        dims in dims_strategy(),
    ) {
        let region = Region::new(vec![1, 1], dims.to_vec());
        // Also test a strict sub-region.
        let sub = Region::new(
            vec![1 + dims[0] / 3, 1 + dims[1] / 3],
            vec![dims[0] - dims[0] / 4, dims[1] - dims[1] / 4],
        );
        for r in [region, sub] {
            if r.is_empty() {
                continue;
            }
            let exact = layout.region_runs(&dims, &r);
            let summary = layout.region_run_summary(&dims, &r);
            let exact_elems: u64 = exact.iter().map(|x| x.len).sum();
            prop_assert_eq!(summary.elements, exact_elems);
            prop_assert!(summary.runs >= exact.len() as u64);
            if matches!(layout, FileLayout::DimOrder(_)) {
                prop_assert_eq!(summary.runs, exact.len() as u64);
            }
            if !exact.is_empty() {
                prop_assert_eq!(summary.min_start, exact[0].start);
                let last = exact.last().expect("nonempty");
                prop_assert_eq!(summary.max_end, last.start + last.len);
            }
        }
    }

    /// Tile reads and writes are lossless: write a tile, read it back,
    /// and untouched elements survive — under every layout.
    #[test]
    fn tile_io_roundtrip(
        layout in layout_strategy(),
        dims in dims_strategy(),
        seed in 0u64..1000,
    ) {
        let mut arr = OocArray::new(
            "T",
            &dims,
            layout,
            MemStore::new((dims[0] * dims[1]) as u64),
            RuntimeConfig { max_call_elems: 4, ..RuntimeConfig::default() },
        );
        arr.initialize(|idx| (idx[0] * 1000 + idx[1]) as f64 + seed as f64)
            .expect("init");
        let r = Region::new(
            vec![1 + dims[0] / 4, 1 + dims[1] / 4],
            vec![dims[0], dims[1] - dims[1] / 4],
        );
        prop_assume!(!r.is_empty());
        let mut tile = arr.read_tile(&r).expect("read");
        // Overwrite the tile with new values and write back.
        for a1 in r.lo[0]..=r.hi[0] {
            for a2 in r.lo[1]..=r.hi[1] {
                tile.set(&[a1, a2], -((a1 * 100 + a2) as f64));
            }
        }
        arr.write_tile(&tile).expect("write");
        // In-region values updated, out-of-region preserved.
        for a1 in 1..=dims[0] {
            for a2 in 1..=dims[1] {
                let got = arr.read_element(&[a1, a2]).expect("read elem");
                let expect = if r.contains(&[a1, a2]) {
                    -((a1 * 100 + a2) as f64)
                } else {
                    (a1 * 1000 + a2) as f64 + seed as f64
                };
                prop_assert_eq!(got, expect, "element ({}, {})", a1, a2);
            }
        }
    }

    /// Call accounting equals runs split by the transfer cap.
    #[test]
    fn read_calls_match_run_arithmetic(
        layout in layout_strategy(),
        dims in dims_strategy(),
        cap in 1u64..6,
        region in dims_strategy().prop_flat_map(region_in),
    ) {
        let region = region.clamped(&dims);
        prop_assume!(!region.is_empty());
        let mut arr = OocArray::new(
            "T",
            &dims,
            layout.clone(),
            MemStore::new((dims[0] * dims[1]) as u64),
            RuntimeConfig { max_call_elems: cap, ..RuntimeConfig::default() },
        );
        let _ = arr.read_tile(&region).expect("read");
        let expected: u64 = layout
            .region_runs(&dims, &region)
            .iter()
            .map(|r| r.len.div_ceil(cap))
            .sum();
        prop_assert_eq!(arr.stats().read_calls, expected);
    }
}
