//! Compile-time thread-safety audit of the store layer.
//!
//! The tile pipeline moves stores (behind [`SharedStore`]) and metric
//! handles into prefetch / write-behind worker threads, so every
//! store in the instrumented stack must be `Send`, and the shared
//! handles must be `Send + Sync`. These assertions are evaluated by
//! the compiler — if a refactor introduces an `Rc`, a raw pointer, or
//! a non-`Sync` cell anywhere in these types, this test stops
//! compiling rather than failing at runtime.

use ooc_runtime::fault::FaultHandle;
use ooc_runtime::profile::{AccessLog, ProfilingStore};
use ooc_runtime::{
    FaultStore, FileStore, MemStore, OocArray, SharedStore, Store, TraceHandle, TracingStore,
};

fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn concrete_stores_are_send_and_sync() {
    assert_send_sync::<MemStore>();
    assert_send_sync::<FileStore>();
    assert_send_sync::<TracingStore<MemStore>>();
    assert_send_sync::<TracingStore<FileStore>>();
    assert_send_sync::<FaultStore<MemStore>>();
    assert_send_sync::<FaultStore<FileStore>>();
    assert_send_sync::<ProfilingStore<MemStore>>();
    // The full instrumented stack the differential tests build.
    assert_send_sync::<FaultStore<TracingStore<FileStore>>>();
}

#[test]
fn boxed_send_stores_cross_threads() {
    // `Backend::open_sendable` hands out this exact type; the store
    // itself only needs `Send` (it is owned by one thread at a time —
    // cross-thread sharing goes through `SharedStore`).
    assert_send::<Box<dyn Store + Send>>();
    assert_send::<TracingStore<Box<dyn Store + Send>>>();
    assert_send::<OocArray<Box<dyn Store + Send>>>();
}

#[test]
fn shared_handles_are_send_and_sync() {
    assert_send_sync::<SharedStore<MemStore>>();
    assert_send_sync::<SharedStore<Box<dyn Store + Send>>>();
    assert_send_sync::<SharedStore<FaultStore<TracingStore<FileStore>>>>();
    assert_send_sync::<TraceHandle>();
    assert_send_sync::<FaultHandle>();
    assert_send_sync::<AccessLog>();
}

#[test]
fn shared_store_clones_work_from_spawned_threads() {
    // The runtime counterpart of the compile-time assertions: clones
    // of one SharedStore issue calls from different threads and all
    // traffic lands in the same underlying store.
    let store = SharedStore::new(TracingStore::new(MemStore::new(32)));
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let mut s = store.clone();
            scope.spawn(move || {
                s.write_run(t * 8, &[t as f64 + 1.0; 8]).expect("write");
            });
        }
    });
    let m = store.metrics().expect("traced");
    assert_eq!(m.write_calls, 4);
    assert_eq!(m.write_elems, 32);
    let mut buf = [0.0; 32];
    store.read_run(0, &mut buf).expect("read");
    for (t, chunk) in buf.chunks(8).enumerate() {
        assert_eq!(chunk, [t as f64 + 1.0; 8], "thread {t} runs landed");
    }
}
