//! Property tests of the [`Store`] implementations: arbitrary
//! interleaved `read_run`/`write_run` sequences must behave
//! identically on [`MemStore`] and [`FileStore`], and out-of-range
//! accesses must fail on both without partial writes.

use ooc_runtime::testing::TempDir;
use ooc_runtime::{FileStore, MemStore, Store};
use proptest::prelude::*;

/// Reads a store's full contents.
fn contents(s: &dyn Store, n: u64) -> Vec<f64> {
    let mut buf = vec![0.0; usize::try_from(n).expect("size")];
    s.read_run(0, &mut buf).expect("full read");
    buf
}

proptest! {
    /// The differential store property: a `MemStore` and a `FileStore`
    /// of the same size, driven by the same op sequence (including
    /// deliberately out-of-range ops), stay observably identical — the
    /// same per-op success/failure, the same read results, the same
    /// final contents — and a failed write never alters either store.
    #[test]
    fn mem_and_file_stores_agree(
        n in 4u64..48,
        ops in proptest::collection::vec(
            // (op kind, element offset, run length, value salt); offsets
            // and lengths intentionally overrun small stores so the
            // error paths are exercised too.
            (0u8..2, 0u64..56, 0usize..12, -512i64..512),
            1..32,
        ),
    ) {
        let dir = TempDir::new("store-prop").expect("tmp");
        let mut mem = MemStore::new(n);
        let mut file = FileStore::create(&dir.path().join("arr.dat"), n).expect("create");

        for (i, &(kind, offset, len, salt)) in ops.iter().enumerate() {
            if kind == 0 {
                let buf: Vec<f64> = (0..len)
                    .map(|j| (salt as f64) + (i as f64) * 0.5 + (j as f64) * 0.125)
                    .collect();
                let before = contents(&mem, n);
                let r_mem = mem.write_run(offset, &buf);
                let r_file = file.write_run(offset, &buf);
                prop_assert_eq!(
                    r_mem.is_ok(),
                    r_file.is_ok(),
                    "op {}: write({}, len {}) ok-ness differs",
                    i, offset, len
                );
                if r_mem.is_err() {
                    // No partial writes: a rejected op leaves both
                    // stores exactly as they were.
                    prop_assert_eq!(&contents(&mem, n), &before);
                    prop_assert_eq!(&contents(&file, n), &before);
                }
            } else {
                let mut b_mem = vec![0.0; len];
                let mut b_file = vec![7.25; len];
                let r_mem = mem.read_run(offset, &mut b_mem);
                let r_file = file.read_run(offset, &mut b_file);
                prop_assert_eq!(
                    r_mem.is_ok(),
                    r_file.is_ok(),
                    "op {}: read({}, len {}) ok-ness differs",
                    i, offset, len
                );
                if r_mem.is_ok() {
                    prop_assert_eq!(&b_mem, &b_file, "op {}: read results differ", i);
                }
            }
        }

        prop_assert_eq!(&contents(&mem, n), &contents(&file, n), "final contents differ");
    }

    /// Out-of-range accesses are errors on every store, for reads and
    /// writes alike, including overflow-adjacent shapes.
    #[test]
    fn out_of_range_accesses_error(
        n in 1u64..32,
        past in 0u64..16,
        len in 1usize..8,
    ) {
        let dir = TempDir::new("store-range").expect("tmp");
        let mut mem = MemStore::new(n);
        let mut file = FileStore::create(&dir.path().join("arr.dat"), n).expect("create");

        // First out-of-range element is n - len + 1 + past (start so the
        // run's end overruns by at least past + 1).
        let offset = (n + past + 1).saturating_sub(len as u64);
        let golden = contents(&mem, n);
        let mut buf = vec![0.0; len];
        prop_assert!(mem.read_run(offset, &mut buf).is_err());
        prop_assert!(file.read_run(offset, &mut buf).is_err());
        prop_assert!(mem.write_run(offset, &buf).is_err());
        prop_assert!(file.write_run(offset, &buf).is_err());
        prop_assert_eq!(&contents(&mem, n), &golden);
        prop_assert_eq!(&contents(&file, n), &golden);
    }
}
