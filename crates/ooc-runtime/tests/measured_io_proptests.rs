//! Property tests of [`MeasuredIo`] accounting: histogram merging is
//! associative and commutative (so per-array measurements can be
//! aggregated in any order), and seek accounting is invariant under
//! splitting one contiguous run into adjacent sub-runs (splitting
//! changes *calls*, never *seeks*).

use ooc_runtime::{MeasuredIo, MemStore, Store, TracingStore};
use proptest::prelude::*;

/// Builds a `MeasuredIo` by replaying `(offset, len, is_write)` ops on
/// a traced store large enough for all of them.
fn replay(ops: &[(u64, u64, bool)]) -> MeasuredIo {
    let max_end = ops.iter().map(|&(o, l, _)| o + l).max().unwrap_or(0);
    let mut s = TracingStore::new(MemStore::new(max_end.max(1)));
    for &(offset, len, is_write) in ops {
        let len = usize::try_from(len).expect("small run");
        if is_write {
            s.write_run(offset, &vec![1.0; len]).expect("in range");
        } else {
            let mut buf = vec![0.0; len];
            s.read_run(offset, &mut buf).expect("in range");
        }
    }
    s.metrics().expect("traced")
}

/// Arbitrary measured counters (merge only sums fields, so arbitrary
/// values — not just replayable ones — are fair game).
fn arb_measured() -> impl Strategy<Value = MeasuredIo> {
    (
        (0u64..1000, 0u64..1000, 0u64..100_000, 0u64..100_000),
        (0u64..50, 0u64..100_000, 0u64..500),
        proptest::collection::vec(0u64..1000, 24),
    )
        .prop_map(|((rc, wc, re, we), (fc, se, sk), hist)| {
            let mut m = MeasuredIo {
                read_calls: rc,
                write_calls: wc,
                read_elems: re,
                write_elems: we,
                failed_calls: fc,
                seek_elems: se,
                seeks: sk,
                ..MeasuredIo::default()
            };
            m.run_hist.copy_from_slice(&hist);
            m
        })
}

fn merged(a: &MeasuredIo, b: &MeasuredIo) -> MeasuredIo {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    /// `merge` is commutative: aggregating per-array measurements must
    /// not depend on array order.
    #[test]
    fn merge_is_commutative(a in arb_measured(), b in arb_measured()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// `merge` is associative: fold order is irrelevant.
    #[test]
    fn merge_is_associative(
        a in arb_measured(),
        b in arb_measured(),
        c in arb_measured(),
    ) {
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    /// The identity: merging a default (zero) measurement changes
    /// nothing.
    #[test]
    fn merge_identity(a in arb_measured()) {
        prop_assert_eq!(merged(&a, &MeasuredIo::default()), a);
    }

    /// Splitting one run into adjacent sub-runs is seek-neutral: the
    /// split trace issues more calls but the store still receives a
    /// gap-free sweep over the same elements, so `seeks`, `seek_elems`,
    /// and the element totals are all unchanged; only the call count
    /// (and with it the run-length histogram) moves.
    #[test]
    fn splitting_a_run_changes_calls_never_seeks(
        ops in proptest::collection::vec(
            // (offset, len >= 2 so a split exists, is_write)
            (0u64..256, 2u64..32, any::<bool>()),
            1..16,
        ),
        split_at in 0usize..16,
        cut in 1u64..31,
    ) {
        let whole = replay(&ops);

        // Split one op into two adjacent sub-runs at an interior point.
        let idx = split_at % ops.len();
        let (offset, len, w) = ops[idx];
        let cut = 1 + cut % (len - 1); // 1..len, strictly interior
        let mut split = ops.clone();
        split[idx] = (offset, cut, w);
        split.insert(idx + 1, (offset + cut, len - cut, w));
        let parts = replay(&split);

        prop_assert_eq!(parts.total_calls(), whole.total_calls() + 1);
        prop_assert_eq!(parts.seeks, whole.seeks, "split introduced a seek");
        prop_assert_eq!(parts.seek_elems, whole.seek_elems);
        prop_assert_eq!(parts.total_elems(), whole.total_elems());
        prop_assert_eq!(parts.read_elems, whole.read_elems);
        prop_assert_eq!(parts.write_elems, whole.write_elems);
        prop_assert_eq!(parts.failed_calls, 0);
        // Histogram mass tracks the call count exactly.
        prop_assert_eq!(
            parts.run_hist.iter().sum::<u64>(),
            whole.run_hist.iter().sum::<u64>() + 1
        );
    }

    /// Replayed traces agree with first-principles accounting: total
    /// calls and elements match the op list, and the run histogram has
    /// one entry per call in the right bucket.
    #[test]
    fn replay_accounts_every_call(
        ops in proptest::collection::vec(
            (0u64..128, 1u64..32, any::<bool>()),
            1..24,
        ),
    ) {
        let m = replay(&ops);
        prop_assert_eq!(m.total_calls(), ops.len() as u64);
        prop_assert_eq!(
            m.total_elems(),
            ops.iter().map(|&(_, l, _)| l).sum::<u64>()
        );
        let mut expect_hist = [0u64; ooc_runtime::RUN_HIST_BUCKETS];
        for &(_, len, _) in &ops {
            expect_hist[MeasuredIo::bucket_of(len)] += 1;
        }
        prop_assert_eq!(m.run_hist, expect_hist);
    }
}
