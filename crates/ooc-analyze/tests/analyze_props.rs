//! Property tests of the scaling-forensics conservation law.
//!
//! For *arbitrary* generated span streams — balanced or truncated,
//! monotone timestamps, any mix of wait/work/flow events across
//! several lanes — the reconstruction must satisfy, exactly:
//!
//! 1. every lane's blame waterfall sums to the run wall-clock to the
//!    microsecond (the conservation law);
//! 2. the aggregate waterfall sums to `lanes x wall`;
//! 3. critical-path length <= wall-clock <= aggregate blame total
//!    (when at least one lane exists);
//! 4. lane segments are pairwise disjoint and inside the window.

use ooc_analyze::{AnalysisReport, CriticalPath, Timeline};
use ooc_trace::{Event, EventKind, Lane, LaneKind, TraceData};
use proptest::prelude::*;

const NAMES: [&str; 12] = [
    "exec-parallel",
    "shard-run",
    "nest:mxm",
    "sync-read",
    "sync-write",
    "prefetch-stall",
    "fence-wait",
    "queue-wait",
    "checkpoint",
    "recovery-replay",
    "join-wait",
    "wb-write",
];

fn lane_of(tid: u64) -> Option<Lane> {
    match tid {
        0 => Some(Lane::main()),
        1 => Some(Lane::shard(0)),
        2 => Some(Lane::shard(1)),
        3 => Some(Lane::new(LaneKind::Prefetch, 0)),
        _ => None,
    }
}

/// Decodes raw tuples into a monotone-timestamp event stream with
/// per-tid balanced-ish nesting (Ends only pop when something is
/// open, unless truncation later orphans them).
fn synthesize(raw: &[(u64, u8, u8, u64)], drop_prefix: usize) -> TraceData {
    let mut ts = 0u64;
    let mut depth = [0usize; 5];
    let mut open: Vec<Vec<&str>> = vec![Vec::new(); 5];
    let mut events = Vec::new();
    for &(tid_raw, op, name_idx, dt) in raw {
        let tid = tid_raw % 5;
        ts += dt;
        let ti = tid as usize;
        let kind_sel = op % 8;
        let (kind, name) = if kind_sel < 4 || depth[ti] == 0 {
            // Begin
            let name = NAMES[(name_idx as usize) % NAMES.len()];
            depth[ti] += 1;
            open[ti].push(name);
            (EventKind::Begin, name)
        } else if kind_sel < 7 {
            // End of the innermost open span.
            depth[ti] -= 1;
            let name = open[ti].pop().unwrap_or("x");
            (EventKind::End, name)
        } else {
            // Flow / instant noise.
            let k = match name_idx % 3 {
                0 => EventKind::Instant,
                1 => EventKind::FlowStart(u64::from(name_idx)),
                _ => EventKind::FlowFinish(u64::from(name_idx)),
            };
            (k, "delivery")
        };
        events.push(Event {
            ts_us: ts,
            tid,
            lane: lane_of(tid),
            name: name.to_string(),
            cat: "prop",
            kind,
            args: Vec::new(),
        });
    }
    // Close everything so the balanced variant is well-formed.
    for (ti, stack) in open.iter_mut().enumerate() {
        while let Some(name) = stack.pop() {
            ts += 1;
            events.push(Event {
                ts_us: ts,
                tid: ti as u64,
                lane: lane_of(ti as u64),
                name: name.to_string(),
                cat: "prop",
                kind: EventKind::End,
                args: Vec::new(),
            });
        }
    }
    let dropped = drop_prefix.min(events.len());
    TraceData {
        events: events.split_off(dropped),
        explains: Vec::new(),
        dropped: dropped as u64,
    }
}

fn check_invariants(data: &TraceData) {
    let timeline = Timeline::from_trace(data);
    // (1) per-lane exact conservation.
    for lane in &timeline.lanes {
        prop_assert_eq!(
            lane.blame.total_us(),
            timeline.wall_us,
            "lane {} does not conserve",
            &lane.label
        );
        prop_assert!(lane.blame.is_conserving());
        // (4) segments disjoint, sorted, inside the window.
        let mut prev_end = 0u64;
        for s in &lane.segments {
            prop_assert!(s.start_us >= prev_end, "overlap in lane {}", &lane.label);
            prop_assert!(s.end_us > s.start_us);
            prop_assert!(s.end_us <= timeline.wall_us);
            prev_end = s.end_us;
        }
    }
    // (2) aggregate conservation: lanes x wall.
    let agg = timeline.aggregate();
    prop_assert!(agg.is_conserving());
    prop_assert_eq!(
        agg.total_us(),
        timeline.wall_us * timeline.lanes.len() as u64
    );
    // (3) critical <= wall <= aggregate total.
    let critical = CriticalPath::extract(&timeline);
    prop_assert!(
        critical.total_us <= timeline.wall_us,
        "critical {} > wall {}",
        critical.total_us,
        timeline.wall_us
    );
    if !timeline.lanes.is_empty() {
        prop_assert!(timeline.wall_us <= agg.total_us());
    }
    // Chain steps are themselves non-overlapping and in time order.
    let mut prev_end = 0u64;
    for s in &critical.steps {
        prop_assert!(s.start_us >= prev_end);
        prev_end = s.end_us;
    }
    // The full report renders without a conservation marker ('!').
    let report = AnalysisReport::from_trace(data);
    let text = report.render_waterfall();
    prop_assert!(!text.contains('!'), "conservation violated:\n{}", text);
}

proptest! {
    /// Balanced arbitrary span streams conserve exactly.
    #[test]
    fn blame_decomposition_conserves_for_arbitrary_timelines(
        raw in proptest::collection::vec((0u64..5, 0u8..8, 0u8..12, 0u64..40), 1..120),
    ) {
        let data = synthesize(&raw, 0);
        check_invariants(&data);
    }

    /// Ring-buffer truncation (dropped prefix, orphan Ends) still
    /// conserves: truncation degrades attribution, never the law.
    #[test]
    fn truncated_timelines_still_conserve(
        raw in proptest::collection::vec((0u64..5, 0u8..8, 0u8..12, 0u64..40), 4..120),
        drop in 1usize..40,
    ) {
        let data = synthesize(&raw, drop);
        check_invariants(&data);
    }
}
