//! Scaling forensics for out-of-core parallel runs.
//!
//! This crate turns an [`ooc_trace`] event stream into an explanation
//! of where a parallel run's wall-clock went:
//!
//! * [`timeline`] — reconstructs per-lane timelines (worker shards,
//!   prefetch/writer service threads, the main thread) from span
//!   events and the structured lane identity stamped on them, cutting
//!   each lane's wall-clock window into blame-attributed segments.
//! * [`blame`] — the category taxonomy and the exactly-conserving
//!   waterfall: every lane's categories sum to the run wall-clock *to
//!   the microsecond*, by construction.
//! * [`critical`] — the heaviest non-overlapping chain of attributed
//!   segments across lanes, naming the resource that bounds the run.
//! * [`gantt`] — fixed-width ASCII visualization of the lanes.
//! * [`ledger`] — rendering, disk-model pricing, and version-diff
//!   explanation of the cause-classified I/O provenance ledgers the
//!   executors record ([`ooc_runtime::ProvenanceLedger`]).
//! * [`live`] — a zero-dependency HTTP pull endpoint serving live
//!   metric snapshots, the latest forensics report, and the latest
//!   provenance-ledger render from a running job.
//!
//! The entry point is [`AnalysisReport::from_trace`]; bench binaries
//! (`analyze`, `inspect --analyze`) render it directly.

#![warn(missing_docs)]

pub mod blame;
pub mod critical;
pub mod gantt;
pub mod ledger;
pub mod live;
pub mod timeline;

pub use blame::{Blame, Waterfall, ALL_BLAMES};
pub use critical::{CriticalPath, PathStep};
pub use ledger::{diff_ledgers, price_ledger, render_ledger, CauseDelta, LedgerDiff};
pub use live::{registry_provider, LiveServer, Provider, Response};
pub use timeline::{FlowLink, LaneTimeline, Segment, Timeline};

use std::fmt::Write as _;

/// The complete forensics for one run: per-lane waterfalls, the
/// aggregate decomposition, and the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// The reconstructed timeline.
    pub timeline: Timeline,
    /// The extracted critical path.
    pub critical: CriticalPath,
}

impl AnalysisReport {
    /// Reconstructs and analyzes a recorded trace.
    #[must_use]
    pub fn from_trace(data: &ooc_trace::TraceData) -> AnalysisReport {
        let timeline = Timeline::from_trace(data);
        let critical = CriticalPath::extract(&timeline);
        AnalysisReport { timeline, critical }
    }

    /// Parallel efficiency estimate: aggregate compute time over total
    /// lane-time of shard lanes (1.0 = no shard ever waits). `None`
    /// when the run has no shard lanes.
    #[must_use]
    pub fn shard_efficiency(&self) -> Option<f64> {
        let shard_lanes: Vec<_> = self
            .timeline
            .lanes
            .iter()
            .filter(|l| l.label.starts_with("shard:"))
            .collect();
        if shard_lanes.is_empty() || self.timeline.wall_us == 0 {
            return None;
        }
        let compute: u64 = shard_lanes
            .iter()
            .map(|l| l.blame.get(Blame::Compute))
            .sum();
        let total = self.timeline.wall_us * shard_lanes.len() as u64;
        Some(compute as f64 / total as f64)
    }

    /// The blame waterfall table: one row per lane, categories as
    /// columns, plus a conservation-checked aggregate row.
    #[must_use]
    pub fn render_waterfall(&self) -> String {
        let mut out = String::new();
        let label_w = self
            .timeline
            .lanes
            .iter()
            .map(|l| l.label.len())
            .max()
            .unwrap_or(4)
            .max(9);
        let _ = write!(out, "{:<label_w$}", "lane");
        for cat in ALL_BLAMES {
            let _ = write!(out, " {:>14}", cat.label());
        }
        let _ = writeln!(out, " {:>14}", "total(us)");
        for lane in &self.timeline.lanes {
            let _ = write!(out, "{:<label_w$}", lane.label);
            for cat in ALL_BLAMES {
                let _ = write!(out, " {:>14}", lane.blame.get(cat));
            }
            let check = if lane.blame.is_conserving() { "=" } else { "!" };
            let _ = writeln!(out, " {:>13}{check}", lane.blame.total_us());
        }
        let agg = self.timeline.aggregate();
        let _ = write!(out, "{:<label_w$}", "aggregate");
        for cat in ALL_BLAMES {
            let _ = write!(out, " {:>14}", agg.get(cat));
        }
        let check = if agg.is_conserving() { "=" } else { "!" };
        let _ = writeln!(out, " {:>13}{check}", agg.total_us());
        let _ = writeln!(
            out,
            "wall: {} us x {} lanes ('=' marks exact conservation)",
            self.timeline.wall_us,
            self.timeline.lanes.len()
        );
        out
    }

    /// The full report: header, waterfall, Gantt, critical path.
    #[must_use]
    pub fn render(&self, gantt_width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== scaling forensics: {} ({} us wall, {} lanes, {} shard lanes, {} flows{})",
            self.timeline.top_span,
            self.timeline.wall_us,
            self.timeline.lanes.len(),
            self.timeline.shard_lanes(),
            self.timeline.flows.len(),
            if self.timeline.dropped > 0 {
                format!(
                    ", {} events dropped by flight recorder",
                    self.timeline.dropped
                )
            } else {
                String::new()
            }
        );
        if let Some(eff) = self.shard_efficiency() {
            let _ = writeln!(out, "shard efficiency: {:.1}%", eff * 100.0);
        }
        out.push('\n');
        out.push_str(&self.render_waterfall());
        out.push('\n');
        out.push_str(&gantt::render(&self.timeline, gantt_width));
        out.push('\n');
        out.push_str(&self.critical.render(12));
        out
    }

    /// Registers the aggregate blame decomposition and critical-path
    /// summary as deterministic-friendly metric series under `labels`
    /// (blame shares as gauges, since they are timing-derived; lane
    /// and flow counts as counters).
    pub fn register_metrics(&self, registry: &ooc_metrics::Registry, labels: &[(&str, &str)]) {
        let agg = self.timeline.aggregate();
        let total = agg.total_us().max(1);
        for cat in ALL_BLAMES {
            let mut lv: Vec<(&str, &str)> = labels.to_vec();
            let name = cat.label();
            lv.push(("cat", name));
            registry.gauge_set(
                "analyze_blame_share",
                &lv,
                agg.get(cat) as f64 / total as f64,
            );
        }
        // Lane counts are gauges, not counters: a service lane only
        // materializes when its thread emits an event, and which
        // prefetch worker picks up a request is scheduling-dependent.
        registry.gauge_set("analyze_lanes", labels, self.timeline.lanes.len() as f64);
        registry.gauge_set(
            "analyze_shard_lanes",
            labels,
            self.timeline.shard_lanes() as f64,
        );
        registry.gauge_set(
            "analyze_critical_share",
            labels,
            if self.timeline.wall_us == 0 {
                0.0
            } else {
                self.critical.total_us as f64 / self.timeline.wall_us as f64
            },
        );
        // Flight-recorder overflow is a data-quality signal: nonzero
        // means the waterfall under-attributes the dropped spans.
        registry.counter_add(
            "analyze_dropped_events_total",
            labels,
            self.timeline.dropped,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_trace::{Lane, Session};

    fn spin_us(us: u64) {
        let t = std::time::Instant::now();
        while t.elapsed().as_micros() < u128::from(us) {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn report_renders_all_sections_and_conserves() {
        let session = Session::start();
        {
            let _lane = ooc_trace::lane_scope(Lane::main());
            let _top = ooc_trace::span("parallel", "exec-parallel");
            let h = std::thread::spawn(|| {
                let _lane = ooc_trace::lane_scope(Lane::shard(0));
                let _run = ooc_trace::span("parallel", "shard-run");
                spin_us(200);
                let _stall = ooc_trace::span("pipeline", "prefetch-stall");
                spin_us(100);
            });
            let _join = ooc_trace::span("parallel", "join-wait");
            h.join().expect("shard");
        }
        let report = AnalysisReport::from_trace(&session.finish());
        assert!(report.critical.total_us <= report.timeline.wall_us);
        let eff = report.shard_efficiency().expect("has shards");
        assert!(eff > 0.0 && eff <= 1.0, "eff {eff}");
        let text = report.render(60);
        assert!(text.contains("scaling forensics"), "{text}");
        assert!(text.contains("aggregate"), "{text}");
        assert!(text.contains("gantt:"), "{text}");
        assert!(text.contains("critical path:"), "{text}");
        assert!(!text.contains('!'), "conservation violated:\n{text}");
    }

    #[test]
    fn metrics_registration_is_stable() {
        let session = Session::start();
        {
            let _top = ooc_trace::span("pipeline", "exec-pipelined");
            let _read = ooc_trace::span("pipeline", "sync-read");
            spin_us(50);
        }
        let report = AnalysisReport::from_trace(&session.finish());
        let registry = ooc_metrics::Registry::new();
        report.register_metrics(&registry, &[("kernel", "mxm"), ("version", "base")]);
        let snap = ooc_metrics::Snapshot::capture("test", &registry);
        assert!(snap
            .get("analyze_lanes", &[("kernel", "mxm"), ("version", "base")])
            .is_some());
        assert!(snap
            .get(
                "analyze_blame_share",
                &[("cat", "sync-read"), ("kernel", "mxm"), ("version", "base")]
            )
            .is_some());
    }
}
