//! Critical-path extraction over the reconstructed timeline.
//!
//! The critical path is the heaviest chain of pairwise
//! non-overlapping, non-idle segments across all lanes — a weighted
//! interval scheduling maximum, found by the classic sort-by-end DP.
//! Because chain members cannot overlap in time, the chain's total
//! duration is **at most the wall-clock** by construction. It is a
//! conservative over-approximation of the true causal DAG path (it
//! may chain segments with no happens-before edge), which is exactly
//! the right direction for a bound: the real critical path cannot be
//! longer than what we report.

use crate::blame::{Blame, Waterfall};
use crate::timeline::Timeline;
use std::fmt::Write as _;

/// One segment on the extracted chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// Lane the segment lives on.
    pub lane: String,
    /// Span name that owned the segment.
    pub name: String,
    /// Blame category of the segment.
    pub cat: Blame,
    /// Start, microseconds relative to the run window.
    pub start_us: u64,
    /// End (exclusive), relative microseconds.
    pub end_us: u64,
}

/// The heaviest non-overlapping chain through the run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CriticalPath {
    /// Chain members in time order.
    pub steps: Vec<PathStep>,
    /// Total chain duration, microseconds (<= wall-clock).
    pub total_us: u64,
    /// The run wall-clock the chain is bounded by.
    pub wall_us: u64,
}

impl CriticalPath {
    /// Extracts the critical path from a timeline. Idle-category
    /// segments never appear on the chain (they are filler, not
    /// work or a measured wait).
    #[must_use]
    pub fn extract(timeline: &Timeline) -> CriticalPath {
        let mut segs: Vec<PathStep> = Vec::new();
        for lane in &timeline.lanes {
            for s in &lane.segments {
                if s.cat == lane.idle_cat || s.dur_us() == 0 {
                    continue;
                }
                segs.push(PathStep {
                    lane: lane.label.clone(),
                    name: s.name.clone(),
                    cat: s.cat,
                    start_us: s.start_us,
                    end_us: s.end_us,
                });
            }
        }
        if segs.is_empty() {
            return CriticalPath {
                wall_us: timeline.wall_us,
                ..CriticalPath::default()
            };
        }
        segs.sort_by_key(|s| (s.end_us, s.start_us));
        let n = segs.len();
        // best[i]: heaviest chain ending with segment i.
        // pref[i]: max best[0..=i] for O(log n) predecessor lookup.
        let mut best = vec![0u64; n];
        let mut prev = vec![usize::MAX; n];
        let mut pref = vec![0u64; n];
        let mut pref_idx = vec![usize::MAX; n];
        for i in 0..n {
            let dur = segs[i].end_us - segs[i].start_us;
            // Rightmost j with end <= start_us[i].
            let j = segs.partition_point(|s| s.end_us <= segs[i].start_us);
            let (base, from) = if j == 0 {
                (0, usize::MAX)
            } else {
                (pref[j - 1], pref_idx[j - 1])
            };
            best[i] = base + dur;
            prev[i] = from;
            if i == 0 || best[i] > pref[i - 1] {
                pref[i] = best[i];
                pref_idx[i] = i;
            } else {
                pref[i] = pref[i - 1];
                pref_idx[i] = pref_idx[i - 1];
            }
        }
        let mut at = pref_idx[n - 1];
        let total_us = pref[n - 1];
        let mut steps = Vec::new();
        while at != usize::MAX {
            steps.push(segs[at].clone());
            at = prev[at];
        }
        steps.reverse();
        CriticalPath {
            steps,
            total_us,
            wall_us: timeline.wall_us,
        }
    }

    /// The chain's own blame decomposition (which resource bounds
    /// the run).
    #[must_use]
    pub fn blame(&self) -> Waterfall {
        let mut w = Waterfall {
            wall_us: self.total_us,
            ..Waterfall::default()
        };
        for s in &self.steps {
            w.add(s.cat, s.end_us - s.start_us);
        }
        w
    }

    /// The category holding the most chain time: the resource that
    /// bounds the run.
    #[must_use]
    pub fn bounding(&self) -> Option<Blame> {
        self.blame().dominant()
    }

    /// Human-readable chain summary: coverage, bounding resource, and
    /// the first `max_steps` members (adjacent same-lane same-category
    /// steps collapsed).
    #[must_use]
    pub fn render(&self, max_steps: usize) -> String {
        let mut out = String::new();
        if self.steps.is_empty() {
            out.push_str("critical path: (no attributed segments)\n");
            return out;
        }
        let pct = if self.wall_us == 0 {
            100.0
        } else {
            self.total_us as f64 / self.wall_us as f64 * 100.0
        };
        let _ = writeln!(
            out,
            "critical path: {} us of {} us wall ({:.1}%), bounded by {}",
            self.total_us,
            self.wall_us,
            pct,
            self.bounding().map_or("-", Blame::label),
        );
        // Collapse runs of (lane, cat, name) before printing.
        let mut merged: Vec<PathStep> = Vec::new();
        for s in &self.steps {
            if let Some(last) = merged.last_mut() {
                if last.lane == s.lane && last.cat == s.cat && last.name == s.name {
                    last.end_us = s.end_us;
                    continue;
                }
            }
            merged.push(s.clone());
        }
        for (i, s) in merged.iter().enumerate() {
            if i >= max_steps {
                let _ = writeln!(out, "  ... {} more steps", merged.len() - max_steps);
                break;
            }
            let _ = writeln!(
                out,
                "  [{:>8}..{:>8}] {:<12} {:<14} {} ({} us)",
                s.start_us,
                s.end_us,
                s.lane,
                s.cat.label(),
                s.name,
                s.end_us - s.start_us,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{LaneTimeline, Segment};

    fn seg(start: u64, end: u64, cat: Blame, name: &str) -> Segment {
        Segment {
            start_us: start,
            end_us: end,
            cat,
            name: name.into(),
        }
    }

    fn lane(label: &str, idle: Blame, segs: Vec<Segment>, wall: u64) -> LaneTimeline {
        let mut blame = Waterfall {
            wall_us: wall,
            ..Waterfall::default()
        };
        let mut covered = 0;
        for s in &segs {
            blame.add(s.cat, s.dur_us());
            covered += s.dur_us();
        }
        blame.add(idle, wall - covered);
        LaneTimeline {
            label: label.into(),
            idle_cat: idle,
            segments: segs,
            blame,
        }
    }

    fn tl(lanes: Vec<LaneTimeline>, wall: u64) -> Timeline {
        Timeline {
            top_span: "exec-parallel".into(),
            wall_us: wall,
            lanes,
            flows: vec![],
            dropped: 0,
        }
    }

    #[test]
    fn chain_picks_heaviest_non_overlapping_combination() {
        // shard:0 works 0..60, shard:1 works 50..100: they overlap in
        // 50..60, so the chain takes one of each side's best pieces.
        let t = tl(
            vec![
                lane(
                    "shard:0",
                    Blame::Barrier,
                    vec![seg(0, 60, Blame::Compute, "shard-run")],
                    100,
                ),
                lane(
                    "shard:1",
                    Blame::Barrier,
                    vec![seg(50, 100, Blame::PrefetchStall, "prefetch-stall")],
                    100,
                ),
            ],
            100,
        );
        let cp = CriticalPath::extract(&t);
        assert!(cp.total_us <= cp.wall_us);
        // Best chain: 0..60 compute is 60; it excludes 50..100 (50).
        assert_eq!(cp.total_us, 60);
        assert_eq!(cp.bounding(), Some(Blame::Compute));
    }

    #[test]
    fn chain_spans_lanes_when_disjoint() {
        let t = tl(
            vec![
                lane(
                    "shard:0",
                    Blame::Barrier,
                    vec![seg(0, 40, Blame::Compute, "shard-run")],
                    100,
                ),
                lane(
                    "ionode:2",
                    Blame::Idle,
                    vec![seg(40, 90, Blame::QueueWait, "queue-wait")],
                    100,
                ),
            ],
            100,
        );
        let cp = CriticalPath::extract(&t);
        assert_eq!(cp.total_us, 90);
        assert_eq!(cp.steps.len(), 2);
        assert_eq!(cp.bounding(), Some(Blame::QueueWait));
        let text = cp.render(10);
        assert!(text.contains("bounded by queue-wait"), "{text}");
    }

    #[test]
    fn idle_filler_never_joins_the_chain() {
        let t = tl(
            vec![lane(
                "shard:0",
                Blame::Barrier,
                vec![seg(10, 20, Blame::Barrier, "gap")],
                100,
            )],
            100,
        );
        // Barrier here IS the lane's idle category: excluded.
        let cp = CriticalPath::extract(&t);
        assert!(cp.steps.is_empty());
        assert_eq!(cp.total_us, 0);
    }

    #[test]
    fn empty_timeline_renders() {
        let cp = CriticalPath::extract(&tl(vec![], 0));
        assert!(cp.render(5).contains("no attributed segments"));
    }
}
