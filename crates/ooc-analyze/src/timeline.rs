//! Per-lane timeline reconstruction from a recorded trace.
//!
//! The builder replays each thread's span stack in event order and
//! cuts the run's wall-clock window into contiguous **segments**, each
//! owned by exactly one [`Blame`] category (innermost wait wins, work
//! spans are compute, uncovered time is the lane's idle category).
//! Threads are then grouped into **lanes** by the structured lane
//! identity stamped on their events — the per-iteration shard threads
//! of the parallel executor all fold into one `shard:k` lane — and
//! each lane's waterfall is completed so it partitions the wall-clock
//! interval exactly.

use crate::blame::{Blame, Waterfall};
use ooc_trace::{Event, EventKind, LaneKind, TraceData};
use std::collections::BTreeMap;

/// One contiguous slice of a lane's time owned by one category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Start, microseconds relative to the run window.
    pub start_us: u64,
    /// End (exclusive), microseconds relative to the run window.
    pub end_us: u64,
    /// The category owning this slice.
    pub cat: Blame,
    /// Name of the span that determined the category.
    pub name: String,
}

impl Segment {
    /// The segment's duration.
    #[must_use]
    pub fn dur_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// One lane's reconstructed activity over the run window.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneTimeline {
    /// Display label (`shard:0`, `prefetch:1`, `tid:7`...).
    pub label: String,
    /// Category charged for time not covered by any span.
    pub idle_cat: Blame,
    /// Covered slices, sorted by start, pairwise disjoint.
    pub segments: Vec<Segment>,
    /// The lane's exactly-conserving decomposition.
    pub blame: Waterfall,
}

/// A matched cross-thread causal link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowLink {
    /// Flow id (prefetch delivery sequence number).
    pub id: u64,
    /// Producing side: (relative ts, tid).
    pub start: (u64, u64),
    /// Consuming side: (relative ts, tid).
    pub finish: (u64, u64),
}

/// The reconstructed run: a wall-clock window and the lanes that
/// partition it.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Name of the window-defining top span (`exec-parallel`,
    /// `exec-pipelined`, or `trace` when no executor span exists).
    pub top_span: String,
    /// Run wall-clock, microseconds.
    pub wall_us: u64,
    /// Lanes in label order.
    pub lanes: Vec<LaneTimeline>,
    /// Matched causal links (prefetch deliveries), by id.
    pub flows: Vec<FlowLink>,
    /// Events the flight recorder evicted before analysis.
    pub dropped: u64,
}

fn idle_cat_of(label: &str) -> Blame {
    if label.starts_with("shard:") {
        Blame::Barrier
    } else {
        Blame::Idle
    }
}

/// The category currently in force for a span stack: the innermost
/// wait span wins; any other open span means compute; an empty stack
/// means uncovered time.
fn current_cat(stack: &[(String, Option<Blame>)]) -> Option<(Blame, &str)> {
    for (name, wait) in stack.iter().rev() {
        if let Some(cat) = wait {
            return Some((*cat, name));
        }
    }
    stack
        .last()
        .map(|(name, _)| (Blame::Compute, name.as_str()))
}

impl Timeline {
    /// Reconstructs the run timeline from a finished (or snapshot)
    /// trace. Never fails: an empty trace yields an empty timeline,
    /// and ring-buffer truncation (orphan `End`s) degrades to
    /// uncovered time instead of erroring.
    #[must_use]
    pub fn from_trace(data: &TraceData) -> Timeline {
        // 1. The wall-clock window: the first executor span if there
        // is one, else the full event range.
        let mut window: Option<(u64, u64, String, u64)> = None; // (start, end, name, tid)
        for e in &data.events {
            if matches!(e.kind, EventKind::Begin)
                && (e.name == "exec-parallel" || e.name == "exec-pipelined")
            {
                window = Some((e.ts_us, e.ts_us, e.name.clone(), e.tid));
                break;
            }
        }
        let (w_start, mut w_end, top_span) = match window {
            Some((s, _, name, tid)) => {
                let mut depth = 0i64;
                let mut end = s;
                for e in data.events.iter().filter(|e| e.tid == tid) {
                    if e.ts_us < s {
                        continue;
                    }
                    match e.kind {
                        EventKind::Begin if e.name == name => depth += 1,
                        EventKind::End if e.name == name => {
                            depth -= 1;
                            if depth == 0 {
                                end = e.ts_us;
                                break;
                            }
                        }
                        _ => {}
                    }
                    end = end.max(e.ts_us);
                }
                (s, end.max(s), name)
            }
            None => {
                let min = data.events.iter().map(|e| e.ts_us).min().unwrap_or(0);
                let max = data.events.iter().map(|e| e.ts_us).max().unwrap_or(0);
                (min, max, "trace".to_string())
            }
        };
        // Late lanes (e.g. a straggling writer) may outlive the top
        // span end by a few events; clip, don't extend.
        w_end = w_end.max(w_start);
        let wall_us = w_end - w_start;
        let rel = |ts: u64| ts.clamp(w_start, w_end) - w_start;

        // 2. Per-tid segment extraction.
        let mut tids: Vec<u64> = data.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        let mut flows_start: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut flows: Vec<FlowLink> = Vec::new();
        let mut by_label: BTreeMap<String, Vec<Segment>> = BTreeMap::new();
        for tid in tids {
            let events: Vec<&Event> = data.events.iter().filter(|e| e.tid == tid).collect();
            let label = events
                .iter()
                .find_map(|e| e.lane)
                .map_or_else(|| format!("tid:{tid}"), |l| l.to_string());
            let mut stack: Vec<(String, Option<Blame>)> = Vec::new();
            let mut cursor = 0u64;
            let mut segs: Vec<Segment> = Vec::new();
            let close_to = |cursor: &mut u64,
                            ts: u64,
                            stack: &[(String, Option<Blame>)],
                            segs: &mut Vec<Segment>| {
                if ts > *cursor {
                    if let Some((cat, name)) = current_cat(stack) {
                        segs.push(Segment {
                            start_us: *cursor,
                            end_us: ts,
                            cat,
                            name: name.to_string(),
                        });
                    }
                    *cursor = ts;
                }
            };
            for e in &events {
                match &e.kind {
                    EventKind::Begin => {
                        let ts = rel(e.ts_us);
                        close_to(&mut cursor, ts, &stack, &mut segs);
                        stack.push((e.name.clone(), Blame::of_wait_span(&e.name)));
                    }
                    EventKind::End => {
                        let ts = rel(e.ts_us);
                        close_to(&mut cursor, ts, &stack, &mut segs);
                        // Orphan End (ring truncation): no-op pop.
                        stack.pop();
                    }
                    EventKind::FlowStart(id) => {
                        flows_start.insert(*id, (rel(e.ts_us), e.tid));
                    }
                    EventKind::FlowFinish(id) => {
                        if let Some(start) = flows_start.remove(id) {
                            flows.push(FlowLink {
                                id: *id,
                                start,
                                finish: (rel(e.ts_us), e.tid),
                            });
                        }
                    }
                    EventKind::Instant | EventKind::Counter(_) => {}
                }
            }
            close_to(&mut cursor, wall_us, &stack, &mut segs);
            by_label.entry(label).or_default().extend(segs);
        }
        flows.sort_by_key(|f| f.id);

        // 3. Lanes: merge each label's segments (iteration-scoped
        // shard threads are time-disjoint; clip defensively anyway)
        // and complete the waterfall so it conserves by construction.
        let mut lanes = Vec::new();
        for (label, mut segs) in by_label {
            segs.sort_by_key(|s| (s.start_us, s.end_us));
            let mut merged: Vec<Segment> = Vec::new();
            for mut s in segs {
                if let Some(prev) = merged.last() {
                    s.start_us = s.start_us.max(prev.end_us);
                    s.end_us = s.end_us.max(s.start_us);
                }
                if s.end_us > s.start_us {
                    merged.push(s);
                }
            }
            let idle_cat = idle_cat_of(&label);
            let mut blame = Waterfall {
                wall_us,
                ..Waterfall::default()
            };
            let mut covered = 0u64;
            for s in &merged {
                blame.add(s.cat, s.dur_us());
                covered += s.dur_us();
            }
            blame.add(idle_cat, wall_us - covered);
            debug_assert!(blame.is_conserving());
            lanes.push(LaneTimeline {
                label,
                idle_cat,
                segments: merged,
                blame,
            });
        }
        Timeline {
            top_span,
            wall_us,
            lanes,
            flows,
            dropped: data.dropped,
        }
    }

    /// The lane with the given label.
    #[must_use]
    pub fn lane(&self, label: &str) -> Option<&LaneTimeline> {
        self.lanes.iter().find(|l| l.label == label)
    }

    /// Aggregate waterfall across all lanes (`wall_us` becomes
    /// `lanes x wall`, still exactly conserving).
    #[must_use]
    pub fn aggregate(&self) -> Waterfall {
        let mut agg = Waterfall::default();
        for lane in &self.lanes {
            agg.merge(&lane.blame);
        }
        agg
    }

    /// Number of shard lanes (0 for single-threaded runs).
    #[must_use]
    pub fn shard_lanes(&self) -> usize {
        self.lanes
            .iter()
            .filter(|l| l.label.starts_with(LaneKind::Shard.label()))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_trace::{Lane, Session};

    fn spin_us(us: u64) {
        let t = std::time::Instant::now();
        while t.elapsed().as_micros() < u128::from(us) {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn empty_trace_is_empty_timeline() {
        let t = Timeline::from_trace(&TraceData::default());
        assert_eq!(t.wall_us, 0);
        assert!(t.lanes.is_empty());
        assert!(t.aggregate().is_conserving());
    }

    #[test]
    fn every_lane_conserves_on_a_real_parallel_shaped_trace() {
        let session = Session::start();
        {
            let _lane = ooc_trace::lane_scope(Lane::main());
            let _top = ooc_trace::span("parallel", "exec-parallel");
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    std::thread::spawn(move || {
                        let _lane = ooc_trace::lane_scope(Lane::shard(i));
                        let _run = ooc_trace::span("parallel", "shard-run");
                        spin_us(300);
                        {
                            let _stall = ooc_trace::span("pipeline", "prefetch-stall");
                            spin_us(200);
                        }
                        {
                            let _sync = ooc_trace::span("pipeline", "sync-read");
                            {
                                let _q = ooc_trace::span("striped", "queue-wait");
                                spin_us(100);
                            }
                            spin_us(100);
                        }
                    })
                })
                .collect();
            let _join = ooc_trace::span("parallel", "join-wait");
            for h in handles {
                h.join().expect("shard");
            }
        }
        let data = session.finish();
        let t = Timeline::from_trace(&data);
        assert_eq!(t.top_span, "exec-parallel");
        assert!(t.wall_us >= 600, "wall {}", t.wall_us);
        assert_eq!(t.shard_lanes(), 2);
        for lane in &t.lanes {
            assert!(lane.blame.is_conserving(), "lane {}", lane.label);
        }
        let s0 = t.lane("shard:0").expect("shard lane");
        assert!(s0.blame.get(Blame::PrefetchStall) >= 150);
        // queue-wait nested inside sync-read wins innermost.
        assert!(s0.blame.get(Blame::QueueWait) >= 50);
        assert!(s0.blame.get(Blame::SyncRead) >= 50);
        assert!(s0.blame.get(Blame::Compute) >= 200);
        // The main lane spent the shards' runtime in join-wait.
        let main = t.lane("main:0").expect("main lane");
        assert!(main.blame.get(Blame::Barrier) >= 500);
        // Aggregate still conserves (3 lanes x wall).
        let agg = t.aggregate();
        assert!(agg.is_conserving());
        assert_eq!(agg.wall_us, 3 * t.wall_us);
    }

    #[test]
    fn truncated_trace_still_conserves() {
        let session = Session::start_flight_recorder(6);
        {
            let _top = ooc_trace::span("parallel", "exec-parallel");
            for _ in 0..10 {
                let _s = ooc_trace::span("pipeline", "sync-read");
                spin_us(20);
            }
        }
        let data = session.finish();
        assert!(data.dropped > 0);
        let t = Timeline::from_trace(&data);
        assert_eq!(t.dropped, data.dropped);
        for lane in &t.lanes {
            assert!(lane.blame.is_conserving(), "lane {}", lane.label);
        }
    }

    #[test]
    fn flow_links_are_matched() {
        let session = Session::start();
        {
            let _top = ooc_trace::span("pipeline", "exec-pipelined");
            ooc_trace::flow_start("pipeline", "delivery", 3);
            ooc_trace::flow_finish("pipeline", "delivery", 3);
            ooc_trace::flow_start("pipeline", "delivery", 9);
            // id 9 never finishes: unmatched, dropped.
        }
        let t = Timeline::from_trace(&session.finish());
        assert_eq!(t.flows.len(), 1);
        assert_eq!(t.flows[0].id, 3);
    }
}
