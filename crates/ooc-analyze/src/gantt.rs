//! ASCII Gantt rendering of the per-lane timelines.
//!
//! Each lane becomes one row of fixed-width cells; each cell shows the
//! glyph of the category that held the **most time inside that cell's
//! time slice** (ties to the earlier taxonomy category), so a 100-cell
//! row is a faithful downsampling of the lane's waterfall. A legend
//! mapping glyphs to categories is appended.

use crate::blame::ALL_BLAMES;
use crate::timeline::Timeline;
use std::fmt::Write as _;

/// Renders the timeline as one Gantt row per lane, `width` cells wide.
#[must_use]
pub fn render(timeline: &Timeline, width: usize) -> String {
    let width = width.max(1);
    let mut out = String::new();
    if timeline.wall_us == 0 || timeline.lanes.is_empty() {
        out.push_str("gantt: (empty run)\n");
        return out;
    }
    let label_w = timeline
        .lanes
        .iter()
        .map(|l| l.label.len())
        .max()
        .unwrap_or(0)
        .max(4);
    let _ = writeln!(
        out,
        "gantt: {} us wall, {} us/cell",
        timeline.wall_us,
        (timeline.wall_us as f64 / width as f64).ceil() as u64
    );
    for lane in &timeline.lanes {
        let mut row = String::with_capacity(width);
        for cell in 0..width {
            // Cell covers [lo, hi) in run-relative microseconds.
            let lo = (cell as u128 * u128::from(timeline.wall_us) / width as u128) as u64;
            let hi = ((cell as u128 + 1) * u128::from(timeline.wall_us) / width as u128) as u64;
            let hi = hi.max(lo + 1);
            let mut per_cat = [0u64; ALL_BLAMES.len()];
            let mut covered = 0u64;
            for s in &lane.segments {
                let o_lo = s.start_us.max(lo);
                let o_hi = s.end_us.min(hi);
                if o_hi > o_lo {
                    let idx = ALL_BLAMES.iter().position(|c| *c == s.cat).unwrap_or(0);
                    per_cat[idx] += o_hi - o_lo;
                    covered += o_hi - o_lo;
                }
            }
            let idle_idx = ALL_BLAMES
                .iter()
                .position(|c| *c == lane.idle_cat)
                .unwrap_or(ALL_BLAMES.len() - 1);
            per_cat[idle_idx] += (hi - lo).saturating_sub(covered);
            let winner = per_cat
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map_or(idle_idx, |(i, _)| i);
            row.push(ALL_BLAMES[winner].glyph());
        }
        let _ = writeln!(out, "{:<label_w$} |{row}|", lane.label);
    }
    let legend: Vec<String> = ALL_BLAMES
        .iter()
        .map(|c| format!("{}={}", if c.glyph() == ' ' { '_' } else { c.glyph() }, c))
        .collect();
    let _ = writeln!(out, "legend: {}", legend.join(" "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blame::{Blame, Waterfall};
    use crate::timeline::{LaneTimeline, Segment};

    fn half_and_half() -> Timeline {
        let segs = vec![
            Segment {
                start_us: 0,
                end_us: 50,
                cat: Blame::Compute,
                name: "shard-run".into(),
            },
            Segment {
                start_us: 50,
                end_us: 100,
                cat: Blame::PrefetchStall,
                name: "prefetch-stall".into(),
            },
        ];
        let mut blame = Waterfall {
            wall_us: 100,
            ..Waterfall::default()
        };
        blame.add(Blame::Compute, 50);
        blame.add(Blame::PrefetchStall, 50);
        Timeline {
            top_span: "exec-parallel".into(),
            wall_us: 100,
            lanes: vec![LaneTimeline {
                label: "shard:0".into(),
                idle_cat: Blame::Barrier,
                segments: segs,
                blame,
            }],
            flows: vec![],
            dropped: 0,
        }
    }

    #[test]
    fn cells_downsample_by_majority() {
        let text = render(&half_and_half(), 10);
        let row = text
            .lines()
            .find(|l| l.starts_with("shard:0"))
            .expect("row");
        assert!(row.contains("#####sssss"), "{text}");
        assert!(text.contains("legend:"), "{text}");
    }

    #[test]
    fn empty_run_renders_placeholder() {
        let t = Timeline {
            top_span: "trace".into(),
            wall_us: 0,
            lanes: vec![],
            flows: vec![],
            dropped: 0,
        };
        assert!(render(&t, 80).contains("empty run"));
    }
}
