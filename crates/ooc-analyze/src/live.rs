//! Zero-dependency HTTP pull endpoint for live run observation.
//!
//! [`LiveServer`] binds a `TcpListener`, polls it non-blocking from a
//! background thread, and answers `GET` requests through a caller-
//! supplied [`Provider`] closure. The intended wiring:
//!
//! * `GET /metrics` — Prometheus text exposition of a shared
//!   [`Registry`](ooc_metrics::Registry) snapshot, captured fresh per
//!   request, so scrapes see the counters a running parallel job is
//!   incrementing *right now* (see [`registry_provider`]).
//! * `GET /analyze` — the latest rendered forensics report, refreshed
//!   by the job at iteration boundaries from a flight-recorder
//!   snapshot.
//!
//! The server speaks just enough HTTP/1.0 for `curl` and Prometheus:
//! it reads the request line, ignores headers, answers with
//! `Content-Length`, and closes the connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A response to one request path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 404...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` plain-text response.
    #[must_use]
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4".into(),
            body: body.into(),
        }
    }
}

/// Maps a request path (e.g. `"/metrics"`) to a response; `None`
/// becomes `404`.
pub type Provider = Arc<dyn Fn(&str) -> Option<Response> + Send + Sync>;

/// The running pull endpoint. Dropping it stops the poll thread.
pub struct LiveServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl LiveServer {
    /// Binds `bind` (e.g. `"127.0.0.1:0"`) and serves `provider` from
    /// a background thread until [`stop`](LiveServer::stop) or drop.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(bind: &str, provider: Provider) -> std::io::Result<LiveServer> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ooc-live".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => serve_one(stream, &provider),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
            })
            .expect("spawn live server thread");
        Ok(LiveServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the poll thread and waits for it to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_one(mut stream: TcpStream, provider: &Provider) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 2048];
    let n = match stream.read(&mut buf) {
        Ok(n) if n > 0 => n,
        _ => return,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let response = provider(path).unwrap_or(Response {
        status: 404,
        content_type: "text/plain".into(),
        body: format!("no such endpoint: {path}\n"),
    });
    let reason = match response.status {
        200 => "OK",
        404 => "Not Found",
        _ => "Status",
    };
    let head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason,
        response.content_type,
        response.body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}

/// The standard wiring: `/metrics` serves a fresh Prometheus snapshot
/// of `registry`; `/analyze` serves the latest report text in
/// `report`; `/ledger` serves the latest provenance-ledger render in
/// `ledger`; `/` lists all three.
#[must_use]
pub fn registry_provider(
    producer: &'static str,
    registry: Arc<ooc_metrics::Registry>,
    report: Arc<Mutex<String>>,
    ledger: Arc<Mutex<String>>,
) -> Provider {
    Arc::new(move |path| match path {
        "/metrics" => {
            let snap = ooc_metrics::Snapshot::capture(producer, &registry);
            Some(Response::text(ooc_metrics::prometheus_text(&snap)))
        }
        "/analyze" => {
            let body = report.lock().map(|r| r.clone()).unwrap_or_default();
            Some(Response::text(if body.is_empty() {
                "analysis pending (no iteration completed yet)\n".to_string()
            } else {
                body
            }))
        }
        "/ledger" => {
            let body = ledger.lock().map(|r| r.clone()).unwrap_or_default();
            Some(Response::text(if body.is_empty() {
                "ledger pending (no run completed yet)\n".to_string()
            } else {
                body
            }))
        }
        "/" => Some(Response::text("endpoints: /metrics /analyze /ledger\n")),
        _ => None,
    })
}

/// Fetches `path` from a running [`LiveServer`] over plain TCP —
/// shared by tests and the bench smoke path.
///
/// # Errors
/// Propagates connection/read failures.
pub fn fetch(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: live\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map_or(String::new(), |(_, b)| b.to_string());
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_and_analysis_live() {
        let registry = Arc::new(ooc_metrics::Registry::new());
        let report = Arc::new(Mutex::new(String::new()));
        let ledger = Arc::new(Mutex::new(String::new()));
        let provider = registry_provider(
            "live-test",
            Arc::clone(&registry),
            Arc::clone(&report),
            Arc::clone(&ledger),
        );
        let mut server = LiveServer::start("127.0.0.1:0", provider).expect("bind");
        let addr = server.local_addr();

        registry.counter_add("live_ticks", &[("phase", "a")], 3);
        let (status, body) = fetch(addr, "/metrics").expect("fetch metrics");
        assert_eq!(status, 200);
        assert!(body.contains("live_ticks"), "{body}");

        // The registry is shared, not copied: later increments show up.
        registry.counter_add("live_ticks", &[("phase", "a")], 4);
        let (_, body) = fetch(addr, "/metrics").expect("refetch");
        assert!(body.contains('7'), "{body}");

        let (status, body) = fetch(addr, "/analyze").expect("fetch analyze");
        assert_eq!(status, 200);
        assert!(body.contains("pending"), "{body}");
        *report.lock().expect("report") = "critical path: 12 us\n".into();
        let (_, body) = fetch(addr, "/analyze").expect("refetch analyze");
        assert!(body.contains("critical path"), "{body}");

        let (status, body) = fetch(addr, "/ledger").expect("fetch ledger");
        assert_eq!(status, 200);
        assert!(body.contains("pending"), "{body}");
        *ledger.lock().expect("ledger") = "== I/O provenance: trans c-opt\n".into();
        let (_, body) = fetch(addr, "/ledger").expect("refetch ledger");
        assert!(body.contains("I/O provenance"), "{body}");

        let (_, body) = fetch(addr, "/").expect("fetch index");
        assert!(body.contains("/ledger"), "{body}");

        let (status, _) = fetch(addr, "/nope").expect("fetch 404");
        assert_eq!(status, 404);

        server.stop();
    }
}
