//! The blame taxonomy and the exactly-conserving waterfall.
//!
//! Every microsecond of a lane's wall-clock interval is assigned to
//! exactly one [`Blame`] category, so a lane's waterfall **sums to the
//! run's wall-clock exactly** — no unattributed and no double-counted
//! time. The assignment rule is *innermost wait wins*: while a thread
//! is inside a `sync-read` span that is itself inside a `shard-run`
//! span, the time is synchronous-read time, not compute; while it is
//! inside no wait span but inside any work span, it is compute; while
//! it is inside no span at all, it is the lane's idle category
//! (barrier skew for shard lanes, idle for service lanes).

use std::collections::BTreeMap;
use std::fmt;

/// Where one slice of wall-clock went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Blame {
    /// In a work span with no wait active: staging + compute.
    Compute,
    /// Blocking read on the consuming thread (`sync-read`).
    SyncRead,
    /// Blocking write-back on the consuming thread (`sync-write`).
    SyncWrite,
    /// Waiting for an in-flight prefetch delivery (`prefetch-stall`).
    PrefetchStall,
    /// Write-behind read-after-write fence or flush (`fence-wait`).
    FenceWait,
    /// Waiting for an I/O-node FIFO grant (`queue-wait`).
    QueueWait,
    /// Journal/checkpoint overhead of durable runs (`checkpoint`).
    Checkpoint,
    /// Pre-image rollback on crash recovery (`recovery-replay`).
    Replay,
    /// Degraded-mode repair machinery: parity writes, XOR
    /// reconstruction, hedged reads, scrubbing, resilvering
    /// (`parity-write`, `degraded-reconstruct`, `hedge-read`,
    /// `scrub`, `resilver`).
    Repair,
    /// Barrier skew: a shard lane outside its work window, or the
    /// main lane inside `join-wait`.
    Barrier,
    /// A service lane (prefetch/writer) with nothing to do.
    Idle,
}

/// Every category, in waterfall rendering order.
pub const ALL_BLAMES: [Blame; 11] = [
    Blame::Compute,
    Blame::SyncRead,
    Blame::SyncWrite,
    Blame::PrefetchStall,
    Blame::FenceWait,
    Blame::QueueWait,
    Blame::Checkpoint,
    Blame::Replay,
    Blame::Repair,
    Blame::Barrier,
    Blame::Idle,
];

impl Blame {
    /// The category a *wait* span name maps to, if it is one.
    #[must_use]
    pub fn of_wait_span(name: &str) -> Option<Blame> {
        match name {
            "sync-read" => Some(Blame::SyncRead),
            "sync-write" => Some(Blame::SyncWrite),
            "prefetch-stall" => Some(Blame::PrefetchStall),
            "fence-wait" => Some(Blame::FenceWait),
            "queue-wait" => Some(Blame::QueueWait),
            "checkpoint" => Some(Blame::Checkpoint),
            "recovery-replay" => Some(Blame::Replay),
            "parity-write" | "degraded-reconstruct" | "hedge-read" | "scrub" | "resilver" => {
                Some(Blame::Repair)
            }
            "join-wait" => Some(Blame::Barrier),
            _ => None,
        }
    }

    /// Stable label for tables and metric series.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Blame::Compute => "compute",
            Blame::SyncRead => "sync-read",
            Blame::SyncWrite => "sync-write",
            Blame::PrefetchStall => "prefetch-stall",
            Blame::FenceWait => "fence-wait",
            Blame::QueueWait => "queue-wait",
            Blame::Checkpoint => "checkpoint",
            Blame::Replay => "replay",
            Blame::Repair => "repair",
            Blame::Barrier => "barrier",
            Blame::Idle => "idle",
        }
    }

    /// One-character glyph for the ASCII Gantt.
    #[must_use]
    pub fn glyph(self) -> char {
        match self {
            Blame::Compute => '#',
            Blame::SyncRead => 'r',
            Blame::SyncWrite => 'w',
            Blame::PrefetchStall => 's',
            Blame::FenceWait => 'f',
            Blame::QueueWait => 'q',
            Blame::Checkpoint => 'c',
            Blame::Replay => 'R',
            Blame::Repair => 'p',
            Blame::Barrier => '.',
            Blame::Idle => ' ',
        }
    }
}

impl fmt::Display for Blame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One lane's complete decomposition of the run's wall-clock.
///
/// Invariant (checked by [`Waterfall::is_conserving`] and enforced by
/// construction in the timeline builder): the category values sum to
/// `wall_us` **exactly**.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Waterfall {
    /// Microseconds per category (absent = 0).
    pub us: BTreeMap<Blame, u64>,
    /// The wall-clock interval the categories partition.
    pub wall_us: u64,
}

impl Waterfall {
    /// Adds `us` microseconds to `cat`.
    pub fn add(&mut self, cat: Blame, us: u64) {
        *self.us.entry(cat).or_insert(0) += us;
    }

    /// Microseconds attributed to `cat`.
    #[must_use]
    pub fn get(&self, cat: Blame) -> u64 {
        self.us.get(&cat).copied().unwrap_or(0)
    }

    /// Sum across all categories.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.us.values().sum()
    }

    /// The conservation law: categories partition the wall-clock.
    #[must_use]
    pub fn is_conserving(&self) -> bool {
        self.total_us() == self.wall_us
    }

    /// Folds another lane's waterfall in (aggregate rows sum
    /// lane-seconds, so the aggregate total is `lanes x wall`).
    pub fn merge(&mut self, other: &Waterfall) {
        for (cat, us) in &other.us {
            self.add(*cat, *us);
        }
        self.wall_us += other.wall_us;
    }

    /// The category holding the most time, ties broken by taxonomy
    /// order. `None` for an empty waterfall.
    #[must_use]
    pub fn dominant(&self) -> Option<Blame> {
        ALL_BLAMES
            .iter()
            .copied()
            .filter(|c| self.get(*c) > 0)
            .max_by_key(|c| self.get(*c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_span_names_map_and_others_do_not() {
        assert_eq!(Blame::of_wait_span("sync-read"), Some(Blame::SyncRead));
        assert_eq!(Blame::of_wait_span("queue-wait"), Some(Blame::QueueWait));
        assert_eq!(Blame::of_wait_span("join-wait"), Some(Blame::Barrier));
        assert_eq!(Blame::of_wait_span("shard-run"), None);
        assert_eq!(Blame::of_wait_span("nest:mxm"), None);
    }

    #[test]
    fn waterfall_conserves_and_merges() {
        let mut w = Waterfall {
            wall_us: 100,
            ..Waterfall::default()
        };
        w.add(Blame::Compute, 60);
        w.add(Blame::PrefetchStall, 30);
        w.add(Blame::Barrier, 10);
        assert!(w.is_conserving());
        assert_eq!(w.dominant(), Some(Blame::Compute));
        let mut agg = Waterfall::default();
        agg.merge(&w);
        agg.merge(&w);
        assert_eq!(agg.wall_us, 200);
        assert_eq!(agg.get(Blame::Compute), 120);
        assert!(agg.is_conserving());
    }
}
