//! Rendering, pricing, and version-diff explanation of I/O provenance
//! ledgers ([`ProvenanceLedger`]).
//!
//! The executors classify every transfer by cause
//! ([`ooc_runtime::IoCause`]) under an exact conservation law; this
//! module turns the classified stream into the three consumable
//! artifacts:
//!
//! * [`render_ledger`] — per-cause and per-array tables with byte
//!   totals and [`DiskParams`]-priced seconds,
//! * [`diff_ledgers`] — a tile-attributed explanation of *why* one
//!   version of a program moves fewer bytes than another ("c-opt
//!   eliminates N capacity-miss bytes on U because the reuse distance
//!   now fits the cache"),
//! * [`register_metrics`] — deterministic per-cause counters for the
//!   bench-compare regression gate.

use ooc_runtime::{CauseTotal, IoCause, ProvenanceLedger, ELEM_BYTES};
use pfs_sim::DiskParams;
use std::fmt::Write as _;

/// Seconds the disk model charges one cause bucket.
#[must_use]
pub fn bucket_seconds(disk: &DiskParams, t: &CauseTotal) -> f64 {
    disk.bulk_seconds(t.calls, t.elems * ELEM_BYTES)
}

/// Total priced seconds of every bucket — data causes plus the
/// checksum sidecar channel.
#[must_use]
pub fn price_ledger(ledger: &ProvenanceLedger, disk: &DiskParams) -> f64 {
    let totals = ledger.totals();
    IoCause::ALL
        .iter()
        .map(|&c| {
            let t = cause_total(&totals, c);
            bucket_seconds(disk, &t)
        })
        .sum()
}

fn cause_total(
    totals: &std::collections::BTreeMap<(u32, IoCause), CauseTotal>,
    cause: IoCause,
) -> CauseTotal {
    let mut out = CauseTotal::default();
    for ((_, c), t) in totals {
        if *c == cause {
            out.events += t.events;
            out.calls += t.calls;
            out.elems += t.elems;
        }
    }
    out
}

/// `1234567` → `"1,234,567"`.
#[must_use]
pub fn commas(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

fn signed_commas(n: i64) -> String {
    if n < 0 {
        format!("-{}", commas(n.unsigned_abs()))
    } else {
        format!("+{}", commas(n.unsigned_abs()))
    }
}

fn identity(l: &ProvenanceLedger) -> String {
    let mut parts = Vec::new();
    if !l.kernel.is_empty() {
        parts.push(l.kernel.clone());
    }
    if !l.version.is_empty() {
        parts.push(l.version.clone());
    }
    if parts.is_empty() && !l.executor.is_empty() {
        parts.push(l.executor.clone());
    }
    if parts.is_empty() {
        "ledger".to_string()
    } else {
        parts.join(" ")
    }
}

fn array_name(l: &ProvenanceLedger, a: u32) -> String {
    l.arrays
        .get(a as usize)
        .filter(|n| !n.is_empty())
        .map_or_else(|| format!("#{a}"), Clone::clone)
}

/// The full ledger render: identity header, the per-cause table
/// (events, calls, bytes, priced seconds, byte share), the per-array ×
/// cause byte matrix, and the journal sidecar line.
#[must_use]
pub fn render_ledger(ledger: &ProvenanceLedger, disk: &DiskParams) -> String {
    let totals = ledger.totals();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== I/O provenance: {} ({}; {} events)",
        identity(ledger),
        if ledger.executor.is_empty() {
            "unknown executor"
        } else {
            &ledger.executor
        },
        commas(ledger.events.len() as u64),
    );
    let grand_bytes: u64 = IoCause::ALL
        .iter()
        .map(|&c| cause_total(&totals, c).bytes())
        .sum();
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>8} {:>14} {:>10} {:>7}",
        "cause", "events", "calls", "bytes", "seconds", "share"
    );
    for cause in IoCause::ALL {
        let t = cause_total(&totals, cause);
        if t.events == 0 && t.elems == 0 {
            continue;
        }
        let share = if grand_bytes == 0 {
            0.0
        } else {
            t.bytes() as f64 / grand_bytes as f64 * 100.0
        };
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>8} {:>14} {:>10.4} {:>6.1}%",
            cause.label(),
            commas(t.events),
            commas(t.calls),
            commas(t.bytes()),
            bucket_seconds(disk, &t),
            share
        );
    }
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>8} {:>14} {:>10.4} {:>6.1}%",
        "total",
        "",
        "",
        commas(grand_bytes),
        price_ledger(ledger, disk),
        100.0
    );

    // Per-array byte matrix over the causes that actually occur.
    let active: Vec<IoCause> = IoCause::ALL
        .iter()
        .copied()
        .filter(|&c| {
            let t = cause_total(&totals, c);
            t.events > 0 || t.elems > 0
        })
        .collect();
    let arrays: Vec<u32> = {
        let mut seen: Vec<u32> = totals.keys().map(|&(a, _)| a).collect();
        seen.dedup();
        seen
    };
    if !arrays.is_empty() && !active.is_empty() {
        out.push('\n');
        let _ = write!(out, "{:<8}", "array");
        for c in &active {
            let _ = write!(out, " {:>14}", c.label());
        }
        out.push('\n');
        for &a in &arrays {
            let _ = write!(out, "{:<8}", array_name(ledger, a));
            for &c in &active {
                let bytes = totals
                    .get(&(a, c))
                    .map_or(0, ooc_runtime::CauseTotal::bytes);
                let _ = write!(out, " {:>14}", commas(bytes));
            }
            out.push('\n');
        }
    }
    if ledger.journal_bytes > 0 {
        let _ = writeln!(
            out,
            "journal: {} bytes appended (intent pre-images + data, outside the partition)",
            commas(ledger.journal_bytes)
        );
    }
    out
}

/// One cause's totals in the two ledgers being compared.
#[derive(Debug, Clone, Copy)]
pub struct CauseDelta {
    /// The cause bucket.
    pub cause: IoCause,
    /// Totals in the baseline ledger.
    pub a: CauseTotal,
    /// Totals in the comparison ledger.
    pub b: CauseTotal,
}

impl CauseDelta {
    /// `b - a` in bytes (negative = the comparison moves fewer).
    #[must_use]
    pub fn delta_bytes(&self) -> i64 {
        self.b.bytes() as i64 - self.a.bytes() as i64
    }

    /// `b - a` in I/O calls (negative = the comparison issues fewer).
    /// Byte-neutral call reductions are the paper's core effect: the
    /// matching file layout lengthens contiguous runs, so the same
    /// bytes move in fewer, longer calls.
    #[must_use]
    pub fn delta_calls(&self) -> i64 {
        self.b.calls as i64 - self.a.calls as i64
    }
}

/// The explained comparison of two ledgers — same program, two
/// versions (or two executors).
#[derive(Debug, Clone)]
pub struct LedgerDiff {
    /// Identity of the baseline ledger.
    pub a_id: String,
    /// Identity of the comparison ledger.
    pub b_id: String,
    /// Per-cause totals side by side, every cause in display order.
    pub rows: Vec<CauseDelta>,
    /// Priced seconds of the baseline.
    pub a_seconds: f64,
    /// Priced seconds of the comparison.
    pub b_seconds: f64,
    /// Tile-attributed explanation sentences, largest byte swing
    /// first.
    pub explanations: Vec<String>,
}

/// Eviction forensics of one array's capacity misses: how many
/// re-reads paid for an eviction, the median eviction→re-read gap in
/// schedule steps, and how many evictions happened while the cache
/// knew a next use was scheduled.
fn capacity_detail(l: &ProvenanceLedger, array: u32) -> (u64, Option<u64>, u64) {
    let mut gaps: Vec<u64> = Vec::new();
    let mut misses = 0u64;
    let mut foreseen = 0u64;
    for e in &l.events {
        if e.array != array || e.cause != IoCause::CapacityMiss {
            continue;
        }
        misses += 1;
        if let Some(d) = e.evict {
            gaps.push(e.step.saturating_sub(d.evicted_at_step));
            if d.next_use_at_eviction.is_some() {
                foreseen += 1;
            }
        }
    }
    gaps.sort_unstable();
    let median = (!gaps.is_empty()).then(|| gaps[gaps.len() / 2]);
    (misses, median, foreseen)
}

/// Mean elements per call of one `(array, cause)` cell — the run
/// length the layout achieves for that traffic class.
fn mean_call_elems(l: &ProvenanceLedger, array: u32, cause: IoCause) -> f64 {
    let (calls, elems) = l
        .events
        .iter()
        .filter(|e| e.array == array && e.cause == cause)
        .fold((0u64, 0u64), |(c, n), e| (c + e.calls, n + e.elems));
    if calls == 0 {
        0.0
    } else {
        elems as f64 / calls as f64
    }
}

fn explain_one(
    a: &ProvenanceLedger,
    b: &ProvenanceLedger,
    b_id: &str,
    a_id: &str,
    cell: (u32, IoCause, i64, i64),
) -> String {
    let (array, cause, delta, call_delta) = cell;
    let name = array_name(
        if a.arrays.len() >= b.arrays.len() {
            a
        } else {
            b
        },
        array,
    );
    if delta == 0 && call_delta != 0 {
        // Byte-neutral call swing: the paper's headline optimization.
        // The same regions move, but the file layout now matches (or
        // no longer matches) the traversal, changing how many elements
        // each I/O call batches.
        let improved = call_delta < 0;
        return format!(
            "{b_id} {} {} {} I/O calls on array {name} with bytes unchanged: contiguous \
             runs {} from {:.1} to {:.1} elems per call{}.",
            if improved { "eliminates" } else { "adds" },
            commas(call_delta.unsigned_abs()),
            cause.label(),
            if improved { "lengthen" } else { "shorten" },
            mean_call_elems(a, array, cause),
            mean_call_elems(b, array, cause),
            if improved {
                " \u{2014} the file layout now matches the traversal"
            } else {
                ""
            }
        );
    }
    let improved = delta < 0;
    let verb = match (cause, improved) {
        (IoCause::Compulsory, _) => {
            if improved {
                "trims"
            } else {
                "grows"
            }
        }
        (_, true) => "eliminates",
        (_, false) => "adds",
    };
    let amount = commas(delta.unsigned_abs());
    let mut s = format!(
        "{b_id} {verb} {amount} {} bytes on array {name}",
        cause.label()
    );
    match cause {
        IoCause::CapacityMiss => {
            // The forensics come from whichever side still pays the
            // misses: the baseline when the comparison eliminated
            // them, the comparison when it introduced them.
            let (side, side_id) = if improved { (a, a_id) } else { (b, b_id) };
            let (misses, median, foreseen) = capacity_detail(side, array);
            let _ = write!(s, " because {side_id} re-read {misses} evicted regions",);
            if let Some(g) = median {
                let _ = write!(s, " (median eviction\u{2192}re-read gap {g} steps");
                if foreseen > 0 {
                    let _ = write!(s, ", {foreseen} evicted despite a scheduled next use");
                }
                s.push(')');
            }
            if improved {
                s.push_str("; the reuse distance now fits the cache");
            } else {
                s.push_str("; the reuse distance no longer fits the cache");
            }
        }
        IoCause::Compulsory => {
            let count = |l: &ProvenanceLedger| {
                l.events
                    .iter()
                    .filter(|e| e.array == array && e.cause == IoCause::Compulsory)
                    .count()
            };
            let _ = write!(
                s,
                " (first-touch traffic: the layout change reshapes tile geometry, {} \u{2192} {} cold regions)",
                count(a),
                count(b)
            );
        }
        IoCause::PrefetchUseful => {
            s.push_str(" (reads served asynchronously by the prefetcher)");
        }
        IoCause::PrefetchWasted => {
            let count = |l: &ProvenanceLedger| {
                l.events
                    .iter()
                    .filter(|e| e.array == array && e.cause == IoCause::PrefetchWasted)
                    .count()
            };
            let _ = write!(
                s,
                " (deliveries evicted or unconsumed: {} \u{2192} {})",
                count(a),
                count(b)
            );
        }
        IoCause::WriteRewrite => {
            s.push_str(
                " (the same regions written more than once; a tighter schedule batches them)",
            );
        }
        IoCause::WriteBack => {
            s.push_str(" (first write-back of each tile region)");
        }
        IoCause::ReplayRead | IoCause::ReplayWrite => {
            s.push_str(" (recovery-machinery traffic: journal pre-images and rollback)");
        }
        IoCause::ChecksumOverhead => {
            s.push_str(" (integrity sidecar: CRC verification and refresh)");
        }
        IoCause::ParityWrite => {
            s.push_str(
                " (redundancy upkeep: parity read-modify-write riding along each data write)",
            );
        }
        IoCause::DegradedReconstruct => {
            s.push_str(" (degraded-mode traffic: lost chunks rebuilt by XOR from surviving peers)");
        }
        IoCause::HedgedRead => {
            s.push_str(" (straggler hedges: reads retired against the parity-derived peer set)");
        }
        IoCause::ScrubRead => {
            s.push_str(" (background scrubber verifying parity groups against their data)");
        }
    }
    s.push('.');
    s
}

/// Compares two ledgers of the same program — typically two compiled
/// versions — and explains every per-(array, cause) byte swing,
/// largest first. The headline use: *why* does `c-opt` move fewer
/// bytes than `col`, tile region by tile region.
#[must_use]
pub fn diff_ledgers(a: &ProvenanceLedger, b: &ProvenanceLedger, disk: &DiskParams) -> LedgerDiff {
    let (ta, tb) = (a.totals(), b.totals());
    let a_id = if a.version.is_empty() {
        identity(a)
    } else {
        a.version.clone()
    };
    let b_id = if b.version.is_empty() {
        identity(b)
    } else {
        b.version.clone()
    };
    let rows: Vec<CauseDelta> = IoCause::ALL
        .iter()
        .map(|&cause| CauseDelta {
            cause,
            a: cause_total(&ta, cause),
            b: cause_total(&tb, cause),
        })
        .collect();

    // Every (array, cause) cell that changed — in bytes or, when
    // bytes are neutral, in call count — by descending swing.
    let mut cells: Vec<(u32, IoCause, i64, i64)> = Vec::new();
    let keys: std::collections::BTreeSet<(u32, IoCause)> =
        ta.keys().chain(tb.keys()).copied().collect();
    for (array, cause) in keys {
        let (ab, ac) = ta
            .get(&(array, cause))
            .map_or((0, 0), |t| (t.bytes() as i64, t.calls as i64));
        let (bb, bc) = tb
            .get(&(array, cause))
            .map_or((0, 0), |t| (t.bytes() as i64, t.calls as i64));
        if ab != bb || ac != bc {
            cells.push((array, cause, bb - ab, bc - ac));
        }
    }
    cells.sort_by_key(|&(_, _, db, dc)| std::cmp::Reverse((db.unsigned_abs(), dc.unsigned_abs())));
    let explanations = cells
        .iter()
        .map(|&cell| explain_one(a, b, &b_id, &a_id, cell))
        .collect();

    LedgerDiff {
        a_id,
        b_id,
        rows,
        a_seconds: price_ledger(a, disk),
        b_seconds: price_ledger(b, disk),
        explanations,
    }
}

impl LedgerDiff {
    /// Net byte change across all cause buckets (`b - a`).
    #[must_use]
    pub fn net_bytes(&self) -> i64 {
        self.rows.iter().map(CauseDelta::delta_bytes).sum()
    }

    /// The rendered comparison: side-by-side cause table, priced
    /// seconds, and the explanation list.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== ledger diff: {} \u{2192} {}", self.a_id, self.b_id);
        let _ = writeln!(
            out,
            "{:<18} {:>14} {:>14} {:>15} {:>13}",
            "cause",
            self.a_id.chars().take(14).collect::<String>(),
            self.b_id.chars().take(14).collect::<String>(),
            "delta(bytes)",
            "calls"
        );
        for row in &self.rows {
            if row.a.bytes() == 0 && row.b.bytes() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<18} {:>14} {:>14} {:>15} {:>13}",
                row.cause.label(),
                commas(row.a.bytes()),
                commas(row.b.bytes()),
                signed_commas(row.delta_bytes()),
                format!("{}\u{2192}{}", row.a.calls, row.b.calls)
            );
        }
        let _ = writeln!(
            out,
            "{:<18} {:>13.4}s {:>13.4}s {:>15}",
            "priced",
            self.a_seconds,
            self.b_seconds,
            signed_commas(self.net_bytes())
        );
        if !self.explanations.is_empty() {
            let _ = writeln!(out, "\nwhy:");
            for e in &self.explanations {
                let _ = writeln!(out, "  - {e}");
            }
        }
        out
    }
}

/// Registers the ledger's per-cause byte/call totals as counters (the
/// classification is deterministic on the synchronous executor, so
/// bench-compare can gate them exactly) plus priced seconds as a
/// gauge. `labels` carry the run identity (`kernel`, `version`, ...).
pub fn register_metrics(
    ledger: &ProvenanceLedger,
    disk: &DiskParams,
    registry: &ooc_metrics::Registry,
    labels: &[(&str, &str)],
) {
    let totals = ledger.totals();
    for cause in IoCause::ALL {
        let t = cause_total(&totals, cause);
        if t.events == 0 && t.elems == 0 {
            continue;
        }
        let mut lv: Vec<(&str, &str)> = labels.to_vec();
        let name = cause.label();
        lv.push(("cause", name));
        registry.counter_add("ledger_bytes_total", &lv, t.bytes());
        registry.counter_add("ledger_calls_total", &lv, t.calls);
        registry.counter_add("ledger_events_total", &lv, t.events);
    }
    registry.counter_add("ledger_journal_bytes_total", labels, ledger.journal_bytes);
    registry.gauge_set("ledger_priced_seconds", labels, price_ledger(ledger, disk));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_runtime::{LedgerEvent, LedgerRecorder, Region};

    fn region(lo: i64, hi: i64) -> Region {
        Region::new(vec![lo], vec![hi])
    }

    fn event(array: u32, cause: IoCause, elems: u64, step: u64) -> LedgerEvent {
        LedgerEvent {
            array,
            cause,
            calls: 1,
            elems,
            region: region(1, elems as i64),
            nest: 0,
            step,
            evict: None,
        }
    }

    fn sample(version: &str, capacity_miss_elems: u64) -> ProvenanceLedger {
        let rec = LedgerRecorder::new();
        rec.set_run("trans", version);
        rec.set_executor("sync");
        rec.set_array(0, "U");
        rec.set_array(1, "V");
        rec.record(event(0, IoCause::Compulsory, 64, 0));
        if capacity_miss_elems > 0 {
            let mut e = event(0, IoCause::CapacityMiss, capacity_miss_elems, 9);
            e.evict = Some(ooc_runtime::EvictDetail {
                evicted_at_step: 2,
                next_use_at_eviction: Some(9),
            });
            rec.record(e);
        }
        rec.record(event(1, IoCause::WriteBack, 64, 1));
        rec.take()
    }

    #[test]
    fn commas_group_digits() {
        assert_eq!(commas(0), "0");
        assert_eq!(commas(999), "999");
        assert_eq!(commas(14336), "14,336");
        assert_eq!(commas(1234567), "1,234,567");
        assert_eq!(signed_commas(-14336), "-14,336");
        assert_eq!(signed_commas(7), "+7");
    }

    #[test]
    fn render_shows_causes_and_prices() {
        let l = sample("col", 1792);
        let text = render_ledger(&l, &DiskParams::default());
        assert!(text.contains("capacity_miss"), "{text}");
        assert!(text.contains("14,336"), "bytes of the miss bucket: {text}");
        assert!(text.contains("trans col"), "{text}");
        assert!(text.contains("U"), "{text}");
    }

    #[test]
    fn diff_explains_capacity_miss_elimination() {
        let a = sample("col", 1792);
        let b = sample("c-opt", 0);
        let diff = diff_ledgers(&a, &b, &DiskParams::default());
        assert_eq!(diff.net_bytes(), -14336);
        let text = diff.render();
        assert!(
            text.contains("c-opt eliminates 14,336 capacity_miss bytes on array U"),
            "{text}"
        );
        assert!(text.contains("re-read 1 evicted regions"), "{text}");
        assert!(
            text.contains("median eviction\u{2192}re-read gap 7 steps"),
            "{text}"
        );
        assert!(text.contains("reuse distance now fits the cache"), "{text}");
        assert!(diff.b_seconds < diff.a_seconds, "{diff:?}");
    }

    #[test]
    fn metrics_registration_gates_cause_bytes() {
        let l = sample("col", 128);
        let registry = ooc_metrics::Registry::new();
        register_metrics(
            &l,
            &DiskParams::default(),
            &registry,
            &[("kernel", "trans"), ("version", "col")],
        );
        let snap = ooc_metrics::Snapshot::capture("test", &registry);
        let v = snap
            .get(
                "ledger_bytes_total",
                &[
                    ("cause", "compulsory"),
                    ("kernel", "trans"),
                    ("version", "col"),
                ],
            )
            .expect("registered");
        assert_eq!(v, &ooc_metrics::Value::Counter(64 * 8));
    }
}
