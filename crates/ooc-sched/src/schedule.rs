//! Tile schedules: the statically-known, ordered sequence of tile
//! footprints a tiled nest will touch, annotated with **next-use
//! distances**.
//!
//! The compiler's tiling pass fixes the tile walk order before the
//! program runs, which means the pipeline does not have to *predict*
//! reuse — it can read it off the schedule. Each [`TileStep`] lists
//! the read tiles (as [`StageRequest`]s carrying the cyclic distance
//! to the tile's next use) and the written tiles of one tile of the
//! iteration-space walk; [`annotate_next_use`] computes the distances
//! with one cyclic sweep so the cache can run Belady-informed
//! eviction (evict the unpinned entry whose next use is farthest).
//!
//! Distances are *cyclic* because a nest body repeats
//! [`NestSchedule::iterations`] times over the same walk: a tile used
//! only at step `i` of an `n`-step walk is next used at `i + n`, in
//! the following iteration. Whether that wrapped reuse actually
//! happens (it does not in the final iteration) is a runtime bounds
//! check against [`NestSchedule::total_steps`] —
//! [`NestSchedule::absolute_next_use`] resolves it.

use ooc_runtime::Region;
use std::collections::BTreeMap;

/// A staged tile slot: one access-class hull of one array.
///
/// `array` and `slot` are opaque indices assigned by the schedule
/// producer (the executor layer maps them back to its own array ids
/// and staging slots); the scheduler only needs equality and a total
/// order for deterministic map keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotKey {
    /// Producer-assigned array index.
    pub array: u32,
    /// Staging slot (access-class hull) within the array.
    pub slot: u32,
}

/// A concrete tile: a slot plus the region it covers at one step.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId {
    /// Which staged slot the tile belongs to.
    pub key: SlotKey,
    /// The (inclusive) region the tile covers.
    pub region: Region,
}

/// One read tile of a step, with its statically-derived reuse info.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRequest {
    /// The tile to stage.
    pub tile: TileId,
    /// Cyclic distance (in steps) to this tile's next request, filled
    /// in by [`annotate_next_use`]. `Some(n)` for a tile requested
    /// once per `n`-step walk (reused next iteration); `None` only
    /// before annotation.
    pub next_use_delta: Option<u64>,
}

impl StageRequest {
    /// A request with the reuse distance not yet computed.
    #[must_use]
    pub fn new(tile: TileId) -> Self {
        StageRequest {
            tile,
            next_use_delta: None,
        }
    }
}

/// One step of a nest's tile walk: the iteration-space box plus every
/// tile it stages.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TileStep {
    /// Inclusive lower corner of the iteration-space box.
    pub box_lo: Vec<i64>,
    /// Inclusive upper corner of the iteration-space box.
    pub box_hi: Vec<i64>,
    /// Read-only tiles staged for the step — the prefetchable set.
    pub reads: Vec<StageRequest>,
    /// Tiles written by the step (read-modify-write; staged
    /// synchronously and flushed through write-behind).
    pub writes: Vec<TileId>,
}

impl TileStep {
    /// Elements staged for reading at this step.
    #[must_use]
    pub fn read_elems(&self) -> u64 {
        self.reads
            .iter()
            .map(|r| r.tile.region.len().max(0) as u64)
            .sum()
    }
}

/// The full schedule of one nest: an ordered tile walk repeated
/// `iterations` times.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NestSchedule {
    /// Index of the nest within the program.
    pub nest: usize,
    /// How many times the walk repeats (the nest's iteration count).
    pub iterations: u64,
    /// The tile walk, in execution order.
    pub steps: Vec<TileStep>,
    /// Largest per-step read footprint, in elements — a lower bound on
    /// a cache capacity that can hold one step's working set.
    pub read_footprint_max: u64,
}

impl NestSchedule {
    /// Total steps the nest executes: `iterations × steps.len()`.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.iterations * self.steps.len() as u64
    }

    /// Resolves a cyclic `next_use_delta` at global step
    /// `global_step` (0-based across all iterations) to an absolute
    /// next-use step, or `None` when the wrapped reuse falls past the
    /// end of the final iteration.
    #[must_use]
    pub fn absolute_next_use(&self, global_step: u64, delta: Option<u64>) -> Option<u64> {
        let d = delta?;
        let at = global_step.checked_add(d)?;
        (at < self.total_steps()).then_some(at)
    }
}

/// A whole program's schedule, nest by nest in execution order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TileSchedule {
    /// Per-nest schedules, in program order.
    pub nests: Vec<NestSchedule>,
}

/// Fills in every [`StageRequest::next_use_delta`] of `nest` with the
/// cyclic distance to the tile's next request, and recomputes
/// [`NestSchedule::read_footprint_max`].
///
/// A tile requested at steps `i < j` (within one walk of length `n`)
/// gets delta `j - i` at step `i`; the *last* request of a tile wraps
/// to its first: delta `n - j + first`. A tile requested once gets
/// exactly `n`. Deltas are therefore always `Some(d)` with
/// `1 ≤ d ≤ n`; whether the wrapped use exists is resolved at runtime
/// by [`NestSchedule::absolute_next_use`].
pub fn annotate_next_use(nest: &mut NestSchedule) {
    let n = nest.steps.len() as u64;
    // Occurrence lists per tile, in step order.
    let mut occurrences: BTreeMap<TileId, Vec<usize>> = BTreeMap::new();
    for (i, step) in nest.steps.iter().enumerate() {
        for req in &step.reads {
            occurrences.entry(req.tile.clone()).or_default().push(i);
        }
    }
    for (tile, occs) in &occurrences {
        for (k, &i) in occs.iter().enumerate() {
            let delta = if k + 1 < occs.len() {
                (occs[k + 1] - i) as u64
            } else {
                // Wrap to the first occurrence in the next iteration.
                n - i as u64 + occs[0] as u64
            };
            let step = &mut nest.steps[i];
            for req in &mut step.reads {
                if req.tile == *tile {
                    req.next_use_delta = Some(delta);
                }
            }
        }
    }
    nest.read_footprint_max = nest
        .steps
        .iter()
        .map(TileStep::read_elems)
        .max()
        .unwrap_or(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(array: u32, slot: u32, lo: i64, hi: i64) -> TileId {
        TileId {
            key: SlotKey { array, slot },
            region: Region::new(vec![lo], vec![hi]),
        }
    }

    fn step(reads: Vec<TileId>) -> TileStep {
        TileStep {
            box_lo: vec![0],
            box_hi: vec![0],
            reads: reads.into_iter().map(StageRequest::new).collect(),
            writes: Vec::new(),
        }
    }

    #[test]
    fn annotates_forward_and_wrapped_distances() {
        let a = tile(0, 0, 1, 4);
        let b = tile(1, 0, 1, 4);
        let mut nest = NestSchedule {
            nest: 0,
            iterations: 2,
            // a at steps 0 and 2, b at step 1 only; walk length 4.
            steps: vec![
                step(vec![a.clone()]),
                step(vec![b.clone()]),
                step(vec![a.clone()]),
                step(vec![]),
            ],
            read_footprint_max: 0,
        };
        annotate_next_use(&mut nest);
        assert_eq!(nest.steps[0].reads[0].next_use_delta, Some(2), "a: 0 → 2");
        assert_eq!(
            nest.steps[2].reads[0].next_use_delta,
            Some(2),
            "a wraps: 2 → 4 (= 0 next iteration)"
        );
        assert_eq!(
            nest.steps[1].reads[0].next_use_delta,
            Some(4),
            "b used once per walk: full cycle"
        );
        assert_eq!(nest.read_footprint_max, 4);
    }

    #[test]
    fn absolute_next_use_respects_final_iteration() {
        let nest = NestSchedule {
            nest: 0,
            iterations: 2,
            steps: vec![TileStep::default(); 3],
            read_footprint_max: 0,
        };
        assert_eq!(nest.total_steps(), 6);
        // Step 2 with wrap delta 3 → step 5: still inside.
        assert_eq!(nest.absolute_next_use(2, Some(3)), Some(5));
        // Step 5 (last) with wrap delta 3 → step 8: past the end.
        assert_eq!(nest.absolute_next_use(5, Some(3)), None);
        assert_eq!(nest.absolute_next_use(0, None), None);
    }

    #[test]
    fn footprint_is_per_step_not_total() {
        let mut nest = NestSchedule {
            nest: 0,
            iterations: 1,
            steps: vec![
                step(vec![tile(0, 0, 1, 10), tile(1, 0, 1, 5)]),
                step(vec![tile(0, 0, 11, 12)]),
            ],
            read_footprint_max: 0,
        };
        annotate_next_use(&mut nest);
        assert_eq!(nest.read_footprint_max, 15);
    }
}
