//! # ooc-sched
//!
//! The asynchronous tile pipeline: overlap the executor's tile I/O
//! with compute, using nothing but information the compiler already
//! has.
//!
//! The ICPP'99 tiling pass fixes the entire tile walk *statically* —
//! which tiles are read, in what order, and when each is touched
//! again. That turns three classically-hard runtime problems into
//! table lookups:
//!
//! * [`schedule`] — the walk itself, as ordered [`TileStep`]s whose
//!   read requests carry cyclic **next-use distances**
//!   ([`annotate_next_use`]).
//! * [`partition`] — [`PartitionedSchedule`]: the walk cut across N
//!   worker shards by tile-walk ownership, next-use deltas recomputed
//!   per shard, with a written-region disjointness check and serial
//!   fallback so the cut is always safe.
//! * [`cache`] — a bounded [`TileCache`] whose eviction is
//!   Belady-informed by those distances (farthest next use goes
//!   first), with an LRU fallback and pin/unpin for tiles a step is
//!   actively using.
//! * [`prefetch`] — a [`PrefetchPool`] of worker threads staging
//!   upcoming read tiles over any [`Store`](ooc_runtime::Store)
//!   (behind [`SharedStore`](ooc_runtime::SharedStore)) while the
//!   main thread computes.
//! * [`writebehind`] — a [`WriteBehind`] queue that retires dirty
//!   tiles in the background, with `wait_clear` read-after-write
//!   fences, a `flush` barrier at nest boundaries so pipelined
//!   results stay **bit-equal** to the synchronous executor, and an
//!   optional [`DurabilityFence`] that commits each tile's journal
//!   intent before the tile settles (crash consistency).
//! * [`stats`] — [`PipelineStats`]: hit rates, stall counts, and
//!   in-flight depth, exportable to `ooc-metrics`.
//!
//! The crate is deliberately executor-agnostic: it speaks opaque
//! [`SlotKey`]s, [`Region`](ooc_runtime::Region)s and
//! [`Tile`](ooc_runtime::Tile)s plus the [`TileSource`] /
//! [`TileSink`] traits. `ooc-core`'s `exec_pipelined` derives the
//! schedule from its tiling output and drives these pieces.

#![warn(missing_docs)]

pub mod cache;
pub mod partition;
pub mod prefetch;
pub mod schedule;
pub mod stats;
pub mod writebehind;

pub use cache::{CacheStats, Evicted, InsertOutcome, TileCache};
pub use partition::{
    partition_nest, partition_nest_checked, written_disjoint, PartitionedSchedule, ShardSchedule,
};
pub use prefetch::{Delivery, PrefetchPool, PrefetchRequest, TileSource};
pub use schedule::{
    annotate_next_use, NestSchedule, SlotKey, StageRequest, TileId, TileSchedule, TileStep,
};
pub use stats::{hist_compact, PipelineStats};
pub use writebehind::{DurabilityFence, TileSink, WriteBehind};
