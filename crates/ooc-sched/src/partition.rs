//! Schedule partitioning: splitting one nest's static tile walk
//! across N worker shards by **tile-walk ownership**.
//!
//! The tiling pass fixes the walk order before the program runs, so a
//! parallel executor does not need dynamic work stealing — it can cut
//! the walk statically. A [`PartitionedSchedule`] assigns every step
//! of the serial walk to exactly one shard, keyed on the step's
//! iteration-space coordinate at one loop level (the *ownership
//! level*, chosen by the executor from dependence analysis — the same
//! communication-free rule `build_workload` uses for the simulated
//! Table 3 decomposition). Three invariants make the cut safe:
//!
//! 1. **Disjoint exhaustive cover** — every serial step is owned by
//!    exactly one shard ([`partition_nest`] constructs it that way;
//!    the proptest suite verifies it on random schedules).
//! 2. **Serial-order preservation** — a shard's local step order is
//!    the serial relative order of the steps it owns, so per-shard
//!    hoisting and write-back mirror the serial executor's.
//! 3. **Belady safety** — next-use deltas are recomputed per shard
//!    with [`annotate_next_use`]. A shard sees a *subset* of a tile's
//!    serial occurrences, so its next-use distance (mapped back to
//!    serial positions) can only grow: the per-shard cache never
//!    evicts a tile sooner than the serial schedule would justify.
//!
//! Bit-equality additionally needs the shards' *written* regions to be
//! pairwise disjoint across shards (a shared hull would let one
//! shard's retirement clobber another's); [`written_disjoint`] checks
//! it and [`partition_nest_checked`] falls back to a single serial
//! shard when the check fails or no ownership level is available.

use crate::schedule::{annotate_next_use, NestSchedule, SlotKey};
use ooc_runtime::Region;
use std::collections::BTreeMap;

/// One shard of a partitioned nest schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSchedule {
    /// Shard index within the partition.
    pub shard: usize,
    /// The shard's own walk: the serial steps it owns, in serial
    /// relative order, with next-use deltas recomputed over this
    /// shard's walk alone.
    pub schedule: NestSchedule,
    /// For each local step, its index within the *serial* walk
    /// (`0..serial_len`) — the witness of the cover invariants.
    pub serial_steps: Vec<usize>,
}

/// A serial nest schedule split across shards by tile-walk ownership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedSchedule {
    /// Index of the nest within the program.
    pub nest: usize,
    /// Loop level whose `box_lo` coordinate keyed ownership.
    pub level: usize,
    /// Length of the serial walk this partition covers.
    pub serial_len: usize,
    /// `true` when the requested shard count could not be honored
    /// safely and the partition collapsed to one serial shard.
    pub serial_fallback: bool,
    /// The shards, in index order. Shards may own zero steps (more
    /// shards than distinct ownership values).
    pub shards: Vec<ShardSchedule>,
}

impl PartitionedSchedule {
    /// Shards that actually own at least one step.
    #[must_use]
    pub fn active_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| !s.schedule.steps.is_empty())
            .count()
    }
}

/// Splits `0..n` distinct ownership values into `p` near-equal blocks
/// — the same `i·n/p` rule the simulated decomposition uses
/// (`chunks` in `ooc-core`), so measured and priced partitions agree.
fn block_of(value_index: usize, values: usize, shards: usize) -> usize {
    debug_assert!(value_index < values);
    // Inverse of start(i) = i*n/p: the unique i with
    // start(i) <= v < start(i+1).
    (0..shards)
        .rfind(|&i| i * values / shards <= value_index)
        .unwrap_or(0)
}

/// Partitions `serial` across `shards` workers by the `box_lo[level]`
/// coordinate: the distinct coordinate values, in order of first
/// appearance in the serial walk, are block-partitioned into `shards`
/// near-equal runs, and each step goes to the shard owning its value.
///
/// Every serial step lands in exactly one shard and shard-local order
/// is serial relative order (both by construction). Next-use deltas
/// and `read_footprint_max` are recomputed per shard.
///
/// # Panics
/// Panics when `level` is out of range for the schedule's steps or
/// `shards` is zero.
#[must_use]
pub fn partition_nest(serial: &NestSchedule, level: usize, shards: usize) -> PartitionedSchedule {
    assert!(shards > 0, "a partition needs at least one shard");
    // Distinct ownership values in order of first appearance: for the
    // outermost tiled level this is ascending walk order, so block
    // runs of values are contiguous runs of the serial walk.
    let mut value_index: BTreeMap<i64, usize> = BTreeMap::new();
    let mut order: Vec<i64> = Vec::new();
    for step in &serial.steps {
        assert!(
            level < step.box_lo.len(),
            "ownership level {level} out of range for depth {}",
            step.box_lo.len()
        );
        let v = step.box_lo[level];
        value_index.entry(v).or_insert_with(|| {
            order.push(v);
            order.len() - 1
        });
    }
    let values = order.len();
    let mut out: Vec<ShardSchedule> = (0..shards)
        .map(|shard| ShardSchedule {
            shard,
            schedule: NestSchedule {
                nest: serial.nest,
                iterations: serial.iterations,
                steps: Vec::new(),
                read_footprint_max: 0,
            },
            serial_steps: Vec::new(),
        })
        .collect();
    for (i, step) in serial.steps.iter().enumerate() {
        let vi = value_index[&step.box_lo[level]];
        let owner = block_of(vi, values.max(1), shards);
        let mut step = step.clone();
        for req in &mut step.reads {
            req.next_use_delta = None; // re-annotated per shard below
        }
        out[owner].schedule.steps.push(step);
        out[owner].serial_steps.push(i);
    }
    for shard in &mut out {
        annotate_next_use(&mut shard.schedule);
    }
    PartitionedSchedule {
        nest: serial.nest,
        level,
        serial_len: serial.steps.len(),
        serial_fallback: false,
        shards: out,
    }
}

/// Collects each shard's written regions per slot.
fn written_by_shard(p: &PartitionedSchedule) -> BTreeMap<SlotKey, Vec<(usize, Region)>> {
    let mut out: BTreeMap<SlotKey, Vec<(usize, Region)>> = BTreeMap::new();
    for shard in &p.shards {
        for step in &shard.schedule.steps {
            for id in &step.writes {
                let entry = out.entry(id.key).or_default();
                // Consecutive steps usually rewrite the same hull
                // region; dedup keeps the pairwise check small.
                if entry
                    .iter()
                    .any(|(s, r)| *s == shard.shard && *r == id.region)
                {
                    continue;
                }
                entry.push((shard.shard, id.region.clone()));
            }
        }
    }
    out
}

/// `true` when no two *different* shards write overlapping regions of
/// the same slot — the structural precondition for bit-equality of
/// the parallel executor (a shared written hull would let one shard's
/// retirement clobber another shard's in-flight values).
#[must_use]
pub fn written_disjoint(p: &PartitionedSchedule) -> bool {
    for regions in written_by_shard(p).values() {
        for (i, (sa, ra)) in regions.iter().enumerate() {
            for (sb, rb) in &regions[i + 1..] {
                if sa != sb && ra.overlaps(rb) {
                    return false;
                }
            }
        }
    }
    true
}

/// [`partition_nest`] with the safety net the executor relies on:
/// when no ownership level is known (`level == None`), only one shard
/// is requested, or the resulting shards' written regions are not
/// pairwise disjoint, the partition collapses to a single serial
/// shard (`serial_fallback` set) — the parallel executor then runs
/// that nest exactly like the single-threaded pipeline.
#[must_use]
pub fn partition_nest_checked(
    serial: &NestSchedule,
    level: Option<usize>,
    shards: usize,
) -> PartitionedSchedule {
    let serial_shard = |level: usize| {
        let mut p = partition_nest(serial, level, 1);
        p.serial_fallback = true;
        p
    };
    let Some(level) = level else {
        return serial_shard(0);
    };
    if shards <= 1 || serial.steps.is_empty() {
        let mut p = partition_nest(serial, level, shards.max(1));
        p.serial_fallback = shards <= 1;
        return p;
    }
    let p = partition_nest(serial, level, shards);
    if written_disjoint(&p) {
        p
    } else {
        serial_shard(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{StageRequest, TileId, TileStep};

    fn tile(array: u32, slot: u32, lo: i64, hi: i64) -> TileId {
        TileId {
            key: SlotKey { array, slot },
            region: Region::new(vec![lo], vec![hi]),
        }
    }

    /// A 1-level serial walk: step i owns coordinate i, reads tile
    /// `r` every step, writes `w_i` (disjoint per step).
    fn walk(n: usize) -> NestSchedule {
        let steps = (0..n)
            .map(|i| {
                let lo = i as i64 * 4 + 1;
                TileStep {
                    box_lo: vec![i as i64],
                    box_hi: vec![i as i64],
                    reads: vec![StageRequest::new(tile(0, 0, 1, 8))],
                    writes: vec![tile(1, 0, lo, lo + 3)],
                }
            })
            .collect();
        let mut s = NestSchedule {
            nest: 0,
            iterations: 2,
            steps,
            read_footprint_max: 0,
        };
        annotate_next_use(&mut s);
        s
    }

    #[test]
    fn covers_serially_and_disjointly() {
        let serial = walk(10);
        let p = partition_nest(&serial, 0, 3);
        let mut seen = [false; 10];
        for shard in &p.shards {
            assert!(
                shard.serial_steps.windows(2).all(|w| w[0] < w[1]),
                "shard order must be serial relative order"
            );
            for (&si, step) in shard.serial_steps.iter().zip(&shard.schedule.steps) {
                assert!(!seen[si], "step {si} owned twice");
                seen[si] = true;
                assert_eq!(step.box_lo, serial.steps[si].box_lo);
            }
        }
        assert!(seen.iter().all(|&s| s), "every serial step owned");
        assert_eq!(p.active_shards(), 3);
    }

    #[test]
    fn block_partition_matches_chunks_rule() {
        // 10 values over 3 shards: starts at 0, 3, 6 → sizes 3, 3, 4.
        let sizes: Vec<usize> = (0..3)
            .map(|s| (0..10).filter(|&v| block_of(v, 10, 3) == s).count())
            .collect();
        assert_eq!(sizes, vec![3, 3, 4]);
        // Ownership is monotone in the value index.
        let owners: Vec<usize> = (0..10).map(|v| block_of(v, 10, 3)).collect();
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn per_shard_next_use_is_annotated() {
        let serial = walk(8);
        let p = partition_nest(&serial, 0, 2);
        for shard in &p.shards {
            let n = shard.schedule.steps.len() as u64;
            for step in &shard.schedule.steps {
                for req in &step.reads {
                    let d = req.next_use_delta.expect("annotated per shard");
                    assert!(d >= 1 && d <= n, "delta {d} outside shard walk {n}");
                }
            }
            assert!(shard.schedule.read_footprint_max > 0);
        }
    }

    #[test]
    fn disjoint_writes_pass_the_check() {
        let p = partition_nest(&walk(6), 0, 3);
        assert!(written_disjoint(&p));
        let checked = partition_nest_checked(&walk(6), Some(0), 3);
        assert!(!checked.serial_fallback);
        assert_eq!(checked.shards.len(), 3);
    }

    #[test]
    fn overlapping_writes_force_serial_fallback() {
        // Every step writes the same hull: any 2-shard cut overlaps.
        let mut serial = walk(6);
        for step in &mut serial.steps {
            step.writes = vec![tile(1, 0, 1, 8)];
        }
        let p = partition_nest(&serial, 0, 2);
        assert!(!written_disjoint(&p));
        let checked = partition_nest_checked(&serial, Some(0), 2);
        assert!(checked.serial_fallback);
        assert_eq!(checked.shards.len(), 1);
        assert_eq!(checked.shards[0].schedule.steps.len(), 6);
    }

    #[test]
    fn no_level_means_serial_fallback() {
        let checked = partition_nest_checked(&walk(4), None, 4);
        assert!(checked.serial_fallback);
        assert_eq!(checked.shards.len(), 1);
        assert_eq!(checked.shards[0].serial_steps, vec![0, 1, 2, 3]);
    }

    #[test]
    fn more_shards_than_values_leaves_empty_shards() {
        let p = partition_nest(&walk(2), 0, 5);
        assert_eq!(p.shards.len(), 5);
        assert_eq!(p.active_shards(), 2);
        let total: usize = p.shards.iter().map(|s| s.schedule.steps.len()).sum();
        assert_eq!(total, 2);
    }
}
