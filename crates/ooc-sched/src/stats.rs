//! Pipeline observability: one [`PipelineStats`] per pipelined run,
//! exportable into an `ooc-metrics` [`Registry`] and renderable as
//! the text block `inspect --pipeline` prints.

use crate::cache::CacheStats;
use ooc_metrics::{Histogram, Registry};

/// Everything the tile pipeline counted during one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Prefetch requests issued to the worker pool.
    pub prefetch_issued: u64,
    /// Steps whose reads were all resident (cache or arrival buffer)
    /// when the step started.
    pub steps_unstalled: u64,
    /// Steps that blocked waiting for at least one delivery.
    pub stalls: u64,
    /// Tile reads satisfied by a prefetch delivery.
    pub prefetched_reads: u64,
    /// Tile reads performed synchronously on the main thread (written
    /// slots, cache overflow, or prefetch disabled).
    pub sync_reads: u64,
    /// Dirty tiles handed to the write-behind queue.
    pub writebehind_tiles: u64,
    /// Cache counters (hits / misses / evictions / overflows / peak).
    pub cache: CacheStats,
    /// High-water mark of prefetches in flight.
    pub max_in_flight: u64,
    /// Distribution of the in-flight depth sampled at each step.
    pub in_flight_depth: Histogram,
    /// Distribution of deliveries drained per stall (how much the
    /// main thread had to wait for).
    pub stall_drains: Histogram,
    /// Transient store-call failures absorbed by the retry policy
    /// across all arrays (from `IoStats.retries`).
    pub io_retries: u64,
    /// Reads that failed checksum verification (torn/corrupt data).
    pub corrupt_reads: u64,
    /// Write intents committed to the journal (durable runs only).
    pub journal_commits: u64,
    /// Tiles rolled back from journal pre-images during recovery.
    pub recovery_replayed_tiles: u64,
}

impl PipelineStats {
    /// Cache hit rate over all `take` attempts (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache.hits + self.cache.misses;
        if total == 0 {
            0.0
        } else {
            self.cache.hits as f64 / total as f64
        }
    }

    /// Folds another shard's counters into this one — used by the
    /// parallel executor to report one run-wide [`PipelineStats`]
    /// across worker shards. Counters and histograms add; high-water
    /// marks take the max.
    pub fn merge(&mut self, other: &PipelineStats) {
        self.prefetch_issued += other.prefetch_issued;
        self.steps_unstalled += other.steps_unstalled;
        self.stalls += other.stalls;
        self.prefetched_reads += other.prefetched_reads;
        self.sync_reads += other.sync_reads;
        self.writebehind_tiles += other.writebehind_tiles;
        self.cache.merge(&other.cache);
        self.max_in_flight = self.max_in_flight.max(other.max_in_flight);
        self.in_flight_depth.merge(&other.in_flight_depth);
        self.stall_drains.merge(&other.stall_drains);
        self.io_retries += other.io_retries;
        self.corrupt_reads += other.corrupt_reads;
        self.journal_commits += other.journal_commits;
        self.recovery_replayed_tiles += other.recovery_replayed_tiles;
    }

    /// Registers every counter under `pipeline_*` with a `kernel`
    /// label, following the repo's metrics naming scheme.
    pub fn register_into(&self, registry: &Registry, kernel: &str, version: &str) {
        let labels = &[("kernel", kernel), ("version", version)][..];
        let c = |name: &str, v: u64| registry.counter_add(name, labels, v);
        c("pipeline_prefetch_issued_total", self.prefetch_issued);
        c("pipeline_steps_unstalled_total", self.steps_unstalled);
        c("pipeline_stalls_total", self.stalls);
        c("pipeline_prefetched_reads_total", self.prefetched_reads);
        c("pipeline_sync_reads_total", self.sync_reads);
        c("pipeline_writebehind_tiles_total", self.writebehind_tiles);
        c("pipeline_cache_hits_total", self.cache.hits);
        c("pipeline_cache_misses_total", self.cache.misses);
        c("pipeline_cache_evictions_total", self.cache.evictions);
        c(
            "pipeline_cache_dirty_evictions_total",
            self.cache.dirty_evictions,
        );
        c("pipeline_cache_overflows_total", self.cache.overflows);
        c("pipeline_io_retries_total", self.io_retries);
        c("pipeline_corrupt_reads_total", self.corrupt_reads);
        c("pipeline_journal_commits_total", self.journal_commits);
        c(
            "pipeline_recovery_replayed_tiles_total",
            self.recovery_replayed_tiles,
        );
        registry.gauge_set(
            "pipeline_cache_peak_elems",
            labels,
            self.cache.peak_elems as f64,
        );
        registry.gauge_set("pipeline_hit_rate", labels, self.hit_rate());
        registry.gauge_set("pipeline_max_in_flight", labels, self.max_in_flight as f64);
        registry.record_hist("pipeline_in_flight_depth", labels, &self.in_flight_depth);
        registry.record_hist("pipeline_stall_drains", labels, &self.stall_drains);
    }

    /// A compact multi-line text report for `inspect --pipeline`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  cache: {} hits / {} misses ({:.1}% hit rate), {} evictions ({} dirty), {} overflows, peak {} elems\n",
            self.cache.hits,
            self.cache.misses,
            self.hit_rate() * 100.0,
            self.cache.evictions,
            self.cache.dirty_evictions,
            self.cache.overflows,
            self.cache.peak_elems,
        ));
        out.push_str(&format!(
            "  prefetch: {} issued, {} reads served async, {} sync, max {} in flight (mean depth {:.2})\n",
            self.prefetch_issued,
            self.prefetched_reads,
            self.sync_reads,
            self.max_in_flight,
            self.in_flight_depth.mean(),
        ));
        out.push_str(&format!(
            "  stalls: {} of {} steps ({} clean), mean {:.2} drains per stall\n",
            self.stalls,
            self.stalls + self.steps_unstalled,
            self.steps_unstalled,
            self.stall_drains.mean(),
        ));
        if self.stall_drains.count > 0 {
            out.push_str(&format!(
                "  stall drains: {} (p50 {}, p90 {})\n",
                hist_compact(&self.stall_drains),
                self.stall_drains.quantile(0.5),
                self.stall_drains.quantile(0.9),
            ));
        }
        if self.in_flight_depth.count > 0 {
            out.push_str(&format!(
                "  in-flight depth: {} (p50 {}, p90 {})\n",
                hist_compact(&self.in_flight_depth),
                self.in_flight_depth.quantile(0.5),
                self.in_flight_depth.quantile(0.9),
            ));
        }
        out.push_str(&format!(
            "  write-behind: {} tiles queued\n",
            self.writebehind_tiles
        ));
        out.push_str(&format!(
            "  io: {} transient retries, {} corrupt reads\n",
            self.io_retries, self.corrupt_reads,
        ));
        if self.journal_commits > 0 || self.recovery_replayed_tiles > 0 {
            out.push_str(&format!(
                "  durability: {} journal commits, {} tiles replayed in recovery\n",
                self.journal_commits, self.recovery_replayed_tiles,
            ));
        }
        out
    }
}

/// Non-empty log2 buckets of a histogram as `[lo-hi]xN` tokens (the
/// same shape `MeasuredIo::run_hist_compact` prints).
#[must_use]
pub fn hist_compact(h: &Histogram) -> String {
    let mut parts = Vec::new();
    for (i, &count) in h.buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let (lo, hi) = ooc_metrics::bucket_bounds(i);
        if hi == u64::MAX {
            parts.push(format!("[{lo}+]x{count}"));
        } else {
            parts.push(format!("[{lo}-{hi}]x{count}"));
        }
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_metrics::Value;

    fn sample() -> PipelineStats {
        let mut s = PipelineStats {
            prefetch_issued: 10,
            steps_unstalled: 7,
            stalls: 3,
            prefetched_reads: 9,
            sync_reads: 2,
            writebehind_tiles: 4,
            cache: CacheStats {
                hits: 6,
                misses: 2,
                evictions: 1,
                dirty_evictions: 1,
                overflows: 0,
                peak_elems: 128,
            },
            max_in_flight: 4,
            io_retries: 5,
            journal_commits: 4,
            recovery_replayed_tiles: 1,
            ..PipelineStats::default()
        };
        s.in_flight_depth.observe(2);
        s.in_flight_depth.observe(4);
        s.stall_drains.observe(1);
        s
    }

    #[test]
    fn registers_counters_gauges_and_hists() {
        let r = Registry::new();
        sample().register_into(&r, "mxm", "c-opt");
        let labels = &[("kernel", "mxm"), ("version", "c-opt")][..];
        assert_eq!(
            r.get("pipeline_cache_hits_total", labels),
            Some(Value::Counter(6))
        );
        assert_eq!(
            r.get("pipeline_stalls_total", labels),
            Some(Value::Counter(3))
        );
        assert_eq!(
            r.get("pipeline_io_retries_total", labels),
            Some(Value::Counter(5))
        );
        assert_eq!(
            r.get("pipeline_journal_commits_total", labels),
            Some(Value::Counter(4))
        );
        match r.get("pipeline_hit_rate", labels) {
            Some(Value::Gauge(g)) => assert!((g - 0.75).abs() < 1e-12),
            other => panic!("hit rate gauge missing: {other:?}"),
        }
        match r.get("pipeline_in_flight_depth", labels) {
            Some(Value::Histogram(h)) => assert_eq!(h.count, 2),
            other => panic!("depth histogram missing: {other:?}"),
        }
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample().render();
        for needle in [
            "cache:",
            "75.0% hit rate",
            "prefetch:",
            "stalls:",
            "write-behind:",
            "5 transient retries",
            "4 journal commits",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
        // Non-durable runs don't print the durability line.
        let quiet = PipelineStats::default().render();
        assert!(!quiet.contains("durability:"), "quiet render: {quiet}");
    }

    #[test]
    fn hit_rate_handles_idle() {
        assert_eq!(PipelineStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn merge_adds_counters_and_maxes_high_water() {
        let mut a = sample();
        let mut b = sample();
        b.max_in_flight = 9;
        b.stalls = 1;
        a.merge(&b);
        assert_eq!(a.prefetch_issued, 20);
        assert_eq!(a.stalls, 4);
        assert_eq!(a.cache.hits, 12);
        assert_eq!(a.max_in_flight, 9);
        assert_eq!(a.in_flight_depth.count, 4);
        assert_eq!(a.io_retries, 10);
        // Merging the default is the identity.
        let before = a.clone();
        a.merge(&PipelineStats::default());
        assert_eq!(a, before);
    }
}
