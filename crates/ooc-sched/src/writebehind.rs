//! Write-behind: dirty tiles queue for a single background writer
//! thread, so tile write-back overlaps the next steps' compute.
//!
//! Correctness rests on two waits the executor performs:
//!
//! * [`WriteBehind::wait_clear`] before re-reading any region that
//!   might still be queued or in flight — the read-after-write
//!   ordering a synchronous executor gets for free.
//! * [`WriteBehind::flush`] at every nest boundary (the **flush
//!   barrier**): it drains the queue and surfaces the first write
//!   error, so a nest never starts while its predecessor's stores are
//!   airborne and a lost write can never be silently absorbed.
//!
//! A *single* writer thread keeps per-array write order identical to
//! enqueue order, which makes overlapping same-array writes safe
//! without any versioning; cross-array order is irrelevant because
//! stores to different arrays never alias.

use crate::schedule::TileId;
use ooc_runtime::{IoStats, Region, Tile};
use std::collections::BTreeMap;
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// What the writer thread needs: the ability to write one tile back
/// to its array and report the I/O stats of that write alone.
pub trait TileSink: Send {
    /// Writes `tile` back to array `id.key.array`, returning the I/O
    /// accounting of this write only.
    ///
    /// # Errors
    /// Propagates store-level I/O errors (after the sink's own retry
    /// policy is exhausted).
    fn store(&mut self, id: &TileId, tile: &Tile) -> io::Result<IoStats>;
}

/// The durability hook a crash-consistent executor installs: after a
/// tile's data write succeeds, the fence commits its journal intent
/// — *before* the tile is marked settled, so by the time
/// [`WriteBehind::wait_clear`] (or [`WriteBehind::flush`]) reports a
/// region clear, its commit record is durably in the journal. A
/// fence error is sticky like a write error and surfaces at the next
/// flush barrier.
pub trait DurabilityFence: Send {
    /// Commits the journal intent backing `id`'s write.
    ///
    /// # Errors
    /// Propagates journal I/O errors.
    fn commit(&mut self, id: &TileId) -> io::Result<()>;
}

#[derive(Debug, Default)]
struct WbQueue {
    pending: Vec<(TileId, Tile)>,
    /// The tile currently being written, if any.
    active: Option<TileId>,
    /// First write error, sticky until observed by `flush`. The
    /// original error value is kept so typed payloads (e.g. injected
    /// crashes, corrupt-read markers) survive to the caller.
    error: Option<io::Error>,
    /// Per-array accumulated write stats.
    stats: BTreeMap<u32, IoStats>,
    tiles_written: u64,
    closed: bool,
}

impl WbQueue {
    fn blocks(&self, array: u32, region: &Region) -> bool {
        self.pending
            .iter()
            .any(|(id, _)| id.key.array == array && id.region.overlaps(region))
            || self
                .active
                .as_ref()
                .is_some_and(|id| id.key.array == array && id.region.overlaps(region))
    }

    fn busy(&self) -> bool {
        !self.pending.is_empty() || self.active.is_some()
    }
}

#[derive(Debug, Default)]
struct WbState {
    queue: Mutex<WbQueue>,
    /// Signals the writer that work arrived (or the queue closed).
    work: Condvar,
    /// Signals waiters that the queue drained / a region cleared.
    settled: Condvar,
}

/// The write-behind queue plus its writer thread.
#[derive(Debug)]
pub struct WriteBehind {
    state: Arc<WbState>,
    writer: Option<JoinHandle<()>>,
}

impl WriteBehind {
    /// Spawns the writer thread over `sink` with no durability fence.
    #[must_use]
    pub fn new(sink: Box<dyn TileSink>) -> Self {
        WriteBehind::with_fence(sink, None)
    }

    /// Spawns the writer thread over `sink`; when `fence` is present
    /// the writer commits each tile's journal intent after the data
    /// write succeeds and before the tile settles (see
    /// [`DurabilityFence`]).
    #[must_use]
    pub fn with_fence(
        mut sink: Box<dyn TileSink>,
        mut fence: Option<Box<dyn DurabilityFence>>,
    ) -> Self {
        let state = Arc::new(WbState::default());
        let writer = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let _lane =
                    ooc_trace::lane_scope(ooc_trace::Lane::new(ooc_trace::LaneKind::Writer, 0));
                loop {
                    let (id, tile) = {
                        let mut q = state.queue.lock().expect("writebehind queue");
                        loop {
                            if !q.pending.is_empty() {
                                let (id, tile) = q.pending.remove(0);
                                q.active = Some(id.clone());
                                break (id, tile);
                            }
                            if q.closed {
                                return;
                            }
                            q = state.work.wait(q).expect("writebehind queue");
                        }
                    };
                    // Data first, then the fence's journal commit — the
                    // write-ahead ordering crash recovery depends on.
                    let _write =
                        ooc_trace::enabled().then(|| ooc_trace::span("pipeline", "wb-write"));
                    let result = sink.store(&id, &tile).and_then(|stats| {
                        if let Some(f) = fence.as_mut() {
                            f.commit(&id)?;
                        }
                        Ok(stats)
                    });
                    let mut q = state.queue.lock().expect("writebehind queue");
                    q.active = None;
                    match result {
                        Ok(stats) => {
                            q.stats.entry(id.key.array).or_default().merge(&stats);
                            q.tiles_written += 1;
                        }
                        Err(e) => {
                            if q.error.is_none() {
                                q.error = Some(e);
                            }
                        }
                    }
                    state.settled.notify_all();
                }
            })
        };
        WriteBehind {
            state,
            writer: Some(writer),
        }
    }

    /// Queues `tile` for background write-back.
    pub fn enqueue(&self, id: TileId, tile: Tile) {
        {
            let mut q = self.state.queue.lock().expect("writebehind queue");
            q.pending.push((id, tile));
        }
        self.state.work.notify_one();
    }

    /// Blocks until no queued or in-flight write overlaps
    /// `(array, region)` — the read-after-write fence a consumer runs
    /// before re-staging data it may have dirtied earlier.
    pub fn wait_clear(&self, array: u32, region: &Region) {
        let mut q = self.state.queue.lock().expect("writebehind queue");
        if q.blocks(array, region) {
            let _fence = ooc_trace::enabled().then(|| ooc_trace::span("pipeline", "fence-wait"));
            while q.blocks(array, region) {
                q = self.state.settled.wait(q).expect("writebehind queue");
            }
        }
    }

    /// The flush barrier: blocks until the queue is fully drained,
    /// then reports (and clears) the first write error.
    ///
    /// # Errors
    /// The first error any background write hit since the previous
    /// flush.
    pub fn flush(&self) -> io::Result<()> {
        let mut q = self.state.queue.lock().expect("writebehind queue");
        if q.busy() {
            let _fence = ooc_trace::enabled().then(|| ooc_trace::span("pipeline", "fence-wait"));
            while q.busy() {
                q = self.state.settled.wait(q).expect("writebehind queue");
            }
        }
        match q.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Tiles queued or in flight right now.
    #[must_use]
    pub fn depth(&self) -> u64 {
        let q = self.state.queue.lock().expect("writebehind queue");
        q.pending.len() as u64 + u64::from(q.active.is_some())
    }

    /// Per-array accumulated write stats (successful writes only).
    #[must_use]
    pub fn stats(&self) -> BTreeMap<u32, IoStats> {
        self.state
            .queue
            .lock()
            .expect("writebehind queue")
            .stats
            .clone()
    }

    /// Tiles written back so far.
    #[must_use]
    pub fn tiles_written(&self) -> u64 {
        self.state
            .queue
            .lock()
            .expect("writebehind queue")
            .tiles_written
    }

    /// Closes the queue (after draining it) and joins the writer.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.state.queue.lock().expect("writebehind queue");
            q.closed = true;
        }
        self.state.work.notify_all();
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
    }
}

impl Drop for WriteBehind {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SlotKey;
    use ooc_runtime::{MemStore, SharedStore, Store};

    /// Writes tiles into flat per-array shared MemStores at
    /// `region.lo[0] - 1`.
    struct FlatSink {
        stores: BTreeMap<u32, SharedStore<MemStore>>,
        fail_array: Option<u32>,
        delay: std::time::Duration,
    }

    impl TileSink for FlatSink {
        fn store(&mut self, id: &TileId, tile: &Tile) -> io::Result<IoStats> {
            std::thread::sleep(self.delay);
            if self.fail_array == Some(id.key.array) {
                return Err(io::Error::other("sink failed"));
            }
            let s = self.stores.get_mut(&id.key.array).expect("store");
            let offset = (id.region.lo[0] - 1) as u64;
            s.write_run(offset, tile.data())?;
            Ok(IoStats {
                writes: 1,
                write_calls: 1,
                write_elems: tile.data().len() as u64,
                ..IoStats::default()
            })
        }
    }

    fn id(array: u32, lo: i64, hi: i64) -> TileId {
        TileId {
            key: SlotKey { array, slot: 0 },
            region: Region::new(vec![lo], vec![hi]),
        }
    }

    fn filled(lo: i64, hi: i64, v: f64) -> Tile {
        let mut t = Tile::zeroed(Region::new(vec![lo], vec![hi]));
        for x in t.data_mut() {
            *x = v;
        }
        t
    }

    fn sink(
        fail: Option<u32>,
        delay_ms: u64,
    ) -> (Box<dyn TileSink>, BTreeMap<u32, SharedStore<MemStore>>) {
        let stores: BTreeMap<u32, SharedStore<MemStore>> = (0..2u32)
            .map(|a| (a, SharedStore::new(MemStore::new(16))))
            .collect();
        (
            Box::new(FlatSink {
                stores: stores.clone(),
                fail_array: fail,
                delay: std::time::Duration::from_millis(delay_ms),
            }),
            stores,
        )
    }

    #[test]
    fn flush_barrier_drains_and_lands_all_writes() {
        let (sink, stores) = sink(None, 1);
        let wb = WriteBehind::new(sink);
        for i in 0..4i64 {
            let lo = i * 4 + 1;
            wb.enqueue(id(0, lo, lo + 3), filled(lo, lo + 3, i as f64 + 1.0));
        }
        wb.flush().expect("no errors");
        assert_eq!(wb.depth(), 0);
        assert_eq!(wb.tiles_written(), 4);
        let mut buf = [0.0; 16];
        stores[&0].read_run(0, &mut buf).expect("read");
        for (i, chunk) in buf.chunks(4).enumerate() {
            assert_eq!(chunk, [i as f64 + 1.0; 4], "tile {i} landed");
        }
        let stats = wb.stats();
        assert_eq!(stats[&0].write_calls, 4);
        assert_eq!(stats[&0].write_elems, 16);
    }

    #[test]
    fn wait_clear_orders_read_after_write() {
        let (sink, stores) = sink(None, 5);
        let wb = WriteBehind::new(sink);
        wb.enqueue(id(0, 1, 8), filled(1, 8, 7.0));
        wb.enqueue(id(1, 1, 8), filled(1, 8, 9.0));
        // Overlapping region on array 0: must observe the write.
        wb.wait_clear(0, &Region::new(vec![4], vec![6]));
        let mut buf = [0.0; 8];
        stores[&0].read_run(0, &mut buf).expect("read");
        assert_eq!(buf, [7.0; 8], "wait_clear fenced the overlap");
        // Disjoint region clears immediately even while array 1's
        // write may still be in flight.
        wb.wait_clear(0, &Region::new(vec![9], vec![12]));
        wb.flush().expect("ok");
    }

    #[test]
    fn errors_surface_at_the_barrier_once() {
        let (sink, _stores) = sink(Some(1), 0);
        let wb = WriteBehind::new(sink);
        wb.enqueue(id(0, 1, 4), filled(1, 4, 1.0));
        wb.enqueue(id(1, 1, 4), filled(1, 4, 2.0));
        let err = wb.flush().expect_err("sink failure surfaces");
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(err.to_string().contains("sink failed"));
        // The error was consumed; the queue keeps working.
        wb.flush().expect("sticky error cleared after observation");
        assert_eq!(wb.tiles_written(), 1, "array-0 write still landed");
    }

    struct LogFence {
        log: Arc<Mutex<Vec<String>>>,
        fail: bool,
    }

    impl DurabilityFence for LogFence {
        fn commit(&mut self, id: &TileId) -> io::Result<()> {
            if self.fail {
                return Err(io::Error::other("fence failed"));
            }
            self.log
                .lock()
                .expect("log")
                .push(format!("commit:{}:{}", id.key.array, id.region.lo[0]));
            Ok(())
        }
    }

    struct LogSink {
        inner: Box<dyn TileSink>,
        log: Arc<Mutex<Vec<String>>>,
    }

    impl TileSink for LogSink {
        fn store(&mut self, id: &TileId, tile: &Tile) -> io::Result<IoStats> {
            let stats = self.inner.store(id, tile)?;
            self.log
                .lock()
                .expect("log")
                .push(format!("store:{}:{}", id.key.array, id.region.lo[0]));
            Ok(stats)
        }
    }

    #[test]
    fn fence_commits_after_data_before_settle() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let (inner, _stores) = sink(None, 1);
        let wb = WriteBehind::with_fence(
            Box::new(LogSink {
                inner,
                log: Arc::clone(&log),
            }),
            Some(Box::new(LogFence {
                log: Arc::clone(&log),
                fail: false,
            })),
        );
        wb.enqueue(id(0, 1, 4), filled(1, 4, 1.0));
        wb.enqueue(id(0, 5, 8), filled(5, 8, 2.0));
        // wait_clear returning means the overlapping tile both landed
        // AND committed — the durability-fence guarantee.
        wb.wait_clear(0, &Region::new(vec![2], vec![3]));
        {
            let l = log.lock().expect("log");
            let store_pos = l.iter().position(|e| e == "store:0:1").expect("stored");
            let commit_pos = l.iter().position(|e| e == "commit:0:1").expect("committed");
            assert!(store_pos < commit_pos, "data write precedes journal commit");
        }
        wb.flush().expect("clean");
        let l = log.lock().expect("log");
        assert_eq!(
            l.iter().filter(|e| e.starts_with("commit:")).count(),
            2,
            "every landed tile committed"
        );
    }

    #[test]
    fn fence_errors_surface_at_the_barrier() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let (inner, _stores) = sink(None, 0);
        let wb = WriteBehind::with_fence(
            Box::new(LogSink {
                inner,
                log: Arc::clone(&log),
            }),
            Some(Box::new(LogFence { log, fail: true })),
        );
        wb.enqueue(id(0, 1, 4), filled(1, 4, 1.0));
        let err = wb.flush().expect_err("fence failure surfaces");
        assert!(err.to_string().contains("fence failed"));
        assert_eq!(wb.tiles_written(), 0, "an uncommitted tile never settles");
    }

    #[test]
    fn shutdown_drains_pending_work() {
        let (sink, stores) = sink(None, 1);
        let mut wb = WriteBehind::new(sink);
        wb.enqueue(id(0, 1, 4), filled(1, 4, 3.0));
        wb.shutdown();
        // closed=true still lets the writer drain what was pending
        // before exiting.
        let mut buf = [0.0; 4];
        stores[&0].read_run(0, &mut buf).expect("read");
        assert_eq!(buf, [3.0; 4]);
    }
}
